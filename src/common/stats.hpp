// Small statistics helpers used by the experiment harness and benches
// (median files-lost, cumulative detection curves, histogram buckets).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace cryptodrop {

/// Median of a sample (average of the two middle elements for even sizes,
/// matching the convention in the paper's Table I, e.g. CryptoDefense 6.5).
/// Precondition: non-empty.
double median(std::vector<double> values);
/// Integer-sample median with the same convention.
double median_int(std::vector<int> values);

/// Arithmetic mean. Precondition: non-empty.
double mean(const std::vector<double>& values);

/// p-th percentile (nearest-rank), p in [0, 100]. Precondition: non-empty.
double percentile(std::vector<double> values, double p);

/// Cumulative distribution points: for each distinct value v (ascending),
/// the fraction of samples <= v. Used for Figure 3.
std::vector<std::pair<double, double>> cumulative_fraction(
    std::vector<double> values);

/// Counts occurrences of each key.
template <typename T>
std::map<T, std::size_t> frequency(const std::vector<T>& items) {
  std::map<T, std::size_t> out;
  for (const auto& item : items) ++out[item];
  return out;
}

/// Renders a crude fixed-width text bar for terminal "figures".
std::string text_bar(double fraction, std::size_t width);

}  // namespace cryptodrop
