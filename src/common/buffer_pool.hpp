// Per-thread scratch-buffer pool for the vfs→filter→engine hot path.
//
// The indicator pass needs short-lived vectors every operation (simhash
// trigger positions and feature hashes, the DAA tail linearization).
// Allocating them per op costs a malloc/free round trip on the hottest
// code in the repo, and under the daemon's sharded workers those calls
// contend inside the allocator. The pool keeps a small per-thread
// freelist (LIFO, capacity-bounded) so steady-state acquisitions are a
// pointer pop — no lock, no allocator, no cross-thread traffic (cf.
// lokinet's util/buffer_pool.hpp, which pools packet buffers the same
// way).
//
// Rules (DESIGN.md §16):
//  * A scratch buffer's lifetime must stay within one operation on one
//    thread — it is handed back to the *releasing* thread's shelf, so
//    escaping it across threads silently forfeits reuse (but is safe).
//  * Pools are typed (ScratchPool<T>) — no aliasing games.
//  * The shelf is bounded (kMaxFree buffers, kMaxRetainedBytes retained
//    capacity per type per thread); beyond that, release simply frees.
//  * Stats are process-global relaxed atomics, surfaced as engine gauges
//    (buffer_pool_* in OBSERVABILITY.md) — monitoring only, never logic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cryptodrop {

/// Point-in-time view of the process-wide pool counters.
struct BufferPoolStats {
  std::uint64_t acquires = 0;        ///< Total acquire() calls.
  std::uint64_t hits = 0;            ///< Acquires served from a freelist.
  std::uint64_t bytes_retained = 0;  ///< Capacity currently parked on shelves.
};

namespace detail {

/// Live process-wide pool counters (relaxed atomics; see
/// BufferPoolStats for the snapshot form).
struct PoolCounters {
  std::atomic<std::uint64_t> acquires{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::int64_t> bytes_retained{0};
};

/// Process-global counters shared by every typed pool.
PoolCounters& pool_counters();

}  // namespace detail

/// Snapshot of the pool counters (relaxed reads; values are monotonic
/// except bytes_retained, which tracks the live shelf total).
BufferPoolStats buffer_pool_stats();

/// Typed per-thread freelist of std::vector<T> scratch buffers.
template <class T>
class ScratchPool {
 public:
  /// Pops a pooled vector (cleared, capacity >= what it retired with) or
  /// default-constructs one; always reserves `min_capacity`.
  // cryptodrop:hot
  static std::vector<T> acquire(std::size_t min_capacity) {
    auto& counters = detail::pool_counters();
    counters.acquires.fetch_add(1, std::memory_order_relaxed);
    Shelf& shelf = local_shelf();
    std::vector<T> out;
    if (!shelf.free.empty()) {
      out = std::move(shelf.free.back());
      shelf.free.pop_back();
      shelf.retained_bytes -= out.capacity() * sizeof(T);
      counters.hits.fetch_add(1, std::memory_order_relaxed);
      counters.bytes_retained.fetch_sub(
          static_cast<std::int64_t>(out.capacity() * sizeof(T)),
          std::memory_order_relaxed);
      out.clear();
    }
    if (out.capacity() < min_capacity) out.reserve(min_capacity);
    return out;
  }

  /// Parks `v`'s storage on this thread's shelf for the next acquire, or
  /// frees it when the shelf is full.
  // cryptodrop:hot
  static void release(std::vector<T>&& v) {
    const std::size_t bytes = v.capacity() * sizeof(T);
    if (bytes == 0) return;
    Shelf& shelf = local_shelf();
    if (shelf.free.size() >= kMaxFree ||
        shelf.retained_bytes + bytes > kMaxRetainedBytes) {
      std::vector<T>().swap(v);
      return;
    }
    shelf.retained_bytes += bytes;
    detail::pool_counters().bytes_retained.fetch_add(
        static_cast<std::int64_t>(bytes), std::memory_order_relaxed);
    shelf.free.push_back(std::move(v));
  }

 private:
  static constexpr std::size_t kMaxFree = 8;
  static constexpr std::size_t kMaxRetainedBytes = std::size_t{1} << 20;

  struct Shelf {
    std::vector<std::vector<T>> free;
    std::size_t retained_bytes = 0;

    ~Shelf() {
      // Thread exit: the retained capacity leaves the process-wide gauge.
      detail::pool_counters().bytes_retained.fetch_sub(
          static_cast<std::int64_t>(retained_bytes), std::memory_order_relaxed);
    }
  };

  static Shelf& local_shelf() {
    thread_local Shelf shelf;
    return shelf;
  }
};

/// RAII scratch vector: acquires from the pool, releases on destruction.
/// Use exactly like a local std::vector<T> that happens to recycle its
/// storage.
template <class T>
class Scratch {
 public:
  /// Acquires a buffer with at least `min_capacity` elements reserved.
  explicit Scratch(std::size_t min_capacity = 0)
      : v_(ScratchPool<T>::acquire(min_capacity)) {}
  ~Scratch() { ScratchPool<T>::release(std::move(v_)); }

  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;

  /// The pooled vector (mutable view).
  std::vector<T>& operator*() { return v_; }
  /// Member access on the pooled vector (mutable view).
  std::vector<T>* operator->() { return &v_; }
  /// The pooled vector (const view).
  [[nodiscard]] const std::vector<T>& operator*() const { return v_; }
  /// Member access on the pooled vector (const view).
  [[nodiscard]] const std::vector<T>* operator->() const { return &v_; }

 private:
  std::vector<T> v_;
};

}  // namespace cryptodrop
