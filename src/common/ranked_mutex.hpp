// Rank-checked mutexes: the runtime half of the project's lock-order
// contract (DESIGN.md §13; the static half is tools/lint).
//
// Every long-lived mutex in the repo is a RankedMutex<Rank> (or
// RankedSharedMutex<Rank>) whose rank comes from the table in
// `lockrank` below. The contract a thread must obey:
//
//   * acquire mutexes in strictly increasing rank order, except
//   * several mutexes of the SAME rank may be held together when they
//     are acquired in ascending address order (the engine snapshot's
//     in-index-order sweep over its shard array is exactly this case).
//
// In a -DCRYPTODROP_CHECK=ON build (the TSan CI job enables it) each
// thread keeps a rank stack of the locks it holds; an out-of-order
// acquisition prints both locks and calls std::abort(). In a normal
// build the wrapper is a zero-cost passthrough — lock()/unlock()
// compile to the underlying std::mutex calls and the object layout is
// exactly the underlying mutex (static_asserted in tests).
//
// The checked/unchecked choice is the template parameter `Checked`,
// defaulted from the CRYPTODROP_CHECK macro. Because it is part of the
// type, a test TU may instantiate a checked mutex explicitly
// (RankedMutex<N, true>) without rebuilding the libraries, and mixed
// translation units never violate the ODR.
#pragma once

#include <array>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

namespace cryptodrop::common {

/// The project lock-rank table (DESIGN.md §13 documents the why of
/// each ordering edge). A thread holding rank R may only acquire
/// ranks > R (or another rank-R lock at a higher address).
namespace lockrank {
/// Harness runner: first-trial-error slot (leaf; held a few stores).
inline constexpr unsigned kRunnerError = 1;
/// Harness runner: progress-callback serialization. Below every engine
/// rank because a progress callback may query an engine.
inline constexpr unsigned kRunnerProgress = 2;
/// Daemon tenant registry (attach/detach/lookup). Below every engine
/// rank: attach constructs an engine (which registers metrics, rank 50)
/// while holding it.
inline constexpr unsigned kDaemonRegistry = 3;
/// Daemon ingestion queue (push/pop/drain). Below every engine rank;
/// workers release it before executing an op through a tenant's engine.
inline constexpr unsigned kDaemonQueue = 4;
/// Daemon event journal (telemetry ring). Held only for one bounded
/// push or copy-out — never across queue, registry or engine work —
/// but ranked below the engine so the suspension alert callback (which
/// runs with no engine lock held) and worker-loop appends compose.
inline constexpr unsigned kDaemonJournal = 5;
/// Engine per-process scoreboard shard (16 of them; the snapshot sweep
/// takes all 16 in index — i.e. ascending-address — order).
inline constexpr unsigned kScoreboardShard = 10;
/// Engine per-file baseline shard; acquired under a scoreboard shard
/// on the evaluate-modification path.
inline constexpr unsigned kFileTable = 20;
/// Shared digest-cache shard; acquired under a file shard when a miss
/// computes a digest mid-evaluation.
inline constexpr unsigned kDigestCache = 30;
/// Engine latency-stats accumulator (ScopedLatency destructor; runs
/// after every per-op guard is released).
inline constexpr unsigned kLatencyStats = 40;
/// MetricsRegistry registration/snapshot lock (never on the op path).
inline constexpr unsigned kMetricsRegistry = 50;
/// Span-tracer shard ring; a span close under scoreboard/file locks
/// lands here.
inline constexpr unsigned kSpanShard = 60;
/// Span-tracer forced-pid set; the verdict path takes it under a
/// scoreboard shard.
inline constexpr unsigned kSpanForce = 62;
}  // namespace lockrank

#ifdef CRYPTODROP_CHECK
/// Build-wide default for the `Checked` template parameter below.
inline constexpr bool kLockCheckDefault = true;
#else
/// Build-wide default for the `Checked` template parameter below.
inline constexpr bool kLockCheckDefault = false;
#endif

namespace detail {

/// One acquisition on the calling thread's rank stack.
struct HeldLock {
  unsigned rank = 0;
  const void* mx = nullptr;
};

/// The calling thread's currently held ranked locks, in acquisition
/// order (the ordering contract keeps it non-decreasing by rank).
/// Fixed capacity: nesting depth is bounded by the rank table, so the
/// lock acquisition path never touches the allocator — check_acquire
/// sits inside every hot-path lock (cryptodrop:hot purity gate).
struct HeldStack {
  static constexpr std::size_t kMaxDepth = 16;
  std::array<HeldLock, kMaxDepth> items{};
  std::size_t depth = 0;
};

/// The calling thread's rank stack.
inline HeldStack& held_stack() {
  thread_local HeldStack stack;
  return stack;
}

/// Validates one acquisition against the top of the rank stack and
/// pushes it. Aborts (with a diagnostic naming both ranks) on a
/// lock-order inversion or implausibly deep nesting.
inline void check_acquire(unsigned rank, const void* mx) {
  HeldStack& stack = held_stack();
  if (stack.depth > 0) {
    const HeldLock& top = stack.items[stack.depth - 1];
    const bool ordered =
        rank > top.rank || (rank == top.rank && mx > top.mx);
    if (!ordered) {
      std::fprintf(stderr,
                   "cryptodrop: lock-rank violation: acquiring rank %u "
                   "(%p) while holding rank %u (%p)\n",
                   rank, mx, top.rank, top.mx);
      std::abort();
    }
  }
  if (stack.depth == HeldStack::kMaxDepth) {
    std::fprintf(stderr,
                 "cryptodrop: lock nesting deeper than %zu ranked locks "
                 "— raise HeldStack::kMaxDepth if this is intentional\n",
                 HeldStack::kMaxDepth);
    std::abort();
  }
  stack.items[stack.depth++] = HeldLock{rank, mx};
}

/// Removes `mx` from the rank stack (latest acquisition first, so
/// recursive same-address patterns would unwind correctly).
inline void note_release(const void* mx) {
  HeldStack& stack = held_stack();
  for (std::size_t i = stack.depth; i-- > 0;) {
    if (stack.items[i].mx == mx) {
      for (std::size_t j = i + 1; j < stack.depth; ++j) {
        stack.items[j - 1] = stack.items[j];
      }
      --stack.depth;
      return;
    }
  }
}

}  // namespace detail

/// std::mutex carrying a compile-time lock rank. Checked builds
/// validate every acquisition against the thread's rank stack;
/// unchecked builds are layout- and code-identical to std::mutex.
/// Satisfies Lockable (use std::lock_guard / std::unique_lock).
template <unsigned Rank, bool Checked = kLockCheckDefault>
class RankedMutex {
 public:
  /// This mutex's position in the lockrank table.
  static constexpr unsigned rank() { return Rank; }

  /// Blocking acquire; aborts on rank inversion when Checked.
  void lock() {
    if constexpr (Checked) detail::check_acquire(Rank, this);
    m_.lock();
  }

  /// Release; pops this mutex from the rank stack when Checked.
  void unlock() {
    m_.unlock();
    if constexpr (Checked) detail::note_release(this);
  }

  /// Non-blocking acquire. Even a try-acquire must respect the rank
  /// order (a successful out-of-order try is still a contract breach).
  bool try_lock() {
    if (!m_.try_lock()) return false;
    if constexpr (Checked) detail::check_acquire(Rank, this);
    return true;
  }

 private:
  std::mutex m_;  // lock-rank: Rank (carried by the enclosing template)
};

/// std::shared_mutex carrying a compile-time lock rank. Shared
/// acquisitions obey the same rank order as exclusive ones (a reader
/// can deadlock a writer just as well).
template <unsigned Rank, bool Checked = kLockCheckDefault>
class RankedSharedMutex {
 public:
  /// This mutex's position in the lockrank table.
  static constexpr unsigned rank() { return Rank; }

  /// Blocking exclusive acquire; aborts on rank inversion when Checked.
  void lock() {
    if constexpr (Checked) detail::check_acquire(Rank, this);
    m_.lock();
  }

  /// Exclusive release.
  void unlock() {
    m_.unlock();
    if constexpr (Checked) detail::note_release(this);
  }

  /// Non-blocking exclusive acquire (rank-checked on success).
  bool try_lock() {
    if (!m_.try_lock()) return false;
    if constexpr (Checked) detail::check_acquire(Rank, this);
    return true;
  }

  /// Blocking shared acquire; aborts on rank inversion when Checked.
  void lock_shared() {
    if constexpr (Checked) detail::check_acquire(Rank, this);
    m_.lock_shared();
  }

  /// Shared release.
  void unlock_shared() {
    m_.unlock_shared();
    if constexpr (Checked) detail::note_release(this);
  }

 private:
  std::shared_mutex m_;  // lock-rank: Rank (carried by the enclosing template)
};

}  // namespace cryptodrop::common
