// Hex encoding/decoding for digests and test fixtures.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace cryptodrop {

/// Lower-case hex encoding of `data`.
std::string hex_encode(ByteView data);

/// Decodes lower- or upper-case hex. Returns nullopt on odd length or
/// non-hex characters.
std::optional<Bytes> hex_decode(std::string_view hex);

}  // namespace cryptodrop
