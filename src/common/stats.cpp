#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cryptodrop {

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

double median_int(std::vector<int> values) {
  std::vector<double> d(values.begin(), values.end());
  return median(std::move(d));
}

double mean(const std::vector<double>& values) {
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  if (p >= 100.0) return values.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(values.size())));
  return values[std::max<std::size_t>(rank, 1) - 1];
}

std::vector<std::pair<double, double>> cumulative_fraction(
    std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::vector<std::pair<double, double>> out;
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Emit one point per distinct value, at the last occurrence.
    if (i + 1 == values.size() || values[i + 1] != values[i]) {
      out.emplace_back(values[i], static_cast<double>(i + 1) / n);
    }
  }
  return out;
}

std::string text_bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto filled = static_cast<std::size_t>(
      std::lround(fraction * static_cast<double>(width)));
  std::string bar(filled, '#');
  bar.append(width - filled, '.');
  return bar;
}

}  // namespace cryptodrop
