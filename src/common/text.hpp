// Deterministic English-like text synthesis.
//
// The corpus generator and the ransom-note writer both need plausible
// low-entropy prose: document bodies, log lines, CSV rows. A tiny word
// model driven by the shared Rng keeps all of it reproducible.
#pragma once

#include <cstddef>
#include <string>

#include "common/rng.hpp"

namespace cryptodrop {

/// Approximately `target_bytes` of sentence-structured filler prose
/// (entropy ~4.2 bits/byte, like real English text).
std::string synth_prose(Rng& rng, std::size_t target_bytes);

/// A single capitalized word (for titles, field names, file stems).
std::string synth_word(Rng& rng);

/// A lower-case identifier-ish token of `min_len`..`max_len` letters.
std::string synth_token(Rng& rng, std::size_t min_len, std::size_t max_len);

/// `rows` x `cols` of comma-separated numeric/text cells with a header row.
std::string synth_csv(Rng& rng, std::size_t rows, std::size_t cols);

}  // namespace cryptodrop
