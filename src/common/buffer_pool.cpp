#include "common/buffer_pool.hpp"

namespace cryptodrop {

namespace detail {

PoolCounters& pool_counters() {
  static PoolCounters counters;
  return counters;
}

}  // namespace detail

BufferPoolStats buffer_pool_stats() {
  auto& c = detail::pool_counters();
  BufferPoolStats out;
  out.acquires = c.acquires.load(std::memory_order_relaxed);
  out.hits = c.hits.load(std::memory_order_relaxed);
  const std::int64_t retained =
      c.bytes_retained.load(std::memory_order_relaxed);
  out.bytes_retained =
      retained > 0 ? static_cast<std::uint64_t>(retained) : 0;
  return out;
}

}  // namespace cryptodrop
