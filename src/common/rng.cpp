#include "common/rng.hpp"

#include <cmath>

namespace cryptodrop {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t seed_from_string(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime
  }
  std::uint64_t state = h;
  return splitmix64(state);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& word : s_) word = splitmix64(state);
}

Rng Rng::fork(std::uint64_t stream_id) {
  std::uint64_t mix = next() ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  return Rng(mix);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return next();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t x;
  do {
    x = next();
  } while (x >= limit);
  return lo + x % range;
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::gaussian() {
  // Irwin-Hall approximation: sum of 12 uniforms minus 6 has mean 0,
  // variance 1. Plenty for workload-size modeling.
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += uniform01();
  return sum - 6.0;
}

double Rng::log_normal(double mu, double sigma) {
  return std::exp(mu + sigma * gaussian());
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t x = next();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(x >> (8 * b));
  }
  if (i < n) {
    std::uint64_t x = next();
    while (i < n) {
      out[i++] = static_cast<std::uint8_t>(x);
      x >>= 8;
    }
  }
  return out;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  double target = uniform01() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace cryptodrop
