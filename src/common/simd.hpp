// Compile-time SIMD feature detection for the hot-path kernels
// (src/common/kernels.hpp). One macro, CRYPTODROP_SIMD_LEVEL, names the
// widest instruction set the *whole translation unit* was compiled for;
// kernels select their implementation with plain #if so there is exactly
// one code path per build and nothing to mispredict at run time.
//
// Levels (higher includes lower):
//   0  portable SWAR only (plain C++, any target)
//   1  SSE2   (baseline on every x86-64 target)
//   2  AVX2
//   3  NEON   (aarch64 / ARMv7 with NEON)
//
// Run-time dispatch is deliberately NOT done here: every kernel is
// bit-identical to its scalar reference by construction (integer domain
// only — see kernels.hpp), so the build-time pick never changes results,
// only speed. The single exception is the SHA-256 SHA-NI path, which
// carries its own `__builtin_cpu_supports` check in crypto/sha256.cpp
// because SHA-NI is not implied by -mavx2.
#pragma once

#if defined(__AVX2__)
#define CRYPTODROP_SIMD_LEVEL 2
#elif defined(__SSE2__) || defined(_M_X64) || defined(__x86_64__)
#define CRYPTODROP_SIMD_LEVEL 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__) || defined(__aarch64__)
#define CRYPTODROP_SIMD_LEVEL 3
#else
#define CRYPTODROP_SIMD_LEVEL 0
#endif

namespace cryptodrop {

/// Human-readable name of the compiled kernel path, surfaced by
/// bench_perf's JSON so perf baselines record what they measured.
constexpr const char* simd_backend_name() {
#if CRYPTODROP_SIMD_LEVEL == 2
  return "avx2";
#elif CRYPTODROP_SIMD_LEVEL == 1
  return "sse2";
#elif CRYPTODROP_SIMD_LEVEL == 3
  return "neon";
#else
  return "swar";
#endif
}

}  // namespace cryptodrop
