#include "common/text.hpp"

#include <array>
#include <cctype>

namespace cryptodrop {

namespace {

// Common English words weighted toward short function words so the byte
// distribution (and therefore Shannon entropy) resembles real prose.
constexpr std::array kWords = {
    "the",      "of",       "and",       "to",        "in",       "a",
    "is",       "that",     "for",       "it",        "as",       "was",
    "with",     "be",       "by",        "on",        "not",      "he",
    "this",     "are",      "or",        "his",       "from",     "at",
    "which",    "but",      "have",      "an",        "had",      "they",
    "you",      "were",     "their",     "one",       "all",      "we",
    "can",      "her",      "has",       "there",     "been",     "if",
    "more",     "when",     "will",      "would",     "who",      "so",
    "no",       "she",      "other",     "its",       "may",      "these",
    "what",     "them",     "than",      "some",      "him",      "time",
    "into",     "only",     "could",     "new",       "two",      "our",
    "work",     "first",    "should",    "after",     "made",     "report",
    "system",   "project",  "data",      "analysis",  "quarterly", "budget",
    "meeting",  "schedule", "committee", "results",   "process",  "review",
    "document", "section",  "figure",    "table",     "summary",  "department",
    "annual",   "proposal", "estimate",  "contract",  "service",  "account",
    "value",    "number",   "record",    "office",    "program",  "general",
};

}  // namespace

std::string synth_word(Rng& rng) {
  std::string w = rng.pick(kWords);
  w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
  return w;
}

std::string synth_token(Rng& rng, std::size_t min_len, std::size_t max_len) {
  static constexpr char kLetters[] = "abcdefghijklmnopqrstuvwxyz";
  const auto len = static_cast<std::size_t>(rng.uniform(min_len, max_len));
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kLetters[rng.uniform(0, 25)]);
  }
  return out;
}

std::string synth_prose(Rng& rng, std::size_t target_bytes) {
  std::string out;
  out.reserve(target_bytes + 64);
  while (out.size() < target_bytes) {
    const auto sentence_words = static_cast<std::size_t>(rng.uniform(5, 18));
    for (std::size_t i = 0; i < sentence_words; ++i) {
      std::string w = rng.pick(kWords);
      if (i == 0) {
        w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
      }
      out += w;
      out.push_back(i + 1 == sentence_words ? '.' : ' ');
    }
    out.push_back(rng.chance(0.2) ? '\n' : ' ');
  }
  out.resize(target_bytes);
  return out;
}

std::string synth_csv(Rng& rng, std::size_t rows, std::size_t cols) {
  std::string out;
  for (std::size_t c = 0; c < cols; ++c) {
    if (c) out.push_back(',');
    out += synth_word(rng);
  }
  out.push_back('\n');
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c) out.push_back(',');
      if (rng.chance(0.7)) {
        out += std::to_string(rng.uniform(0, 99999));
        if (rng.chance(0.4)) {
          out.push_back('.');
          out += std::to_string(rng.uniform(0, 99));
        }
      } else {
        out += rng.pick(kWords);
      }
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace cryptodrop
