// Deterministic pseudo-random generation.
//
// Every experiment in this repo must be exactly reproducible from a seed
// (the paper reverts a VM snapshot between samples; we re-derive streams
// from seeds instead), so all randomness flows through this Rng rather
// than std::random_device / <random> distributions (whose outputs vary
// across standard library implementations).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace cryptodrop {

/// splitmix64 step: used for seeding and as a cheap one-shot mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// Mixes a string into a 64-bit seed (FNV-1a then splitmix finalizer).
std::uint64_t seed_from_string(std::string_view s);

/// xoshiro256** generator. Small, fast, and identical on every platform.
class Rng {
 public:
  /// Seeds all 256 bits of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed);

  /// Convenience: derive a child generator whose stream is independent of
  /// the parent's future output (used to give each simulated sample its
  /// own stream).
  Rng fork(std::uint64_t stream_id);

  /// Next raw 64 bits.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli draw with probability `p` of true.
  bool chance(double p);

  /// Approximately normal draw (sum of uniforms), mean 0, stddev 1.
  double gaussian();

  /// Log-normal draw: exp(mu + sigma * gaussian()).
  double log_normal(double mu, double sigma);

  /// `n` uniformly random bytes.
  Bytes bytes(std::size_t n);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Precondition: weights non-empty, all >= 0, sum > 0.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Uniformly chosen element of a non-empty container.
  template <typename Container>
  const typename Container::value_type& pick(const Container& c) {
    return c[static_cast<std::size_t>(uniform(0, c.size() - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(0, i));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace cryptodrop
