#include "common/kernels.hpp"

#include <bit>
#include <cstring>

#include "common/simd.hpp"

#if CRYPTODROP_SIMD_LEVEL == 2
#include <immintrin.h>
#elif CRYPTODROP_SIMD_LEVEL == 3
#include <arm_neon.h>
#endif

namespace cryptodrop::kernels {

void byte_histogram_reference(const std::uint8_t* data, std::size_t n,
                              std::uint64_t counts[256]) {
  for (std::size_t i = 0; i < n; ++i) ++counts[data[i]];
}

// cryptodrop:hot
void byte_histogram(const std::uint8_t* data, std::size_t n,
                    std::uint64_t counts[256]) {
  // Four sub-tables: a run of equal bytes otherwise chains
  // load-increment-store on the same slot every iteration, and the store
  // forwarding stall dominates. Rotating across tables keeps at most one
  // touch per slot per 4 increments in flight.
  std::uint64_t t0[256] = {};
  std::uint64_t t1[256] = {};
  std::uint64_t t2[256] = {};
  std::uint64_t t3[256] = {};
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    std::uint64_t w0;
    std::uint64_t w1;
    std::memcpy(&w0, data + i, 8);
    std::memcpy(&w1, data + i + 8, 8);
    ++t0[w0 & 0xff];
    ++t1[(w0 >> 8) & 0xff];
    ++t2[(w0 >> 16) & 0xff];
    ++t3[(w0 >> 24) & 0xff];
    ++t0[(w0 >> 32) & 0xff];
    ++t1[(w0 >> 40) & 0xff];
    ++t2[(w0 >> 48) & 0xff];
    ++t3[w0 >> 56];
    ++t0[w1 & 0xff];
    ++t1[(w1 >> 8) & 0xff];
    ++t2[(w1 >> 16) & 0xff];
    ++t3[(w1 >> 24) & 0xff];
    ++t0[(w1 >> 32) & 0xff];
    ++t1[(w1 >> 40) & 0xff];
    ++t2[(w1 >> 48) & 0xff];
    ++t3[w1 >> 56];
  }
  for (; i < n; ++i) ++t0[data[i]];
  for (std::size_t b = 0; b < 256; ++b) {
    counts[b] += t0[b] + t1[b] + t2[b] + t3[b];
  }
}

// cryptodrop:hot
std::uint64_t fnv1a64(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * 0x100000001b3ULL;
  }
  return h;
}

// cryptodrop:hot
void fnv1a64_x4(const std::uint8_t* p0, const std::uint8_t* p1,
                const std::uint8_t* p2, const std::uint8_t* p3,
                std::size_t n, std::uint64_t out[4]) {
  std::uint64_t h0 = 0xcbf29ce484222325ULL;
  std::uint64_t h1 = h0;
  std::uint64_t h2 = h0;
  std::uint64_t h3 = h0;
  for (std::size_t i = 0; i < n; ++i) {
    h0 = (h0 ^ p0[i]) * 0x100000001b3ULL;
    h1 = (h1 ^ p1[i]) * 0x100000001b3ULL;
    h2 = (h2 ^ p2[i]) * 0x100000001b3ULL;
    h3 = (h3 ^ p3[i]) * 0x100000001b3ULL;
  }
  out[0] = h0;
  out[1] = h1;
  out[2] = h2;
  out[3] = h3;
}

int distinct_count_reference(const std::uint8_t* p, std::size_t n) {
  std::uint64_t seen[4] = {};
  int distinct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t b = p[i];
    std::uint64_t& word = seen[b >> 6];
    const std::uint64_t bit = 1ULL << (b & 63);
    if ((word & bit) == 0) {
      word |= bit;
      ++distinct;
    }
  }
  return distinct;
}

// cryptodrop:hot
bool has_min_distinct(const std::uint8_t* p, std::size_t n, int threshold) {
  if (threshold <= 0) return true;
  std::uint64_t seen[4] = {};
  int distinct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t b = p[i];
    std::uint64_t& word = seen[b >> 6];
    const std::uint64_t bit = 1ULL << (b & 63);
    if ((word & bit) == 0) {
      word |= bit;
      if (++distinct >= threshold) return true;
    }
  }
  return false;
}

std::uint32_t and_popcount_reference(const std::uint64_t* a,
                                     const std::uint64_t* b,
                                     std::size_t words) {
  std::uint32_t total = 0;
  for (std::size_t i = 0; i < words; ++i) {
    total += static_cast<std::uint32_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

#if CRYPTODROP_SIMD_LEVEL == 2

// cryptodrop:hot
std::uint32_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) {
  // Nibble-LUT shuffle popcount (Mula): per-byte counts via two PSHUFB
  // table lookups, horizontal sum via SAD against zero. Exact integer
  // counting — identical to hardware popcount by definition.
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
                                       3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2,
                                       2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i v = _mm256_and_si256(va, vb);
    const __m256i lo = _mm256_and_si256(v, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    const __m256i cnt =
        _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint32_t total =
      static_cast<std::uint32_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < words; ++i) {
    total += static_cast<std::uint32_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

#elif CRYPTODROP_SIMD_LEVEL == 3

// cryptodrop:hot
std::uint32_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= words; i += 2) {
    const uint8x16_t va = vld1q_u8(reinterpret_cast<const std::uint8_t*>(a + i));
    const uint8x16_t vb = vld1q_u8(reinterpret_cast<const std::uint8_t*>(b + i));
    const uint8x16_t bits = vcntq_u8(vandq_u8(va, vb));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bits))));
  }
  std::uint32_t total = static_cast<std::uint32_t>(vgetq_lane_u64(acc, 0) +
                                                   vgetq_lane_u64(acc, 1));
  for (; i < words; ++i) {
    total += static_cast<std::uint32_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

#else

// cryptodrop:hot
std::uint32_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words) {
  // 4-way unroll: independent partial sums keep the popcount units busy.
  std::uint32_t c0 = 0;
  std::uint32_t c1 = 0;
  std::uint32_t c2 = 0;
  std::uint32_t c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    c0 += static_cast<std::uint32_t>(std::popcount(a[i] & b[i]));
    c1 += static_cast<std::uint32_t>(std::popcount(a[i + 1] & b[i + 1]));
    c2 += static_cast<std::uint32_t>(std::popcount(a[i + 2] & b[i + 2]));
    c3 += static_cast<std::uint32_t>(std::popcount(a[i + 3] & b[i + 3]));
  }
  std::uint32_t total = c0 + c1 + c2 + c3;
  for (; i < words; ++i) {
    total += static_cast<std::uint32_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

#endif

void serial_lag1_sums_reference(const std::uint8_t* p, std::size_t n,
                                std::uint64_t& sum_b, std::uint64_t& sum_b2,
                                std::uint64_t& sum_prod) {
  std::uint64_t sb = 0;
  std::uint64_t sb2 = 0;
  std::uint64_t sp = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t b = p[i];
    sb += b;
    sb2 += b * b;
    if (i + 1 < n) sp += b * p[i + 1];
  }
  sum_b = sb;
  sum_b2 = sb2;
  sum_prod = sp;
}

// cryptodrop:hot
void serial_lag1_sums(const std::uint8_t* p, std::size_t n,
                      std::uint64_t& sum_b, std::uint64_t& sum_b2,
                      std::uint64_t& sum_prod) {
  std::uint64_t sb0 = 0;
  std::uint64_t sb1 = 0;
  std::uint64_t q0 = 0;
  std::uint64_t q1 = 0;
  std::uint64_t sp0 = 0;
  std::uint64_t sp1 = 0;
  std::size_t i = 0;
  if (n >= 1) {
    // Pairs (i, i+1) exist only up to n-2; unroll over the pair index.
    const std::size_t pairs = n - 1;
    for (; i + 2 <= pairs; i += 2) {
      const std::uint64_t a = p[i];
      const std::uint64_t b = p[i + 1];
      const std::uint64_t c = p[i + 2];
      sb0 += a;
      sb1 += b;
      q0 += a * a;
      q1 += b * b;
      sp0 += a * b;
      sp1 += b * c;
    }
    for (; i < pairs; ++i) {
      const std::uint64_t a = p[i];
      sb0 += a;
      q0 += a * a;
      sp0 += a * p[i + 1];
    }
    const std::uint64_t last = p[n - 1];
    sb0 += last;
    q0 += last * last;
  }
  sum_b = sb0 + sb1;
  sum_b2 = q0 + q1;
  sum_prod = sp0 + sp1;
}

}  // namespace cryptodrop::kernels
