// Minimal result/status types for recoverable errors (std::expected is
// C++23; this is the subset the VFS and harness need).
//
// Errors here are *expected* outcomes (file not found, access denied by a
// filter, ...), not programming bugs — bugs use assertions/exceptions.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace cryptodrop {

/// Coarse error category, modeled on the NTSTATUS-style codes a Windows
/// filesystem filter would see.
enum class Errc {
  ok,
  not_found,        ///< Path or handle does not exist.
  already_exists,   ///< Create target already present.
  access_denied,    ///< Blocked by a filter (e.g. suspended process) or ACL.
  read_only,        ///< Write/delete attempted on a read-only file.
  invalid_argument, ///< Malformed path, bad handle mode, out-of-range offset.
  not_a_directory,  ///< Path component is a file.
  is_a_directory,   ///< File operation applied to a directory.
  not_empty,        ///< Directory removal with children.
  io_error,         ///< Device-level failure (sharing violation, bad sector,
                    ///< or an injected fault — see vfs/fault_filter.hpp).
};

/// Human-readable name for an error code (for logs and test messages).
std::string_view errc_name(Errc e);

/// Outcome of an operation with no payload.
class Status {
 public:
  Status() : code_(Errc::ok) {}
  explicit Status(Errc code, std::string message = {})
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == Errc::ok; }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] Errc code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

 private:
  Errc code_;
  std::string message_;
};

/// Outcome of an operation yielding a `T` on success.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const Status& status() const { return status_; }
  [[nodiscard]] Errc code() const { return status_.code(); }

  /// Precondition: is_ok().
  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return std::move(*value_); }

  [[nodiscard]] T value_or(T fallback) const {
    return value_ ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_{};
};

inline std::string_view errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::access_denied: return "access_denied";
    case Errc::read_only: return "read_only";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::not_a_directory: return "not_a_directory";
    case Errc::is_a_directory: return "is_a_directory";
    case Errc::not_empty: return "not_empty";
    case Errc::io_error: return "io_error";
  }
  return "unknown";
}

inline std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out(errc_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cryptodrop
