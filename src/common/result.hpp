// Minimal result/status types for recoverable errors (std::expected is
// C++23; this is the subset the VFS and harness need).
//
// Errors here are *expected* outcomes (file not found, access denied by a
// filter, ...), not programming bugs — bugs use assertions/exceptions.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace cryptodrop {

/// Coarse error category, modeled on the NTSTATUS-style codes a Windows
/// filesystem filter would see.
enum class Errc {
  ok,
  not_found,        ///< Path or handle does not exist.
  already_exists,   ///< Create target already present.
  access_denied,    ///< Blocked by a filter (e.g. suspended process) or ACL.
  read_only,        ///< Write/delete attempted on a read-only file.
  invalid_argument, ///< Malformed path, bad handle mode, out-of-range offset.
  not_a_directory,  ///< Path component is a file.
  is_a_directory,   ///< File operation applied to a directory.
  not_empty,        ///< Directory removal with children.
  io_error,         ///< Device-level failure (sharing violation, bad sector,
                    ///< or an injected fault — see vfs/fault_filter.hpp).
};

/// Human-readable name for an error code (for logs and test messages).
std::string_view errc_name(Errc e);

/// Outcome of an operation with no payload.
class Status {
 public:
  /// Defaults to success.
  Status() : code_(Errc::ok) {}
  /// An error status with an optional context message.
  explicit Status(Errc code, std::string message = {})
      : code_(code), message_(std::move(message)) {}

  /// The success value, spelled out.
  static Status ok() { return Status(); }

  /// True when the operation succeeded.
  [[nodiscard]] bool is_ok() const { return code_ == Errc::ok; }
  /// Same as is_ok(), for use in conditions.
  explicit operator bool() const { return is_ok(); }

  /// The error category (Errc::ok on success).
  [[nodiscard]] Errc code() const { return code_; }
  /// Free-form context attached at the failure site (may be empty).
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

 private:
  Errc code_;
  std::string message_;
};

/// Outcome of an operation yielding a `T` on success.
template <typename T>
class Result {
 public:
  /// Success, taking ownership of the payload.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Failure; `status` should carry a non-ok code.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  /// True when a payload is present.
  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  /// Same as is_ok(), for use in conditions.
  explicit operator bool() const { return is_ok(); }

  /// The failure status (ok-valued when is_ok()).
  [[nodiscard]] const Status& status() const { return status_; }
  /// Shorthand for status().code().
  [[nodiscard]] Errc code() const { return status_.code(); }

  /// The payload. Precondition: is_ok().
  [[nodiscard]] T& value() & { return *value_; }
  /// The payload, read-only. Precondition: is_ok().
  [[nodiscard]] const T& value() const& { return *value_; }
  /// Moves the payload out. Precondition: is_ok().
  [[nodiscard]] T&& value() && { return std::move(*value_); }

  /// The payload, or `fallback` on failure.
  [[nodiscard]] T value_or(T fallback) const {
    return value_ ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_{};
};

/// See the declaration above; switch kept exhaustive so new codes fail
/// to compile until named.
inline std::string_view errc_name(Errc e) {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::access_denied: return "access_denied";
    case Errc::read_only: return "read_only";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::not_a_directory: return "not_a_directory";
    case Errc::is_a_directory: return "is_a_directory";
    case Errc::not_empty: return "not_empty";
    case Errc::io_error: return "io_error";
  }
  return "unknown";
}

/// "ok" or "<code>: <message>", per the in-class declaration.
inline std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out(errc_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cryptodrop
