// Minimal JSON value builder/serializer (no parsing) for machine-readable
// experiment reports. Deliberately tiny: objects preserve insertion
// order, numbers print with enough precision to round-trip, strings are
// escaped per RFC 8259.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cryptodrop {

class Json {
 public:
  /// Constructors for each JSON kind.
  Json() : kind_(Kind::null) {}
  Json(std::nullptr_t) : kind_(Kind::null) {}  // NOLINT
  Json(bool b) : kind_(Kind::boolean), bool_(b) {}  // NOLINT
  Json(double d) : kind_(Kind::number), number_(d) {}  // NOLINT
  Json(int i) : kind_(Kind::number), number_(i) {}  // NOLINT
  Json(long i) : kind_(Kind::number), number_(static_cast<double>(i)) {}  // NOLINT
  Json(long long i) : kind_(Kind::number), number_(static_cast<double>(i)) {}  // NOLINT
  Json(unsigned long u) : kind_(Kind::number), number_(static_cast<double>(u)) {}  // NOLINT
  Json(unsigned long long u) : kind_(Kind::number), number_(static_cast<double>(u)) {}  // NOLINT
  Json(unsigned u) : kind_(Kind::number), number_(u) {}  // NOLINT
  Json(const char* s) : kind_(Kind::string), string_(s) {}  // NOLINT
  Json(std::string s) : kind_(Kind::string), string_(std::move(s)) {}  // NOLINT
  Json(std::string_view s) : kind_(Kind::string), string_(s) {}  // NOLINT

  static Json object() {
    Json j;
    j.kind_ = Kind::object;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::array;
    return j;
  }

  /// Object field (insertion-ordered; duplicate keys keep both, last one
  /// wins for consumers that de-duplicate). Returns *this for chaining.
  Json& set(std::string key, Json value) {
    fields_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Array element. Returns *this for chaining.
  Json& push(Json value) {
    elements_.push_back(std::move(value));
    return *this;
  }

  [[nodiscard]] bool is_object() const { return kind_ == Kind::object; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::array; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::number; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::string; }
  [[nodiscard]] double as_number() const { return number_; }

  /// Object field lookup (last duplicate wins, matching de-duplicating
  /// consumers); nullptr when absent or this is not an object. Lets
  /// report writers validate their own schema before shipping a file.
  [[nodiscard]] const Json* find(std::string_view key) const {
    if (kind_ != Kind::object) return nullptr;
    const Json* found = nullptr;
    for (const auto& [k, v] : fields_) {
      if (k == key) found = &v;
    }
    return found;
  }
  [[nodiscard]] std::size_t size() const {
    return kind_ == Kind::array ? elements_.size() : fields_.size();
  }

  /// Compact serialization.
  [[nodiscard]] std::string to_string() const {
    std::string out;
    write(out, /*indent=*/-1, /*depth=*/0);
    return out;
  }

  /// Pretty serialization with 2-space indentation.
  [[nodiscard]] std::string to_pretty_string() const {
    std::string out;
    write(out, /*indent=*/2, /*depth=*/0);
    out.push_back('\n');
    return out;
  }

 private:
  enum class Kind : std::uint8_t { null, boolean, number, string, object, array };

  static void escape_into(std::string& out, std::string_view s) {
    out.push_back('"');
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    out.push_back('"');
  }

  void newline(std::string& out, int indent, int depth) const {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * depth), ' ');
  }

  void write(std::string& out, int indent, int depth) const {
    switch (kind_) {
      case Kind::null:
        out += "null";
        break;
      case Kind::boolean:
        out += bool_ ? "true" : "false";
        break;
      case Kind::number: {
        char buf[32];
        // Integers print without a fraction; others with %.10g.
        if (number_ == static_cast<double>(static_cast<std::int64_t>(number_))) {
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(number_));
        } else {
          std::snprintf(buf, sizeof(buf), "%.10g", number_);
        }
        out += buf;
        break;
      }
      case Kind::string:
        escape_into(out, string_);
        break;
      case Kind::object: {
        out.push_back('{');
        bool first = true;
        for (const auto& [key, value] : fields_) {
          if (!first) out.push_back(',');
          first = false;
          newline(out, indent, depth + 1);
          escape_into(out, key);
          out += indent < 0 ? ":" : ": ";
          value.write(out, indent, depth + 1);
        }
        if (!fields_.empty()) newline(out, indent, depth);
        out.push_back('}');
        break;
      }
      case Kind::array: {
        out.push_back('[');
        bool first = true;
        for (const Json& value : elements_) {
          if (!first) out.push_back(',');
          first = false;
          newline(out, indent, depth + 1);
          value.write(out, indent, depth + 1);
        }
        if (!elements_.empty()) newline(out, indent, depth);
        out.push_back(']');
        break;
      }
    }
  }

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> fields_;
  std::vector<Json> elements_;
};

}  // namespace cryptodrop
