// Minimal JSON value builder/serializer (no parsing) for machine-readable
// experiment reports. Deliberately tiny: objects preserve insertion
// order, numbers print with enough precision to round-trip, strings are
// escaped per RFC 8259.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cryptodrop {

/// A single JSON value: null, boolean, number, string, object or array.
class Json {
 public:
  /// Default-constructs null.
  Json() : kind_(Kind::null) {}
  /// Null from the nullptr literal.
  Json(std::nullptr_t) : kind_(Kind::null) {}  // NOLINT
  /// Boolean.
  Json(bool b) : kind_(Kind::boolean), bool_(b) {}  // NOLINT
  /// Number.
  Json(double d) : kind_(Kind::number), number_(d) {}  // NOLINT
  /// Number from int (always exact in a double).
  Json(int i) : kind_(Kind::number), number_(i) {}  // NOLINT
  /// Number from long; values beyond 2^53 round.
  Json(long i) : kind_(Kind::number), number_(static_cast<double>(i)) {}  // NOLINT
  /// Number from long long; values beyond 2^53 round.
  Json(long long i) : kind_(Kind::number), number_(static_cast<double>(i)) {}  // NOLINT
  /// Number from unsigned long; values beyond 2^53 round.
  Json(unsigned long u) : kind_(Kind::number), number_(static_cast<double>(u)) {}  // NOLINT
  /// Number from unsigned long long; values beyond 2^53 round.
  Json(unsigned long long u) : kind_(Kind::number), number_(static_cast<double>(u)) {}  // NOLINT
  /// Number from unsigned (always exact in a double).
  Json(unsigned u) : kind_(Kind::number), number_(u) {}  // NOLINT
  /// String from a C literal.
  Json(const char* s) : kind_(Kind::string), string_(s) {}  // NOLINT
  /// String, taking ownership.
  Json(std::string s) : kind_(Kind::string), string_(std::move(s)) {}  // NOLINT
  /// String copied from a view.
  Json(std::string_view s) : kind_(Kind::string), string_(s) {}  // NOLINT

  /// An empty object, ready for set().
  static Json object() {
    Json j;
    j.kind_ = Kind::object;
    return j;
  }
  /// An empty array, ready for push().
  static Json array() {
    Json j;
    j.kind_ = Kind::array;
    return j;
  }

  /// Object field (insertion-ordered; duplicate keys keep both, last one
  /// wins for consumers that de-duplicate). Returns *this for chaining.
  Json& set(std::string key, Json value) {
    fields_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Array element. Returns *this for chaining.
  Json& push(Json value) {
    elements_.push_back(std::move(value));
    return *this;
  }

  /// True when this value is an object.
  [[nodiscard]] bool is_object() const { return kind_ == Kind::object; }
  /// True when this value is an array.
  [[nodiscard]] bool is_array() const { return kind_ == Kind::array; }
  /// True when this value is a number.
  [[nodiscard]] bool is_number() const { return kind_ == Kind::number; }
  /// True when this value is a string.
  [[nodiscard]] bool is_string() const { return kind_ == Kind::string; }
  /// The numeric value (0.0 when this is not a number).
  [[nodiscard]] double as_number() const { return number_; }

  /// Object field lookup (last duplicate wins, matching de-duplicating
  /// consumers); nullptr when absent or this is not an object. Lets
  /// report writers validate their own schema before shipping a file.
  [[nodiscard]] const Json* find(std::string_view key) const {
    if (kind_ != Kind::object) return nullptr;
    const Json* found = nullptr;
    for (const auto& [k, v] : fields_) {
      if (k == key) found = &v;
    }
    return found;
  }
  /// Element count for arrays, field count for objects.
  [[nodiscard]] std::size_t size() const {
    return kind_ == Kind::array ? elements_.size() : fields_.size();
  }

  /// Compact serialization.
  [[nodiscard]] std::string to_string() const {
    std::string out;
    write(out, /*indent=*/-1, /*depth=*/0);
    return out;
  }

  /// Pretty serialization with 2-space indentation.
  [[nodiscard]] std::string to_pretty_string() const {
    std::string out;
    write(out, /*indent=*/2, /*depth=*/0);
    out.push_back('\n');
    return out;
  }

 private:
  enum class Kind : std::uint8_t { null, boolean, number, string, object, array };

  static void escape_into(std::string& out, std::string_view s) {
    out.push_back('"');
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    out.push_back('"');
  }

  void newline(std::string& out, int indent, int depth) const {
    if (indent < 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * depth), ' ');
  }

  void write(std::string& out, int indent, int depth) const {
    switch (kind_) {
      case Kind::null:
        out += "null";
        break;
      case Kind::boolean:
        out += bool_ ? "true" : "false";
        break;
      case Kind::number: {
        char buf[32];
        // Integers print without a fraction; others with %.10g.
        if (number_ == static_cast<double>(static_cast<std::int64_t>(number_))) {
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(number_));
        } else {
          std::snprintf(buf, sizeof(buf), "%.10g", number_);
        }
        out += buf;
        break;
      }
      case Kind::string:
        escape_into(out, string_);
        break;
      case Kind::object: {
        out.push_back('{');
        bool first = true;
        for (const auto& [key, value] : fields_) {
          if (!first) out.push_back(',');
          first = false;
          newline(out, indent, depth + 1);
          escape_into(out, key);
          out += indent < 0 ? ":" : ": ";
          value.write(out, indent, depth + 1);
        }
        if (!fields_.empty()) newline(out, indent, depth);
        out.push_back('}');
        break;
      }
      case Kind::array: {
        out.push_back('[');
        bool first = true;
        for (const Json& value : elements_) {
          if (!first) out.push_back(',');
          first = false;
          newline(out, indent, depth + 1);
          value.write(out, indent, depth + 1);
        }
        if (!elements_.empty()) newline(out, indent, depth);
        out.push_back(']');
        break;
      }
    }
  }

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> fields_;
  std::vector<Json> elements_;
};

}  // namespace cryptodrop
