// Byte-buffer aliases and small helpers shared by every module.
//
// The whole system moves file content around as contiguous byte buffers;
// `Bytes` is the owning form and `ByteView` the non-owning read-only form
// (CppCoreGuidelines I.13: pass arrays as spans).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cryptodrop {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Copies a string's characters into a byte buffer (no terminator).
inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Reinterprets a byte view as text. The bytes are copied.
inline std::string to_string(ByteView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// Appends `src` to `dst`.
inline void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Appends a string's characters to `dst`.
inline void append(Bytes& dst, std::string_view src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// True when `data` begins with the byte sequence `prefix`.
inline bool starts_with(ByteView data, ByteView prefix) {
  if (data.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (data[i] != prefix[i]) return false;
  }
  return true;
}

/// True when `data` begins with the characters of `prefix`.
inline bool starts_with(ByteView data, std::string_view prefix) {
  if (data.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (data[i] != static_cast<std::uint8_t>(prefix[i])) return false;
  }
  return true;
}

}  // namespace cryptodrop
