// Vectorized hot-path kernels shared by the indicator pipeline: byte
// histogramming (shannon / chi-square / DAA), FNV-1a feature hashing in
// ILP lanes (simhash), distinct-byte screening (simhash feature
// selection), lag-1 byte products (serial-correlation backend), and
// AND+popcount over bloom-filter words (simhash compare).
//
// Contract: every kernel is **bit-identical** to its `_reference`
// counterpart on all inputs. That is cheap to guarantee because every
// kernel stays in the integer domain — reordering integer additions is
// exact, unlike floating point. The golden-parity suite
// (tests/kernel_parity_test.cpp) asserts it across randomized buffers of
// every length mod 64, so a future SIMD variant cannot silently drift.
//
// The portable implementations use SWAR (64-bit loads, sub-table
// splitting, 4-way unrolled accumulator chains) and are the baseline on
// every target; compile-time-detected SSE2/AVX2/NEON variants (see
// common/simd.hpp) replace individual kernels where wide registers
// actually help. Byte histogramming deliberately stays SWAR at every
// level: the scatter-increment has no vector form, and splitting the
// counts across four sub-tables to break store-forwarding stalls is the
// known-best shape (cf. "Comparison of Entropy Calculation Methods",
// arXiv 2210.13376, on histogram cost dominating entropy methods).
#pragma once

#include <cstddef>
#include <cstdint>

namespace cryptodrop::kernels {

/// Scalar reference: one increment per byte. Adds into `counts` (callers
/// zero it or accumulate across chunks).
void byte_histogram_reference(const std::uint8_t* data, std::size_t n,
                              std::uint64_t counts[256]);

/// SWAR histogram: 8 bytes per 64-bit load, increments spread over four
/// sub-tables so consecutive equal bytes do not serialize on one cache
/// line, merged once at the end. Adds into `counts`.
void byte_histogram(const std::uint8_t* data, std::size_t n,
                    std::uint64_t counts[256]);

/// FNV-1a 64-bit over one buffer (reference form for the lane kernel).
std::uint64_t fnv1a64(const std::uint8_t* p, std::size_t n);

/// Four independent FNV-1a chains advanced in lockstep. The hash itself
/// is inherently serial (multiply feeds the next xor), so the win is
/// instruction-level parallelism: four chains hide the multiply latency
/// that a single chain exposes. Each out[i] equals fnv1a64(p_i, n).
void fnv1a64_x4(const std::uint8_t* p0, const std::uint8_t* p1,
                const std::uint8_t* p2, const std::uint8_t* p3,
                std::size_t n, std::uint64_t out[4]);

/// Scalar reference: exact number of distinct byte values in `p[0..n)`.
int distinct_count_reference(const std::uint8_t* p, std::size_t n);

/// True iff `p[0..n)` contains at least `threshold` distinct byte
/// values. Early-exits on the first byte that reaches the threshold, so
/// the common selectable window answers in a handful of iterations.
bool has_min_distinct(const std::uint8_t* p, std::size_t n, int threshold);

/// Scalar reference: popcount of `a[i] & b[i]` summed over `words`.
std::uint32_t and_popcount_reference(const std::uint64_t* a,
                                     const std::uint64_t* b,
                                     std::size_t words);

/// AND+popcount over word arrays (bloom-filter overlap). AVX2 builds use
/// the nibble-LUT shuffle popcount over 256-bit lanes; other builds use
/// 4-way unrolled hardware popcount. Bit-identical everywhere: popcount
/// is exact.
std::uint32_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t words);

/// Scalar reference for the serial-correlation sums: per-byte loop
/// accumulating Σb, Σb², and the non-circular lag-1 product
/// Σ p[i]·p[i+1] for i in [0, n-1). The circular wrap term is the
/// caller's business (it depends on stream boundaries, not this buffer).
void serial_lag1_sums_reference(const std::uint8_t* p, std::size_t n,
                                std::uint64_t& sum_b, std::uint64_t& sum_b2,
                                std::uint64_t& sum_prod);

/// Unrolled integer lag-1 sums: four independent partial accumulators
/// per statistic. Integer addition reorders exactly, so this is
/// bit-identical to the reference (and to the historical double-based
/// accumulation, which never rounds below 2^53 — a one-shot op buffer
/// would need to exceed ~138 GiB to change that).
void serial_lag1_sums(const std::uint8_t* p, std::size_t n,
                      std::uint64_t& sum_b, std::uint64_t& sum_b2,
                      std::uint64_t& sum_prod);

}  // namespace cryptodrop::kernels
