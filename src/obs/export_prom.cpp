#include "obs/export_prom.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <vector>

#include "obs/names.hpp"

namespace cryptodrop::obs {
namespace {

/// Formats a double the way the exposition format expects: integral
/// values print without a fraction ("42"), everything else with enough
/// digits to round-trip a bucket bound or sum ("2.5", "0.0000001").
std::string format_number(double v) {
  char buffer[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v < 1e15 && v > -1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.10g", v);
  }
  return buffer;
}

/// The dotted label suffix of `name` ("" when the name has no dot).
std::string_view label_of(std::string_view name) {
  const std::size_t dot = name.find('.');
  return dot == std::string_view::npos ? std::string_view{}
                                       : name.substr(dot + 1);
}

/// Label key for `family`: the placeholder token when
/// known_metric_names() lists `family.<placeholder>`, else "label"
/// (covers fixed dotted suffixes like stage_latency_us.entropy).
std::string label_key_for(const std::string& family) {
  const std::string prefix = family + ".<";
  for (std::string_view known : known_metric_names()) {
    if (known.size() > prefix.size() && known.back() == '>' &&
        known.substr(0, prefix.size()) == prefix) {
      return std::string(known.substr(prefix.size(),
                                      known.size() - prefix.size() - 1));
    }
  }
  return "label";
}

/// One sample inside a family: its label value ("" = unlabeled) plus a
/// pointer to whichever snapshot row it came from.
template <typename Snapshot>
struct Sample {
  std::string label;
  const Snapshot* row = nullptr;
};

/// Groups snapshot rows into families keyed by sanitized family name
/// (std::map gives the lexicographic family order for free).
template <typename Snapshot>
std::map<std::string, std::vector<Sample<Snapshot>>> group_families(
    const std::vector<Snapshot>& rows) {
  std::map<std::string, std::vector<Sample<Snapshot>>> families;
  for (const Snapshot& row : rows) {
    families[prom_family_name(row.name)].push_back(
        Sample<Snapshot>{std::string(label_of(row.name)), &row});
  }
  for (auto& [family, samples] : families) {
    std::sort(samples.begin(), samples.end(),
              [](const auto& a, const auto& b) { return a.label < b.label; });
  }
  return families;
}

/// `{key="value"}` for a labeled sample, "" for an unlabeled one.
std::string label_selector(const std::string& key, const std::string& value) {
  if (value.empty()) return "";
  return "{" + key + "=\"" + prom_escape_label(value) + "\"}";
}

/// `{key="value",le="bound"}` / `{le="bound"}` for a histogram bucket.
std::string bucket_selector(const std::string& key, const std::string& value,
                            const std::string& bound) {
  std::string out = "{";
  if (!value.empty()) out += key + "=\"" + prom_escape_label(value) + "\",";
  out += "le=\"" + bound + "\"}";
  return out;
}

void append_header(std::string& out, const std::string& family,
                   const std::string& help, const char* type) {
  out += "# HELP " + family + " " + prom_escape_help(help) + "\n";
  out += "# TYPE " + family + " " + std::string(type) + "\n";
}

}  // namespace

std::string prom_escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string prom_escape_label(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string prom_family_name(std::string_view metric_name) {
  const std::size_t dot = metric_name.find('.');
  std::string_view family =
      dot == std::string_view::npos ? metric_name : metric_name.substr(0, dot);
  std::string out;
  out.reserve(family.size());
  for (char c : family) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;

  for (const auto& [family, samples] : group_families(snapshot.counters)) {
    const std::string key = label_key_for(family);
    append_header(out, family, samples.front().row->help, "counter");
    for (const auto& sample : samples) {
      char value[32];
      std::snprintf(value, sizeof(value), "%" PRIu64, sample.row->value);
      out += family + label_selector(key, sample.label) + " " + value + "\n";
    }
  }

  for (const auto& [family, samples] : group_families(snapshot.gauges)) {
    const std::string key = label_key_for(family);
    append_header(out, family, samples.front().row->help, "gauge");
    for (const auto& sample : samples) {
      out += family + label_selector(key, sample.label) + " " +
             format_number(sample.row->value) + "\n";
    }
  }

  for (const auto& [family, samples] : group_families(snapshot.histograms)) {
    const std::string key = label_key_for(family);
    append_header(out, family, samples.front().row->help, "histogram");
    for (const auto& sample : samples) {
      const HistogramSnapshot& h = *sample.row;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.bounds.size(); ++i) {
        if (i < h.counts.size()) cumulative += h.counts[i];
        char value[32];
        std::snprintf(value, sizeof(value), "%" PRIu64, cumulative);
        out += family + "_bucket" +
               bucket_selector(key, sample.label, format_number(h.bounds[i])) +
               " " + value + "\n";
      }
      char total[32];
      std::snprintf(total, sizeof(total), "%" PRIu64, h.count);
      out += family + "_bucket" + bucket_selector(key, sample.label, "+Inf") +
             " " + total + "\n";
      out += family + "_sum" + label_selector(key, sample.label) + " " +
             format_number(h.sum) + "\n";
      out += family + "_count" + label_selector(key, sample.label) + " " +
             total + "\n";
    }
  }

  return out;
}

}  // namespace cryptodrop::obs
