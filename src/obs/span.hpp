// Causal span tracing: per-operation spans with deterministic identity.
//
// NOT the same thing as src/vfs/trace.hpp — that header records and
// replays the *operations themselves* (an input log). This subsystem
// records *where wall-clock time goes inside* each operation's causal
// chain (an instrumentation log): VFS dispatch opens a root span, every
// filter in the stack gets a child span, and the engine's indicator
// stages nest beneath those. Docs call this layer "span tracing"
// (docs/OBSERVABILITY.md) and the vfs layer "op record/replay".
//
// Design (DESIGN.md §12), following the MetricsRegistry discipline:
//  * Writes are sharded 16 ways into bounded per-shard rings; a thread
//    picks its shard once (dense thread index, cached thread-local) and
//    a span close is one short mutex hold on that shard — never on the
//    registry, never across threads on different shards.
//  * Reads merge on snapshot: snapshot() collects every shard's ring and
//    sorts by (thread, start order). Harness code snapshots after a
//    trial quiesces, so every span is closed by then.
//  * Bounded spill policy: each shard ring holds ring_capacity/16
//    records; when full, the oldest record is evicted (and counted in
//    `dropped`). Children always close before their parents, so within
//    a ring a child's record is strictly older than its parent's —
//    eviction drops leaves first and never orphans a kept child.
//  * Deterministic identity: span ids derive from (pid, op index,
//    within-op serial), where the op index is the virtual-clock
//    timestamp divided by vfs::FileSystem::kOpCostMicros — never from
//    wall clock. Span *counts, parentage, names and args* are therefore
//    bit-identical at any --jobs value; wall-clock `ts`/`dur` fields
//    are explicitly outside the determinism contract (like histogram
//    bucket spreads).
//  * Sampling happens at record time, so a sampled-out operation costs
//    two integer ops and zero clock reads: roots keep 1-in-N ops
//    (sample_every), except pids passed to force_pid() — the engine
//    forces a pid on suspension, so a suspended process's denial tail
//    is always kept. Children inherit their root's decision.
//  * Compile-time kill switch: -DCRYPTODROP_NO_METRICS makes every
//    ScopedSpan a true no-op (no clock read, nothing recorded);
//    snapshots and exports keep working and are empty-but-valid.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/ranked_mutex.hpp"
#include "obs/metrics.hpp"

namespace cryptodrop::obs {

/// Dense per-thread index (assigned on first use, stable for the
/// thread's lifetime). Distinguishes threads in span records; two
/// threads never share an index, unlike metric_shard_index().
std::size_t trace_thread_index();

/// Span-name schema of record (docs/OBSERVABILITY.md "Span tracing";
/// docs_check cross-checks the table there against known_span_names()
/// in both directions). Names are static: SpanRecord stores the view.
namespace span_name {
/// Root: one whole filtered operation. Args: `op`, `path`, `bytes`.
inline constexpr std::string_view kDispatch = "vfs.dispatch";
/// One filter's pre callback. Args: `filter`.
inline constexpr std::string_view kFilterPre = "vfs.filter.pre";
/// One filter's post callback. Args: `filter`.
inline constexpr std::string_view kFilterPost = "vfs.filter.post";
/// Engine file-type identification of one buffer. Args: `type`.
inline constexpr std::string_view kMagicSniff = "engine.magic_sniff";
/// Engine entropy fold of one buffer. Args: `bytes`.
inline constexpr std::string_view kEntropy = "engine.entropy";
/// Engine similarity-digest computation (or cache fetch). Args: `cached`.
inline constexpr std::string_view kSdhashDigest = "engine.sdhash_digest";
/// Engine digest-vs-baseline comparison. Args: `score`.
inline constexpr std::string_view kSdhashCompare = "engine.sdhash_compare";
/// One score event. Args: `indicator`, `points`, `score_after`.
inline constexpr std::string_view kScoreUpdate = "engine.score_update";
/// Detection verdict (suspension). Args: `score`, `threshold`.
inline constexpr std::string_view kVerdict = "engine.verdict";
/// One measured close: content re-read, re-digest, indicator
/// comparison. Args: `bytes`.
inline constexpr std::string_view kCloseMeasure = "engine.close_measure";
/// Daemon front end: one submit batch accepted into the ingestion
/// queues. Args: `tenant`, `ops`.
inline constexpr std::string_view kDaemonIngest = "daemon.ingest";
/// Daemon worker: one queued op executed through a tenant's session.
/// Args: `tenant`, `op`.
inline constexpr std::string_view kDaemonExecute = "daemon.execute";
}  // namespace span_name

/// Every span name the instrumentation can emit, in schema order.
std::vector<std::string_view> known_span_names();

/// One span argument: numeric or string payload.
struct SpanArg {
  std::string key;
  bool numeric = false;
  double num = 0.0;
  std::string str;
};

/// One closed span. `span_id`/`parent_id`/`pid`/`name`/`args` are
/// deterministic; `tid`/`seq`/`start_ns`/`dur_ns` are execution facts
/// (thread identity and wall clock) outside the determinism contract.
struct SpanRecord {
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root span.
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;       ///< trace_thread_index() of the recorder.
  std::string_view name;       ///< One of span_name::* (static storage).
  std::uint64_t start_ns = 0;  ///< Wall clock, relative to tracer epoch.
  std::uint64_t dur_ns = 0;
  std::uint64_t seq = 0;  ///< Per-thread span start order.
  std::vector<SpanArg> args;
};

/// Point-in-time dump of a tracer, sorted by (tid, seq) so each
/// thread's spans appear in start order (parents before children).
struct SpanSnapshot {
  std::vector<SpanRecord> spans;
  std::uint64_t recorded = 0;  ///< Spans pushed over the tracer's life.
  std::uint64_t dropped = 0;   ///< Spans evicted by the ring bound.
};

/// Tracing knobs. Plain value type.
struct TraceOptions {
  /// Master switch: harness/session layers construct a tracer only when
  /// set, so the disabled path costs one null check per operation.
  bool enabled = false;
  /// Keep 1 root span in N (1 = keep all). Pids passed to force_pid()
  /// (suspended processes) always keep everything.
  std::uint64_t sample_every = 1;
  /// Total spans retained across all shards before the oldest spill.
  std::size_t ring_capacity = 1 << 16;
};

/// Sharded, bounded span sink (see the file comment). One per traced
/// FileSystem — MonitorSession owns it. Thread-safe.
class SpanTracer {
 public:
  /// Sizes the shard rings from `options.ring_capacity` and starts the
  /// wall-clock epoch.
  explicit SpanTracer(TraceOptions options = {});
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;

  /// The knobs this tracer was constructed with.
  [[nodiscard]] const TraceOptions& options() const { return options_; }

  /// Root-span sampling decision for one operation. Deterministic in
  /// (pid, op_index) and the forced-pid set.
  [[nodiscard]] bool should_sample(std::uint32_t pid,
                                   std::uint64_t op_index) const;

  /// Marks a pid keep-all from now on (the engine calls this when it
  /// suspends a process, so the denial tail is fully traced).
  void force_pid(std::uint32_t pid);

  /// Pushes one closed span into the caller's shard ring, evicting the
  /// oldest record when the ring is full.
  void record(SpanRecord&& record);

  /// Merged, (tid, seq)-sorted view of every retained span. Empty but
  /// valid under -DCRYPTODROP_NO_METRICS.
  [[nodiscard]] SpanSnapshot snapshot() const;

  /// Nanoseconds since the tracer's construction (steady clock).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Deterministic span id: 14 bits of pid, 38 bits of op index, 12
  /// bits of within-op serial (0 = the root span itself).
  [[nodiscard]] static std::uint64_t make_span_id(std::uint32_t pid,
                                                  std::uint64_t op_index,
                                                  std::uint32_t serial) {
    return ((static_cast<std::uint64_t>(pid) & 0x3FFF) << 50) |
           ((op_index & 0x3FFFFFFFFFULL) << 12) |
           (static_cast<std::uint64_t>(serial) & 0xFFF);
  }

 private:
  struct alignas(64) Shard {
    /// Rank 60: a span close under scoreboard/file locks lands here.
    mutable common::RankedMutex<common::lockrank::kSpanShard> mu;
    std::vector<SpanRecord> ring;  ///< Circular once full.
    std::size_t head = 0;          ///< Next write position once full.
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
  };

  TraceOptions options_;
  std::size_t per_shard_capacity_ = 0;
  std::uint64_t epoch_ns_ = 0;
  /// Rank 62: the verdict path takes it under a scoreboard shard.
  mutable common::RankedMutex<common::lockrank::kSpanForce> force_mu_;
  std::set<std::uint32_t> forced_;
  std::atomic<bool> any_forced_{false};
  std::array<Shard, kMetricShards> shards_{};
};

/// RAII span. Two forms:
///  * root — `ScopedSpan(tracer, name, pid, op_index)` — opened by the
///    VFS dispatch loop; makes the sampling decision;
///  * child — `ScopedSpan(name)` — nests under the calling thread's
///    current span (thread-local), inert when there is none (so engine
///    stage code is unconditional and costs one thread-local read when
///    tracing is off or the op was sampled out).
/// Spans must be stack-scoped on one thread (like std::lock_guard).
class ScopedSpan {
 public:
  /// Root span for one operation. Inert when `tracer` is null or the
  /// sampler drops the op.
  ScopedSpan(SpanTracer* tracer, std::string_view name, std::uint32_t pid,
             std::uint64_t op_index) {
    if constexpr (kMetricsEnabled) {
      if (tracer != nullptr && tracer->should_sample(pid, op_index)) {
        open(tracer, name, pid, SpanTracer::make_span_id(pid, op_index, 0),
             /*parent=*/nullptr);
      }
    } else {
      (void)tracer, (void)name, (void)pid, (void)op_index;
    }
  }

  /// Child of the calling thread's current span (inert when none).
  explicit ScopedSpan(std::string_view name) {
    if constexpr (kMetricsEnabled) {
      ScopedSpan* parent = current();
      if (parent != nullptr) {
        open(parent->tracer_, name, parent->pid_,
             parent->root_->next_child_id(), parent);
      }
    } else {
      (void)name;
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if constexpr (kMetricsEnabled) {
      if (tracer_ != nullptr) close();
    }
  }

  /// True when this span is live (sampled in); args are dropped
  /// otherwise, so callers may skip computing expensive arg values.
  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

  /// Attaches a numeric argument (deterministic values only — never a
  /// wall-clock duration).
  void arg(std::string_view key, double value) {
    if constexpr (kMetricsEnabled) {
      if (tracer_ != nullptr) {
        args_.push_back(SpanArg{std::string(key), true, value, {}});
      }
    } else {
      (void)key, (void)value;
    }
  }

  /// Attaches a string argument.
  void arg(std::string_view key, std::string_view value) {
    if constexpr (kMetricsEnabled) {
      if (tracer_ != nullptr) {
        args_.push_back(SpanArg{std::string(key), false, 0.0,
                                std::string(value)});
      }
    } else {
      (void)key, (void)value;
    }
  }

 private:
  /// The calling thread's innermost live span (nullptr when none).
  static ScopedSpan*& current();

  void open(SpanTracer* tracer, std::string_view name, std::uint32_t pid,
            std::uint64_t span_id, ScopedSpan* parent);
  void close();

  /// Next child serial under this *root* (span ids are dense per op).
  [[nodiscard]] std::uint64_t next_child_id() {
    return SpanTracer::make_span_id(
        pid_, (span_id_ >> 12) & 0x3FFFFFFFFFULL, ++next_child_serial_);
  }

  SpanTracer* tracer_ = nullptr;  ///< Null = inert span.
  ScopedSpan* parent_ = nullptr;  ///< Restored as current() on close.
  ScopedSpan* root_ = nullptr;    ///< Holds the op's child-serial counter.
  std::string_view name_;
  std::uint64_t span_id_ = 0;
  std::uint32_t pid_ = 0;
  std::uint32_t next_child_serial_ = 0;
  std::uint64_t start_ns_ = 0;
  std::uint64_t seq_ = 0;
  std::vector<SpanArg> args_;
};

}  // namespace cryptodrop::obs
