#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace cryptodrop::obs {

std::size_t metric_shard_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

// --- snapshots ---------------------------------------------------------

namespace {

template <typename T>
const T* find_by_name(const std::vector<T>& entries, std::string_view name) {
  for (const T& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

/// CAS-loop add for atomic<double> (fetch_add on floating-point atomics
/// is C++20 but not universally lowered well; this is equivalent).
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

const CounterSnapshot* MetricsSnapshot::counter(std::string_view name) const {
  return find_by_name(counters, name);
}

const GaugeSnapshot* MetricsSnapshot::gauge(std::string_view name) const {
  return find_by_name(gauges, name);
}

const HistogramSnapshot* MetricsSnapshot::histogram(std::string_view name) const {
  return find_by_name(histograms, name);
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const CounterSnapshot& c : other.counters) {
    if (const CounterSnapshot* mine = counter(c.name)) {
      const_cast<CounterSnapshot*>(mine)->value += c.value;
    } else {
      counters.push_back(c);
    }
  }
  for (const GaugeSnapshot& g : other.gauges) {
    if (const GaugeSnapshot* mine = gauge(g.name)) {
      auto* mutable_mine = const_cast<GaugeSnapshot*>(mine);
      mutable_mine->value = std::max(mutable_mine->value, g.value);
    } else {
      gauges.push_back(g);
    }
  }
  for (const HistogramSnapshot& h : other.histograms) {
    const HistogramSnapshot* mine = histogram(h.name);
    if (mine == nullptr) {
      histograms.push_back(h);
      continue;
    }
    auto* mutable_mine = const_cast<HistogramSnapshot*>(mine);
    if (mutable_mine->bounds == h.bounds &&
        mutable_mine->counts.size() == h.counts.size()) {
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        mutable_mine->counts[i] += h.counts[i];
      }
    }
    mutable_mine->count += h.count;
    mutable_mine->sum += h.sum;
  }
}

Json to_json(const MetricsSnapshot& snapshot) {
  Json counters = Json::object();
  for (const CounterSnapshot& c : snapshot.counters) {
    Json entry = Json::object();
    entry.set("value", c.value).set("unit", c.unit).set("help", c.help);
    counters.set(c.name, std::move(entry));
  }

  Json gauges = Json::object();
  for (const GaugeSnapshot& g : snapshot.gauges) {
    Json entry = Json::object();
    entry.set("value", g.value).set("unit", g.unit).set("help", g.help);
    gauges.set(g.name, std::move(entry));
  }

  Json histograms = Json::object();
  for (const HistogramSnapshot& h : snapshot.histograms) {
    Json bounds = Json::array();
    for (double b : h.bounds) bounds.push(b);
    Json counts = Json::array();
    for (std::uint64_t c : h.counts) counts.push(c);
    Json entry = Json::object();
    entry.set("count", h.count)
        .set("sum", h.sum)
        .set("mean", h.mean())
        .set("bounds", std::move(bounds))
        .set("counts", std::move(counts))
        .set("unit", h.unit)
        .set("help", h.help);
    histograms.set(h.name, std::move(entry));
  }

  Json j = Json::object();
  j.set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(histograms));
  return j;
}

// --- histogram ---------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  // One bucket per bound plus overflow, padded to a cache line so shards
  // never share one.
  stride_ = ((bounds_.size() + 1 + 7) / 8) * 8;
  bucket_cells_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(stride_ * kMetricShards);
  for (std::size_t i = 0; i < stride_ * kMetricShards; ++i) {
    bucket_cells_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::record(double v) {
#ifndef CRYPTODROP_NO_METRICS
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  const std::size_t shard = metric_shard_index();
  bucket_cells_[shard * stride_ + bucket].fetch_add(1, std::memory_order_relaxed);
  totals_[shard].count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(totals_[shard].sum, v);
#else
  (void)v;
#endif
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (std::size_t shard = 0; shard < kMetricShards; ++shard) {
    for (std::size_t b = 0; b < snap.counts.size(); ++b) {
      snap.counts[b] +=
          bucket_cells_[shard * stride_ + b].load(std::memory_order_relaxed);
    }
    snap.count += totals_[shard].count.load(std::memory_order_relaxed);
    snap.sum += totals_[shard].sum.load(std::memory_order_relaxed);
  }
  return snap;
}

#ifndef CRYPTODROP_NO_METRICS
std::uint64_t ScopedTimer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#endif

// --- registry ----------------------------------------------------------

namespace {

template <typename Deque>
auto* find_entry(Deque& entries, std::string_view name) {
  for (auto& entry : entries) {
    if (entry.name == name) return &entry;
  }
  return static_cast<typename Deque::value_type*>(nullptr);
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  std::string_view unit) {
  std::lock_guard lock(mu_);
  if (auto* entry = find_entry(counters_, name)) return entry->instrument;
  counters_.emplace_back(std::string(name), std::string(help), std::string(unit));
  return counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              std::string_view unit) {
  std::lock_guard lock(mu_);
  if (auto* entry = find_entry(gauges_, name)) return entry->instrument;
  gauges_.emplace_back(std::string(name), std::string(help), std::string(unit));
  return gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::string_view help,
                                      std::string_view unit,
                                      std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  if (auto* entry = find_entry(histograms_, name)) return entry->instrument;
  histograms_.emplace_back(std::string(name), std::string(help),
                           std::string(unit), std::move(bounds));
  return histograms_.back().instrument;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const Entry<Counter>& entry : counters_) {
    snap.counters.push_back(
        CounterSnapshot{entry.name, entry.unit, entry.help, entry.instrument.value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const Entry<Gauge>& entry : gauges_) {
    snap.gauges.push_back(
        GaugeSnapshot{entry.name, entry.unit, entry.help, entry.instrument.value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const Entry<Histogram>& entry : histograms_) {
    HistogramSnapshot h = entry.instrument.snapshot();
    h.name = entry.name;
    h.unit = entry.unit;
    h.help = entry.help;
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

std::vector<double> MetricsRegistry::latency_buckets_us() {
  // 1, 2, 4, ... 65536 µs: covers sub-µs magic sniffs through multi-ms
  // digest computations with one scheme.
  std::vector<double> bounds;
  bounds.reserve(17);
  for (int i = 0; i <= 16; ++i) bounds.push_back(static_cast<double>(1 << i));
  return bounds;
}

}  // namespace cryptodrop::obs
