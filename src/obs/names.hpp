// The metric-name schema of record.
//
// Every metric name the project registers — engine counters/gauges/
// histograms and the fault filter's per-kind counters — is listed here
// as a family: either a literal name ("ops_observed_total") or a
// placeholder family ("indicator_events_total.<indicator>") whose
// suffix ranges over a fixed label set.
//
// Two gates consume this list (one parser, two gates — DESIGN.md §13):
//  * tools/docs_check verifies it matches both the names a live engine
//    registers and the schema table in docs/OBSERVABILITY.md;
//  * tools/lint/cryptodrop_lint verifies every string literal passed
//    to MetricsRegistry::counter/gauge/histogram at any call site in
//    src/, tools/ and bench/ resolves to a family listed here.
//
// Span names have the same arrangement via known_span_names()
// (obs/span.hpp). Adding a metric means touching this list, the
// OBSERVABILITY.md table, and the registration site — any partial
// update fails a tier-1 gate.
#pragma once

#include <string_view>
#include <vector>

namespace cryptodrop::obs {

/// Every metric-name family the project registers, in schema order.
/// Placeholder families use `<indicator>` / `<fault>` suffixes.
std::vector<std::string_view> known_metric_names();

/// The label set a placeholder expands to: "<indicator>" yields the
/// seven indicator labels, "<fault>" the four fault kinds,
/// "<entropy_backend>" the four entropy backends, "<shed_reason>" the
/// four daemon admission-control shed reasons. Unknown placeholders
/// yield an empty list. docs_check asserts these lists match the
/// core/vfs/entropy/daemon enums they mirror.
std::vector<std::string_view> known_placeholder_labels(
    std::string_view placeholder);

}  // namespace cryptodrop::obs
