#include "obs/names.hpp"

namespace cryptodrop::obs {

std::vector<std::string_view> known_metric_names() {
  return {
      // engine counters (core/engine.cpp register_metrics)
      "ops_observed_total",
      "ops_denied_total",
      "suspensions_total",
      "resumes_total",
      "baselines_captured_total",
      "similarity_digests_total",
      "degraded_measurements_total",
      "indicator_events_total.<indicator>",
      "points_assessed_total.<indicator>",
      "entropy_backend_events_total.<entropy_backend>",
      // engine stage-latency histograms
      "stage_latency_us.sdhash_digest",
      "stage_latency_us.entropy",
      "stage_latency_us.magic_sniff",
      "stage_latency_us.filter_dispatch",
      "stage_latency_us.close_measure",
      // engine gauges
      "processes_tracked",
      "files_tracked",
      "digest_cache_hits",
      "digest_cache_misses",
      "digest_cache_entries",
      "digest_cache_evictions",
      // scratch-buffer pool gauges (common/buffer_pool.cpp)
      "buffer_pool_acquires",
      "buffer_pool_hits",
      "buffer_pool_bytes_retained",
      // fault-injection filter counters (vfs/fault_filter.cpp)
      "faults_injected_total.<fault>",
      // daemon ingestion front end (daemon/metrics.cpp)
      "daemon_ops_ingested_total",
      "daemon_ops_executed_total",
      "daemon_batches_drained_total",
      "daemon_ops_shed_total.<shed_reason>",
      "daemon_tenants_attached_total",
      "daemon_tenants_detached_total",
      "daemon_control_requests_total",
      "daemon_control_errors_total",
      "daemon_conns_idle_closed_total",
      "daemon_journal_events_total",
      "daemon_journal_events_dropped_total",
      "daemon_watch_frames_total",
      "daemon_watch_events_shed_total",
      "daemon_queue_depth",
      "daemon_queue_high_water",
      "daemon_tenants_active",
      "daemon_health_level",
      "daemon_watch_clients",
      "daemon_worker_ingest_latency_us",
      "daemon_worker_queue_depth",
  };
}

std::vector<std::string_view> known_placeholder_labels(
    std::string_view placeholder) {
  // Mirrors core::indicator_name() / vfs::fault_kind_name(); docs_check
  // cross-checks these lists against the real enums every run, so a new
  // indicator or fault kind cannot land without updating this file.
  if (placeholder == "<indicator>") {
    return {"entropy_delta", "type_change", "similarity_drop", "deletion",
            "funneling",     "union",       "burst_rate"};
  }
  if (placeholder == "<fault>") {
    return {"io_error", "access_denied", "short_write", "delay_post"};
  }
  if (placeholder == "<entropy_backend>") {
    return {"shannon", "chi_square", "serial_correlation", "daa"};
  }
  if (placeholder == "<shed_reason>") {
    return {"benign_read", "queue_full", "tenant_gone", "shutdown"};
  }
  return {};
}

}  // namespace cryptodrop::obs
