#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace cryptodrop::obs {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-thread span start counter; only its monotonicity within one
/// thread matters, so one process-wide counter per thread is enough.
thread_local std::uint64_t t_span_seq = 0;

}  // namespace

std::size_t trace_thread_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

std::vector<std::string_view> known_span_names() {
  return {span_name::kDispatch,      span_name::kFilterPre,
          span_name::kFilterPost,    span_name::kMagicSniff,
          span_name::kEntropy,       span_name::kSdhashDigest,
          span_name::kSdhashCompare, span_name::kScoreUpdate,
          span_name::kVerdict,       span_name::kCloseMeasure,
          span_name::kDaemonIngest,  span_name::kDaemonExecute};
}

SpanTracer::SpanTracer(TraceOptions options) : options_(options) {
  per_shard_capacity_ =
      std::max<std::size_t>(1, options_.ring_capacity / kMetricShards);
  epoch_ns_ = steady_now_ns();
}

bool SpanTracer::should_sample(std::uint32_t pid,
                               std::uint64_t op_index) const {
  if constexpr (!kMetricsEnabled) return false;
  if (!options_.enabled) return false;
  if (options_.sample_every <= 1) return true;
  if (op_index % options_.sample_every == 0) return true;
  if (any_forced_.load(std::memory_order_relaxed)) {
    std::lock_guard lock(force_mu_);
    return forced_.contains(pid);
  }
  return false;
}

void SpanTracer::force_pid(std::uint32_t pid) {
  std::lock_guard lock(force_mu_);
  forced_.insert(pid);
  any_forced_.store(true, std::memory_order_relaxed);
}

void SpanTracer::record(SpanRecord&& record) {
  Shard& shard = shards_[trace_thread_index() % kMetricShards];
  std::lock_guard lock(shard.mu);
  ++shard.recorded;
  if (shard.ring.size() < per_shard_capacity_) {
    shard.ring.push_back(std::move(record));
    return;
  }
  // Full: overwrite the oldest record in place (head chases the ring).
  shard.ring[shard.head] = std::move(record);
  shard.head = (shard.head + 1) % shard.ring.size();
  ++shard.dropped;
}

SpanSnapshot SpanTracer::snapshot() const {
  SpanSnapshot out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    out.recorded += shard.recorded;
    out.dropped += shard.dropped;
    // Unroll the ring oldest-first so relative push order survives.
    const std::size_t n = shard.ring.size();
    for (std::size_t i = 0; i < n; ++i) {
      out.spans.push_back(shard.ring[(shard.head + i) % n]);
    }
  }
  std::stable_sort(out.spans.begin(), out.spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.seq < b.seq;
                   });
  return out;
}

std::uint64_t SpanTracer::now_ns() const {
  return steady_now_ns() - epoch_ns_;
}

ScopedSpan*& ScopedSpan::current() {
  thread_local ScopedSpan* t_current = nullptr;
  return t_current;
}

void ScopedSpan::open(SpanTracer* tracer, std::string_view name,
                      std::uint32_t pid, std::uint64_t span_id,
                      ScopedSpan* parent) {
  tracer_ = tracer;
  parent_ = parent;
  root_ = parent == nullptr ? this : parent->root_;
  name_ = name;
  span_id_ = span_id;
  pid_ = pid;
  seq_ = ++t_span_seq;
  start_ns_ = tracer->now_ns();
  current() = this;
}

void ScopedSpan::close() {
  const std::uint64_t end_ns = tracer_->now_ns();
  SpanRecord record;
  record.span_id = span_id_;
  record.parent_id = parent_ == nullptr ? 0 : parent_->span_id_;
  record.pid = pid_;
  record.tid = static_cast<std::uint32_t>(trace_thread_index());
  record.name = name_;
  record.start_ns = start_ns_;
  record.dur_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  record.seq = seq_;
  record.args = std::move(args_);
  tracer_->record(std::move(record));
  current() = parent_;
}

}  // namespace cryptodrop::obs
