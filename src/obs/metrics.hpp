// Observability metrics: a lock-cheap registry of counters, gauges and
// fixed-bucket histograms, built for the engine's hot path.
//
// Design (DESIGN.md §10):
//  * Writes are sharded 16 ways (matching the engine's scoreboard/file
//    sharding): each counter/histogram keeps one cache-line-aligned cell
//    per shard, a thread picks its shard once (thread-local), and every
//    increment is a single relaxed atomic add — no mutex, no contention
//    between threads on different shards, TSan-clean.
//  * Reads merge on snapshot: value() / snapshot() sum the cells. A
//    snapshot is not a cross-metric atomic cut (each metric is summed
//    independently); per-metric totals are exact.
//  * Registration (registry.counter("name", ...)) is mutex-guarded and
//    idempotent; hot paths hold direct references obtained once, so the
//    registry lookup never appears on the operation path.
//  * Compile-time kill switch: building with -DCRYPTODROP_NO_METRICS
//    turns every mutation (add/set/record, and ScopedTimer's clock
//    reads) into an empty inline body. Registration and snapshots keep
//    working — metrics simply all read zero — so instrumented code and
//    the docs-check tooling compile unchanged.
//
// Naming convention (docs/OBSERVABILITY.md): flat lowercase names with a
// unit suffix (`_total` for counters, `_us` for microsecond histograms)
// and a dotted label suffix for per-indicator / per-stage families, e.g.
// `indicator_events_total.entropy_delta`, `stage_latency_us.sdhash_digest`.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/ranked_mutex.hpp"

namespace cryptodrop::obs {

#ifdef CRYPTODROP_NO_METRICS
inline constexpr bool kMetricsEnabled = false;
#else
/// True unless built with -DCRYPTODROP_NO_METRICS.
inline constexpr bool kMetricsEnabled = true;
#endif

/// Write-side shard count; matches the engine's 16-way sharding so a
/// workload that spreads across engine shards also spreads here.
inline constexpr std::size_t kMetricShards = 16;

/// This thread's metric shard (assigned round-robin on first use and
/// cached thread-local; stable for the thread's lifetime).
std::size_t metric_shard_index();

// --- snapshots ---------------------------------------------------------

/// Point-in-time value of one counter (merged across shards).
struct CounterSnapshot {
  std::string name;
  std::string unit;
  std::string help;
  std::uint64_t value = 0;
};

/// Point-in-time value of one gauge (last value set).
struct GaugeSnapshot {
  std::string name;
  std::string unit;
  std::string help;
  double value = 0.0;
};

/// Point-in-time state of one histogram (bucket counts merged across
/// shards). `counts` has one entry per upper bound plus a final overflow
/// bucket; a recorded value v lands in the first bucket with v <= bound.
struct HistogramSnapshot {
  std::string name;
  std::string unit;
  std::string help;
  std::vector<double> bounds;         ///< Ascending finite upper bounds.
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (last = overflow).
  std::uint64_t count = 0;            ///< Total recorded samples.
  double sum = 0.0;                   ///< Sum of recorded values.

  /// Mean of recorded values (0 when empty).
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Everything one registry has measured, merged and self-describing.
/// Snapshots from different registries (e.g. one engine per parallel
/// trial) combine with merge(); to_json() serializes for export.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;      ///< Registration order.
  std::vector<GaugeSnapshot> gauges;          ///< Registration order.
  std::vector<HistogramSnapshot> histograms;  ///< Registration order.

  /// Finds a counter by exact name, or nullptr.
  [[nodiscard]] const CounterSnapshot* counter(std::string_view name) const;
  /// Finds a gauge by exact name, or nullptr.
  [[nodiscard]] const GaugeSnapshot* gauge(std::string_view name) const;
  /// Finds a histogram by exact name, or nullptr.
  [[nodiscard]] const HistogramSnapshot* histogram(std::string_view name) const;

  /// Folds `other` in by metric name: counter values and histogram
  /// bucket counts add; gauges keep the maximum (they describe sizes /
  /// cache states, where the high-water mark is the useful aggregate).
  /// Metrics present only in `other` are appended.
  void merge(const MetricsSnapshot& other);
};

/// Serializes a snapshot: {"counters": {...}, "gauges": {...},
/// "histograms": {...}} per the schema in docs/OBSERVABILITY.md.
Json to_json(const MetricsSnapshot& snapshot);

// --- instruments -------------------------------------------------------

/// Monotonically increasing event count. add() is one relaxed atomic
/// increment on the calling thread's shard cell; value() sums the cells.
/// Thread-safe; never negative.
class Counter {
 public:
  /// Adds `n` (relaxed; no ordering is implied toward other metrics).
  void add(std::uint64_t n = 1) {
#ifndef CRYPTODROP_NO_METRICS
    cells_[metric_shard_index()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  /// Sum over all shard cells. Concurrent adds may or may not be
  /// reflected (relaxed reads); the value is exact once writers quiesce.
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kMetricShards> cells_{};
};

/// Last-write-wins instantaneous value (table sizes, cache occupancy).
/// set()/value() are single relaxed atomic accesses; thread-safe.
class Gauge {
 public:
  /// Replaces the current value.
  void set(double v) {
#ifndef CRYPTODROP_NO_METRICS
    bits_.store(encode(v), std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  /// The most recently set value (0 until first set).
  [[nodiscard]] double value() const {
    return decode(bits_.load(std::memory_order_relaxed));
  }

 private:
  static std::uint64_t encode(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  static double decode(std::uint64_t bits) {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket distribution. Bucket edges are upper bounds: a recorded
/// value v lands in the first bucket with v <= bound, or the overflow
/// bucket past the last bound. record() touches only the calling
/// thread's shard (two relaxed adds + one CAS-add for the sum);
/// thread-safe.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> bounds);

  /// Folds one sample into the distribution.
  void record(double v);

  /// Bucket upper bounds (shared by every shard).
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  /// Merged view of the distribution (name/help/unit fields left empty;
  /// the registry fills them in its snapshot).
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::size_t stride_ = 0;  ///< Padded per-shard bucket-array length.
  /// kMetricShards consecutive bucket arrays of `stride_` atomics each.
  std::unique_ptr<std::atomic<std::uint64_t>[]> bucket_cells_;
  std::array<Cell, kMetricShards> totals_{};
};

/// RAII wall-clock timer: records the enclosing scope's duration, in
/// microseconds, into a histogram at scope exit. A null histogram (or a
/// -DCRYPTODROP_NO_METRICS build) makes it a true no-op — the clock is
/// never read.
class ScopedTimer {
 public:
  /// Starts timing immediately; `histogram` may be null (no-op timer).
  explicit ScopedTimer(Histogram* histogram)
#ifndef CRYPTODROP_NO_METRICS
      : histogram_(histogram) {
    if (histogram_ != nullptr) start_ = now_ns();
  }
#else
  {
    (void)histogram;
  }
#endif

  /// Two-sink variant: records the same duration into `histogram` and
  /// `secondary` (one clock read pair; either may be null). Used by the
  /// daemon to feed a per-worker histogram and the registry aggregate.
  ScopedTimer(Histogram* histogram, Histogram* secondary)
#ifndef CRYPTODROP_NO_METRICS
      : histogram_(histogram), secondary_(secondary) {
    if (histogram_ != nullptr || secondary_ != nullptr) start_ = now_ns();
  }
#else
  {
    (void)histogram;
    (void)secondary;
  }
#endif

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
#ifndef CRYPTODROP_NO_METRICS
    if (histogram_ != nullptr || secondary_ != nullptr) {
      const double us = static_cast<double>(now_ns() - start_) / 1000.0;
      if (histogram_ != nullptr) histogram_->record(us);
      if (secondary_ != nullptr) secondary_->record(us);
    }
#endif
  }

 private:
#ifndef CRYPTODROP_NO_METRICS
  static std::uint64_t now_ns();
  Histogram* histogram_ = nullptr;
  Histogram* secondary_ = nullptr;
  std::uint64_t start_ = 0;
#endif
};

// --- registry ----------------------------------------------------------

/// Owner and directory of a related set of metrics (one per engine).
/// Registration is mutex-guarded, idempotent by name, and returns
/// references that stay valid for the registry's lifetime — callers
/// register once (e.g. at engine construction) and mutate lock-free
/// thereafter. snapshot() merges every instrument. Thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a counter. `unit` defaults to "count".
  Counter& counter(std::string_view name, std::string_view help,
                   std::string_view unit = "count");

  /// Registers (or finds) a gauge.
  Gauge& gauge(std::string_view name, std::string_view help,
               std::string_view unit = "count");

  /// Registers (or finds) a histogram with the given bucket upper
  /// bounds. Bounds are fixed at registration; re-registering an
  /// existing name returns the original instrument (bounds argument
  /// ignored).
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::string_view unit, std::vector<double> bounds);

  /// Merged point-in-time view of every registered metric, in
  /// registration order.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Default bucket edges for stage-latency histograms: 1 µs … 65.536 ms
  /// in powers of two (17 finite buckets + overflow).
  static std::vector<double> latency_buckets_us();

 private:
  template <typename T>
  struct Entry {
    std::string name;
    std::string help;
    std::string unit;
    T instrument;
    Entry(std::string n, std::string h, std::string u)
        : name(std::move(n)), help(std::move(h)), unit(std::move(u)) {}
    Entry(std::string n, std::string h, std::string u, std::vector<double> b)
        : name(std::move(n)), help(std::move(h)), unit(std::move(u)),
          instrument(std::move(b)) {}
  };

  /// Rank 50: registration/snapshot only, never on the op path.
  mutable common::RankedMutex<common::lockrank::kMetricsRegistry> mu_;
  // Deques: references handed out must survive later registrations.
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<Histogram>> histograms_;
};

}  // namespace cryptodrop::obs
