#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

namespace cryptodrop::obs {

namespace {

/// Matches Json's number formatting: integers without a fraction.
std::string number_to_string(double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<std::int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

Json event_json(std::string_view name, char phase, double ts_us,
                std::uint64_t pid, std::uint64_t tid) {
  Json ev = Json::object();
  ev.set("name", Json(name));
  ev.set("ph", Json(std::string(1, phase)));
  ev.set("ts", Json(ts_us));
  ev.set("pid", Json(pid));
  ev.set("tid", Json(tid));
  return ev;
}

}  // namespace

// --- export ------------------------------------------------------------

void append_trace_events(Json& events, const SpanSnapshot& snapshot,
                         const TraceExportOptions& options) {
  // Track labels first, one per pid the snapshot touches.
  if (!options.process_label.empty()) {
    std::set<std::uint32_t> pids;
    for (const SpanRecord& rec : snapshot.spans) pids.insert(rec.pid);
    for (std::uint32_t pid : pids) {
      Json meta = event_json("process_name", 'M', 0.0,
                             pid + options.pid_offset, options.tid_offset);
      Json args = Json::object();
      args.set("name", Json(options.process_label));
      meta.set("args", std::move(args));
      events.push(std::move(meta));
    }
  }

  // Replay each thread's spans in start order, reconstructing the
  // open/close nesting from parentage. Children always closed before
  // their parents, so an entry's end never precedes a later sibling's
  // start on the same thread — emitted ts stays monotone per track.
  struct Open {
    std::uint64_t span_id;
    std::uint64_t end_ns;
    std::string_view name;
    std::uint32_t pid;
    std::uint32_t tid;
  };
  std::vector<Open> stack;
  const auto emit_end = [&](const Open& open) {
    events.push(event_json(open.name, 'E',
                           static_cast<double>(open.end_ns) / 1000.0,
                           open.pid + options.pid_offset,
                           open.tid + options.tid_offset));
  };
  const auto flush = [&] {
    while (!stack.empty()) {
      emit_end(stack.back());
      stack.pop_back();
    }
  };

  std::uint32_t current_tid = 0;
  for (const SpanRecord& rec : snapshot.spans) {  // sorted by (tid, seq)
    if (!stack.empty() && rec.tid != current_tid) flush();
    current_tid = rec.tid;
    // Close everything that is not this span's parent. A span whose
    // parent record was evicted (bounded ring) renders as a root.
    while (!stack.empty() && stack.back().span_id != rec.parent_id) {
      emit_end(stack.back());
      stack.pop_back();
    }
    Json begin = event_json(rec.name, 'B',
                            static_cast<double>(rec.start_ns) / 1000.0,
                            rec.pid + options.pid_offset,
                            rec.tid + options.tid_offset);
    if (!rec.args.empty()) {
      Json args = Json::object();
      for (const SpanArg& a : rec.args) {
        args.set(a.key, a.numeric ? Json(a.num) : Json(a.str));
      }
      begin.set("args", std::move(args));
    }
    events.push(std::move(begin));
    stack.push_back(Open{rec.span_id, rec.start_ns + rec.dur_ns, rec.name,
                         rec.pid, rec.tid});
  }
  flush();
}

Json to_trace_json(const SpanSnapshot& snapshot,
                   const TraceExportOptions& options) {
  Json events = Json::array();
  append_trace_events(events, snapshot, options);
  Json other = Json::object();
  other.set("tool", Json("cryptodrop span tracer"));
  other.set("spans_recorded", Json(snapshot.recorded));
  other.set("spans_dropped", Json(snapshot.dropped));
  Json out = Json::object();
  out.set("traceEvents", std::move(events));
  out.set("displayTimeUnit", Json("ms"));
  out.set("otherData", std::move(other));
  return out;
}

Json empty_trace_json() { return to_trace_json(SpanSnapshot{}); }

// --- parse -------------------------------------------------------------

namespace {

/// Parsed JSON value (common/json.hpp is a serialize-only builder by
/// design, so the trace reader carries its own minimal recursive-descent
/// parser — it only ever reads files this module wrote).
struct JsonValue {
  enum class Kind : std::uint8_t { null, boolean, number, string, array, object };
  Kind kind = Kind::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  [[nodiscard]] const JsonValue* field(std::string_view key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class MiniParser {
 public:
  explicit MiniParser(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    JsonValue value;
    if (!parse_value(value)) return fail();
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing characters after JSON value";
      return fail();
    }
    return value;
  }

 private:
  Status fail() const {
    return Status(Errc::invalid_argument,
                  error_ + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      error_ = "bad literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) {
      error_ = "unexpected end of input";
      return false;
    }
    switch (text_[pos_]) {
      case 'n': out.kind = JsonValue::Kind::null; return literal("null");
      case 't':
        out.kind = JsonValue::Kind::boolean;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = JsonValue::Kind::boolean;
        out.boolean = false;
        return literal("false");
      case '"':
        out.kind = JsonValue::Kind::string;
        return parse_string(out.string);
      case '[': return parse_array(out);
      case '{': return parse_object(out);
      default:
        out.kind = JsonValue::Kind::number;
        return parse_number(out.number);
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            error_ = "truncated \\u escape";
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              error_ = "bad \\u escape";
              return false;
            }
          }
          // UTF-8 encode the basic multilingual plane (the exporter
          // never writes surrogate pairs).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          error_ = "bad escape";
          return false;
      }
    }
    error_ = "unterminated string";
    return false;
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      error_ = "expected a value";
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      error_ = "bad number '" + token + "'";
      return false;
    }
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parse_value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) {
        error_ = "unterminated array";
        return false;
      }
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') {
        --pos_;
        error_ = "expected ',' or ']'";
        return false;
      }
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        error_ = "expected object key";
        return false;
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        error_ = "expected ':'";
        return false;
      }
      ++pos_;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.fields.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) {
        error_ = "unterminated object";
        return false;
      }
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') {
        --pos_;
        error_ = "expected ',' or '}'";
        return false;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_ = "parse error";
};

std::string scalar_to_display(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::null: return "null";
    case JsonValue::Kind::boolean: return v.boolean ? "true" : "false";
    case JsonValue::Kind::number: return number_to_string(v.number);
    case JsonValue::Kind::string: return v.string;
    case JsonValue::Kind::array: return "<array>";
    case JsonValue::Kind::object: return "<object>";
  }
  return "?";
}

}  // namespace

Result<std::vector<TraceEvent>> parse_trace_events(std::string_view text) {
  Result<JsonValue> parsed = MiniParser(text).parse();
  if (!parsed) return parsed.status();
  const JsonValue& root = parsed.value();

  const JsonValue* events = nullptr;
  if (root.kind == JsonValue::Kind::array) {
    events = &root;
  } else if (root.kind == JsonValue::Kind::object) {
    events = root.field("traceEvents");
  }
  if (events == nullptr || events->kind != JsonValue::Kind::array) {
    return Status(Errc::invalid_argument,
                  "no traceEvents array in trace document");
  }

  std::vector<TraceEvent> out;
  out.reserve(events->items.size());
  for (const JsonValue& item : events->items) {
    if (item.kind != JsonValue::Kind::object) {
      return Status(Errc::invalid_argument, "trace event is not an object");
    }
    TraceEvent ev;
    if (const JsonValue* v = item.field("name");
        v != nullptr && v->kind == JsonValue::Kind::string) {
      ev.name = v->string;
    }
    if (const JsonValue* v = item.field("ph");
        v != nullptr && v->kind == JsonValue::Kind::string && !v->string.empty()) {
      ev.phase = v->string[0];
    }
    if (const JsonValue* v = item.field("ts");
        v != nullptr && v->kind == JsonValue::Kind::number) {
      ev.ts = v->number;
    }
    if (const JsonValue* v = item.field("pid");
        v != nullptr && v->kind == JsonValue::Kind::number) {
      ev.pid = static_cast<std::int64_t>(v->number);
    }
    if (const JsonValue* v = item.field("tid");
        v != nullptr && v->kind == JsonValue::Kind::number) {
      ev.tid = static_cast<std::int64_t>(v->number);
    }
    if (const JsonValue* v = item.field("args");
        v != nullptr && v->kind == JsonValue::Kind::object) {
      for (const auto& [key, value] : v->fields) {
        ev.args.emplace_back(key, scalar_to_display(value));
      }
    }
    out.push_back(std::move(ev));
  }
  return out;
}

Status validate_trace_events(const std::vector<TraceEvent>& events) {
  struct Track {
    double last_ts = 0.0;
    bool seen = false;
    std::vector<std::string> open;  ///< Names of unclosed B events.
  };
  std::map<std::pair<std::int64_t, std::int64_t>, Track> tracks;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& ev = events[i];
    if (ev.phase == 'M') continue;  // metadata carries no timing
    Track& track = tracks[{ev.pid, ev.tid}];
    if (track.seen && ev.ts < track.last_ts) {
      return Status(Errc::invalid_argument,
                    "ts regression on track pid=" + std::to_string(ev.pid) +
                        " tid=" + std::to_string(ev.tid) + " at event " +
                        std::to_string(i));
    }
    track.last_ts = ev.ts;
    track.seen = true;
    if (ev.phase == 'B') {
      track.open.push_back(ev.name);
    } else if (ev.phase == 'E') {
      if (track.open.empty()) {
        return Status(Errc::invalid_argument,
                      "E without matching B at event " + std::to_string(i));
      }
      if (!ev.name.empty() && track.open.back() != ev.name) {
        return Status(Errc::invalid_argument,
                      "E for '" + ev.name + "' closes B for '" +
                          track.open.back() + "' at event " +
                          std::to_string(i));
      }
      track.open.pop_back();
    }
  }
  for (const auto& [key, track] : tracks) {
    if (!track.open.empty()) {
      return Status(Errc::invalid_argument,
                    "unclosed B for '" + track.open.back() + "' on track pid=" +
                        std::to_string(key.first) +
                        " tid=" + std::to_string(key.second));
    }
  }
  return Status::ok();
}

// --- analysis ----------------------------------------------------------

namespace {

/// Which indicator a measurement stage's cost belongs to (score_update
/// spans carry the indicator in their args instead).
std::string_view stage_indicator(std::string_view stage) {
  if (stage == span_name::kEntropy) return "entropy_delta";
  if (stage == span_name::kMagicSniff) return "type_change";
  if (stage == span_name::kSdhashDigest || stage == span_name::kSdhashCompare) {
    return "similarity_drop";
  }
  return {};
}

std::string arg_value(const std::vector<std::pair<std::string, std::string>>& args,
                      std::string_view key) {
  for (const auto& [k, v] : args) {
    if (k == key) return v;
  }
  return {};
}

}  // namespace

TraceReport analyze_trace(const std::vector<TraceEvent>& events,
                          std::size_t top_k) {
  struct Frame {
    std::string name;
    double ts = 0.0;
    double child_us = 0.0;
    std::vector<std::pair<std::string, std::string>> args;
    std::map<std::string, double> self_by_stage;  ///< Root frames only.
  };
  struct StageAcc {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double self_us = 0.0;
  };
  struct IndicatorAcc {
    std::uint64_t spans = 0;
    double self_us = 0.0;
  };

  TraceReport report;
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<Frame>> stacks;
  std::map<std::string, StageAcc> stages;
  std::map<std::string, IndicatorAcc> indicators;
  std::vector<SlowOp> roots;

  for (const TraceEvent& ev : events) {
    if (ev.phase == 'B') {
      ++report.events;
      Frame frame;
      frame.name = ev.name;
      frame.ts = ev.ts;
      frame.args = ev.args;
      stacks[{ev.pid, ev.tid}].push_back(std::move(frame));
    } else if (ev.phase == 'E') {
      ++report.events;
      auto& stack = stacks[{ev.pid, ev.tid}];
      if (stack.empty()) continue;  // tolerated; validator flags it
      Frame frame = std::move(stack.back());
      stack.pop_back();
      const double dur = std::max(0.0, ev.ts - frame.ts);
      const double self = std::max(0.0, dur - frame.child_us);

      StageAcc& acc = stages[frame.name];
      ++acc.count;
      acc.total_us += dur;
      acc.self_us += self;

      std::string indicator(stage_indicator(frame.name));
      if (indicator.empty() && frame.name == span_name::kScoreUpdate) {
        indicator = arg_value(frame.args, "indicator");
      }
      if (!indicator.empty()) {
        IndicatorAcc& ind = indicators[indicator];
        ++ind.spans;
        ind.self_us += self;
      }

      if (!stack.empty()) {
        stack.back().child_us += dur;
        stack.front().self_by_stage[frame.name] += self;
      } else {
        // A root operation closed.
        frame.self_by_stage[frame.name] += self;
        SlowOp op;
        op.op = arg_value(frame.args, "op");
        if (op.op.empty()) op.op = frame.name;
        op.path = arg_value(frame.args, "path");
        op.pid = ev.pid;
        op.ts = frame.ts;
        op.dur_us = dur;
        op.stage_self_us.assign(frame.self_by_stage.begin(),
                                frame.self_by_stage.end());
        std::sort(op.stage_self_us.begin(), op.stage_self_us.end(),
                  [](const auto& a, const auto& b) { return a.second > b.second; });
        roots.push_back(std::move(op));
      }
    }
  }

  report.ops = roots.size();
  for (const auto& [name, acc] : stages) {
    report.stages.push_back(StageCost{name, acc.count, acc.total_us, acc.self_us});
    report.total_self_us += acc.self_us;
  }
  std::sort(report.stages.begin(), report.stages.end(),
            [](const StageCost& a, const StageCost& b) {
              return a.self_us > b.self_us;
            });
  for (const auto& [name, acc] : indicators) {
    report.indicators.push_back(IndicatorCost{name, acc.spans, acc.self_us});
  }
  std::sort(report.indicators.begin(), report.indicators.end(),
            [](const IndicatorCost& a, const IndicatorCost& b) {
              return a.self_us > b.self_us;
            });
  std::sort(roots.begin(), roots.end(),
            [](const SlowOp& a, const SlowOp& b) { return a.dur_us > b.dur_us; });
  if (roots.size() > top_k) roots.resize(top_k);
  report.slowest = std::move(roots);
  return report;
}

std::string format_trace_report(const TraceReport& report) {
  std::string out;
  char line[512];
  const auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
    out.push_back('\n');
  };

  emit("Span trace report");
  emit("  events analyzed : %zu", report.events);
  emit("  operations      : %zu root spans", report.ops);
  emit("  total self time : %.1f us", report.total_self_us);
  out.push_back('\n');

  emit("Per-stage self time (critical path, largest first)");
  emit("  %-24s %10s %14s %14s %7s", "stage", "count", "total(us)",
       "self(us)", "self%");
  for (const StageCost& stage : report.stages) {
    const double share = report.total_self_us > 0.0
                             ? 100.0 * stage.self_us / report.total_self_us
                             : 0.0;
    emit("  %-24s %10llu %14.1f %14.1f %6.1f%%", stage.name.c_str(),
         static_cast<unsigned long long>(stage.count), stage.total_us,
         stage.self_us, share);
  }
  out.push_back('\n');

  emit("Per-indicator cost attribution");
  if (report.indicators.empty()) {
    emit("  (no engine stage spans in this trace)");
  } else {
    emit("  %-18s %10s %14s %7s", "indicator", "spans", "self(us)", "share");
    for (const IndicatorCost& ind : report.indicators) {
      const double share = report.total_self_us > 0.0
                               ? 100.0 * ind.self_us / report.total_self_us
                               : 0.0;
      emit("  %-18s %10llu %14.1f %6.1f%%", ind.indicator.c_str(),
           static_cast<unsigned long long>(ind.spans), ind.self_us, share);
    }
  }
  out.push_back('\n');

  emit("Top %zu slowest operations", report.slowest.size());
  for (std::size_t i = 0; i < report.slowest.size(); ++i) {
    const SlowOp& op = report.slowest[i];
    emit("  %2zu. %-8s pid=%lld dur=%.1fus ts=%.1fus %s", i + 1,
         op.op.c_str(), static_cast<long long>(op.pid), op.dur_us, op.ts,
         op.path.c_str());
    std::string stages_line;
    for (std::size_t j = 0; j < op.stage_self_us.size() && j < 4; ++j) {
      char part[128];
      std::snprintf(part, sizeof(part), "%s%s %.1fus", j > 0 ? ", " : "",
                    op.stage_self_us[j].first.c_str(),
                    op.stage_self_us[j].second);
      stages_line += part;
    }
    if (!stages_line.empty()) emit("      stages: %s", stages_line.c_str());
  }
  return out;
}

}  // namespace cryptodrop::obs
