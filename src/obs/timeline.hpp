// Per-process forensic timelines: a bounded ring of indicator events so
// every suspension verdict can be *explained* after the fact.
//
// The paper's evaluation was produced by hand-instrumenting the authors'
// minifilter; this is the first-class version. The engine appends one
// event per reputation-score change (type-change, similarity loss,
// entropy delta, deletion, funneling, union, burst-rate), carrying the
// score before/after and an indicator-specific detail, and a terminal
// event when the process is suspended or resumed. `engine.explain(pid)`
// returns the ring's contents; obs::to_json serializes them in the
// format documented in docs/OBSERVABILITY.md.
//
// The ring is bounded (ScoringConfig::timeline_capacity) so a long-lived
// benign process cannot grow memory without bound: when full, the oldest
// event is evicted and `dropped()` counts it. Event sequence numbers are
// per-process and survive eviction, so gaps are visible.
//
// Thread-safety: a TimelineRing is plain data. The engine stores one per
// scoreboard entry and only touches it under that entry's shard lock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

namespace cryptodrop::obs {

/// What a timeline event records. The indicator kinds mirror
/// core::Indicator; `suspension` and `resume` are verdict events.
enum class TimelineEventKind : std::uint8_t {
  entropy_delta,
  type_change,
  similarity_drop,
  deletion,
  funneling,
  union_indication,
  burst_rate,
  suspension,
  resume,
};

/// Stable lowercase name ("entropy_delta", "suspension", ...).
std::string_view timeline_event_kind_name(TimelineEventKind kind);

/// One entry in a process's forensic timeline.
struct TimelineEvent {
  std::uint64_t seq = 0;     ///< Per-process event number (survives eviction).
  std::uint64_t op_seq = 0;  ///< Engine operation count when the event fired.
  TimelineEventKind kind{};
  int points = 0;        ///< Reputation points assessed (0 for verdicts).
  int score_before = 0;  ///< Process score immediately before the event.
  int score_after = 0;   ///< Process score immediately after the event.
  std::string path;      ///< File the event concerns (may be empty).
  /// Indicator-specific measurement: entropy events carry the
  /// write-read delta, similarity events the sdhash score (0..100),
  /// suspension events the threshold crossed. 0 when not applicable.
  double detail = 0.0;
  /// Free-form annotation (e.g. "pdf -> high-entropy data" on a
  /// type-change, "via union" on a suspension). May be empty.
  std::string note;
};

/// Fixed-capacity ring of TimelineEvents; push() evicts the oldest once
/// full. Capacity 0 disables recording entirely (push is a no-op).
class TimelineRing {
 public:
  /// Default capacity matches ScoringConfig::timeline_capacity's default.
  explicit TimelineRing(std::size_t capacity = 128) : capacity_(capacity) {}

  /// Appends `event`, stamping its `seq`, evicting the oldest event if
  /// the ring is at capacity. No-op when capacity is 0.
  void push(TimelineEvent event);

  /// Events currently held, oldest first.
  [[nodiscard]] const std::deque<TimelineEvent>& events() const { return events_; }

  /// Total events ever pushed (including evicted ones).
  [[nodiscard]] std::uint64_t total_recorded() const { return total_recorded_; }

  /// Events evicted so far (total_recorded() - events().size()).
  [[nodiscard]] std::uint64_t dropped() const {
    return total_recorded_ - events_.size();
  }

  /// The fixed capacity this ring was constructed with.
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::uint64_t total_recorded_ = 0;
  std::deque<TimelineEvent> events_;
};

/// A process's complete forensic record, as returned by
/// core::AnalysisEngine::explain() and embedded in ProcessReports: who
/// the process is, its verdict state, and the (bounded) event history
/// explaining how its score got there.
struct ForensicTimeline {
  std::uint32_t pid = 0;  ///< Scoreboard key (family root under family scoring).
  std::string process_name;
  bool suspended = false;
  int final_score = 0;
  int threshold = 0;
  std::uint64_t events_recorded = 0;  ///< Including evicted events.
  std::uint64_t events_dropped = 0;   ///< Evicted by the bounded ring.
  std::vector<TimelineEvent> events;  ///< Oldest first.
};

/// Serializes one timeline per the docs/OBSERVABILITY.md format.
Json to_json(const ForensicTimeline& timeline);

}  // namespace cryptodrop::obs
