// Span-trace export and analysis.
//
// Three layers over obs::SpanSnapshot (see obs/span.hpp; not to be
// confused with vfs/trace.hpp, which records/replays the operations
// themselves):
//  * Export — Chrome trace-event JSON (B/E duration pairs, `ts` in
//    microseconds, one track per (pid, tid)) loadable in Perfetto or
//    chrome://tracing. Snapshots from many trials merge into one file
//    via per-trial pid/tid offsets plus `process_name` metadata events.
//  * Parse/validate — a minimal trace-event JSON reader (common/json.hpp
//    is serialize-only by design) plus a validator for the properties
//    tests and `trace-report` rely on: well-formed, monotone `ts` per
//    (pid, tid) track, matching B/E pairs.
//  * Analyze — folds a parsed trace into the critical-path summary the
//    `cryptodrop trace-report` subcommand prints: per-stage self-time
//    table, top-k slowest operations with their stage breakdown, and
//    per-indicator cost attribution ("what would dropping sdhash buy").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "common/result.hpp"
#include "obs/span.hpp"

namespace cryptodrop::obs {

// --- export ------------------------------------------------------------

/// Per-snapshot knobs for merging many trials into one trace file.
struct TraceExportOptions {
  /// Added to every span's pid/tid so trials land on distinct tracks.
  std::uint64_t pid_offset = 0;
  std::uint64_t tid_offset = 0;
  /// When non-empty, emitted as a `process_name` metadata event for
  /// every pid the snapshot touches (Perfetto's track label).
  std::string process_label;
};

/// Appends one snapshot's spans to `events` (a Json array) as B/E
/// duration-event pairs, reconstructing each thread's open/close nesting
/// from parentage. Spans whose parent was evicted render as roots.
void append_trace_events(Json& events, const SpanSnapshot& snapshot,
                         const TraceExportOptions& options = {});

/// A complete single-snapshot trace document:
/// {"traceEvents": [...], "displayTimeUnit": "ms", "otherData": {...}}.
[[nodiscard]] Json to_trace_json(const SpanSnapshot& snapshot,
                                 const TraceExportOptions& options = {});

/// A valid trace document with zero events (what a
/// -DCRYPTODROP_NO_METRICS build writes).
[[nodiscard]] Json empty_trace_json();

// --- parse / validate --------------------------------------------------

/// One parsed trace event (the subset of the Chrome schema we emit).
struct TraceEvent {
  std::string name;
  char phase = '?';  ///< 'B', 'E', 'M', ...
  double ts = 0.0;   ///< Microseconds.
  std::int64_t pid = 0;
  std::int64_t tid = 0;
  /// Scalar args, values stringified ("3.5", "write", "true").
  std::vector<std::pair<std::string, std::string>> args;
};

/// Parses a trace document (either {"traceEvents": [...]} or a bare
/// event array). Fails with invalid_argument on malformed JSON or a
/// missing/ill-typed traceEvents array.
[[nodiscard]] Result<std::vector<TraceEvent>> parse_trace_events(
    std::string_view text);

/// Checks the invariants the exporter guarantees: monotone ts per
/// (pid, tid) track and matching, properly nested B/E pairs (metadata
/// events are exempt). Returns the first violation found.
[[nodiscard]] Status validate_trace_events(
    const std::vector<TraceEvent>& events);

// --- critical-path analysis -------------------------------------------

/// Aggregate cost of one span name across the trace. `self_us` is total
/// duration minus time spent in child spans — the stage's own cost.
struct StageCost {
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
};

/// One root operation, for the top-k slowest table.
struct SlowOp {
  std::string op;    ///< The root span's `op` arg ("write", ...).
  std::string path;  ///< The root span's `path` arg.
  std::int64_t pid = 0;
  double ts = 0.0;
  double dur_us = 0.0;
  /// Self time inside this op per stage name, largest first.
  std::vector<std::pair<std::string, double>> stage_self_us;
};

/// Measured cost attributable to one indicator: its measurement stages'
/// self time (entropy → entropy_delta, magic sniff → type_change,
/// sdhash digest+compare → similarity_drop) plus score_update spans by
/// their `indicator` arg.
struct IndicatorCost {
  std::string indicator;
  std::uint64_t spans = 0;
  double self_us = 0.0;
};

/// The folded critical-path summary of one trace.
struct TraceReport {
  std::size_t events = 0;  ///< B/E events analyzed.
  std::size_t ops = 0;     ///< Root spans (operations).
  double total_self_us = 0.0;
  std::vector<StageCost> stages;          ///< Self time, largest first.
  std::vector<SlowOp> slowest;            ///< Duration, largest first.
  std::vector<IndicatorCost> indicators;  ///< Self time, largest first.
};

/// Folds parsed events into a TraceReport, keeping the `top_k` slowest
/// root operations.
[[nodiscard]] TraceReport analyze_trace(const std::vector<TraceEvent>& events,
                                        std::size_t top_k = 10);

/// Renders the report as the aligned text tables `cryptodrop
/// trace-report` prints.
[[nodiscard]] std::string format_trace_report(const TraceReport& report);

}  // namespace cryptodrop::obs
