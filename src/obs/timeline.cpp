#include "obs/timeline.hpp"

namespace cryptodrop::obs {

std::string_view timeline_event_kind_name(TimelineEventKind kind) {
  switch (kind) {
    case TimelineEventKind::entropy_delta: return "entropy_delta";
    case TimelineEventKind::type_change: return "type_change";
    case TimelineEventKind::similarity_drop: return "similarity_drop";
    case TimelineEventKind::deletion: return "deletion";
    case TimelineEventKind::funneling: return "funneling";
    case TimelineEventKind::union_indication: return "union";
    case TimelineEventKind::burst_rate: return "burst_rate";
    case TimelineEventKind::suspension: return "suspension";
    case TimelineEventKind::resume: return "resume";
  }
  return "?";
}

void TimelineRing::push(TimelineEvent event) {
  if (capacity_ == 0) return;
  event.seq = total_recorded_++;
  if (events_.size() == capacity_) events_.pop_front();
  events_.push_back(std::move(event));
}

Json to_json(const ForensicTimeline& timeline) {
  Json events = Json::array();
  for (const TimelineEvent& ev : timeline.events) {
    Json entry = Json::object();
    entry.set("seq", ev.seq)
        .set("op_seq", ev.op_seq)
        .set("kind", timeline_event_kind_name(ev.kind))
        .set("points", ev.points)
        .set("score_before", ev.score_before)
        .set("score_after", ev.score_after)
        .set("path", ev.path)
        .set("detail", ev.detail)
        .set("note", ev.note);
    events.push(std::move(entry));
  }

  Json j = Json::object();
  j.set("pid", timeline.pid)
      .set("process_name", timeline.process_name)
      .set("suspended", timeline.suspended)
      .set("final_score", timeline.final_score)
      .set("threshold", timeline.threshold)
      .set("events_recorded", timeline.events_recorded)
      .set("events_dropped", timeline.events_dropped)
      .set("events", std::move(events));
  return j;
}

}  // namespace cryptodrop::obs
