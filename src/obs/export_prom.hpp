// Prometheus text-exposition export for obs::MetricsSnapshot.
//
// The repo's metric names are flat lowercase identifiers with an
// optional dotted label suffix ("daemon_ops_shed_total.queue_full",
// "stage_latency_us.entropy"; obs/names.hpp is the schema of record).
// Prometheus metric names cannot contain dots, so the exporter folds
// the suffix into a label:
//
//   daemon_ops_shed_total.queue_full
//     -> daemon_ops_shed_total{shed_reason="queue_full"}
//
// The label key comes from obs::known_metric_names(): when the family
// is listed with a placeholder suffix ("daemon_ops_shed_total.<shed_reason>")
// the placeholder token is the key; families with fixed dotted suffixes
// (the stage_latency_us.* histograms) use the generic key "label".
//
// Output contract (one `# HELP` + `# TYPE` block per family, then one
// sample line per label value):
//   * families render in lexicographic name order, label values in
//     lexicographic order inside a family — byte-identical output for
//     equal snapshots, independent of registration or thread order;
//   * histograms emit cumulative `_bucket{le="..."}` series (including
//     the `+Inf` bucket) plus `_sum` and `_count`;
//   * HELP text escapes `\` and newline; label values escape `\`, `"`
//     and newline (the exposition-format rules).
//
// docs_check pins the schema: every family this exporter emits for a
// fresh engine/daemon registry appears in obs::known_metric_names(),
// and tests/export_prom_test.cpp asserts both directions.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace cryptodrop::obs {

/// Escapes `\` and newline for a `# HELP` line (exposition format).
std::string prom_escape_help(std::string_view text);

/// Escapes `\`, `"` and newline for a label value.
std::string prom_escape_label(std::string_view text);

/// Sanitizes one registry metric name into a Prometheus family name:
/// the part before the first '.', with any character outside
/// [a-zA-Z0-9_:] replaced by '_'.
std::string prom_family_name(std::string_view metric_name);

/// Renders `snapshot` in Prometheus text exposition format (see the
/// file comment for the exact contract). Deterministic: equal
/// snapshots yield byte-identical text.
std::string to_prometheus(const MetricsSnapshot& snapshot);

}  // namespace cryptodrop::obs
