#include "entropy/entropy.hpp"

#include <cmath>

#include "common/kernels.hpp"

namespace cryptodrop::entropy {

double shannon(ByteView data) {
  if (data.empty()) return 0.0;
  std::uint64_t counts[256] = {};
  kernels::byte_histogram(data.data(), data.size(), counts);
  const double total = static_cast<double>(data.size());
  double e = 0.0;
  for (std::uint64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / total;
    e -= p * std::log2(p);
  }
  return e;
}

void Histogram::add(ByteView data) {
  kernels::byte_histogram(data.data(), data.size(), counts_);
  total_ += data.size();
}

double Histogram::entropy() const {
  if (total_ == 0) return 0.0;
  const double total = static_cast<double>(total_);
  double e = 0.0;
  for (std::uint64_t c : counts_) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / total;
    e -= p * std::log2(p);
  }
  return e;
}

void WeightedEntropyMean::add(double e, std::size_t bytes) {
  const double w = 0.125 * std::round(e) * static_cast<double>(bytes);
  weighted_sum_ += w * e;
  weight_total_ += w;
  ++operations_;
}

double WeightedEntropyMean::mean() const {
  if (weight_total_ <= 0.0) return 0.0;
  return weighted_sum_ / weight_total_;
}

}  // namespace cryptodrop::entropy
