// Shannon entropy indicator (paper §III-C) and the weighted running mean
// the engine keeps per process (paper §IV-C.1).
//
// The weighting solves a concrete problem the authors hit: ransomware
// writes small, low-entropy ransom notes into every directory, and a
// naive average of per-operation entropies lets those swamp the signal.
// Each operation's entropy is weighted by w = 0.125 * round(e) * b
// (b = bytes in the operation), so big high-entropy writes dominate.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.hpp"

namespace cryptodrop::entropy {

/// Shannon entropy of `data` in bits/byte, in [0, 8]. Empty input is 0.
double shannon(ByteView data);

/// Incremental byte histogram for computing entropy over streamed chunks.
class Histogram {
 public:
  /// Folds a chunk into the byte counts.
  void add(ByteView data);
  /// Shannon entropy of everything added so far, in bits/byte.
  [[nodiscard]] double entropy() const;
  /// Total bytes added.
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  std::uint64_t counts_[256] = {};
  std::uint64_t total_ = 0;
};

/// Weighted arithmetic mean of per-operation entropies, weights per the
/// paper: w = 0.125 * round(e) * b. Low-entropy or tiny operations barely
/// move the mean; a zero total weight yields mean() == 0.
class WeightedEntropyMean {
 public:
  /// Folds one atomic read/write of `bytes` bytes with score `e` into
  /// the mean. The caller supplies the score it already computed for the
  /// indicator pass — there is deliberately no ByteView overload, so the
  /// hot path can never recompute a backend's statistic per operation.
  void add(double e, std::size_t bytes);

  /// The weighted mean (0 when no weight has accumulated).
  [[nodiscard]] double mean() const;
  /// Operations folded in so far.
  [[nodiscard]] std::uint64_t operations() const { return operations_; }
  /// True before the first add().
  [[nodiscard]] bool empty() const { return operations_ == 0; }

 private:
  double weighted_sum_ = 0.0;
  double weight_total_ = 0.0;
  std::uint64_t operations_ = 0;
};

}  // namespace cryptodrop::entropy
