// Pluggable entropy-indicator backends (DESIGN.md §14).
//
// The paper scores one statistic — Shannon entropy (§III-C) — but plain
// entropy is the weakest primary indicator against compressed formats
// and partial-encryption strains: a zip member and an AES buffer both
// sit near 8 bits/byte. "Comparison of Entropy Calculation Methods for
// Ransomware Encrypted File Identification" (arXiv 2210.13376) shows
// chi-square and serial-byte-correlation separate the two far better,
// and "Differential Area Analysis for Ransomware" (arXiv 2303.17351)
// adds a head-vs-tail windowed test. This header turns the indicator
// into an interface so the engine can run any of them — or an ensemble
// — behind the same weighted-mean delta machinery.
//
// Every backend maps its raw statistic onto a shared [0, 8] "suspicion
// bits" scale (8 = indistinguishable from uniform ciphertext, 0 =
// maximally structured), so the paper's weighting formula
// w = 0.125 * round(score) * bytes and the delta threshold keep their
// meaning regardless of which statistic is measuring.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"

namespace cryptodrop::entropy {

/// The statistic a backend computes. Order is the schema order used by
/// metric labels and the CLI; docs_check pins obs::known_placeholder_labels
/// ("<entropy_backend>") to this enum.
enum class BackendKind : std::uint8_t {
  shannon,             ///< Paper §III-C Shannon entropy (the default).
  chi_square,          ///< Pearson chi-square against the uniform byte law.
  serial_correlation,  ///< Circular lag-1 byte correlation ("ent" SCC).
  daa,                 ///< Differential area analysis: head vs. tail windows.
};

/// Number of BackendKind values (for fixed-size per-backend tables).
inline constexpr std::size_t kBackendCount = 4;

/// Stable lowercase label for a backend ("shannon", "chi_square", ...)
/// — used in metric names, CLI flags, reports and bench tables.
std::string_view backend_name(BackendKind kind);

/// Parses a backend label back to its kind; std::nullopt when unknown.
std::optional<BackendKind> backend_from_name(std::string_view name);

/// Every backend kind in schema order (the enum order).
const std::vector<BackendKind>& all_backend_kinds();

/// Tunables a backend may consume at construction. Plain value type.
struct BackendOptions {
  /// DAA head/tail window size in bytes (arXiv 2303.17351 samples fixed
  /// windows at both ends of the buffer). Other backends ignore it.
  std::size_t daa_window_bytes = 2048;
};

/// Incremental form of a backend: folds streamed chunks and reports the
/// same score the one-shot Backend::score() would give for the
/// concatenation. Mirrors the Histogram class the Shannon path always
/// had. Not thread-safe; one accumulator per stream.
class Accumulator {
 public:
  virtual ~Accumulator() = default;
  /// Folds one chunk of the stream.
  virtual void add(ByteView data) = 0;
  /// Score of everything folded so far, on the shared [0, 8] scale.
  [[nodiscard]] virtual double score() const = 0;
  /// Total bytes folded so far.
  [[nodiscard]] virtual std::uint64_t total() const = 0;
};

/// One entropy statistic. Stateless and immutable after construction:
/// score() is const and thread-safe, so the engine shares one instance
/// across all of its shards.
class Backend {
 public:
  virtual ~Backend() = default;
  /// Which statistic this is.
  [[nodiscard]] virtual BackendKind kind() const = 0;
  /// One-shot score of a whole buffer on the shared [0, 8] scale.
  /// Empty input scores 0 for every backend.
  [[nodiscard]] virtual double score(ByteView data) const = 0;
  /// A fresh streaming accumulator for this statistic.
  [[nodiscard]] virtual std::unique_ptr<Accumulator> make_accumulator() const = 0;
  /// Convenience: backend_name(kind()).
  [[nodiscard]] std::string_view name() const { return backend_name(kind()); }
};

/// Constructs a backend. The shannon backend reproduces entropy::shannon
/// bit-for-bit (the engine's default path must stay golden-identical).
std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      const BackendOptions& options = {});

}  // namespace cryptodrop::entropy
