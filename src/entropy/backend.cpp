#include "entropy/backend.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/buffer_pool.hpp"
#include "common/kernels.hpp"
#include "entropy/entropy.hpp"

namespace cryptodrop::entropy {

namespace {

// --- shared statistic kernels ------------------------------------------
// Each backend has a one-shot form (Backend::score) and a streaming form
// (Accumulator); both funnel into these kernels so they cannot drift.

/// Gain applied to |scc| before clamping: random data sits at
/// |scc| ~ 1/sqrt(n) (well under 1/4 for any op worth scoring), while
/// text and other structured bytes exceed 1/4 comfortably, so the gain
/// spreads the interesting region over the full [0, 8] scale.
constexpr double kSerialGain = 4.0;

/// Chi-square score from a byte histogram: Pearson X² against the
/// uniform law, normalized per byte (X²/n → 0 for ciphertext as n
/// grows; ≈ 2.5 for ASCII text independent of n), then mapped to
/// (0, 8]: score = 8 / (1 + X²/n).
double chi_square_from_counts(const std::uint64_t counts[256],
                              std::uint64_t total) {
  if (total == 0) return 0.0;
  const double expected = static_cast<double>(total) / 256.0;
  double x = 0.0;
  for (std::size_t i = 0; i < 256; ++i) {
    const double d = static_cast<double>(counts[i]) - expected;
    x += d * d / expected;
  }
  return 8.0 / (1.0 + x / static_cast<double>(total));
}

/// Serial-correlation score from the circular lag-1 sums ("ent" SCC):
/// scc = (n·Σ b·next(b) − (Σb)²) / (n·Σb² − (Σb)²) with the last byte
/// wrapping to the first, which is what makes chunked accumulation
/// exactly equal the one-shot form. Degenerate streams (constant bytes,
/// n < 2) are maximally structured: score 0.
double serial_from_sums(std::uint64_t n, double sum_b, double sum_b2,
                        double sum_prod_circular) {
  if (n == 0) return 0.0;
  const double dn = static_cast<double>(n);
  const double den = dn * sum_b2 - sum_b * sum_b;
  double scc = 1.0;
  if (den != 0.0) scc = (dn * sum_prod_circular - sum_b * sum_b) / den;
  const double structured = std::min(1.0, kSerialGain * std::abs(scc));
  return 8.0 * (1.0 - structured);
}

/// One DAA window's score from its byte histogram: total-variation
/// distance from uniform (the "area" between the observed and flat
/// distributions), mapped to [0, 8] as 8·(1 − tv). Ciphertext windows
/// have small tv (sampling noise only); structured windows have large
/// tv. Split from the per-buffer form so ring-buffer segments can be
/// histogrammed separately and scored once.
double daa_score_from_counts(const std::uint64_t counts[256],
                             std::uint64_t total) {
  if (total == 0) return 0.0;
  const double dn = static_cast<double>(total);
  double tv = 0.0;
  for (std::size_t i = 0; i < 256; ++i) {
    tv += std::abs(static_cast<double>(counts[i]) / dn - 1.0 / 256.0);
  }
  tv *= 0.5;
  return 8.0 * (1.0 - tv);
}

double daa_window_score(const std::uint8_t* data, std::size_t n) {
  if (n == 0) return 0.0;
  std::uint64_t counts[256] = {};
  kernels::byte_histogram(data, n, counts);
  return daa_score_from_counts(counts, n);
}

// --- shannon ------------------------------------------------------------

/// Streaming Shannon entropy: the Histogram class the engine always had.
class ShannonAccumulator final : public Accumulator {
 public:
  // cryptodrop:hot
  void add(ByteView data) override { histogram_.add(data); }
  // cryptodrop:hot
  [[nodiscard]] double score() const override { return histogram_.entropy(); }
  [[nodiscard]] std::uint64_t total() const override {
    return histogram_.total();
  }

 private:
  Histogram histogram_;
};

class ShannonBackend final : public Backend {
 public:
  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::shannon;
  }
  // cryptodrop:hot
  [[nodiscard]] double score(ByteView data) const override {
    return shannon(data);
  }
  [[nodiscard]] std::unique_ptr<Accumulator> make_accumulator() const override {
    return std::make_unique<ShannonAccumulator>();
  }
};

// --- chi_square ---------------------------------------------------------

/// Streaming chi-square: a byte histogram, scored by the shared kernel.
class ChiSquareAccumulator final : public Accumulator {
 public:
  // cryptodrop:hot
  void add(ByteView data) override {
    kernels::byte_histogram(data.data(), data.size(), counts_);
    total_ += data.size();
  }
  // cryptodrop:hot
  [[nodiscard]] double score() const override {
    return chi_square_from_counts(counts_, total_);
  }
  [[nodiscard]] std::uint64_t total() const override { return total_; }

 private:
  std::uint64_t counts_[256] = {};
  std::uint64_t total_ = 0;
};

class ChiSquareBackend final : public Backend {
 public:
  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::chi_square;
  }
  // cryptodrop:hot
  [[nodiscard]] double score(ByteView data) const override {
    if (data.empty()) return 0.0;
    std::uint64_t counts[256] = {};
    kernels::byte_histogram(data.data(), data.size(), counts);
    return chi_square_from_counts(counts, data.size());
  }
  [[nodiscard]] std::unique_ptr<Accumulator> make_accumulator() const override {
    return std::make_unique<ChiSquareAccumulator>();
  }
};

// --- serial_correlation -------------------------------------------------

/// Streaming circular SCC: carries the running sums plus the first and
/// last byte seen so the wraparound product (and chunk boundaries) match
/// the one-shot computation exactly.
class SerialCorrelationAccumulator final : public Accumulator {
 public:
  // cryptodrop:hot
  void add(ByteView data) override {
    for (std::uint8_t byte : data) {
      const double b = static_cast<double>(byte);
      if (n_ == 0) {
        first_ = b;
      } else {
        sum_prod_ += prev_ * b;
      }
      sum_b_ += b;
      sum_b2_ += b * b;
      prev_ = b;
      ++n_;
    }
  }
  // cryptodrop:hot
  [[nodiscard]] double score() const override {
    return serial_from_sums(n_, sum_b_, sum_b2_, sum_prod_ + prev_ * first_);
  }
  [[nodiscard]] std::uint64_t total() const override { return n_; }

 private:
  std::uint64_t n_ = 0;
  double first_ = 0.0;
  double prev_ = 0.0;
  double sum_b_ = 0.0;
  double sum_b2_ = 0.0;
  double sum_prod_ = 0.0;
};

class SerialCorrelationBackend final : public Backend {
 public:
  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::serial_correlation;
  }
  // cryptodrop:hot
  [[nodiscard]] double score(ByteView data) const override {
    if (data.empty()) return 0.0;
    // One-shot form runs on the unrolled integer kernel. All three sums
    // are exact integers, and the streamed double accumulation above is
    // also exact (every partial sum is an integer far below 2^53), so
    // the two forms agree bit-for-bit — the chunking-invariance test
    // holds this.
    std::uint64_t sum_b = 0;
    std::uint64_t sum_b2 = 0;
    std::uint64_t sum_prod = 0;
    kernels::serial_lag1_sums(data.data(), data.size(), sum_b, sum_b2,
                              sum_prod);
    const std::uint64_t wrap =
        static_cast<std::uint64_t>(data.data()[data.size() - 1]) *
        static_cast<std::uint64_t>(data.data()[0]);
    return serial_from_sums(data.size(), static_cast<double>(sum_b),
                            static_cast<double>(sum_b2),
                            static_cast<double>(sum_prod + wrap));
  }
  [[nodiscard]] std::unique_ptr<Accumulator> make_accumulator() const override {
    return std::make_unique<SerialCorrelationAccumulator>();
  }
};

// --- daa ----------------------------------------------------------------

/// Streaming DAA: keeps the first `window` bytes and a ring buffer of
/// the last `window` bytes; scoring is min(head, tail) so a buffer reads
/// as ciphertext only when *both* sampled regions do. This is exactly
/// the surface the prepend-a-plaintext-header attack (arXiv 2303.17351
/// §Attacks) targets — see the evasion test.
///
/// The tail ring advances by bulk memcpy (at most two segments per
/// add), and a chunk no smaller than the window simply replaces the
/// whole ring — a chunk boundary can land anywhere, including inside
/// either window, without changing what the last `window` bytes are.
/// The adversarial-split chunking test pins streamed == one-shot at
/// exactly those boundaries. Both window buffers come from the
/// per-thread scratch pool: accumulators are churned per stream, and
/// their window-sized storage is the allocation that pooling exists to
/// recycle.
class DaaAccumulator final : public Accumulator {
 public:
  explicit DaaAccumulator(std::size_t window)
      : window_(std::max<std::size_t>(window, 1)),
        head_(window_),
        ring_(window_) {}

  // cryptodrop:hot
  void add(ByteView data) override {
    const std::uint8_t* p = data.data();
    const std::size_t n = data.size();
    total_ += n;
    if (n == 0) return;
    if (head_->size() < window_) {
      const std::size_t take = std::min(window_ - head_->size(), n);
      head_->insert(head_->end(), p, p + take);
    }
    if (ring_->size() != window_) ring_->resize(window_);
    if (n >= window_) {
      // Only the last window_ bytes of this chunk can survive: they
      // *are* the new tail.
      std::memcpy(ring_->data(), p + (n - window_), window_);
      start_ = 0;
      len_ = window_;
      return;
    }
    const std::size_t w = (start_ + len_) % window_;
    const std::size_t first = std::min(n, window_ - w);
    std::memcpy(ring_->data() + w, p, first);
    if (first < n) std::memcpy(ring_->data(), p + first, n - first);
    len_ += n;
    if (len_ > window_) {
      start_ = (start_ + (len_ - window_)) % window_;
      len_ = window_;
    }
  }
  // cryptodrop:hot
  [[nodiscard]] double score() const override {
    if (total_ == 0) return 0.0;
    const double head = daa_window_score(head_->data(), head_->size());
    // The tail histogram reads the ring in place — two segments, no
    // linearization copy. TV distance is order-blind, so segment order
    // is immaterial.
    std::uint64_t counts[256] = {};
    const std::size_t seg = std::min(len_, window_ - start_);
    kernels::byte_histogram(ring_->data() + start_, seg, counts);
    kernels::byte_histogram(ring_->data(), len_ - seg, counts);
    return std::min(head, daa_score_from_counts(counts, len_));
  }
  [[nodiscard]] std::uint64_t total() const override { return total_; }

 private:
  std::size_t window_;
  std::uint64_t total_ = 0;
  Scratch<std::uint8_t> head_;
  Scratch<std::uint8_t> ring_;
  std::size_t start_ = 0;  ///< Ring index of the oldest retained byte.
  std::size_t len_ = 0;    ///< Bytes currently retained in the ring.
};

class DaaBackend final : public Backend {
 public:
  explicit DaaBackend(std::size_t window) : window_(std::max<std::size_t>(window, 1)) {}

  [[nodiscard]] BackendKind kind() const override { return BackendKind::daa; }
  // cryptodrop:hot
  [[nodiscard]] double score(ByteView data) const override {
    if (data.empty()) return 0.0;
    const std::size_t w = std::min(window_, data.size());
    const double head = daa_window_score(data.data(), w);
    const double tail = daa_window_score(data.data() + (data.size() - w), w);
    return std::min(head, tail);
  }
  [[nodiscard]] std::unique_ptr<Accumulator> make_accumulator() const override {
    return std::make_unique<DaaAccumulator>(window_);
  }

 private:
  std::size_t window_;
};

}  // namespace

std::string_view backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::shannon:
      return "shannon";
    case BackendKind::chi_square:
      return "chi_square";
    case BackendKind::serial_correlation:
      return "serial_correlation";
    case BackendKind::daa:
      return "daa";
  }
  return "unknown";
}

std::optional<BackendKind> backend_from_name(std::string_view name) {
  for (BackendKind kind : all_backend_kinds()) {
    if (name == backend_name(kind)) return kind;
  }
  return std::nullopt;
}

const std::vector<BackendKind>& all_backend_kinds() {
  static const std::vector<BackendKind> kAll = {
      BackendKind::shannon,
      BackendKind::chi_square,
      BackendKind::serial_correlation,
      BackendKind::daa,
  };
  return kAll;
}

std::unique_ptr<Backend> make_backend(BackendKind kind,
                                      const BackendOptions& options) {
  switch (kind) {
    case BackendKind::shannon:
      return std::make_unique<ShannonBackend>();
    case BackendKind::chi_square:
      return std::make_unique<ChiSquareBackend>();
    case BackendKind::serial_correlation:
      return std::make_unique<SerialCorrelationBackend>();
    case BackendKind::daa:
      return std::make_unique<DaaBackend>(options.daa_window_bytes);
  }
  return std::make_unique<ShannonBackend>();
}

}  // namespace cryptodrop::entropy
