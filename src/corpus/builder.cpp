#include "corpus/builder.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "common/text.hpp"
#include "crypto/sha256.hpp"
#include "vfs/path.hpp"

namespace cryptodrop::corpus {

const std::vector<KindWeight>& default_type_weights() {
  // Productivity-document-heavy mix per the user-directory studies the
  // paper cites; media and archives fill out the remainder.
  static const std::vector<KindWeight> kWeights = {
      {FileKind::pdf, 13.0}, {FileKind::docx, 11.0}, {FileKind::doc, 6.0},
      {FileKind::xlsx, 7.5}, {FileKind::xls, 3.5},   {FileKind::pptx, 4.5},
      {FileKind::ppt, 2.0},  {FileKind::odt, 4.0},   {FileKind::txt, 10.0},
      {FileKind::md, 3.5},   {FileKind::csv, 4.0},   {FileKind::html, 3.5},
      {FileKind::xml, 2.5},  {FileKind::rtf, 2.0},   {FileKind::log, 2.0},
      {FileKind::ps, 1.0},   {FileKind::jpg, 8.5},   {FileKind::png, 3.5},
      {FileKind::gif, 1.5},  {FileKind::bmp, 1.0},   {FileKind::mp3, 2.5},
      {FileKind::wav, 0.8},  {FileKind::m4a, 0.7},   {FileKind::flac, 0.5},
      {FileKind::zip, 1.0},  {FileKind::gz, 0.5},
  };
  return kWeights;
}

std::size_t Corpus::total_bytes() const {
  std::size_t total = 0;
  for (const ManifestEntry& entry : manifest) total += entry.size;
  return total;
}

namespace {

/// Builds the nested directory tree: each new directory hangs off a
/// random existing one (depth-capped), yielding the organic lopsided
/// trees Figure 4 visualizes.
std::vector<std::string> build_tree(vfs::FileSystem& fs, const CorpusSpec& spec,
                                    Rng& rng) {
  std::vector<std::string> dirs;
  dirs.push_back(spec.root);
  fs.mkdir_raw(spec.root);

  std::unordered_set<std::string> used_names;
  while (dirs.size() < spec.total_dirs) {
    const std::string& parent = dirs[static_cast<std::size_t>(
        rng.uniform(0, dirs.size() - 1))];
    if (vfs::path_depth(parent) >=
        vfs::path_depth(spec.root) + spec.max_depth) {
      continue;
    }
    std::string name = synth_token(rng, 3, 10);
    std::string full = vfs::path_join(parent, name);
    if (!used_names.insert(full).second) continue;
    fs.mkdir_raw(full);
    dirs.push_back(std::move(full));
  }
  return dirs;
}

}  // namespace

Corpus build_corpus(vfs::FileSystem& fs, const CorpusSpec& spec, Rng& rng) {
  const auto& weights =
      spec.type_weights.empty() ? default_type_weights() : spec.type_weights;
  std::vector<double> weight_values;
  weight_values.reserve(weights.size());
  for (const KindWeight& kw : weights) weight_values.push_back(kw.weight);

  Corpus corpus;
  corpus.root = spec.root;
  const std::vector<std::string> dirs = build_tree(fs, spec, rng);

  std::unordered_set<std::string> used_paths;
  corpus.manifest.reserve(spec.total_files);
  while (corpus.manifest.size() < spec.total_files) {
    const FileKind kind = weights[rng.weighted_index(weight_values)].kind;
    std::size_t size = sample_size(kind, rng);
    if (spec.min_file_size > 0 && size < spec.min_file_size) {
      size = spec.min_file_size;
    }

    const std::string& dir = dirs[static_cast<std::size_t>(
        rng.uniform(0, dirs.size() - 1))];
    std::string stem = synth_token(rng, 4, 12);
    if (rng.chance(0.3)) stem += "_" + std::to_string(rng.uniform(1, 2015));
    std::string path = vfs::path_join(
        dir, stem + "." + std::string(kind_extension(kind)));
    if (!used_paths.insert(path).second) continue;

    Bytes content = generate_content(kind, size, rng);
    const bool read_only = rng.chance(spec.read_only_fraction);

    ManifestEntry entry;
    entry.path = path;
    entry.kind = kind;
    entry.size = content.size();
    entry.read_only = read_only;
    if (spec.compute_hashes) {
      entry.sha256 = crypto::sha256_hex(ByteView(content));
    }

    const Status put = fs.put_file_raw(path, std::move(content), read_only);
    assert(put.is_ok());
    (void)put;
    entry.original = fs.read_unfiltered(path);
    corpus.manifest.push_back(std::move(entry));
  }
  return corpus;
}

std::vector<std::size_t> lost_file_indices(const vfs::FileSystem& fs,
                                           const Corpus& corpus) {
  // Collect the content buffers currently present anywhere on the volume.
  // Copy-on-write guarantees an untouched corpus file still references
  // its original buffer, wherever it was moved.
  std::unordered_set<const Bytes*> present;
  for (const std::string& path : fs.list_files_recursive("")) {
    if (auto data = fs.read_unfiltered(path)) present.insert(data.get());
  }
  std::vector<std::size_t> lost;
  for (std::size_t i = 0; i < corpus.manifest.size(); ++i) {
    if (!present.contains(corpus.manifest[i].original.get())) {
      lost.push_back(i);
    }
  }
  return lost;
}

std::size_t count_files_lost(const vfs::FileSystem& fs, const Corpus& corpus) {
  return lost_file_indices(fs, corpus).size();
}

}  // namespace cryptodrop::corpus
