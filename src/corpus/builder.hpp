// Corpus construction and loss accounting.
//
// Reproduces the paper's experimental document set: 5,099 files spread
// over a nested tree of 511 directories inside the victim's documents
// folder, with per-type proportions modeled on user-documents studies
// (Hicks et al., Agrawal et al.), plus the SHA-256 manifest the paper
// uses after each run "to ensure they were present and unmodified".
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "corpus/generators.hpp"
#include "vfs/filesystem.hpp"

namespace cryptodrop::corpus {

/// Weight of one file kind in the corpus mix.
struct KindWeight {
  FileKind kind;
  double weight;
};

/// Shape of the corpus to build; defaults reproduce the paper's set.
struct CorpusSpec {
  /// Victim documents root; everything the corpus creates lives below it.
  std::string root = "users/victim/documents";
  std::size_t total_files = 5099;
  /// Total directories including the root (paper: 511).
  std::size_t total_dirs = 511;
  std::size_t max_depth = 6;
  /// Fraction of files flagged read-only (the paper's corpus had some;
  /// they are what tripped up the GPcode sample's deletes).
  double read_only_fraction = 0.04;
  /// Files smaller than this are not generated (0 = no limit). Used by
  /// the §V-C small-file ablation.
  std::size_t min_file_size = 0;
  /// Per-kind mix; empty = default_type_weights().
  std::vector<KindWeight> type_weights;
  /// Compute SHA-256 per file into the manifest (slightly slower build).
  bool compute_hashes = true;
};

/// Default type mix (fractions of the corpus, productivity-heavy like a
/// real documents folder).
const std::vector<KindWeight>& default_type_weights();

/// Everything needed to account for one corpus file after a run.
struct ManifestEntry {
  std::string path;
  FileKind kind{};
  std::size_t size = 0;
  bool read_only = false;
  /// The exact content buffer placed in the filesystem. Because file data
  /// is copy-on-write, an unmodified file (even after moves/renames)
  /// still references this buffer — which makes loss accounting O(files)
  /// instead of O(bytes).
  std::shared_ptr<const Bytes> original;
  /// Hex SHA-256 of the content (empty if spec.compute_hashes == false).
  std::string sha256;
};

/// A built corpus: its root plus one manifest entry per file.
struct Corpus {
  std::string root;
  std::vector<ManifestEntry> manifest;

  /// Number of files in the corpus.
  [[nodiscard]] std::size_t file_count() const { return manifest.size(); }
  /// Sum of all file sizes at build time.
  [[nodiscard]] std::size_t total_bytes() const;
};

/// Builds the directory tree and files into `fs` (unfiltered — the corpus
/// predates any monitored process). Deterministic in `rng`.
Corpus build_corpus(vfs::FileSystem& fs, const CorpusSpec& spec, Rng& rng);

/// A corpus file is *lost* when its original content no longer exists
/// anywhere in the filesystem — encrypted in place, deleted, or replaced.
/// A file that was merely moved or renamed (content intact) is not lost.
/// This matches the paper's SHA-256 presence check.
std::size_t count_files_lost(const vfs::FileSystem& fs, const Corpus& corpus);

/// Indices (into corpus.manifest) of the lost files.
std::vector<std::size_t> lost_file_indices(const vfs::FileSystem& fs,
                                           const Corpus& corpus);

}  // namespace cryptodrop::corpus
