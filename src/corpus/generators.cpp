#include "corpus/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/text.hpp"
#include "crypto/chacha20.hpp"

namespace cryptodrop::corpus {

namespace {

/// High-entropy filler standing in for deflate/JPEG-entropy-coded/MP3
/// payload: a ChaCha20 keystream keyed off the corpus Rng. Indistinguishable
/// from compressed data for every indicator we model (entropy ~8,
/// signature-free, unique per file).
Bytes compressed_payload(Rng& rng, std::size_t n) {
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(12);
  crypto::ChaCha20 stream(key, nonce);
  return stream.keystream(n);
}

/// Pads or trims `data` to exactly `target` bytes using `filler` bytes.
void fit_to(Bytes& data, std::size_t target, std::uint8_t filler = ' ') {
  if (data.size() > target) {
    data.resize(target);
  } else {
    data.resize(target, filler);
  }
}

void put_u32le(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u32be(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

// --- text family ------------------------------------------------------

Bytes gen_txt(Rng& rng, std::size_t n) {
  return to_bytes(synth_prose(rng, n));
}

Bytes gen_md(Rng& rng, std::size_t n) {
  std::string out = "# " + synth_word(rng) + " " + synth_word(rng) + "\n\n";
  while (out.size() < n) {
    if (rng.chance(0.25)) out += "## " + synth_word(rng) + "\n\n";
    if (rng.chance(0.3)) out += "- " + synth_prose(rng, 40) + "\n";
    out += synth_prose(rng, static_cast<std::size_t>(rng.uniform(60, 240))) + "\n\n";
  }
  out.resize(n);
  return to_bytes(out);
}

Bytes gen_csv(Rng& rng, std::size_t n) {
  std::string out;
  const std::size_t cols = static_cast<std::size_t>(rng.uniform(3, 9));
  while (out.size() < n) {
    out += synth_csv(rng, 16, cols);
  }
  out.resize(n);
  return to_bytes(out);
}

Bytes gen_log(Rng& rng, std::size_t n) {
  std::string out;
  while (out.size() < n) {
    out += "2015-";
    out += std::to_string(rng.uniform(1, 12));
    out += "-";
    out += std::to_string(rng.uniform(1, 28));
    out += rng.chance(0.8) ? " INFO " : " WARN ";
    out += synth_prose(rng, static_cast<std::size_t>(rng.uniform(30, 90)));
    out += "\n";
  }
  out.resize(n);
  return to_bytes(out);
}

Bytes gen_html(Rng& rng, std::size_t n) {
  std::string out = "<!DOCTYPE html>\n<html>\n<head><title>" + synth_word(rng) +
                    "</title></head>\n<body>\n";
  while (out.size() + 16 < n) {
    out += "<p>" + synth_prose(rng, static_cast<std::size_t>(rng.uniform(60, 200))) + "</p>\n";
  }
  out += "</body></html>\n";
  Bytes b = to_bytes(out);
  fit_to(b, std::max<std::size_t>(n, 32));
  return b;
}

Bytes gen_xml(Rng& rng, std::size_t n) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<" +
                    synth_token(rng, 4, 8) + ">\n";
  while (out.size() + 16 < n) {
    const std::string tag = synth_token(rng, 3, 9);
    out += "  <" + tag + ">" + synth_prose(rng, static_cast<std::size_t>(rng.uniform(20, 80))) +
           "</" + tag + ">\n";
  }
  Bytes b = to_bytes(out);
  fit_to(b, std::max<std::size_t>(n, 48));
  return b;
}

Bytes gen_rtf(Rng& rng, std::size_t n) {
  std::string out = "{\\rtf1\\ansi\\deff0 {\\fonttbl {\\f0 Times New Roman;}}\n";
  while (out.size() + 8 < n) {
    out += "\\par " + synth_prose(rng, static_cast<std::size_t>(rng.uniform(60, 180))) + "\n";
  }
  out += "}";
  Bytes b = to_bytes(out);
  fit_to(b, std::max<std::size_t>(n, 64));
  return b;
}

Bytes gen_ps(Rng& rng, std::size_t n) {
  std::string out = "%!PS-Adobe-3.0\n%%Creator: synth\n%%Pages: 1\n";
  while (out.size() + 16 < n) {
    out += std::to_string(rng.uniform(10, 600)) + " " + std::to_string(rng.uniform(10, 760)) +
           " moveto (" + synth_word(rng) + ") show\n";
  }
  out += "showpage\n";
  Bytes b = to_bytes(out);
  fit_to(b, std::max<std::size_t>(n, 48));
  return b;
}

// --- document containers ----------------------------------------------

/// Minimal ZIP-shaped container: local file headers with real member
/// names (the magic prober looks for them early) followed by
/// "deflated" (keystream) payloads.
Bytes gen_zip_like(Rng& rng, std::size_t n, const std::vector<std::string>& members) {
  Bytes out;
  const std::size_t per_member = std::max<std::size_t>(n / std::max<std::size_t>(members.size(), 1), 64);
  for (const std::string& name : members) {
    if (out.size() >= n) break;
    append(out, std::string_view("PK\x03\x04", 4));
    out.push_back(0x14); out.push_back(0x00);       // version
    out.push_back(0x00); out.push_back(0x00);       // flags
    out.push_back(0x08); out.push_back(0x00);       // method: deflate
    put_u32le(out, static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff)));  // time+date
    put_u32le(out, static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff)));  // crc32
    const std::size_t payload = std::min(per_member, n - std::min(n, out.size()));
    put_u32le(out, static_cast<std::uint32_t>(payload));  // compressed size
    put_u32le(out, static_cast<std::uint32_t>(payload * 3));  // uncompressed
    out.push_back(static_cast<std::uint8_t>(name.size()));
    out.push_back(0x00);
    out.push_back(0x00); out.push_back(0x00);       // extra len
    append(out, name);
    append(out, ByteView(compressed_payload(rng, payload)));
  }
  // End-of-central-directory stub.
  append(out, std::string_view("PK\x05\x06", 4));
  out.resize(std::max(out.size(), n));
  return out;
}

// The distinguishing member (word/, xl/, ppt/) is emitted first so the
// type prober finds it in its early-bytes window — mirroring how file(1)
// keys OOXML subtypes off the first directory-named member it sees.
Bytes gen_docx(Rng& rng, std::size_t n) {
  return gen_zip_like(rng, n, {"word/document.xml", "[Content_Types].xml",
                               "word/styles.xml", "word/media/image1.png"});
}

Bytes gen_xlsx(Rng& rng, std::size_t n) {
  return gen_zip_like(rng, n, {"xl/workbook.xml", "[Content_Types].xml",
                               "xl/worksheets/sheet1.xml", "xl/sharedStrings.xml"});
}

Bytes gen_pptx(Rng& rng, std::size_t n) {
  return gen_zip_like(rng, n, {"ppt/presentation.xml", "[Content_Types].xml",
                               "ppt/slides/slide1.xml", "ppt/media/image1.jpeg"});
}

Bytes gen_odt(Rng& rng, std::size_t n) {
  Bytes out;
  append(out, std::string_view("PK\x03\x04", 4));
  // ODF stores the mimetype uncompressed as the first member.
  static constexpr std::string_view kMime =
      "mimetypeapplication/vnd.oasis.opendocument.text";
  out.resize(30, 0);
  out[8] = 0x00;  // method: stored
  append(out, kMime);
  Bytes rest = gen_zip_like(rng, n > out.size() ? n - out.size() : 64,
                            {"content.xml", "styles.xml", "meta.xml"});
  append(out, ByteView(rest));
  return out;
}

Bytes gen_pdf(Rng& rng, std::size_t n) {
  std::string head = "%PDF-1.5\n%\xe2\xe3\xcf\xd3\n";
  Bytes out = to_bytes(head);
  int obj = 1;
  while (out.size() + 128 < n) {
    const std::size_t remaining = n - out.size();
    std::string obj_head = std::to_string(obj) + " 0 obj\n<< /Length " +
                           std::to_string(remaining) + " /Filter /FlateDecode >>\nstream\n";
    append(out, obj_head);
    // ~85% of a modern PDF is compressed streams.
    const std::size_t payload =
        std::min(remaining, std::max<std::size_t>(static_cast<std::size_t>(
            static_cast<double>(remaining) * 0.85), 64));
    append(out, ByteView(compressed_payload(rng, payload)));
    append(out, std::string_view("\nendstream\nendobj\n"));
    ++obj;
    if (out.size() + 256 >= n) break;
  }
  append(out, std::string_view("trailer\n<< /Size 4 >>\nstartxref\n0\n%%EOF\n"));
  out.resize(std::max(out.size(), n));
  return out;
}

/// Legacy OLE compound document (.doc/.xls/.ppt): structured FAT header +
/// mixed text/binary sectors; moderate entropy, far below the OOXML zips.
Bytes gen_ole(Rng& rng, std::size_t n) {
  Bytes out;
  append(out, std::string_view("\xd0\xcf\x11\xe0\xa1\xb1\x1a\xe1", 8));
  out.resize(512, 0);  // header sector
  out[28] = 0xfe; out[29] = 0xff;  // byte order mark
  while (out.size() < n) {
    if (rng.chance(0.6)) {
      // Text sector: document prose stored as 8-bit text.
      append(out, synth_prose(rng, 512));
    } else if (rng.chance(0.5)) {
      // Formatting tables: sparse binary with lots of zeros.
      Bytes sector(512, 0);
      for (std::size_t i = 0; i < sector.size(); i += 16) {
        sector[i] = static_cast<std::uint8_t>(rng.uniform(0, 255));
        sector[i + 1] = static_cast<std::uint8_t>(rng.uniform(0, 7));
      }
      append(out, ByteView(sector));
    } else {
      // Embedded object data.
      append(out, ByteView(rng.bytes(512)));
    }
  }
  out.resize(std::max<std::size_t>(n, 512));
  return out;
}

// --- images -------------------------------------------------------------

Bytes gen_jpg(Rng& rng, std::size_t n) {
  Bytes out;
  append(out, std::string_view("\xff\xd8\xff\xe0", 4));
  out.push_back(0x00); out.push_back(0x10);
  append(out, std::string_view("JFIF", 4));
  out.resize(20, 0);
  // Quantization/huffman table segments: structured, low entropy.
  for (int seg = 0; seg < 4; ++seg) {
    out.push_back(0xff);
    out.push_back(static_cast<std::uint8_t>(0xc0 + seg));
    for (int i = 0; i < 64; ++i) {
      out.push_back(static_cast<std::uint8_t>((i * 3 + seg) & 0x7f));
    }
  }
  out.push_back(0xff); out.push_back(0xda);  // start of scan
  if (n > out.size() + 2) {
    append(out, ByteView(compressed_payload(rng, n - out.size() - 2)));
  }
  out.push_back(0xff); out.push_back(0xd9);
  return out;
}

Bytes gen_png(Rng& rng, std::size_t n) {
  Bytes out;
  append(out, std::string_view("\x89PNG\r\n\x1a\n", 8));
  put_u32be(out, 13);
  append(out, std::string_view("IHDR"));
  put_u32be(out, static_cast<std::uint32_t>(rng.uniform(64, 2048)));  // width
  put_u32be(out, static_cast<std::uint32_t>(rng.uniform(64, 2048)));  // height
  out.push_back(8); out.push_back(6); out.push_back(0); out.push_back(0); out.push_back(0);
  put_u32be(out, 0);  // crc stub
  if (n > out.size() + 24) {
    const std::size_t payload = n - out.size() - 24;
    put_u32be(out, static_cast<std::uint32_t>(payload));
    append(out, std::string_view("IDAT"));
    append(out, ByteView(compressed_payload(rng, payload)));
    put_u32be(out, 0);
  }
  put_u32be(out, 0);
  append(out, std::string_view("IEND"));
  put_u32be(out, 0);
  return out;
}

Bytes gen_gif(Rng& rng, std::size_t n) {
  Bytes out;
  append(out, std::string_view("GIF89a"));
  out.push_back(0x40); out.push_back(0x01);  // width 320
  out.push_back(0xf0); out.push_back(0x00);  // height 240
  out.push_back(0xf7); out.push_back(0x00); out.push_back(0x00);
  // Global palette: smooth ramp (low entropy).
  for (int i = 0; i < 256 && out.size() + 3 < n; ++i) {
    out.push_back(static_cast<std::uint8_t>(i));
    out.push_back(static_cast<std::uint8_t>(255 - i));
    out.push_back(static_cast<std::uint8_t>(i / 2));
  }
  if (n > out.size() + 1) {
    append(out, ByteView(compressed_payload(rng, n - out.size() - 1)));
  }
  out.push_back(0x3b);  // trailer
  return out;
}

Bytes gen_bmp(Rng& rng, std::size_t n) {
  Bytes out;
  append(out, std::string_view("BM"));
  put_u32le(out, static_cast<std::uint32_t>(n));
  put_u32le(out, 0);
  put_u32le(out, 54);  // pixel data offset
  put_u32le(out, 40);  // DIB header size
  put_u32le(out, 320);
  put_u32le(out, 240);
  out.resize(54, 0);
  // Uncompressed pixels: scanlines drawn from a small palette with light
  // noise — genuinely low byte entropy, unlike every compressed image
  // format. (A smooth gradient would cycle through all 256 byte values
  // and look uniform to a histogram.)
  std::uint8_t palette[6];
  for (auto& color : palette) color = static_cast<std::uint8_t>(rng.uniform(0, 255));
  constexpr std::size_t kRowBytes = 960;  // 320 px * 3 channels
  while (out.size() < n) {
    const std::uint8_t base = palette[rng.uniform(0, 5)];
    for (std::size_t i = 0; i < kRowBytes && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(base + (rng.chance(0.25) ? 1 : 0)));
    }
  }
  return out;
}

// --- audio --------------------------------------------------------------

Bytes gen_mp3(Rng& rng, std::size_t n) {
  Bytes out;
  append(out, std::string_view("ID3"));
  out.push_back(3); out.push_back(0); out.push_back(0);
  const std::string title = synth_word(rng) + " " + synth_word(rng);
  put_u32be(out, static_cast<std::uint32_t>(title.size() + 10));
  append(out, std::string_view("TIT2"));
  put_u32be(out, static_cast<std::uint32_t>(title.size()));
  out.push_back(0); out.push_back(0);
  append(out, title);
  while (out.size() + 4 < n) {
    out.push_back(0xff); out.push_back(0xfb); out.push_back(0x90); out.push_back(0x00);
    const std::size_t frame = std::min<std::size_t>(414, n - out.size());
    append(out, ByteView(compressed_payload(rng, frame)));
  }
  out.resize(std::max<std::size_t>(n, 32));
  return out;
}

Bytes gen_wav(Rng& rng, std::size_t n) {
  Bytes out;
  append(out, std::string_view("RIFF"));
  put_u32le(out, static_cast<std::uint32_t>(n > 8 ? n - 8 : 0));
  append(out, std::string_view("WAVEfmt "));
  put_u32le(out, 16);
  out.push_back(1); out.push_back(0);   // PCM
  out.push_back(2); out.push_back(0);   // stereo
  put_u32le(out, 44100);
  put_u32le(out, 176400);
  out.push_back(4); out.push_back(0);
  out.push_back(16); out.push_back(0);
  append(out, std::string_view("data"));
  put_u32le(out, static_cast<std::uint32_t>(n > 44 ? n - 44 : 0));
  // PCM: a few summed sine voices + light noise, quantized to 12 bits —
  // uncompressed audio carries ~6 bits/byte, well below the compressed
  // formats (this gap is what lets a converter's output nudge the
  // write-entropy mean upward).
  double phase1 = rng.uniform01() * 6.28, phase2 = rng.uniform01() * 6.28;
  const double f1 = 0.02 + rng.uniform01() * 0.05;
  const double f2 = 0.005 + rng.uniform01() * 0.02;
  std::size_t t = 0;
  while (out.size() + 1 < n) {
    const double v = 8000.0 * std::sin(phase1 + f1 * static_cast<double>(t)) +
                     4000.0 * std::sin(phase2 + f2 * static_cast<double>(t)) +
                     rng.gaussian() * 300.0;
    const auto s = static_cast<std::int16_t>(
        static_cast<int>(std::clamp(v, -32000.0, 32000.0)) & ~0xF);
    out.push_back(static_cast<std::uint8_t>(s & 0xff));
    out.push_back(static_cast<std::uint8_t>((s >> 8) & 0xff));
    ++t;
  }
  out.resize(std::max<std::size_t>(n, 48));
  return out;
}

Bytes gen_m4a(Rng& rng, std::size_t n) {
  Bytes out;
  put_u32be(out, 32);
  append(out, std::string_view("ftypM4A "));
  put_u32be(out, 0);
  append(out, std::string_view("M4A mp42isom"));
  out.resize(32, 0);
  put_u32be(out, static_cast<std::uint32_t>(n > out.size() ? n - out.size() : 8));
  append(out, std::string_view("mdat"));
  if (n > out.size()) {
    append(out, ByteView(compressed_payload(rng, n - out.size())));
  }
  return out;
}

Bytes gen_flac(Rng& rng, std::size_t n) {
  Bytes out;
  append(out, std::string_view("fLaC"));
  out.push_back(0x80); out.push_back(0x00); out.push_back(0x00); out.push_back(0x22);
  out.resize(42, 0);
  if (n > out.size()) {
    append(out, ByteView(compressed_payload(rng, n - out.size())));
  }
  return out;
}

// --- archives -------------------------------------------------------------

Bytes gen_zip(Rng& rng, std::size_t n) {
  std::vector<std::string> members;
  const std::size_t count = static_cast<std::size_t>(rng.uniform(2, 6));
  for (std::size_t i = 0; i < count; ++i) {
    members.push_back(synth_token(rng, 4, 10) + ".dat");
  }
  return gen_zip_like(rng, n, members);
}

Bytes gen_gz(Rng& rng, std::size_t n) {
  Bytes out;
  out.push_back(0x1f); out.push_back(0x8b); out.push_back(0x08); out.push_back(0x00);
  put_u32le(out, static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff)));  // mtime
  out.push_back(0x00); out.push_back(0x03);
  if (n > out.size() + 8) {
    append(out, ByteView(compressed_payload(rng, n - out.size() - 8)));
  }
  put_u32le(out, static_cast<std::uint32_t>(rng.uniform(0, 0xffffffff)));  // crc
  put_u32le(out, static_cast<std::uint32_t>(n * 3));                        // isize
  return out;
}

struct SizeModel {
  double mu;     ///< log-space mean
  double sigma;  ///< log-space stddev
  std::size_t min_size;
  std::size_t max_size;
};

SizeModel size_model(FileKind kind) {
  switch (kind) {
    // Text formats: median ~4 KiB with a small tail under 512 bytes
    // (~4% of text files). Calibrated against §V-C: CTB-Locker's
    // size-ascending .txt/.md sweep should meet roughly the paper's ~26
    // sub-512-byte files before reaching sdhash-scoreable sizes.
    case FileKind::txt:
    case FileKind::md:
      return {8.5, 1.2, 64, 512 * 1024};
    case FileKind::csv:
    case FileKind::log:
      return {8.5, 1.3, 128, 1024 * 1024};
    case FileKind::html:
    case FileKind::xml:
      return {8.6, 1.0, 256, 512 * 1024};
    case FileKind::rtf:
    case FileKind::ps:
      return {9.0, 1.0, 256, 512 * 1024};
    // Office docs: median ~25-60 KiB.
    case FileKind::pdf:
      return {10.6, 1.1, 2048, 4 * 1024 * 1024};
    case FileKind::docx:
    case FileKind::odt:
      return {10.1, 0.9, 2048, 2 * 1024 * 1024};
    case FileKind::xlsx:
      return {9.9, 1.0, 2048, 2 * 1024 * 1024};
    case FileKind::pptx:
      return {11.3, 0.9, 4096, 8 * 1024 * 1024};
    case FileKind::doc:
    case FileKind::xls:
    case FileKind::ppt:
      return {10.3, 0.9, 1024, 2 * 1024 * 1024};
    // Media.
    case FileKind::jpg:
      return {11.5, 0.8, 4096, 8 * 1024 * 1024};
    case FileKind::png:
      return {10.8, 0.9, 1024, 4 * 1024 * 1024};
    case FileKind::gif:
      return {9.5, 0.9, 512, 1024 * 1024};
    case FileKind::bmp:
      return {11.0, 0.7, 2048, 4 * 1024 * 1024};
    case FileKind::mp3:
    case FileKind::m4a:
      return {12.0, 0.5, 16384, 16 * 1024 * 1024};
    case FileKind::wav:
    case FileKind::flac:
      return {12.2, 0.6, 16384, 16 * 1024 * 1024};
    case FileKind::zip:
    case FileKind::gz:
      return {10.5, 1.2, 512, 8 * 1024 * 1024};
  }
  return {9.0, 1.0, 256, 1024 * 1024};
}

}  // namespace

const std::vector<FileKind>& all_kinds() {
  static const std::vector<FileKind> kinds = {
      FileKind::txt, FileKind::md,   FileKind::csv,  FileKind::log,
      FileKind::html, FileKind::xml, FileKind::rtf,  FileKind::ps,
      FileKind::pdf, FileKind::docx, FileKind::xlsx, FileKind::pptx,
      FileKind::odt, FileKind::doc,  FileKind::xls,  FileKind::ppt,
      FileKind::jpg, FileKind::png,  FileKind::gif,  FileKind::bmp,
      FileKind::mp3, FileKind::wav,  FileKind::m4a,  FileKind::flac,
      FileKind::zip, FileKind::gz,
  };
  return kinds;
}

std::string_view kind_extension(FileKind kind) {
  switch (kind) {
    case FileKind::txt: return "txt";
    case FileKind::md: return "md";
    case FileKind::csv: return "csv";
    case FileKind::log: return "log";
    case FileKind::html: return "html";
    case FileKind::xml: return "xml";
    case FileKind::rtf: return "rtf";
    case FileKind::ps: return "ps";
    case FileKind::pdf: return "pdf";
    case FileKind::docx: return "docx";
    case FileKind::xlsx: return "xlsx";
    case FileKind::pptx: return "pptx";
    case FileKind::odt: return "odt";
    case FileKind::doc: return "doc";
    case FileKind::xls: return "xls";
    case FileKind::ppt: return "ppt";
    case FileKind::jpg: return "jpg";
    case FileKind::png: return "png";
    case FileKind::gif: return "gif";
    case FileKind::bmp: return "bmp";
    case FileKind::mp3: return "mp3";
    case FileKind::wav: return "wav";
    case FileKind::m4a: return "m4a";
    case FileKind::flac: return "flac";
    case FileKind::zip: return "zip";
    case FileKind::gz: return "gz";
  }
  return "dat";
}

Bytes generate_content(FileKind kind, std::size_t target_size, Rng& rng) {
  const std::size_t n = std::max<std::size_t>(target_size, 16);
  switch (kind) {
    case FileKind::txt: return gen_txt(rng, n);
    case FileKind::md: return gen_md(rng, n);
    case FileKind::csv: return gen_csv(rng, n);
    case FileKind::log: return gen_log(rng, n);
    case FileKind::html: return gen_html(rng, n);
    case FileKind::xml: return gen_xml(rng, n);
    case FileKind::rtf: return gen_rtf(rng, n);
    case FileKind::ps: return gen_ps(rng, n);
    case FileKind::pdf: return gen_pdf(rng, n);
    case FileKind::docx: return gen_docx(rng, n);
    case FileKind::xlsx: return gen_xlsx(rng, n);
    case FileKind::pptx: return gen_pptx(rng, n);
    case FileKind::odt: return gen_odt(rng, n);
    case FileKind::doc: return gen_ole(rng, n);
    case FileKind::xls: return gen_ole(rng, n);
    case FileKind::ppt: return gen_ole(rng, n);
    case FileKind::jpg: return gen_jpg(rng, n);
    case FileKind::png: return gen_png(rng, n);
    case FileKind::gif: return gen_gif(rng, n);
    case FileKind::bmp: return gen_bmp(rng, n);
    case FileKind::mp3: return gen_mp3(rng, n);
    case FileKind::wav: return gen_wav(rng, n);
    case FileKind::m4a: return gen_m4a(rng, n);
    case FileKind::flac: return gen_flac(rng, n);
    case FileKind::zip: return gen_zip(rng, n);
    case FileKind::gz: return gen_gz(rng, n);
  }
  return rng.bytes(n);
}

std::size_t sample_size(FileKind kind, Rng& rng) {
  const SizeModel model = size_model(kind);
  const double draw = rng.log_normal(model.mu, model.sigma);
  const auto size = static_cast<std::size_t>(draw);
  return std::clamp(size, model.min_size, model.max_size);
}

}  // namespace cryptodrop::corpus
