// Synthetic file-content generators.
//
// Stand-in for the paper's document corpus (Govdocs1 threads, the OOXML
// sets, the OPF Format Corpus, and the Coldwell audio files — 5,099 files
// in 511 directories). Each generator emits content that:
//  * carries the correct magic bytes, so magic::identify() reports the
//    real type (the File Type Changes indicator depends on this);
//  * has a realistic entropy profile — prose ~4.2 bits/byte, legacy
//    binary formats ~5-6, compressed containers (.pdf/.docx/.jpg/.mp3)
//    ~7.5+ (the paper highlights that these "exhibit far less entropy
//    increase when encrypted");
//  * is deterministic given the Rng state.
#pragma once

#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace cryptodrop::corpus {

/// Every file type the corpus can contain. Extensions mirror Figure 5's
/// x-axis (productivity formats, media, archives).
enum class FileKind : std::uint8_t {
  txt, md, csv, log, html, xml, rtf, ps,
  pdf, docx, xlsx, pptx, odt, doc, xls, ppt,
  jpg, png, gif, bmp,
  mp3, wav, m4a, flac,
  zip, gz,
};

/// All kinds, for iteration in tests and tables.
const std::vector<FileKind>& all_kinds();

/// Canonical extension without the dot ("docx").
std::string_view kind_extension(FileKind kind);

/// Generates content of approximately `target_size` bytes (exact for most
/// kinds; within a few hundred bytes for container formats).
Bytes generate_content(FileKind kind, std::size_t target_size, Rng& rng);

/// Draws a file size from the kind's size model (log-normal, parameters
/// chosen per format family; text formats have a heavy sub-512-byte tail,
/// which the CTB-Locker experiment in §V-C depends on).
std::size_t sample_size(FileKind kind, Rng& rng);

}  // namespace cryptodrop::corpus
