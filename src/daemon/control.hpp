// cryptodropd control API — request dispatch (docs/DAEMON.md).
//
// The protocol is line-delimited JSON: each request is one object with a
// `type` field; each response is one object with an `ok` field (`true`
// plus a payload, or `false` plus `error`). The dispatcher is transport
// agnostic: the AF_UNIX socket server (daemon/server.hpp) and the
// in-process parity harness (harness/daemon_runner.hpp) both drive
// handle_line(), so the parity gate exercises the full request/response
// round-trip, not just the Daemon methods.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "daemon/daemon.hpp"

namespace cryptodrop::daemon {

/// Every request `type` the dispatcher accepts, in docs order —
/// tools/docs_check cross-checks this list against the control-schema
/// table in docs/DAEMON.md, so adding a request here without documenting
/// it (or vice versa) fails tier-1.
std::vector<std::string_view> known_request_types();

/// Outcome of a `watch` request: the dispatcher cannot stream by itself
/// (it is one-line-in / one-line-out), so it acks the subscription and
/// hands the transport what it needs to start pushing frames
/// (docs/DAEMON.md "watch").
struct WatchSubscription {
  /// True once a well-formed `watch` request was handled; the ack
  /// response line must still be written before any frame.
  bool requested = false;
  /// Optional tenant filter (empty = all tenants).
  std::string tenant;
  /// Journal cursor to stream from (defaults to "now": events emitted
  /// before the request are not replayed).
  std::uint64_t cursor = 0;
};

/// Translates control-API lines into Daemon calls (see the file
/// comment). Thread-safe: state lives in the Daemon, which is itself
/// thread-safe, so one dispatcher may serve many client connections.
class ControlDispatcher {
 public:
  /// Dispatches for `daemon` (non-owning; must outlive the dispatcher).
  explicit ControlDispatcher(Daemon& daemon) : daemon_(&daemon) {}

  /// Handles one request line, returning one response line (no trailing
  /// newline). Malformed input yields an `ok:false` response, never an
  /// exception.
  std::string handle_line(const std::string& line);

  /// Like handle_line(), but a `watch` request additionally fills
  /// `*watch` so a streaming transport can promote the connection.
  /// Transports that cannot stream (the in-process harness) use the
  /// one-argument overload, where `watch` degrades to a plain ack.
  std::string handle_line(const std::string& line, WatchSubscription* watch);

 private:
  Daemon* daemon_;
};

}  // namespace cryptodrop::daemon
