// AF_UNIX transport for the cryptodropd control API (docs/DAEMON.md).
//
// One poll()-driven thread serves every connection: requests are
// line-delimited JSON (daemon/control.hpp), so the server's job is only
// framing — split the byte stream on '\n', hand each line to the
// dispatcher, write the response line back. The loop wakes on a short
// poll timeout to notice Daemon::shutdown_complete() and exit, so a
// `shutdown` request (or an external Daemon::shutdown call) stops the
// server without a special control channel.
//
// Two departures from plain request/response framing:
//   - Idle deadline: a connection that sends no bytes for
//     `idle_timeout_ms` is evicted (daemon_conns_idle_closed_total), so
//     half-open clients cannot pin fds forever.
//   - `watch` streaming: a connection that sends a `watch` request is
//     promoted to a push stream — after the ack line the server writes
//     line-delimited JSON frames (periodic stats + journal events)
//     until the client disconnects or the daemon shuts down. Watch fds
//     are non-blocking with a bounded output buffer; a slow consumer
//     sheds frames (daemon_watch_events_shed_total) rather than ever
//     blocking the serving thread.
//
// The client half (DaemonClient) is the same framing in reverse, used
// by `cryptodrop daemon-replay` and the socket smoke test.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>

#include "common/result.hpp"
#include "daemon/control.hpp"

namespace cryptodrop::daemon {

/// Transport tuning knobs (defaults suit production; tests shrink the
/// idle deadline and frame interval to keep wall-clock short).
struct ServerOptions {
  /// Evict a connection after this many ms without a readable byte.
  /// Watch streams are exempt (they are write-mostly by design).
  int idle_timeout_ms = 30000;
  /// Cadence of `watch` stats frames and journal-event pushes.
  int frame_interval_ms = 100;
  /// Per-connection pending-output cap; frames past it are shed.
  std::size_t watch_buffer_limit = 256 * 1024;
};

/// Serves the control API on a unix-domain socket (see the file
/// comment). start() spawns the serving thread; stop() (or destruction)
/// joins it and unlinks the socket path.
class SocketServer {
 public:
  /// Serves `daemon` on `socket_path` (an unused filesystem path; any
  /// stale socket file there is replaced).
  SocketServer(Daemon& daemon, std::string socket_path,
               ServerOptions options = {})
      : dispatcher_(daemon), daemon_(&daemon),
        socket_path_(std::move(socket_path)), options_(options) {}

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  ~SocketServer();

  /// Binds, listens and spawns the serving thread. Fails when the
  /// socket cannot be created/bound (path too long, permissions).
  Status start();

  /// Stops the serving thread and removes the socket file. Idempotent;
  /// also runs on destruction.
  void stop();

  /// The path clients connect to.
  [[nodiscard]] const std::string& socket_path() const { return socket_path_; }

  /// Blocks until the serving thread exits (it does when the daemon
  /// completes shutdown — the `cryptodrop daemon` foreground wait).
  void wait();

 private:
  /// The serving thread: accept + per-connection line framing.
  void serve_loop();

  ControlDispatcher dispatcher_;
  Daemon* daemon_;
  std::string socket_path_;
  ServerOptions options_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
};

/// Blocking line-oriented client for the control socket.
class DaemonClient {
 public:
  /// Connects to `socket_path`; connect errors surface from request().
  explicit DaemonClient(std::string socket_path)
      : socket_path_(std::move(socket_path)) {}

  DaemonClient(const DaemonClient&) = delete;
  DaemonClient& operator=(const DaemonClient&) = delete;

  ~DaemonClient();

  /// Sends one request line and returns the response line (connecting
  /// on first use). Errors are io_error with the failing syscall named.
  Result<std::string> request(const std::string& line);

 private:
  std::string socket_path_;
  int fd_ = -1;
  std::string buffer_;  ///< Bytes read past the last returned line.
};

}  // namespace cryptodrop::daemon
