// cryptodropd operator telemetry: the event journal, per-worker
// ingestion instruments, and the health verdict (docs/DAEMON.md
// "Operator telemetry").
//
// The journal is a bounded ring of structured events (tenant
// attach/detach, suspension verdicts, shed transitions, overload
// enter/exit, worker lifecycle) with monotonic cursors:
//
//  * append() runs under its own rank-5 mutex (kDaemonJournal) held
//    only for the push itself — never across queue, registry or engine
//    work — so journal writes stay off the per-op hot path. The daemon
//    only appends on *transitions* (first shed of a burst, overload
//    crossing, lifecycle edges), never per op.
//  * Cursors are assigned once, never reused: when the ring is full
//    the oldest event is overwritten and the gap is observable —
//    since() reports how many events between the caller's cursor and
//    the oldest retained one were dropped, so a slow consumer sheds
//    (with an exact count) instead of blocking a worker. Conservation:
//    emitted == delivered + dropped for every cursor-following reader.
//
// Per-worker instruments (DaemonTelemetry) are plain obs::Histogram /
// atomic cells — lock-free writes from exactly one worker thread each,
// snapshot reads from anywhere. They feed the `watch` stream's worker
// frames and the `health` verdict; the registry-level aggregates
// (daemon_worker_ingest_latency_us, daemon_worker_queue_depth) live in
// DaemonMetrics so the scrape schema stays enumerable.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "common/ranked_mutex.hpp"
#include "obs/metrics.hpp"

namespace cryptodrop::daemon {

/// Structured event kinds the daemon journals. The docs_check gate
/// cross-checks this enum against the event-schema table in
/// docs/OBSERVABILITY.md (event_kind_name / all_event_kinds mirror the
/// shed-reason arrangement in daemon/metrics.hpp).
enum class EventKind : std::uint8_t {
  tenant_attach,   ///< A tenant session attached.
  tenant_detach,   ///< A tenant session detached.
  suspension,      ///< A tenant's engine suspended a process (verdict).
  shed_start,      ///< A tenant began shedding ops (first drop of a burst).
  shed_stop,       ///< A previously shedding tenant had a clean submit.
  overload_enter,  ///< Total queue depth crossed the overload threshold.
  overload_exit,   ///< Total queue depth fell back below the exit threshold.
  worker_start,    ///< A worker thread entered its drain loop.
  worker_stop,     ///< A worker thread left its drain loop.
};

/// Wire name of an event kind ("tenant_attach", ...).
std::string_view event_kind_name(EventKind kind);

/// Every event kind, schema order (docs_check iterates this).
std::vector<EventKind> all_event_kinds();

/// One journal entry. `tenant` is empty for daemon-scoped events
/// (overload, worker lifecycle); `worker` is the worker index (or the
/// tenant's pinned worker); `value`/`detail` are kind-specific (e.g. a
/// suspension's score and process name).
struct JournalEvent {
  std::uint64_t cursor = 0;
  EventKind kind = EventKind::tenant_attach;
  std::string tenant;
  std::uint64_t worker = 0;
  double value = 0.0;
  std::string detail;
};

/// Serializes one event for the `events` response / `watch` stream
/// (schema in docs/DAEMON.md "Operator telemetry").
Json to_json(const JournalEvent& event);

/// Bounded ring of journal events with monotonic cursors (see the file
/// comment). Thread-safe; every method is one short rank-5 critical
/// section.
class EventJournal {
 public:
  /// A ring retaining at most `capacity` events (>= 1 enforced).
  explicit EventJournal(std::size_t capacity);

  /// Outcome of one append: the assigned cursor, and whether the ring
  /// overwrote its oldest event to make room.
  struct AppendResult {
    std::uint64_t cursor = 0;
    bool overwrote = false;
  };

  /// Appends one event (cursor assigned inside; the passed event's
  /// cursor field is ignored). Never blocks beyond the ring mutex.
  AppendResult append(EventKind kind, std::string tenant,
                      std::uint64_t worker, double value, std::string detail);

  /// Result of one since() drain: the events (cursor order), the
  /// cursor to pass next time, and how many requested events were
  /// already overwritten (the slow-consumer shed count).
  struct Drain {
    std::vector<JournalEvent> events;
    std::uint64_t next_cursor = 0;
    std::uint64_t dropped = 0;
  };

  /// Copies out up to `max` events with cursor >= `cursor`, optionally
  /// filtered to one tenant (empty filter = all; daemon-scoped events
  /// match only the empty filter's stream). Filtered-out events still
  /// advance next_cursor — a follower never re-reads them.
  [[nodiscard]] Drain since(std::uint64_t cursor, std::string_view tenant,
                            std::size_t max) const;

  /// Total events ever appended (== the next cursor to be assigned).
  [[nodiscard]] std::uint64_t emitted() const;

  /// Total events overwritten before any reader at cursor 0 could see
  /// them (ring-bound drops).
  [[nodiscard]] std::uint64_t overwritten() const;

  /// The ring's capacity (fixed at construction).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  /// Rank 5: held for one push/copy only (see common/ranked_mutex.hpp).
  mutable common::RankedMutex<common::lockrank::kDaemonJournal> mu_;
  std::deque<JournalEvent> ring_;
  std::size_t capacity_;
  std::uint64_t next_cursor_ = 0;
  std::uint64_t overwritten_ = 0;
};

/// Per-worker ingestion instruments: an ingest-latency histogram, a
/// queue-depth histogram and a heartbeat counter (one batch drained =
/// one beat). Written lock-free by that worker only; read from any
/// thread via snapshots.
class WorkerTelemetry {
 public:
  /// Instruments with the standard latency buckets (1 µs … 65.536 ms
  /// powers of two) for latency and the same power-of-two edges
  /// reinterpreted as op counts for depth.
  WorkerTelemetry();

  /// The worker's per-op execute-latency histogram (µs).
  [[nodiscard]] obs::Histogram& ingest_latency_us() { return latency_; }
  /// The worker's per-batch queue-depth histogram (ops).
  [[nodiscard]] obs::Histogram& queue_depth() { return depth_; }
  /// Marks one drained batch (liveness signal for `health`).
  void beat() { heartbeat_.fetch_add(1, std::memory_order_relaxed); }
  /// Batches drained so far (monotonic; 0 until the worker's first pop).
  [[nodiscard]] std::uint64_t heartbeat() const {
    return heartbeat_.load(std::memory_order_relaxed);
  }
  /// Snapshot of the latency histogram (name/help left empty).
  [[nodiscard]] obs::HistogramSnapshot latency_snapshot() const {
    return latency_.snapshot();
  }
  /// Snapshot of the depth histogram (name/help left empty).
  [[nodiscard]] obs::HistogramSnapshot depth_snapshot() const {
    return depth_.snapshot();
  }

 private:
  obs::Histogram latency_;
  obs::Histogram depth_;
  std::atomic<std::uint64_t> heartbeat_{0};
};

/// Journal + per-worker instruments, one per Daemon (constructed after
/// the worker count is fixed, before workers start).
class DaemonTelemetry {
 public:
  /// Telemetry for `workers` workers and a `journal_capacity`-event ring.
  DaemonTelemetry(std::size_t workers, std::size_t journal_capacity);

  /// The daemon's event journal.
  [[nodiscard]] EventJournal& journal() { return journal_; }
  /// Const view of the journal (query paths).
  [[nodiscard]] const EventJournal& journal() const { return journal_; }
  /// Worker `index`'s instruments (index < workers()).
  [[nodiscard]] WorkerTelemetry& worker(std::size_t index) {
    return *workers_[index];
  }
  /// Const view of worker `index`'s instruments.
  [[nodiscard]] const WorkerTelemetry& worker(std::size_t index) const {
    return *workers_[index];
  }
  /// Number of worker slots.
  [[nodiscard]] std::size_t workers() const { return workers_.size(); }

 private:
  std::vector<std::unique_ptr<WorkerTelemetry>> workers_;
  EventJournal journal_;
};

/// The `health` verdict levels, worst last (the gauge value is the
/// enum ordinal: 0 ok, 1 degraded, 2 overloaded).
enum class HealthLevel : std::uint8_t { ok, degraded, overloaded };

/// Wire name of a health level ("ok" / "degraded" / "overloaded").
std::string_view health_level_name(HealthLevel level);

/// The `health` response payload: the verdict plus the inputs it was
/// derived from (thresholds in docs/DAEMON.md "Health verdict").
struct HealthReport {
  HealthLevel level = HealthLevel::ok;
  double queue_occupancy = 0.0;  ///< Total depth / total capacity.
  double shed_ratio = 0.0;       ///< Lifetime sheds / (ingested + sheds).
  std::size_t queue_depth = 0;   ///< Items queued across all workers.
  std::size_t workers = 0;       ///< Worker-thread count.
  std::uint64_t heartbeats = 0;  ///< Total batches drained (liveness).
  bool overloaded = false;       ///< Currently inside an overload episode.
  std::string reason;            ///< One-line explanation of the verdict.
};

/// Serializes a health report for the `health` response.
Json to_json(const HealthReport& report);

}  // namespace cryptodrop::daemon
