#include "daemon/wire.hpp"

#include <cctype>
#include <charconv>

#include "obs/timeline.hpp"

namespace cryptodrop::daemon {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::object) return nullptr;
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::string ? v->str
                                                 : std::string(fallback);
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::number ? v->num : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::boolean ? v->b : fallback;
}

namespace {

/// Recursive-descent JSON reader over a string_view cursor.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos >= text.size()) return std::nullopt;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by this project's own serializer).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // Unterminated string.
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos >= text.size()) return std::nullopt;
    JsonValue v;
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      v.kind = JsonValue::Kind::object;
      skip_ws();
      if (consume('}')) return v;
      while (true) {
        auto key = parse_string();
        if (!key || !consume(':')) return std::nullopt;
        auto member = parse_value();
        if (!member) return std::nullopt;
        v.fields.emplace_back(std::move(*key), std::move(*member));
        if (consume(',')) continue;
        if (consume('}')) return v;
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos;
      v.kind = JsonValue::Kind::array;
      skip_ws();
      if (consume(']')) return v;
      while (true) {
        auto item = parse_value();
        if (!item) return std::nullopt;
        v.items.push_back(std::move(*item));
        if (consume(',')) continue;
        if (consume(']')) return v;
        return std::nullopt;
      }
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      v.kind = JsonValue::Kind::string;
      v.str = std::move(*s);
      return v;
    }
    if (c == 't') {
      if (!literal("true")) return std::nullopt;
      v.kind = JsonValue::Kind::boolean;
      v.b = true;
      return v;
    }
    if (c == 'f') {
      if (!literal("false")) return std::nullopt;
      v.kind = JsonValue::Kind::boolean;
      v.b = false;
      return v;
    }
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return v;  // null_
    }
    // Number.
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    double num = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data() + start, text.data() + pos, num);
    if (ec != std::errc() || ptr != text.data() + pos) return std::nullopt;
    v.kind = JsonValue::Kind::number;
    v.num = num;
    return v;
  }
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text) {
  Parser parser{text};
  auto value = parser.parse_value();
  if (!value) return std::nullopt;
  parser.skip_ws();
  if (parser.pos != text.size()) return std::nullopt;  // Trailing garbage.
  return value;
}

Json report_to_json(const core::ProcessReport& report) {
  Json indicators = Json::object();
  indicators.set("entropy_delta", report.entropy_events)
      .set("type_change", report.type_change_events)
      .set("similarity_drop", report.similarity_drop_events)
      .set("deletion", report.deletion_events)
      .set("funneling", report.funneling_events)
      .set("burst_rate", report.rate_events);

  Json read_ext = Json::array();
  for (const std::string& ext : report.read_extensions) read_ext.push(ext);
  Json write_ext = Json::array();
  for (const std::string& ext : report.write_extensions) write_ext.push(ext);

  Json timeline = Json::array();
  for (const core::ScoreEvent& event : report.timeline) {
    Json e = Json::object();
    e.set("op_seq", event.op_seq)
        .set("indicator", std::string(core::indicator_name(event.indicator)))
        .set("points", event.points)
        .set("path", event.path);
    if (!event.backend.empty()) e.set("backend", event.backend);
    timeline.push(std::move(e));
  }

  Json j = Json::object();
  j.set("pid", report.pid)
      .set("name", report.name)
      .set("score", report.score)
      .set("threshold", report.threshold)
      .set("suspended", report.suspended)
      .set("union_triggered", report.union_triggered)
      .set("union_count", report.union_count)
      .set("read_entropy_mean", report.read_entropy_mean)
      .set("write_entropy_mean", report.write_entropy_mean)
      .set("indicators", std::move(indicators))
      .set("read_extensions", std::move(read_ext))
      .set("write_extensions", std::move(write_ext))
      .set("timeline", std::move(timeline))
      .set("forensic", obs::to_json(report.forensic));
  return j;
}

Json scoreboard_to_json(const core::EngineSnapshot& snapshot) {
  Json processes = Json::array();
  for (const core::ProcessReport& report : snapshot.processes) {
    processes.push(report_to_json(report));
  }
  Json j = Json::object();
  j.set("default_threshold", snapshot.default_threshold)
      .set("processes", std::move(processes));
  return j;
}

}  // namespace cryptodrop::daemon
