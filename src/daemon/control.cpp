#include "daemon/control.hpp"

#include <cstdint>
#include <utility>

#include "daemon/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_export.hpp"
#include "vfs/trace.hpp"

namespace cryptodrop::daemon {
namespace {

/// A response plus its envelope verdict (drives the error counter
/// without re-parsing the serialized line).
struct Response {
  Json body;
  bool ok = false;
};

Json ok_response() { return Json::object().set("ok", true); }

Response ok_with(Json body) { return {std::move(body), true}; }

Response error_response(std::string message) {
  return {Json::object().set("ok", false).set("error", std::move(message)),
          false};
}

Response error_response(const Status& status) {
  // Structured `code` rides along with the human-readable message so
  // clients can branch on Errc without parsing prose.
  return {Json::object()
              .set("ok", false)
              .set("error", status.to_string())
              .set("code", std::string(errc_name(status.code()))),
          false};
}

/// Applies the documented `config` overrides (docs/DAEMON.md `attach`)
/// on top of the daemon's default scoring config.
core::ScoringConfig config_from_json(core::ScoringConfig base,
                                     const JsonValue* overrides) {
  if (overrides == nullptr || overrides->kind != JsonValue::Kind::object) {
    return base;
  }
  base.score_threshold = static_cast<int>(overrides->number_or(
      "score_threshold", base.score_threshold));
  base.union_threshold = static_cast<int>(overrides->number_or(
      "union_threshold", base.union_threshold));
  base.union_bonus =
      static_cast<int>(overrides->number_or("union_bonus", base.union_bonus));
  base.enable_union = overrides->bool_or("enable_union", base.enable_union);
  base.enable_family_scoring = overrides->bool_or("enable_family_scoring",
                                                  base.enable_family_scoring);
  base.protected_root =
      overrides->string_or("protected_root", base.protected_root);
  return base;
}

Response handle_request(Daemon& daemon, const JsonValue& request,
                        WatchSubscription* watch) {
  const std::string type = request.string_or("type", "");
  if (type == "ping") {
    return ok_with(ok_response().set("pong", true));
  }
  if (type == "attach") {
    const std::string tenant = request.string_or("tenant", "");
    const Status status = daemon.attach(
        tenant, config_from_json(daemon.default_config(),
                                 request.find("config")));
    if (!status) return error_response(status);
    return ok_with(ok_response().set("tenant", tenant));
  }
  if (type == "detach") {
    const Status status = daemon.detach(request.string_or("tenant", ""));
    if (!status) return error_response(status);
    return ok_with(ok_response());
  }
  if (type == "spawn") {
    const Status status = daemon.spawn(
        request.string_or("tenant", ""),
        static_cast<vfs::ProcessId>(request.number_or("pid", 0)),
        request.string_or("name", "process"),
        static_cast<vfs::ProcessId>(request.number_or("parent", 0)));
    if (!status) return error_response(status);
    return ok_with(ok_response());
  }
  if (type == "submit") {
    const JsonValue* ops = request.find("ops");
    if (ops == nullptr || ops->kind != JsonValue::Kind::array) {
      return error_response("submit requires an `ops` array");
    }
    std::vector<vfs::TraceEntry> entries;
    entries.reserve(ops->items.size());
    for (const JsonValue& op : ops->items) {
      if (op.kind != JsonValue::Kind::string) {
        return error_response("each op must be a serialized trace-entry string");
      }
      std::optional<vfs::TraceEntry> entry = vfs::parse_trace_entry(op.str);
      if (!entry.has_value()) {
        return error_response("malformed trace entry: " + op.str);
      }
      entries.push_back(std::move(*entry));
    }
    Result<SubmitResult> result =
        daemon.submit(request.string_or("tenant", ""), std::move(entries));
    if (!result) return error_response(result.status());
    return ok_with(ok_response()
        .set("accepted", result.value().accepted)
        .set("shed", result.value().shed));
  }
  if (type == "drain") {
    const JsonValue* tenant = request.find("tenant");
    if (tenant != nullptr && tenant->kind == JsonValue::Kind::string) {
      const Status status = daemon.drain(tenant->str);
      if (!status) return error_response(status);
    } else {
      daemon.drain();
    }
    return ok_with(ok_response().set("drained", true));
  }
  if (type == "verdicts") {
    Result<core::EngineSnapshot> snapshot =
        daemon.verdicts(request.string_or("tenant", ""));
    if (!snapshot) return error_response(snapshot.status());
    return ok_with(ok_response().set("scoreboard",
                             scoreboard_to_json(snapshot.value())));
  }
  if (type == "explain") {
    Result<obs::ForensicTimeline> timeline =
        daemon.explain(request.string_or("tenant", ""),
                       static_cast<vfs::ProcessId>(request.number_or("pid", 0)));
    if (!timeline) return error_response(timeline.status());
    return ok_with(ok_response().set("forensic", obs::to_json(timeline.value())));
  }
  if (type == "metrics") {
    const JsonValue* tenant = request.find("tenant");
    if (tenant != nullptr && tenant->kind == JsonValue::Kind::string) {
      Result<obs::MetricsSnapshot> snapshot = daemon.tenant_metrics(tenant->str);
      if (!snapshot) return error_response(snapshot.status());
      return ok_with(ok_response().set("metrics", obs::to_json(snapshot.value())));
    }
    return ok_with(ok_response().set("metrics", obs::to_json(daemon.metrics())));
  }
  if (type == "events") {
    const auto cursor =
        static_cast<std::uint64_t>(request.number_or("cursor", 0));
    const std::string tenant = request.string_or("tenant", "");
    const auto max = static_cast<std::size_t>(request.number_or("max", 256));
    const EventJournal::Drain drain =
        daemon.telemetry().journal().since(cursor, tenant, max);
    Json rows = Json::array();
    for (const JournalEvent& event : drain.events) rows.push(to_json(event));
    return ok_with(ok_response()
                       .set("events", std::move(rows))
                       .set("next_cursor",
                            static_cast<unsigned long long>(drain.next_cursor))
                       .set("dropped",
                            static_cast<unsigned long long>(drain.dropped)));
  }
  if (type == "watch") {
    const JsonValue* cursor = request.find("cursor");
    const std::uint64_t start =
        cursor != nullptr && cursor->kind == JsonValue::Kind::number
            ? static_cast<std::uint64_t>(cursor->num)
            : daemon.telemetry().journal().emitted();
    if (watch != nullptr) {
      watch->requested = true;
      watch->tenant = request.string_or("tenant", "");
      watch->cursor = start;
    }
    return ok_with(ok_response().set(
        "watch", Json::object()
                     .set("cursor", static_cast<unsigned long long>(start))
                     .set("streaming", watch != nullptr)));
  }
  if (type == "health") {
    return ok_with(ok_response().set("health", to_json(daemon.health())));
  }
  if (type == "trace") {
    return ok_with(ok_response().set("trace", obs::to_trace_json(daemon.trace_snapshot())));
  }
  if (type == "tenants") {
    Json rows = Json::array();
    for (const TenantInfo& info : daemon.tenants()) {
      rows.push(Json::object()
                    .set("id", info.id)
                    .set("worker", info.worker)
                    .set("ingested", info.ingested)
                    .set("executed", info.executed)
                    .set("shed", info.shed));
    }
    return ok_with(ok_response().set("tenants", std::move(rows)));
  }
  if (type == "shutdown") {
    daemon.shutdown(request.bool_or("drain", true));
    return ok_with(ok_response().set("stopped", true));
  }
  return error_response("unknown request type: `" + type + "`");
}

}  // namespace

std::vector<std::string_view> known_request_types() {
  return {"ping",     "attach",  "detach",  "spawn",  "submit",
          "drain",    "verdicts", "explain", "metrics", "events",
          "watch",    "health",  "trace",   "tenants", "shutdown"};
}

std::string ControlDispatcher::handle_line(const std::string& line) {
  return handle_line(line, nullptr);
}

std::string ControlDispatcher::handle_line(const std::string& line,
                                           WatchSubscription* watch) {
  daemon_->daemon_metrics().control_requests().add();
  std::optional<JsonValue> request = parse_json(line);
  Response response =
      (!request.has_value() || request->kind != JsonValue::Kind::object)
          ? error_response("request is not a JSON object")
          : handle_request(*daemon_, *request, watch);
  if (!response.ok) daemon_->daemon_metrics().control_errors().add();
  return response.body.to_string();
}

}  // namespace cryptodrop::daemon
