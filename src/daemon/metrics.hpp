// Daemon-level metrics: the ingestion front end's own registry,
// separate from every tenant's per-engine registry so tenant metrics
// stay namespaced to their session (docs/DAEMON.md "Observability").
//
// All families are registered at construction — including all four
// `daemon_ops_shed_total.<shed_reason>` counters — so a fresh
// DaemonMetrics exposes the complete schema (docs_check instantiates
// one to cross-check obs::known_metric_names()).
#pragma once

#include <array>

#include "daemon/queue.hpp"
#include "obs/metrics.hpp"

namespace cryptodrop::daemon {

/// The daemon's own instruments (see the file comment). Constructible
/// without any daemon running; thread-safe like the registry it owns.
class DaemonMetrics {
 public:
  /// Registers every daemon metric family on a fresh registry.
  DaemonMetrics();

  /// Ops accepted into an ingestion queue (spawns included).
  obs::Counter& ingested() { return *ingested_; }
  /// Ops executed through a tenant session.
  obs::Counter& executed() { return *executed_; }
  /// Worker batch drains (one per pop_batch; ops-per-batch = executed /
  /// batches under saturation).
  obs::Counter& batches_drained() { return *batches_drained_; }
  /// Ops dropped for `reason` (admission control, detach, shutdown).
  obs::Counter& shed(ShedReason reason) {
    return *shed_[static_cast<std::size_t>(reason)];
  }
  /// Tenants ever attached.
  obs::Counter& tenants_attached() { return *tenants_attached_; }
  /// Tenants ever detached.
  obs::Counter& tenants_detached() { return *tenants_detached_; }
  /// Control-API requests handled (errors included).
  obs::Counter& control_requests() { return *control_requests_; }
  /// Control-API requests answered with an error.
  obs::Counter& control_errors() { return *control_errors_; }
  /// Control connections evicted by the idle read deadline.
  obs::Counter& conns_idle_closed() { return *conns_idle_closed_; }
  /// Events ever appended to the operator journal.
  obs::Counter& journal_events() { return *journal_events_; }
  /// Journal events overwritten by the bounded ring before any reader
  /// at cursor 0 saw them.
  obs::Counter& journal_events_dropped() { return *journal_events_dropped_; }
  /// Frames pushed to `watch` subscribers (stats + event frames).
  obs::Counter& watch_frames() { return *watch_frames_; }
  /// Journal events / frames shed for slow `watch` consumers.
  obs::Counter& watch_events_shed() { return *watch_events_shed_; }
  /// Items currently queued across all workers (set after each submit
  /// and each executed item).
  obs::Gauge& queue_depth() { return *queue_depth_; }
  /// Largest total queue depth ever observed.
  obs::Gauge& queue_high_water() { return *queue_high_water_; }
  /// Tenants currently attached.
  obs::Gauge& tenants_active() { return *tenants_active_; }
  /// Latest `health` verdict ordinal (0 ok, 1 degraded, 2 overloaded).
  obs::Gauge& health_level() { return *health_level_; }
  /// `watch` subscriptions currently streaming.
  obs::Gauge& watch_clients() { return *watch_clients_; }
  /// Per-op execute latency observed by workers (all workers merged;
  /// the per-worker split lives in DaemonTelemetry).
  obs::Histogram& worker_ingest_latency_us() { return *ingest_latency_us_; }
  /// Per-batch queue-depth samples taken by draining workers.
  obs::Histogram& worker_queue_depth() { return *worker_queue_depth_; }

  /// Point-in-time values of every daemon metric.
  [[nodiscard]] obs::MetricsSnapshot snapshot() const {
    return registry_.snapshot();
  }

 private:
  obs::MetricsRegistry registry_;
  obs::Counter* ingested_ = nullptr;
  obs::Counter* executed_ = nullptr;
  obs::Counter* batches_drained_ = nullptr;
  std::array<obs::Counter*, 4> shed_{};
  obs::Counter* tenants_attached_ = nullptr;
  obs::Counter* tenants_detached_ = nullptr;
  obs::Counter* control_requests_ = nullptr;
  obs::Counter* control_errors_ = nullptr;
  obs::Counter* conns_idle_closed_ = nullptr;
  obs::Counter* journal_events_ = nullptr;
  obs::Counter* journal_events_dropped_ = nullptr;
  obs::Counter* watch_frames_ = nullptr;
  obs::Counter* watch_events_shed_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* queue_high_water_ = nullptr;
  obs::Gauge* tenants_active_ = nullptr;
  obs::Gauge* health_level_ = nullptr;
  obs::Gauge* watch_clients_ = nullptr;
  obs::Histogram* ingest_latency_us_ = nullptr;
  obs::Histogram* worker_queue_depth_ = nullptr;
};

}  // namespace cryptodrop::daemon
