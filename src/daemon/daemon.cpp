#include "daemon/daemon.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace cryptodrop::daemon {

// --- TenantRegistry ----------------------------------------------------

void TenantRegistry::insert(std::shared_ptr<TenantState> state) {
  std::lock_guard<decltype(mu_)> guard(mu_);
  const auto [it, inserted] = tenants_.emplace(state->id, std::move(state));
  if (!inserted) {
    // A duplicate id here means two sessions would answer for one
    // tenant namespace — attach() pre-checks under this lock, so this
    // is unreachable via the public API. Fail loudly, not quietly.
    std::fprintf(stderr,
                 "cryptodropd: tenant id `%s` attached twice — invariant "
                 "violated\n",
                 it->first.c_str());
    std::abort();
  }
}

std::shared_ptr<TenantState> TenantRegistry::find(std::string_view id) const {
  std::lock_guard<decltype(mu_)> guard(mu_);
  const auto it = tenants_.find(id);
  return it != tenants_.end() ? it->second : nullptr;
}

bool TenantRegistry::contains(std::string_view id) const {
  std::lock_guard<decltype(mu_)> guard(mu_);
  return tenants_.find(id) != tenants_.end();
}

std::shared_ptr<TenantState> TenantRegistry::erase(std::string_view id) {
  std::lock_guard<decltype(mu_)> guard(mu_);
  const auto it = tenants_.find(id);
  if (it == tenants_.end()) return nullptr;
  std::shared_ptr<TenantState> state = std::move(it->second);
  tenants_.erase(it);
  return state;
}

std::vector<std::shared_ptr<TenantState>> TenantRegistry::list() const {
  std::lock_guard<decltype(mu_)> guard(mu_);
  std::vector<std::shared_ptr<TenantState>> out;
  out.reserve(tenants_.size());
  for (const auto& [id, state] : tenants_) out.push_back(state);
  return out;
}

std::size_t TenantRegistry::size() const {
  std::lock_guard<decltype(mu_)> guard(mu_);
  return tenants_.size();
}

// --- Daemon ------------------------------------------------------------

Daemon::Daemon(const vfs::FileSystem& base, DaemonOptions options)
    : base_(base.clone()), options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  // Telemetry must exist before the first worker thread runs (workers
  // beat and journal their own lifecycle).
  telemetry_ = std::make_unique<DaemonTelemetry>(options_.workers,
                                                 options_.journal_capacity);
  if (options_.trace.enabled) {
    tracer_ = std::make_unique<obs::SpanTracer>(options_.trace);
  }
  queues_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    queues_.push_back(
        std::make_unique<BoundedOpQueue>(options_.queue_capacity));
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Daemon::~Daemon() { shutdown(/*drain_first=*/false); }

Status Daemon::attach(const std::string& tenant_id) {
  return attach(tenant_id, options_.default_config);
}

Status Daemon::attach(const std::string& tenant_id,
                      core::ScoringConfig config) {
  if (!accepting_.load(std::memory_order_acquire)) {
    return Status(Errc::invalid_argument, "daemon is shutting down");
  }
  if (tenant_id.empty()) {
    return Status(Errc::invalid_argument, "tenant id must be non-empty");
  }
  // Friendly pre-check: the registry's own insert() treats a duplicate
  // as an invariant violation (abort). Construct the session only after
  // the id is known fresh; a racing attach of the same id is resolved
  // by re-checking under the registry lock inside insert() — so hold
  // the happy path to: check, build, insert, where a lost race is a
  // clean error, not an abort.
  if (registry_.contains(tenant_id)) {
    return Status(Errc::invalid_argument,
                  "tenant `" + tenant_id + "` is already attached");
  }
  std::shared_ptr<TenantState> state;
  try {
    state = std::make_shared<TenantState>(tenant_id, base_, std::move(config));
  } catch (const std::invalid_argument& e) {
    return Status(Errc::invalid_argument, e.what());
  }
  // Re-check + insert must be atomic w.r.t. other attaches; a duplicate
  // discovered now (race) is reported, not aborted.
  std::size_t worker_index = 0;
  {
    if (registry_.contains(tenant_id)) {
      return Status(Errc::invalid_argument,
                    "tenant `" + tenant_id + "` is already attached");
    }
    state->worker =
        next_worker_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
    worker_index = state->worker;
    // Suspension verdicts become journal events. The engine fires the
    // callback after releasing every engine lock (AlertScope), so the
    // rank-5 journal append composes with any caller.
    state->session.engine().set_alert_callback(
        [this, id = tenant_id, worker = state->worker](const core::Alert& a) {
          journal_event(EventKind::suspension, id, worker,
                        static_cast<double>(a.score), a.process_name);
        });
    registry_.insert(std::move(state));
  }
  metrics_.tenants_attached().add();
  metrics_.tenants_active().set(static_cast<double>(registry_.size()));
  journal_event(EventKind::tenant_attach, tenant_id, worker_index,
                static_cast<double>(registry_.size()), "");
  return Status::ok();
}

Status Daemon::detach(const std::string& tenant_id) {
  std::shared_ptr<TenantState> state = registry_.erase(tenant_id);
  if (state == nullptr) {
    return Status(Errc::not_found, "tenant `" + tenant_id + "` is not attached");
  }
  state->detached.store(true, std::memory_order_release);
  metrics_.tenants_detached().add();
  metrics_.tenants_active().set(static_cast<double>(registry_.size()));
  journal_event(EventKind::tenant_detach, tenant_id, state->worker,
                static_cast<double>(registry_.size()), "");
  return Status::ok();
}

Status Daemon::spawn(const std::string& tenant_id, vfs::ProcessId recorded_pid,
                     const std::string& name, vfs::ProcessId recorded_parent) {
  std::shared_ptr<TenantState> state = registry_.find(tenant_id);
  if (state == nullptr) {
    return Status(Errc::not_found, "tenant `" + tenant_id + "` is not attached");
  }
  QueueItem item;
  item.tenant = state;
  item.is_spawn = true;
  item.spawn_pid = recorded_pid;
  item.spawn_name = name;
  item.spawn_parent = recorded_parent;
  const BoundedOpQueue::PushResult pushed =
      queues_[state->worker]->push(std::move(item));
  if (!pushed.accepted) {
    // Only a stopped queue refuses a spawn.
    count_shed(*state, pushed.reason);
    return Status(Errc::invalid_argument, "daemon is shutting down");
  }
  metrics_.ingested().add();
  state->stats.ingested.fetch_add(1, std::memory_order_relaxed);
  refresh_queue_gauges();
  update_overload_state();
  return Status::ok();
}

Result<SubmitResult> Daemon::submit(const std::string& tenant_id,
                                    std::vector<vfs::TraceEntry> entries) {
  std::shared_ptr<TenantState> state = registry_.find(tenant_id);
  if (state == nullptr) {
    return Status(Errc::not_found, "tenant `" + tenant_id + "` is not attached");
  }
  obs::ScopedSpan span(tracer_.get(), obs::span_name::kDaemonIngest, 0,
                       span_serial_.fetch_add(1, std::memory_order_relaxed));
  if (span.active()) {
    span.arg("tenant", state->id);
    span.arg("ops", static_cast<double>(entries.size()));
  }
  SubmitResult result;
  BoundedOpQueue& queue = *queues_[state->worker];
  for (vfs::TraceEntry& entry : entries) {
    QueueItem item;
    item.tenant = state;
    item.entry = std::move(entry);
    BoundedOpQueue::PushResult pushed = queue.push(std::move(item));
    if (pushed.accepted) {
      metrics_.ingested().add();
      state->stats.ingested.fetch_add(1, std::memory_order_relaxed);
      ++result.accepted;
    } else {
      count_shed(*state, pushed.reason);
      ++result.shed;
    }
    if (pushed.evicted != nullptr) {
      // The op that made room was charged to whoever queued it.
      count_shed(*pushed.evicted->tenant, pushed.reason);
      ++result.shed;
    }
  }
  // A clean batch (everything accepted, nothing evicted) ends the
  // tenant's shed burst: journal the transition once, not per op.
  if (result.shed == 0 && result.accepted > 0 &&
      state->shedding.exchange(false, std::memory_order_relaxed)) {
    journal_event(EventKind::shed_stop, state->id, state->worker,
                  static_cast<double>(state->stats.shed_total()), "");
  }
  refresh_queue_gauges();
  update_overload_state();
  return result;
}

void Daemon::drain() {
  for (const auto& queue : queues_) queue->drain_wait();
}

Status Daemon::drain(const std::string& tenant_id) {
  std::shared_ptr<TenantState> state = registry_.find(tenant_id);
  if (state == nullptr) {
    return Status(Errc::not_found, "tenant `" + tenant_id + "` is not attached");
  }
  queues_[state->worker]->drain_wait();
  return Status::ok();
}

void Daemon::shutdown(bool drain_first) {
  std::lock_guard<decltype(shutdown_mu_)> guard(shutdown_mu_);
  if (shutdown_done_.load(std::memory_order_acquire)) return;
  accepting_.store(false, std::memory_order_release);
  if (drain_first) {
    for (const auto& queue : queues_) queue->drain_wait();
  } else {
    for (const auto& queue : queues_) {
      for (QueueItem& item : queue->discard_all()) {
        count_shed(*item.tenant, ShedReason::shutdown);
      }
    }
  }
  for (const auto& queue : queues_) queue->stop();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  refresh_queue_gauges();
  shutdown_done_.store(true, std::memory_order_release);
}

Result<core::EngineSnapshot> Daemon::verdicts(
    const std::string& tenant_id) const {
  std::shared_ptr<TenantState> state = registry_.find(tenant_id);
  if (state == nullptr) {
    return Status(Errc::not_found, "tenant `" + tenant_id + "` is not attached");
  }
  return state->session.snapshot();
}

Result<obs::ForensicTimeline> Daemon::explain(const std::string& tenant_id,
                                              vfs::ProcessId pid) const {
  std::shared_ptr<TenantState> state = registry_.find(tenant_id);
  if (state == nullptr) {
    return Status(Errc::not_found, "tenant `" + tenant_id + "` is not attached");
  }
  return state->session.explain(pid);
}

Result<obs::MetricsSnapshot> Daemon::tenant_metrics(
    const std::string& tenant_id) const {
  std::shared_ptr<TenantState> state = registry_.find(tenant_id);
  if (state == nullptr) {
    return Status(Errc::not_found, "tenant `" + tenant_id + "` is not attached");
  }
  return state->session.metrics();
}

obs::MetricsSnapshot Daemon::metrics() const {
  refresh_queue_gauges();
  return metrics_.snapshot();
}

obs::SpanSnapshot Daemon::trace_snapshot() const {
  return tracer_ != nullptr ? tracer_->snapshot() : obs::SpanSnapshot{};
}

std::vector<TenantInfo> Daemon::tenants() const {
  std::vector<TenantInfo> out;
  for (const std::shared_ptr<TenantState>& state : registry_.list()) {
    TenantInfo info;
    info.id = state->id;
    info.worker = state->worker;
    info.ingested = state->stats.ingested.load(std::memory_order_relaxed);
    info.executed = state->stats.executed.load(std::memory_order_relaxed);
    info.shed = state->stats.shed_total();
    out.push_back(std::move(info));
  }
  return out;
}

void Daemon::pause_workers() {
  for (const auto& queue : queues_) queue->pause();
}

void Daemon::resume_workers() {
  for (const auto& queue : queues_) queue->resume();
}

void Daemon::worker_loop(std::size_t index) {
  BoundedOpQueue& queue = *queues_[index];
  WorkerTelemetry& telemetry = telemetry_->worker(index);
  const std::size_t batch_max = std::max<std::size_t>(1, options_.drain_batch);
  journal_event(EventKind::worker_start, "", index, 0.0, "");
  std::vector<QueueItem> batch;
  while (queue.pop_batch(batch, batch_max)) {
    metrics_.batches_drained().add();
    telemetry.beat();
    // One depth sample per batch (not per op): what was still queued
    // behind the batch we just took.
    const double remaining = static_cast<double>(queue.depth());
    telemetry.queue_depth().record(remaining);
    metrics_.worker_queue_depth().record(remaining);
    for (QueueItem& item : batch) {
      obs::ScopedTimer timer(&telemetry.ingest_latency_us(),
                             &metrics_.worker_ingest_latency_us());
      execute_item(item);
    }
    // Count before done(): drain() can return the instant the queue
    // goes idle, and a drained batch must already be visible in the
    // counter by then.
    queue.done();
    batch.clear();  // Drop the tenant references promptly.
    update_overload_state();
  }
  journal_event(EventKind::worker_stop, "", index,
                static_cast<double>(telemetry.heartbeat()), "");
}

void Daemon::execute_item(QueueItem& item) {
  TenantState& tenant = *item.tenant;
  if (tenant.detached.load(std::memory_order_acquire)) {
    count_shed(tenant, ShedReason::tenant_gone);
    return;
  }
  obs::ScopedSpan span(tracer_.get(), obs::span_name::kDaemonExecute, 0,
                       span_serial_.fetch_add(1, std::memory_order_relaxed));
  if (span.active()) {
    span.arg("tenant", tenant.id);
    span.arg("op", item.is_spawn ? std::string_view("spawn")
                                 : vfs::op_name(item.entry.op));
  }
  if (item.is_spawn) {
    vfs::ProcessId live_parent = 0;
    if (item.spawn_parent != 0) {
      const auto it = tenant.pid_map.find(item.spawn_parent);
      if (it != tenant.pid_map.end()) live_parent = it->second;
    }
    const vfs::ProcessId live =
        tenant.session.spawn(item.spawn_name, live_parent);
    tenant.pid_map[item.spawn_pid] = live;
    tenant.replayer.map_pid(item.spawn_pid, live);
    metrics_.executed().add();
    tenant.stats.executed.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const vfs::ExactReplayer::Outcome outcome =
      tenant.replayer.apply(item.entry);
  if (outcome == vfs::ExactReplayer::Outcome::skipped_dead_handle) {
    // The op depended on a handle whose open was shed upstream — it is
    // part of the same benign-read chain.
    count_shed(tenant, ShedReason::benign_read);
    return;
  }
  metrics_.executed().add();
  tenant.stats.executed.fetch_add(1, std::memory_order_relaxed);
}

void Daemon::count_shed(TenantState& tenant, ShedReason reason) {
  metrics_.shed(reason).add();
  tenant.stats.shed[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
  // Journal the transition into a shed burst once; the per-op counters
  // above carry the volume.
  if (!tenant.shedding.exchange(true, std::memory_order_relaxed)) {
    journal_event(EventKind::shed_start, tenant.id, tenant.worker,
                  static_cast<double>(tenant.stats.shed_total()),
                  std::string(shed_reason_name(reason)));
  }
}

void Daemon::refresh_queue_gauges() const {
  std::size_t depth = 0;
  for (const auto& queue : queues_) depth += queue->depth();
  std::size_t high = queue_high_water_.load(std::memory_order_relaxed);
  while (depth > high && !queue_high_water_.compare_exchange_weak(
                             high, depth, std::memory_order_relaxed)) {
  }
  metrics_.queue_depth().set(static_cast<double>(depth));
  metrics_.queue_high_water().set(static_cast<double>(
      queue_high_water_.load(std::memory_order_relaxed)));
}

std::vector<std::size_t> Daemon::queue_depths() const {
  std::vector<std::size_t> depths;
  depths.reserve(queues_.size());
  for (const auto& queue : queues_) depths.push_back(queue->depth());
  return depths;
}

void Daemon::journal_event(EventKind kind, std::string tenant,
                           std::uint64_t worker, double value,
                           std::string detail) {
  const EventJournal::AppendResult appended = telemetry_->journal().append(
      kind, std::move(tenant), worker, value, std::move(detail));
  metrics_.journal_events().add();
  if (appended.overwrote) metrics_.journal_events_dropped().add();
}

void Daemon::update_overload_state() {
  std::size_t depth = 0;
  for (const auto& queue : queues_) depth += queue->depth();
  const std::size_t capacity = options_.queue_capacity * queues_.size();
  if (capacity == 0) return;
  const bool over = overloaded_.load(std::memory_order_relaxed);
  if (!over && depth * 10 >= capacity * 9) {
    if (!overloaded_.exchange(true, std::memory_order_relaxed)) {
      journal_event(EventKind::overload_enter, "", 0,
                    static_cast<double>(depth), "");
    }
  } else if (over && depth * 2 <= capacity) {
    if (overloaded_.exchange(false, std::memory_order_relaxed)) {
      journal_event(EventKind::overload_exit, "", 0,
                    static_cast<double>(depth), "");
    }
  }
}

HealthReport Daemon::health() {
  update_overload_state();
  HealthReport report;
  std::size_t depth = 0;
  for (const auto& queue : queues_) depth += queue->depth();
  report.queue_depth = depth;
  report.workers = queues_.size();
  const std::size_t capacity = options_.queue_capacity * queues_.size();
  report.queue_occupancy =
      capacity == 0 ? 0.0
                    : static_cast<double>(depth) / static_cast<double>(capacity);
  const std::uint64_t ingested = metrics_.ingested().value();
  std::uint64_t shed = 0;
  for (ShedReason reason : all_shed_reasons()) {
    shed += metrics_.shed(reason).value();
  }
  report.shed_ratio =
      ingested + shed == 0
          ? 0.0
          : static_cast<double>(shed) / static_cast<double>(ingested + shed);
  for (std::size_t i = 0; i < telemetry_->workers(); ++i) {
    report.heartbeats += telemetry_->worker(i).heartbeat();
  }
  report.overloaded = overloaded_.load(std::memory_order_relaxed);
  // Thresholds documented in docs/DAEMON.md "Health verdict".
  if (report.overloaded || report.queue_occupancy >= 0.9) {
    report.level = HealthLevel::overloaded;
    report.reason = "queue occupancy at or above the overload threshold";
  } else if (report.queue_occupancy >= 0.5) {
    report.level = HealthLevel::degraded;
    report.reason = "queue occupancy above 50%";
  } else if (report.shed_ratio >= 0.01) {
    report.level = HealthLevel::degraded;
    report.reason = "lifetime shed ratio above 1%";
  } else {
    report.reason = "queues and shed rates nominal";
  }
  metrics_.health_level().set(static_cast<double>(report.level));
  return report;
}

}  // namespace cryptodrop::daemon
