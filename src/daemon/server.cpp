#include "daemon/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <string_view>
#include <utility>
#include <vector>

namespace cryptodrop::daemon {
namespace {

/// Monotonic milliseconds for idle deadlines and frame cadence. This is
/// transport pacing, not a measurement — allowlisted for the wall-clock
/// lint (tools/lint/lint_allow.txt).
long long mono_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-connection transport state (input framing + watch stream).
struct Conn {
  std::string in;              ///< Unconsumed request bytes.
  std::string out;             ///< Pending output (watch streams only).
  bool watching = false;       ///< Promoted to a push stream.
  std::string tenant_filter;   ///< Watch tenant filter ("" = all).
  std::uint64_t cursor = 0;    ///< Next journal cursor to stream.
  long long last_read_ms = 0;  ///< Idle-deadline bookkeeping.
};

/// Fills a sockaddr_un for `path`; false when the path does not fit.
bool make_address(const std::string& path, sockaddr_un& addr) {
  if (path.size() >= sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

/// Writes all of `data` to `fd` (retrying short writes). False on error.
bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Writes what it can of `out` to a non-blocking `fd`, keeping the
/// rest buffered. False only on a fatal connection error.
bool flush_some(int fd, std::string& out) {
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n = ::write(fd, out.data() + sent, out.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (n == 0) break;
    sent += static_cast<std::size_t>(n);
  }
  out.erase(0, sent);
  return true;
}

/// One `{"frame":"stats",...}` line for the watch stream: per-tenant
/// rows (optionally filtered) plus queue and health gauges.
std::string stats_frame(Daemon& daemon, const std::string& tenant_filter) {
  Json rows = Json::array();
  for (const TenantInfo& info : daemon.tenants()) {
    if (!tenant_filter.empty() && info.id != tenant_filter) continue;
    rows.push(Json::object()
                  .set("id", info.id)
                  .set("worker", info.worker)
                  .set("ingested", info.ingested)
                  .set("executed", info.executed)
                  .set("shed", info.shed));
  }
  std::size_t depth = 0;
  Json depths = Json::array();
  for (std::size_t d : daemon.queue_depths()) {
    depth += d;
    depths.push(static_cast<unsigned long long>(d));
  }
  const HealthReport health = daemon.health();
  return Json::object()
             .set("frame", "stats")
             .set("tenants", std::move(rows))
             .set("queue_depth", static_cast<unsigned long long>(depth))
             .set("queue_depths", std::move(depths))
             .set("health", std::string(health_level_name(health.level)))
      .to_string() + "\n";
}

/// One `{"frame":"event",...}` line wrapping a journal event.
std::string event_frame(const JournalEvent& event) {
  return Json::object()
             .set("frame", "event")
             .set("event", to_json(event))
             .to_string() + "\n";
}

}  // namespace

SocketServer::~SocketServer() { stop(); }

Status SocketServer::start() {
  sockaddr_un addr{};
  if (!make_address(socket_path_, addr)) {
    return Status(Errc::invalid_argument,
                  "socket path too long: " + socket_path_);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status(Errc::io_error,
                  std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(socket_path_.c_str());  // Replace any stale socket file.
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(Errc::io_error, "bind " + socket_path_ + ": " +
                                      std::strerror(err));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    ::unlink(socket_path_.c_str());
    listen_fd_ = -1;
    return Status(Errc::io_error,
                  std::string("listen: ") + std::strerror(err));
  }
  thread_ = std::thread([this] { serve_loop(); });
  return Status::ok();
}

void SocketServer::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path_.c_str());
}

void SocketServer::wait() {
  if (thread_.joinable()) thread_.join();
}

void SocketServer::serve_loop() {
  std::map<int, Conn> clients;
  long long last_frame = mono_ms();
  std::size_t watchers = 0;
  DaemonMetrics& metrics = daemon_->daemon_metrics();
  // Closing a watcher settles its conservation ledger: every journal
  // event past its cursor — plus event frames still buffered but never
  // written to the socket — counts as shed, so `emitted == delivered +
  // shed` holds exactly per stream at the transport boundary.
  constexpr std::string_view kEventMarker = "{\"frame\":\"event\"";
  const auto settle_watcher = [&](Conn& conn) {
    if (!conn.watching) return;
    const std::uint64_t end = daemon_->telemetry().journal().emitted();
    std::uint64_t undelivered = end > conn.cursor ? end - conn.cursor : 0;
    for (std::size_t pos = conn.out.find(kEventMarker);
         pos != std::string::npos;
         pos = conn.out.find(kEventMarker, pos + 1)) {
      ++undelivered;
    }
    if (undelivered > 0) metrics.watch_events_shed().add(undelivered);
    --watchers;
    metrics.watch_clients().set(static_cast<double>(watchers));
  };
  const auto close_conn = [&](int fd) {
    const auto it = clients.find(fd);
    if (it == clients.end()) return;
    settle_watcher(it->second);
    ::close(fd);
    clients.erase(it);
  };
  while (true) {
    if (daemon_->shutdown_complete() ||
        stop_requested_.load(std::memory_order_acquire)) {
      break;
    }
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : clients) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const long long now = mono_ms();
    if (ready > 0 && (fds[0].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client >= 0) {
        Conn conn;
        conn.last_read_ms = now;
        clients.emplace(client, std::move(conn));
      }
    }
    for (std::size_t i = 1; ready > 0 && i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const int fd = fds[i].fd;
      Conn& conn = clients[fd];
      if ((fds[i].revents & POLLOUT) != 0 && !flush_some(fd, conn.out)) {
        close_conn(fd);
        continue;
      }
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
      if (n <= 0) {
        close_conn(fd);
        continue;
      }
      conn.last_read_ms = now;
      conn.in.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      bool dead = false;
      for (std::size_t nl = conn.in.find('\n', start);
           nl != std::string::npos; nl = conn.in.find('\n', start)) {
        const std::string line = conn.in.substr(start, nl - start);
        start = nl + 1;
        WatchSubscription sub;
        const std::string response = dispatcher_.handle_line(line, &sub) + "\n";
        if (sub.requested && !conn.watching) {
          // Promote to a push stream: non-blocking fd, bounded output
          // buffer, frames from the subscription cursor onward.
          conn.watching = true;
          conn.tenant_filter = sub.tenant;
          conn.cursor = sub.cursor;
          ++watchers;
          metrics.watch_clients().set(static_cast<double>(watchers));
          const int flags = ::fcntl(fd, F_GETFL, 0);
          if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        }
        if (conn.watching) {
          conn.out += response;
        } else if (!write_all(fd, response)) {
          dead = true;
          break;
        }
      }
      if (dead) {
        close_conn(fd);
        continue;
      }
      conn.in.erase(0, start);
      if (!conn.out.empty() && !flush_some(fd, conn.out)) close_conn(fd);
    }
    if (options_.idle_timeout_ms > 0) {
      for (auto it = clients.begin(); it != clients.end();) {
        const int fd = it->first;
        const Conn& conn = it->second;
        ++it;
        if (conn.watching) continue;
        if (now - conn.last_read_ms < options_.idle_timeout_ms) continue;
        metrics.conns_idle_closed().add();
        close_conn(fd);
      }
    }
    if (watchers == 0) {
      last_frame = now;
    } else if (now - last_frame >= options_.frame_interval_ms) {
      last_frame = now;
      for (auto it = clients.begin(); it != clients.end();) {
        const int fd = it->first;
        Conn& conn = it->second;
        ++it;
        if (!conn.watching) continue;
        EventJournal::Drain drain = daemon_->telemetry().journal().since(
            conn.cursor, conn.tenant_filter, /*max=*/128);
        conn.cursor = drain.next_cursor;
        // Ring overwrites the subscriber never saw count as shed too.
        if (drain.dropped > 0) metrics.watch_events_shed().add(drain.dropped);
        for (JournalEvent& event : drain.events) {
          if (conn.out.size() >= options_.watch_buffer_limit) {
            metrics.watch_events_shed().add();
            continue;
          }
          conn.out += event_frame(event);
          metrics.watch_frames().add();
        }
        // A stats frame that does not fit is simply skipped — the next
        // tick regenerates it, and daemon_watch_events_shed_total stays
        // an *event* ledger (conservation: emitted == delivered + shed).
        if (conn.out.size() < options_.watch_buffer_limit) {
          conn.out += stats_frame(*daemon_, conn.tenant_filter);
          metrics.watch_frames().add();
        }
        if (!flush_some(fd, conn.out)) close_conn(fd);
      }
    }
  }
  for (auto& [fd, conn] : clients) {
    settle_watcher(conn);
    ::close(fd);
  }
  metrics.watch_clients().set(0.0);
}

DaemonClient::~DaemonClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> DaemonClient::request(const std::string& line) {
  if (fd_ < 0) {
    sockaddr_un addr{};
    if (!make_address(socket_path_, addr)) {
      return Status(Errc::invalid_argument,
                    "socket path too long: " + socket_path_);
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return Status(Errc::io_error,
                    std::string("socket: ") + std::strerror(errno));
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      return Status(Errc::io_error, "connect " + socket_path_ + ": " +
                                        std::strerror(err));
    }
  }
  if (!write_all(fd_, line + "\n")) {
    return Status(Errc::io_error,
                  std::string("write: ") + std::strerror(errno));
  }
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return response;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status(Errc::io_error, "connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace cryptodrop::daemon
