#include "daemon/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

namespace cryptodrop::daemon {
namespace {

/// Fills a sockaddr_un for `path`; false when the path does not fit.
bool make_address(const std::string& path, sockaddr_un& addr) {
  if (path.size() >= sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

/// Writes all of `data` to `fd` (retrying short writes). False on error.
bool write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::~SocketServer() { stop(); }

Status SocketServer::start() {
  sockaddr_un addr{};
  if (!make_address(socket_path_, addr)) {
    return Status(Errc::invalid_argument,
                  "socket path too long: " + socket_path_);
  }
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status(Errc::io_error,
                  std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(socket_path_.c_str());  // Replace any stale socket file.
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status(Errc::io_error, "bind " + socket_path_ + ": " +
                                      std::strerror(err));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    ::unlink(socket_path_.c_str());
    listen_fd_ = -1;
    return Status(Errc::io_error,
                  std::string("listen: ") + std::strerror(err));
  }
  thread_ = std::thread([this] { serve_loop(); });
  return Status::ok();
}

void SocketServer::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(socket_path_.c_str());
}

void SocketServer::wait() {
  if (thread_.joinable()) thread_.join();
}

void SocketServer::serve_loop() {
  std::map<int, std::string> clients;  // fd -> unconsumed input bytes
  while (true) {
    if (daemon_->shutdown_complete() ||
        stop_requested_.load(std::memory_order_acquire)) {
      break;
    }
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, buffer] : clients) fds.push_back({fd, POLLIN, 0});
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    if ((fds[0].revents & POLLIN) != 0) {
      const int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client >= 0) clients.emplace(client, std::string());
    }
    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const int fd = fds[i].fd;
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) {
        ::close(fd);
        clients.erase(fd);
        continue;
      }
      std::string& buffer = clients[fd];
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      bool dead = false;
      for (std::size_t nl = buffer.find('\n', start);
           nl != std::string::npos; nl = buffer.find('\n', start)) {
        const std::string line = buffer.substr(start, nl - start);
        start = nl + 1;
        if (!write_all(fd, dispatcher_.handle_line(line) + "\n")) {
          dead = true;
          break;
        }
      }
      if (dead) {
        ::close(fd);
        clients.erase(fd);
      } else {
        buffer.erase(0, start);
      }
    }
  }
  for (const auto& [fd, buffer] : clients) ::close(fd);
}

DaemonClient::~DaemonClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> DaemonClient::request(const std::string& line) {
  if (fd_ < 0) {
    sockaddr_un addr{};
    if (!make_address(socket_path_, addr)) {
      return Status(Errc::invalid_argument,
                    "socket path too long: " + socket_path_);
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      return Status(Errc::io_error,
                    std::string("socket: ") + std::strerror(errno));
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      return Status(Errc::io_error, "connect " + socket_path_ + ": " +
                                        std::strerror(err));
    }
  }
  if (!write_all(fd_, line + "\n")) {
    return Status(Errc::io_error,
                  std::string("write: ") + std::strerror(errno));
  }
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string response = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      return response;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status(Errc::io_error, "connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace cryptodrop::daemon
