#include "daemon/metrics.hpp"

namespace cryptodrop::daemon {

std::string_view shed_reason_name(ShedReason reason) {
  switch (reason) {
    case ShedReason::benign_read: return "benign_read";
    case ShedReason::queue_full: return "queue_full";
    case ShedReason::tenant_gone: return "tenant_gone";
    case ShedReason::shutdown: return "shutdown";
  }
  return "?";
}

std::vector<ShedReason> all_shed_reasons() {
  return {ShedReason::benign_read, ShedReason::queue_full,
          ShedReason::tenant_gone, ShedReason::shutdown};
}

DaemonMetrics::DaemonMetrics() {
  ingested_ = &registry_.counter(
      "daemon_ops_ingested_total",
      "Ops accepted into the daemon's ingestion queues (spawns included).",
      "ops");
  executed_ = &registry_.counter(
      "daemon_ops_executed_total",
      "Ops executed through a tenant session by a daemon worker.", "ops");
  batches_drained_ = &registry_.counter(
      "daemon_batches_drained_total",
      "Queue batches drained by workers (one per pop_batch call).",
      "batches");
  for (ShedReason reason : all_shed_reasons()) {
    shed_[static_cast<std::size_t>(reason)] = &registry_.counter(
        "daemon_ops_shed_total." + std::string(shed_reason_name(reason)),
        "Ops dropped instead of executed, by shed reason "
        "(docs/DAEMON.md overload semantics).",
        "ops");
  }
  tenants_attached_ = &registry_.counter(
      "daemon_tenants_attached_total", "Tenant sessions ever attached.",
      "tenants");
  tenants_detached_ = &registry_.counter(
      "daemon_tenants_detached_total", "Tenant sessions ever detached.",
      "tenants");
  control_requests_ = &registry_.counter(
      "daemon_control_requests_total",
      "Control-API requests handled (errors included).", "requests");
  control_errors_ = &registry_.counter(
      "daemon_control_errors_total",
      "Control-API requests answered with an error response.", "requests");
  conns_idle_closed_ = &registry_.counter(
      "daemon_conns_idle_closed_total",
      "Control connections evicted by the per-connection idle read "
      "deadline (half-open clients).",
      "connections");
  journal_events_ = &registry_.counter(
      "daemon_journal_events_total",
      "Structured events appended to the operator journal.", "events");
  journal_events_dropped_ = &registry_.counter(
      "daemon_journal_events_dropped_total",
      "Journal events overwritten by the bounded ring before any "
      "cursor-0 reader saw them.",
      "events");
  watch_frames_ = &registry_.counter(
      "daemon_watch_frames_total",
      "Frames pushed to `watch` subscribers (stats and event frames).",
      "frames");
  watch_events_shed_ = &registry_.counter(
      "daemon_watch_events_shed_total",
      "Journal events and frames dropped for slow `watch` consumers "
      "(bounded per-connection output buffer).",
      "events");
  queue_depth_ = &registry_.gauge(
      "daemon_queue_depth",
      "Items currently queued across all ingestion queues.", "ops");
  queue_high_water_ = &registry_.gauge(
      "daemon_queue_high_water",
      "Largest total ingestion-queue depth ever observed.", "ops");
  tenants_active_ = &registry_.gauge(
      "daemon_tenants_active", "Tenant sessions currently attached.",
      "tenants");
  health_level_ = &registry_.gauge(
      "daemon_health_level",
      "Latest health verdict ordinal (0 ok, 1 degraded, 2 overloaded).",
      "level");
  watch_clients_ = &registry_.gauge(
      "daemon_watch_clients", "Watch subscriptions currently streaming.",
      "connections");
  ingest_latency_us_ = &registry_.histogram(
      "daemon_worker_ingest_latency_us",
      "Per-op execute latency observed by daemon workers (all workers "
      "merged).",
      "us", obs::MetricsRegistry::latency_buckets_us());
  worker_queue_depth_ = &registry_.histogram(
      "daemon_worker_queue_depth",
      "Queue-depth samples taken by draining workers, one per batch.",
      "ops", obs::MetricsRegistry::latency_buckets_us());
}

}  // namespace cryptodrop::daemon
