#include "daemon/metrics.hpp"

namespace cryptodrop::daemon {

std::string_view shed_reason_name(ShedReason reason) {
  switch (reason) {
    case ShedReason::benign_read: return "benign_read";
    case ShedReason::queue_full: return "queue_full";
    case ShedReason::tenant_gone: return "tenant_gone";
    case ShedReason::shutdown: return "shutdown";
  }
  return "?";
}

std::vector<ShedReason> all_shed_reasons() {
  return {ShedReason::benign_read, ShedReason::queue_full,
          ShedReason::tenant_gone, ShedReason::shutdown};
}

DaemonMetrics::DaemonMetrics() {
  ingested_ = &registry_.counter(
      "daemon_ops_ingested_total",
      "Ops accepted into the daemon's ingestion queues (spawns included).",
      "ops");
  executed_ = &registry_.counter(
      "daemon_ops_executed_total",
      "Ops executed through a tenant session by a daemon worker.", "ops");
  batches_drained_ = &registry_.counter(
      "daemon_batches_drained_total",
      "Queue batches drained by workers (one per pop_batch call).",
      "batches");
  for (ShedReason reason : all_shed_reasons()) {
    shed_[static_cast<std::size_t>(reason)] = &registry_.counter(
        "daemon_ops_shed_total." + std::string(shed_reason_name(reason)),
        "Ops dropped instead of executed, by shed reason "
        "(docs/DAEMON.md overload semantics).",
        "ops");
  }
  tenants_attached_ = &registry_.counter(
      "daemon_tenants_attached_total", "Tenant sessions ever attached.",
      "tenants");
  tenants_detached_ = &registry_.counter(
      "daemon_tenants_detached_total", "Tenant sessions ever detached.",
      "tenants");
  control_requests_ = &registry_.counter(
      "daemon_control_requests_total",
      "Control-API requests handled (errors included).", "requests");
  control_errors_ = &registry_.counter(
      "daemon_control_errors_total",
      "Control-API requests answered with an error response.", "requests");
  queue_depth_ = &registry_.gauge(
      "daemon_queue_depth",
      "Items currently queued across all ingestion queues.", "ops");
  queue_high_water_ = &registry_.gauge(
      "daemon_queue_high_water",
      "Largest total ingestion-queue depth ever observed.", "ops");
  tenants_active_ = &registry_.gauge(
      "daemon_tenants_active", "Tenant sessions currently attached.",
      "tenants");
}

}  // namespace cryptodrop::daemon
