// Wire layer for the cryptodropd control API (docs/DAEMON.md).
//
// The control protocol is line-delimited JSON: one request object per
// line in, one response object per line out. The repo's common::Json is
// a serialize-only builder, so this header adds the missing half — a
// small recursive-descent JSON reader (JsonValue / parse_json) — plus
// the response-side serializers shared between the daemon and the
// parity harness: to_json(ProcessReport) is used by BOTH the daemon's
// `verdicts` response and the in-process golden run, so "bit-identical
// scoreboards" is a string comparison of the same serializer's output.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "core/engine.hpp"

namespace cryptodrop::daemon {

/// A parsed JSON document node (the reader half common::Json lacks).
struct JsonValue {
  /// JSON node kinds. `null_` is also what lookups return on miss.
  enum class Kind : std::uint8_t { null_, boolean, number, string, array, object };

  Kind kind = Kind::null_;
  bool b = false;            ///< Valid when kind == boolean.
  double num = 0.0;          ///< Valid when kind == number.
  std::string str;           ///< Valid when kind == string.
  std::vector<JsonValue> items;  ///< Valid when kind == array.
  /// Key/value pairs in document order. Valid when kind == object.
  std::vector<std::pair<std::string, JsonValue>> fields;

  /// Member lookup (first match), or nullptr when absent / not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// String member, or `fallback` when absent or not a string.
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;
  /// Numeric member, or `fallback` when absent or not a number.
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  /// Boolean member, or `fallback` when absent or not a boolean.
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;
};

/// Parses one JSON document (object/array/scalar). Returns nullopt on
/// malformed input or trailing garbage.
std::optional<JsonValue> parse_json(std::string_view text);

/// Serializes one process report — score, verdict, indicator counts,
/// entropy means, extension sets, score timeline and forensic timeline —
/// the "per-tenant scoreboard" unit of the daemon parity gate.
Json report_to_json(const core::ProcessReport& report);

/// Serializes the scoreboard half of an engine snapshot: the report
/// list plus the default threshold. Latency and metrics are excluded:
/// they carry wall-clock measurements outside the determinism contract.
Json scoreboard_to_json(const core::EngineSnapshot& snapshot);

}  // namespace cryptodrop::daemon
