#include "daemon/telemetry.hpp"

#include <algorithm>
#include <mutex>

namespace cryptodrop::daemon {

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::tenant_attach: return "tenant_attach";
    case EventKind::tenant_detach: return "tenant_detach";
    case EventKind::suspension: return "suspension";
    case EventKind::shed_start: return "shed_start";
    case EventKind::shed_stop: return "shed_stop";
    case EventKind::overload_enter: return "overload_enter";
    case EventKind::overload_exit: return "overload_exit";
    case EventKind::worker_start: return "worker_start";
    case EventKind::worker_stop: return "worker_stop";
  }
  return "?";
}

std::vector<EventKind> all_event_kinds() {
  return {EventKind::tenant_attach, EventKind::tenant_detach,
          EventKind::suspension,    EventKind::shed_start,
          EventKind::shed_stop,     EventKind::overload_enter,
          EventKind::overload_exit, EventKind::worker_start,
          EventKind::worker_stop};
}

Json to_json(const JournalEvent& event) {
  return Json::object()
      .set("cursor", event.cursor)
      .set("kind", std::string(event_kind_name(event.kind)))
      .set("tenant", event.tenant)
      .set("worker", event.worker)
      .set("value", event.value)
      .set("detail", event.detail);
}

EventJournal::EventJournal(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

EventJournal::AppendResult EventJournal::append(EventKind kind,
                                                std::string tenant,
                                                std::uint64_t worker,
                                                double value,
                                                std::string detail) {
  std::lock_guard<decltype(mu_)> guard(mu_);
  AppendResult result;
  result.cursor = next_cursor_++;
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++overwritten_;
    result.overwrote = true;
  }
  JournalEvent event;
  event.cursor = result.cursor;
  event.kind = kind;
  event.tenant = std::move(tenant);
  event.worker = worker;
  event.value = value;
  event.detail = std::move(detail);
  ring_.push_back(std::move(event));
  return result;
}

EventJournal::Drain EventJournal::since(std::uint64_t cursor,
                                        std::string_view tenant,
                                        std::size_t max) const {
  std::lock_guard<decltype(mu_)> guard(mu_);
  Drain drain;
  const std::uint64_t oldest =
      ring_.empty() ? next_cursor_ : ring_.front().cursor;
  drain.next_cursor = std::max(cursor, oldest);
  if (cursor < oldest) drain.dropped = oldest - cursor;
  for (const JournalEvent& event : ring_) {
    if (event.cursor < drain.next_cursor) continue;
    if (drain.events.size() >= max) break;
    drain.next_cursor = event.cursor + 1;
    if (!tenant.empty() && event.tenant != tenant) continue;
    drain.events.push_back(event);
  }
  return drain;
}

std::uint64_t EventJournal::emitted() const {
  std::lock_guard<decltype(mu_)> guard(mu_);
  return next_cursor_;
}

std::uint64_t EventJournal::overwritten() const {
  std::lock_guard<decltype(mu_)> guard(mu_);
  return overwritten_;
}

WorkerTelemetry::WorkerTelemetry()
    : latency_(obs::MetricsRegistry::latency_buckets_us()),
      depth_(obs::MetricsRegistry::latency_buckets_us()) {}

DaemonTelemetry::DaemonTelemetry(std::size_t workers,
                                 std::size_t journal_capacity)
    : journal_(journal_capacity) {
  workers_.reserve(std::max<std::size_t>(workers, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(workers, 1); ++i) {
    workers_.push_back(std::make_unique<WorkerTelemetry>());
  }
}

std::string_view health_level_name(HealthLevel level) {
  switch (level) {
    case HealthLevel::ok: return "ok";
    case HealthLevel::degraded: return "degraded";
    case HealthLevel::overloaded: return "overloaded";
  }
  return "?";
}

Json to_json(const HealthReport& report) {
  return Json::object()
      .set("level", std::string(health_level_name(report.level)))
      .set("queue_occupancy", report.queue_occupancy)
      .set("shed_ratio", report.shed_ratio)
      .set("queue_depth", report.queue_depth)
      .set("workers", report.workers)
      .set("heartbeats", report.heartbeats)
      .set("overloaded", report.overloaded)
      .set("reason", report.reason);
}

}  // namespace cryptodrop::daemon
