// Bounded MPSC ingestion queue with admission control (DESIGN.md §15).
//
// One queue per daemon worker; each tenant is pinned to one worker, so
// per-tenant op order is FIFO and a tenant's session is only ever
// touched by one executing thread. Producers are control-API threads
// (multi), the consumer is the worker (single).
//
// Admission control never blocks a producer and never drops silently:
// when a queue is at capacity, benign-read ops are shed first — an
// incoming read-class op is dropped, and an incoming modify-class op
// evicts the oldest queued read-class op to make room. Only when no
// read-class op can make way is a modify-class op itself dropped
// (reason `queue_full`). Spawn items are never shed: losing a process
// registration would corrupt every later pid in the tenant's replay.
// Every decision is reported to the caller so the daemon can count it
// (`daemon_ops_shed_total.<shed_reason>` — the overload invariant is
// "ingested == executed + shed", docs/DAEMON.md).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/ranked_mutex.hpp"
#include "vfs/trace.hpp"

namespace cryptodrop::daemon {

/// Why an op was dropped instead of executed.
enum class ShedReason : std::uint8_t {
  benign_read,  ///< Read-class op shed under queue pressure (shed first).
  queue_full,   ///< Modify-class op shed: queue full of modify-class ops.
  tenant_gone,  ///< Op belonged to a tenant detached before execution.
  shutdown,     ///< Op discarded by a non-drained shutdown.
};

/// Stable lowercase label ("benign_read", ...) — the metric suffix.
std::string_view shed_reason_name(ShedReason reason);

/// Every shed reason, in schema order (docs_check mirrors this into the
/// `<shed_reason>` placeholder labels).
std::vector<ShedReason> all_shed_reasons();

struct TenantState;  // daemon.hpp

/// One queued unit of tenant work: a recorded filesystem op, or a
/// process registration (spawn) that must precede its ops.
struct QueueItem {
  std::shared_ptr<TenantState> tenant;
  bool is_spawn = false;
  vfs::TraceEntry entry;  ///< Valid when !is_spawn.
  // Spawn payload (valid when is_spawn):
  vfs::ProcessId spawn_pid = 0;  ///< Recorded pid being registered.
  std::string spawn_name;
  vfs::ProcessId spawn_parent = 0;  ///< Recorded parent pid (0 = none).
};

/// True for ops admission control may shed first: reads, and opens that
/// request no write access (their dependent reads/close are skipped as
/// dead-handle ops at execution time).
inline bool is_read_class(const QueueItem& item) {
  if (item.is_spawn) return false;
  if (item.entry.op == vfs::OpType::read) return true;
  return item.entry.op == vfs::OpType::open &&
         (item.entry.open_mode &
          (vfs::kWrite | vfs::kTruncate | vfs::kCreate)) == 0;
}

/// The bounded queue (see the file comment). Thread-safe.
class BoundedOpQueue {
 public:
  /// What push() did with the item.
  struct PushResult {
    bool accepted = false;       ///< Item is queued (possibly by eviction).
    bool shed_incoming = false;  ///< Item itself was dropped.
    /// A queued read-class item evicted to admit this one (its owner
    /// tenant is charged the shed). Null when nothing was evicted.
    std::shared_ptr<QueueItem> evicted;
    ShedReason reason{};  ///< Valid when shed_incoming or evicted.
  };

  /// `capacity` bounds queued (not in-flight) items; spawns may exceed
  /// it (never shed).
  explicit BoundedOpQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admission-controlled enqueue; never blocks (see file comment).
  // cryptodrop:hot
  PushResult push(QueueItem item) {
    PushResult result;
    std::unique_lock<QueueMutex> lock(mu_);
    if (stopped_) {
      result.shed_incoming = true;
      result.reason = ShedReason::shutdown;
      return result;
    }
    if (item.is_spawn || items_.size() < capacity_) {
      items_.push_back(std::move(item));
      if (items_.size() > high_water_) high_water_ = items_.size();
      result.accepted = true;
      lock.unlock();
      work_cv_.notify_one();
      return result;
    }
    if (is_read_class(item)) {
      result.shed_incoming = true;
      result.reason = ShedReason::benign_read;
      return result;
    }
    // Modify-class under pressure: evict the oldest queued read-class op.
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (is_read_class(*it)) {
        result.evicted = std::make_shared<QueueItem>(std::move(*it));
        result.reason = ShedReason::benign_read;
        items_.erase(it);
        items_.push_back(std::move(item));
        result.accepted = true;
        lock.unlock();
        work_cv_.notify_one();
        return result;
      }
    }
    result.shed_incoming = true;
    result.reason = ShedReason::queue_full;
    return result;
  }

  /// Blocking dequeue. Returns false when the queue is stopped and
  /// empty (worker exits). The returned item counts as in-flight until
  /// done() is called.
  // cryptodrop:hot
  bool pop(QueueItem& out) {
    std::unique_lock<QueueMutex> lock(mu_);
    work_cv_.wait(lock, [&] {
      return (!items_.empty() && !paused_) || (stopped_ && items_.empty());
    });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    busy_ = true;
    return true;
  }

  /// Blocking batched dequeue: waits like pop(), then moves up to
  /// `max_items` items into `out` (cleared first) in FIFO order under
  /// one lock acquisition. Returns false when the queue is stopped and
  /// empty. The whole batch counts as in-flight until done() is called,
  /// so drain_wait() still observes "executed or queued, never lost".
  // cryptodrop:hot
  bool pop_batch(std::vector<QueueItem>& out, std::size_t max_items) {
    out.clear();
    std::unique_lock<QueueMutex> lock(mu_);
    work_cv_.wait(lock, [&] {
      return (!items_.empty() && !paused_) || (stopped_ && items_.empty());
    });
    if (items_.empty()) return false;
    const std::size_t take = std::min(max_items, items_.size());
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    busy_ = true;
    return true;
  }

  /// Marks the item(s) returned by the last pop()/pop_batch() as
  /// finished (drain visibility).
  void done() {
    {
      std::unique_lock<QueueMutex> lock(mu_);
      busy_ = false;
    }
    idle_cv_.notify_all();
  }

  /// Blocks until the queue is empty and no item is in flight.
  void drain_wait() {
    std::unique_lock<QueueMutex> lock(mu_);
    idle_cv_.wait(lock, [&] { return items_.empty() && !busy_; });
  }

  /// Removes and returns everything still queued (non-drained shutdown
  /// accounting).
  std::vector<QueueItem> discard_all() {
    std::vector<QueueItem> discarded;
    {
      std::unique_lock<QueueMutex> lock(mu_);
      discarded.assign(std::make_move_iterator(items_.begin()),
                       std::make_move_iterator(items_.end()));
      items_.clear();
    }
    idle_cv_.notify_all();
    return discarded;
  }

  /// Stops the queue: push() sheds everything, pop() returns false once
  /// empty.
  void stop() {
    {
      std::unique_lock<QueueMutex> lock(mu_);
      stopped_ = true;
    }
    work_cv_.notify_all();
  }

  /// Test hook: suspends the consumer so overload can be forced
  /// deterministically.
  void pause() {
    std::unique_lock<QueueMutex> lock(mu_);
    paused_ = true;
  }

  /// Releases a pause().
  void resume() {
    {
      std::unique_lock<QueueMutex> lock(mu_);
      paused_ = false;
    }
    work_cv_.notify_all();
  }

  /// Items currently queued (racy snapshot; exact once producers stop).
  [[nodiscard]] std::size_t depth() const {
    std::unique_lock<QueueMutex> lock(mu_);
    return items_.size();
  }

  /// Largest depth ever observed.
  [[nodiscard]] std::size_t high_water() const {
    std::unique_lock<QueueMutex> lock(mu_);
    return high_water_;
  }

 private:
  /// Rank 4: released before any engine lock is taken (DESIGN.md §15).
  using QueueMutex = common::RankedMutex<common::lockrank::kDaemonQueue>;

  mutable QueueMutex mu_;
  std::condition_variable_any work_cv_;  ///< Signalled on push/stop/resume.
  std::condition_variable_any idle_cv_;  ///< Signalled when work finishes.
  std::deque<QueueItem> items_;
  std::size_t capacity_;
  std::size_t high_water_ = 0;
  bool busy_ = false;
  bool stopped_ = false;
  bool paused_ = false;
};

}  // namespace cryptodrop::daemon
