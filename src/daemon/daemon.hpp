// cryptodropd — the persistent multi-tenant monitoring service.
//
// The paper's CryptoDrop is a resident monitor: it outlives any one
// workload. Everything below src/daemon is campaign-shaped (construct a
// session, replay, tear down); this class decouples engine lifetime
// from workload lifetime. A Daemon owns:
//
//  * one base volume (cloned per tenant, copy-on-write content);
//  * N worker threads, each consuming one bounded ingestion queue
//    (daemon/queue.hpp) with shed-benign-reads-first admission control;
//  * a registry of tenant sessions. Each tenant is an isolated
//    core::MonitorSession (own volume clone, own AnalysisEngine, own
//    ScoringConfig, own metrics/trace namespace) pinned to one worker,
//    so a tenant's op stream executes in FIFO order on one thread while
//    different tenants run in parallel.
//
// Ops arrive as recorded vfs::TraceEntry values (the wire unit of the
// control API, daemon/control.hpp) and execute through a
// vfs::ExactReplayer, which reproduces handle lifetimes, offsets and
// virtual-clock timestamps exactly — the verdict bit-parity contract
// with the in-process batch runner (harness/daemon_runner.hpp proves
// it; docs/DAEMON.md documents it).
//
// Thread model and lock ranks (DESIGN.md §15): the tenant registry is
// rank kDaemonRegistry(3), each queue's mutex rank kDaemonQueue(4);
// both sit below every engine rank, and workers release the queue lock
// before executing an op, so no daemon lock is ever held across engine
// work. Queries (verdicts/explain/metrics) ride the engine's own
// thread-safe snapshot paths and may run concurrently with execution.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/ranked_mutex.hpp"
#include "common/result.hpp"
#include "core/config.hpp"
#include "core/session.hpp"
#include "daemon/metrics.hpp"
#include "daemon/queue.hpp"
#include "daemon/telemetry.hpp"
#include "obs/span.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/trace.hpp"

namespace cryptodrop::daemon {

/// Per-tenant drop/throughput accounting (mirrors the daemon-level
/// counters, scoped to one tenant; exposed by the `tenants` request).
struct TenantStats {
  std::atomic<std::uint64_t> ingested{0};
  std::atomic<std::uint64_t> executed{0};
  /// Shed counts indexed by ShedReason.
  std::array<std::atomic<std::uint64_t>, 4> shed{};

  /// Total shed across all reasons.
  [[nodiscard]] std::uint64_t shed_total() const {
    std::uint64_t total = 0;
    for (const auto& s : shed) total += s.load(std::memory_order_relaxed);
    return total;
  }
};

/// One attached tenant: an isolated monitoring session plus the replay
/// state its pinned worker drives. The session/replayer/pid_map members
/// are worker-thread-only once attached; `stats` and `detached` are
/// shared (atomic).
struct TenantState {
  /// Builds the tenant's session over a clone of `base`.
  TenantState(std::string tenant_id, const vfs::FileSystem& base,
              core::ScoringConfig config)
      : id(std::move(tenant_id)),
        session(base, std::move(config)),
        replayer(session.fs()) {}

  std::string id;
  core::MonitorSession session;
  vfs::ExactReplayer replayer;
  /// Recorded pid -> live pid (spawn replay; worker-thread-only).
  std::map<vfs::ProcessId, vfs::ProcessId> pid_map;
  std::size_t worker = 0;  ///< Index of the queue/worker this tenant rides.
  std::atomic<bool> detached{false};
  /// True while the tenant is inside a shed burst (drives the
  /// shed_start / shed_stop journal transitions, not per-op events).
  std::atomic<bool> shedding{false};
  TenantStats stats;
};

/// Thread-safe tenant-id -> state map. insert() treats a duplicate id
/// as an invariant violation and aborts — Daemon::attach checks for the
/// id under this registry's own lock first, so the public API can never
/// reach the abort (tests/daemon_test.cpp's death test drives it
/// directly).
class TenantRegistry {
 public:
  /// Inserts a new tenant; aborts on duplicate id (see class comment).
  void insert(std::shared_ptr<TenantState> state);
  /// The tenant with `id`, or nullptr.
  [[nodiscard]] std::shared_ptr<TenantState> find(std::string_view id) const;
  /// True when `id` is attached.
  [[nodiscard]] bool contains(std::string_view id) const;
  /// Removes and returns the tenant with `id`, or nullptr.
  std::shared_ptr<TenantState> erase(std::string_view id);
  /// Every attached tenant, id order.
  [[nodiscard]] std::vector<std::shared_ptr<TenantState>> list() const;
  /// Attached-tenant count.
  [[nodiscard]] std::size_t size() const;

 private:
  /// Rank 3: held only for map mutation/lookup, never across engine work
  /// (attach constructs the session *before* taking it).
  mutable common::RankedMutex<common::lockrank::kDaemonRegistry> mu_;
  std::map<std::string, std::shared_ptr<TenantState>, std::less<>> tenants_;
};

/// Daemon construction knobs.
struct DaemonOptions {
  std::size_t workers = 4;          ///< Worker threads (>= 1; one queue each).
  std::size_t queue_capacity = 4096;  ///< Per-queue bound (admission control).
  /// Max items a worker drains per queue-lock acquisition (>= 1). Larger
  /// batches amortise lock/wakeup cost under contention; per-tenant FIFO
  /// order is unchanged because a batch preserves queue order.
  std::size_t drain_batch = 32;
  /// Scoring config for tenants that attach without overrides.
  core::ScoringConfig default_config;
  /// Daemon span tracing (daemon.ingest / daemon.execute spans).
  obs::TraceOptions trace;
  /// Operator-journal ring capacity (events retained for `events` /
  /// `watch`; older events are overwritten with a counted drop).
  std::size_t journal_capacity = 1024;
};

/// What submit() did with a batch.
struct SubmitResult {
  std::size_t accepted = 0;  ///< Ops queued for execution.
  std::size_t shed = 0;      ///< Ops dropped by admission control.
};

/// One row of the `tenants` listing.
struct TenantInfo {
  std::string id;
  std::size_t worker = 0;
  std::uint64_t ingested = 0;
  std::uint64_t executed = 0;
  std::uint64_t shed = 0;
};

/// The persistent monitoring service (see the file comment). All public
/// methods are thread-safe; lifecycle methods (shutdown) are idempotent.
class Daemon {
 public:
  /// Starts `options.workers` worker threads over a daemon that clones
  /// `base` for every attaching tenant.
  Daemon(const vfs::FileSystem& base, DaemonOptions options);

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Non-drained shutdown (queued work is discarded and counted) unless
  /// shutdown() already ran.
  ~Daemon();

  // --- tenant lifecycle ------------------------------------------------

  /// Attaches a tenant session under `tenant_id` with the daemon's
  /// default config. Fails (no abort) when the id is already attached
  /// or the daemon is shutting down.
  Status attach(const std::string& tenant_id);
  /// attach() with an explicit scoring config.
  Status attach(const std::string& tenant_id, core::ScoringConfig config);
  /// Detaches a tenant: the session is dropped, queued ops shed with
  /// reason `tenant_gone` when their turn comes.
  Status detach(const std::string& tenant_id);

  // --- ingestion -------------------------------------------------------

  /// Enqueues a process registration for the tenant. Spawns are never
  /// shed and must precede the pid's ops (FIFO per tenant guarantees
  /// order). `recorded_pid`/`recorded_parent` are the pids of the
  /// recorded run; the daemon maps them to live pids on execution.
  Status spawn(const std::string& tenant_id, vfs::ProcessId recorded_pid,
               const std::string& name, vfs::ProcessId recorded_parent);

  /// Enqueues recorded ops for the tenant, applying admission control
  /// per op. Never blocks; every dropped op is counted (see
  /// docs/DAEMON.md overload semantics).
  Result<SubmitResult> submit(const std::string& tenant_id,
                              std::vector<vfs::TraceEntry> entries);

  // --- quiescing -------------------------------------------------------

  /// Blocks until every ingestion queue is empty and idle.
  void drain();
  /// Blocks until the tenant's worker queue is empty and idle (drains
  /// whatever else rides that worker too — a superset wait).
  Status drain(const std::string& tenant_id);
  /// Stops the daemon. `drain_first` waits for queued work; otherwise
  /// queued items are discarded and counted shed with reason
  /// `shutdown`. Idempotent; workers are joined before returning.
  void shutdown(bool drain_first);
  /// True once shutdown() has completed (the socket server's exit
  /// condition).
  [[nodiscard]] bool shutdown_complete() const {
    return shutdown_done_.load(std::memory_order_acquire);
  }

  // --- queries (thread-safe, concurrent with execution) ----------------

  /// The tenant's scoreboard: every process report plus the default
  /// threshold, captured atomically by the engine.
  [[nodiscard]] Result<core::EngineSnapshot> verdicts(
      const std::string& tenant_id) const;
  /// The tenant's forensic timeline for a *live* pid.
  [[nodiscard]] Result<obs::ForensicTimeline> explain(
      const std::string& tenant_id, vfs::ProcessId pid) const;
  /// The tenant's engine metrics (its isolated registry).
  [[nodiscard]] Result<obs::MetricsSnapshot> tenant_metrics(
      const std::string& tenant_id) const;
  /// The daemon's own metrics, queue gauges refreshed.
  [[nodiscard]] obs::MetricsSnapshot metrics() const;
  /// Everything the daemon's span tracer retained (empty when tracing
  /// is off).
  [[nodiscard]] obs::SpanSnapshot trace_snapshot() const;
  /// Per-tenant accounting rows, id order.
  [[nodiscard]] std::vector<TenantInfo> tenants() const;
  /// Current queue depth of every worker, index order (watch frames).
  [[nodiscard]] std::vector<std::size_t> queue_depths() const;
  /// The health verdict derived from queue occupancy, shed rates and
  /// worker heartbeats (thresholds in docs/DAEMON.md); refreshes the
  /// overload state and the daemon_health_level gauge.
  [[nodiscard]] HealthReport health();
  /// The operator telemetry plane (journal + per-worker instruments).
  [[nodiscard]] DaemonTelemetry& telemetry() { return *telemetry_; }
  /// Const view of the telemetry plane (query paths).
  [[nodiscard]] const DaemonTelemetry& telemetry() const { return *telemetry_; }
  /// The daemon's instrument set (tests assert on raw counters).
  [[nodiscard]] DaemonMetrics& daemon_metrics() { return metrics_; }
  /// The scoring config tenants attach with when they send no overrides.
  [[nodiscard]] const core::ScoringConfig& default_config() const {
    return options_.default_config;
  }

  // --- test hooks ------------------------------------------------------

  /// Suspends every worker (queued items accumulate) — lets tests force
  /// queue overload deterministically.
  void pause_workers();
  /// Releases pause_workers().
  void resume_workers();

 private:
  /// Worker main: pop, execute, repeat until stopped and empty.
  void worker_loop(std::size_t index);
  /// Executes one queued item through its tenant's session.
  void execute_item(QueueItem& item);
  /// Charges one shed op to the daemon and the item's tenant (journals
  /// the tenant's not-shedding -> shedding transition).
  void count_shed(TenantState& tenant, ShedReason reason);
  /// Refreshes the queue-depth / high-water gauges.
  void refresh_queue_gauges() const;
  /// Appends one journal event and charges the journal counters. Must
  /// be called with no daemon lock held (every call site is lock-free).
  void journal_event(EventKind kind, std::string tenant,
                     std::uint64_t worker, double value, std::string detail);
  /// Crossing-detection for overload_enter/overload_exit: enter at
  /// >= 90% total queue occupancy, exit at <= 50% (hysteresis).
  void update_overload_state();

  vfs::FileSystem base_;
  DaemonOptions options_;
  mutable DaemonMetrics metrics_;
  /// Built in the constructor before workers start; never null after.
  std::unique_ptr<DaemonTelemetry> telemetry_;
  std::atomic<bool> overloaded_{false};
  std::unique_ptr<obs::SpanTracer> tracer_;  ///< Null when tracing is off.
  TenantRegistry registry_;
  std::vector<std::unique_ptr<BoundedOpQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_worker_{0};
  std::atomic<std::uint64_t> span_serial_{0};
  mutable std::atomic<std::size_t> queue_high_water_{0};
  std::atomic<bool> accepting_{true};
  std::atomic<bool> shutdown_done_{false};
  /// Rank 3 (shared with the registry level): serializes shutdown().
  common::RankedMutex<common::lockrank::kDaemonRegistry> shutdown_mu_;
};

}  // namespace cryptodrop::daemon
