// The 14 ransomware families of the paper's Table I (plus Ransom-FUE,
// which the paper tested but excluded from family counts), as profile
// presets, and a factory that reproduces the full 492-sample test set
// with the paper's per-family, per-class breakdown:
//
//   Family                    #A   #B   #C   Total
//   CryptoDefense              -    -   18     18
//   CryptoFortress             2    -    -      2
//   CryptoLocker              13   16    2     31
//   CryptoLocker (copycat)     -    1    1      2
//   CryptoTorLocker2015        1    -    -      1
//   CryptoWall                 2    -    6      8
//   CTB-Locker                 1  120    1    122
//   Filecoder                 51    9   12     72
//   GPcode                    12    -    1     13
//   MBL Advisory               -    -    1      1
//   PoshCoder                  1    -    -      1
//   Ransom-FUE                 -    1    -      1
//   TeslaCrypt               148    -    1    149
//   Virlock                    -    -   20     20
//   Xorist                    51    -    -     51
//                            282  147   63    492
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/ransomware/ransomware.hpp"

namespace cryptodrop::sim {

/// One sample of the experimental set: a family preset specialized to a
/// behavior class, with a unique seed.
struct SampleSpec {
  std::string family;
  BehaviorClass behavior{};
  RansomwareProfile profile;
  std::uint64_t seed = 0;
};

/// Names of the 14 families (Ransom-FUE listed last, as in the paper's
/// footnote it is excluded from family counts).
const std::vector<std::string>& family_names();

/// The family's base profile for a given behavior class. Behavior knobs
/// (traversal, cipher, note habits, disposal strategy) reproduce what the
/// paper reports per family in §V.
RansomwareProfile family_profile(const std::string& family, BehaviorClass behavior);

/// The full 492-sample set with the paper's per-family class mix. Seeded
/// deterministically from `base_seed`; per-sample jitter (key material,
/// generated names, random traversal order) comes from each sample's seed.
std::vector<SampleSpec> table1_samples(std::uint64_t base_seed);

}  // namespace cryptodrop::sim
