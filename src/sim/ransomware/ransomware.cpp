#include "sim/ransomware/ransomware.hpp"

#include <algorithm>
#include <map>

#include "common/text.hpp"
#include "crypto/aes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/xor_cipher.hpp"
#include "vfs/path.hpp"

namespace cryptodrop::sim {

namespace {

/// Any denied operation means the process was suspended: the sample can
/// make no further progress.
bool denied(const Status& status) { return status.code() == Errc::access_denied; }

}  // namespace

std::string_view behavior_class_name(BehaviorClass c) {
  switch (c) {
    case BehaviorClass::A: return "A";
    case BehaviorClass::B: return "B";
    case BehaviorClass::C: return "C";
  }
  return "?";
}

RansomwareSample::RansomwareSample(RansomwareProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)), rng_(seed) {
  key_ = rng_.bytes(profile_.cipher == CipherKind::xor_weak ? 16 : 32);
}

bool RansomwareSample::targets_extension(const std::string& ext) const {
  if (profile_.target_extensions.empty()) return true;
  return std::find(profile_.target_extensions.begin(),
                   profile_.target_extensions.end(),
                   ext) != profile_.target_extensions.end();
}

Bytes RansomwareSample::encrypt(ByteView plaintext, SampleRun& result) {
  // A fresh per-file nonce, like real samples derive per-file IVs.
  Bytes nonce = rng_.bytes(12);
  ++file_counter_;
  auto cipher_bytes = [&](ByteView input) {
    switch (profile_.cipher) {
      case CipherKind::chacha20: {
        crypto::ChaCha20 cipher(key_, nonce);
        return cipher.transform(input);
      }
      case CipherKind::aes_ctr: {
        crypto::Aes128Ctr cipher(ByteView(key_).first(16), nonce);
        return cipher.transform(input);
      }
      case CipherKind::xor_weak:
        return crypto::xor_encrypt(key_, input);
    }
    return Bytes(input.begin(), input.end());
  };

  const EvasionConfig& evasion = profile_.evasion;
  result.bytes_touched += plaintext.size();

  Bytes out;
  std::uint64_t destroyed = 0;
  if (!evasion.any()) {
    out = cipher_bytes(plaintext);
    destroyed = plaintext.size();
  } else {
    // Header preservation: the file keeps its magic bytes (and the
    // victim keeps that much of the content).
    const std::size_t header =
        std::min<std::size_t>(evasion.preserve_header_bytes, plaintext.size());
    out.assign(plaintext.begin(), plaintext.begin() + static_cast<std::ptrdiff_t>(header));
    const ByteView body = plaintext.subspan(header);

    if (evasion.preserve_fraction > 0.0 && !body.empty()) {
      // Interleaved partial encryption in 4 KiB blocks.
      constexpr std::size_t kBlock = 4096;
      for (std::size_t off = 0; off < body.size(); off += kBlock) {
        const std::size_t n = std::min(kBlock, body.size() - off);
        const ByteView block = body.subspan(off, n);
        if (rng_.uniform01() < evasion.preserve_fraction) {
          append(out, block);
        } else {
          append(out, ByteView(cipher_bytes(block)));
          destroyed += n;
        }
      }
    } else {
      append(out, ByteView(cipher_bytes(body)));
      destroyed += body.size();
    }

    if (evasion.pad_low_entropy_bytes > 0) {
      // Low-entropy filler to drag the write-entropy mean down.
      append(out, to_bytes(synth_prose(rng_, evasion.pad_low_entropy_bytes)));
    }
  }
  result.bytes_destroyed += destroyed;

  // Key blob + IV the attacker appends so the ransom operator can decrypt
  // (RSA-wrapped in real families); random-looking bytes either way.
  append(out, ByteView(nonce));
  append(out, ByteView(rng_.bytes(116)));
  return out;
}

bool RansomwareSample::write_decoys(vfs::FileSystem& fs, vfs::ProcessId pid,
                                    const std::string& dir, SampleRun& result) {
  for (std::size_t i = 0; i < profile_.evasion.decoy_writes_per_file; ++i) {
    const std::string decoy = vfs::path_join(
        dir, "~decoy_" + std::to_string(file_counter_) + "_" + std::to_string(i) + ".txt");
    const Status wrote = fs.write_file(
        pid, decoy, to_bytes(synth_prose(rng_, profile_.evasion.decoy_bytes)));
    if (denied(wrote)) {
      ++result.ops_denied;
      return false;
    }
  }
  return true;
}

void RansomwareSample::disable_shadow_copies(vfs::FileSystem& fs, vfs::ProcessId pid) {
  // `vssadmin delete shadows /all` analogue: wipe the shadow-storage
  // files. They live outside the documents tree, and CryptoDrop ignores
  // these operations ("they do not directly alter user data").
  for (const std::string& path : fs.list_files_recursive(profile_.shadow_copy_dir)) {
    (void)fs.remove(pid, path);
  }
}

std::string RansomwareSample::ransom_note_text() {
  std::string note;
  note += "!!! YOUR FILES HAVE BEEN ENCRYPTED !!!\r\n\r\n";
  note += "All of your documents, photos and databases were encrypted with a\r\n";
  note += "unique key generated for this computer (" + profile_.family + ").\r\n\r\n";
  note += "To decrypt your files you must obtain the private key.\r\n";
  note += "Send 1.5 BTC to the address below and e-mail your ID.\r\n\r\n";
  note += "  payment id: ";
  for (int i = 0; i < 4; ++i) note += std::to_string(rng_.uniform(100000, 999999));
  note += "\r\n  bitcoin: 1";
  note += synth_token(rng_, 24, 30);
  note += "\r\n  contact via the Tor hidden service listed in your browser.\r\n\r\n";
  note += "WARNING: do not attempt to rename or restore files yourself,\r\n";
  note += "or they will be permanently lost. You have 96 hours.\r\n";
  return note;
}

std::vector<std::string> RansomwareSample::plan_targets(const vfs::FileSystem& fs,
                                                        const std::string& root) {
  // The note file must never be attacked (samples skip their own notes).
  auto is_note = [&](const std::string& path) {
    return vfs::path_filename(path) == profile_.note_name;
  };

  std::vector<std::string> targets;
  auto add_if_targeted = [&](const std::string& path) {
    if (is_note(path)) return;
    if (targets_extension(vfs::path_extension(path))) targets.push_back(path);
  };

  switch (profile_.traversal) {
    case Traversal::depth_first_deepest: {
      // Post-order walk: descend into subdirectories before taking files,
      // so the deepest directories are attacked first. Sibling order is
      // per-sample (directory enumeration order is not specified by the
      // filesystem APIs real samples use, so variants differ here).
      auto walk = [&](auto&& self, const std::string& dir) -> void {
        std::vector<std::string> files;
        std::vector<std::string> subdirs;
        for (const vfs::DirEntry& entry : fs.list(dir)) {
          const std::string full = vfs::path_join(dir, entry.name);
          if (entry.is_directory) {
            subdirs.push_back(full);
          } else {
            files.push_back(full);
          }
        }
        rng_.shuffle(subdirs);
        rng_.shuffle(files);
        for (const std::string& sub : subdirs) self(self, sub);
        for (const std::string& f : files) add_if_targeted(f);
      };
      walk(walk, root);
      break;
    }
    case Traversal::size_ascending: {
      std::vector<std::pair<std::uint64_t, std::string>> sized;
      for (const std::string& path : fs.list_files_recursive(root)) {
        if (is_note(path) || !targets_extension(vfs::path_extension(path))) continue;
        auto info = fs.stat(path);
        if (info) sized.emplace_back(info.value().size, path);
      }
      std::sort(sized.begin(), sized.end());
      for (auto& [size, path] : sized) {
        (void)size;
        targets.push_back(std::move(path));
      }
      break;
    }
    case Traversal::root_down: {
      // Breadth-first: the root's own files first, then each level down.
      // Within a level, enumeration order varies per sample.
      std::vector<std::string> level{root};
      while (!level.empty()) {
        std::vector<std::string> next;
        std::vector<std::string> level_files;
        for (const std::string& dir : level) {
          for (const vfs::DirEntry& entry : fs.list(dir)) {
            const std::string full = vfs::path_join(dir, entry.name);
            if (entry.is_directory) {
              next.push_back(full);
            } else {
              level_files.push_back(full);
            }
          }
        }
        rng_.shuffle(level_files);
        for (const std::string& f : level_files) add_if_targeted(f);
        rng_.shuffle(next);
        level = std::move(next);
      }
      break;
    }
    case Traversal::alphabetical: {
      // Pre-order walk, files before subdirectories (names stay sorted —
      // this is the FindFirstFile-in-name-order variant).
      auto walk = [&](auto&& self, const std::string& dir) -> void {
        std::vector<std::string> subdirs;
        for (const vfs::DirEntry& entry : fs.list(dir)) {
          const std::string full = vfs::path_join(dir, entry.name);
          if (entry.is_directory) {
            subdirs.push_back(full);
          } else {
            add_if_targeted(full);
          }
        }
        for (const std::string& sub : subdirs) self(self, sub);
      };
      walk(walk, root);
      break;
    }
    case Traversal::random_order: {
      for (const std::string& path : fs.list_files_recursive(root)) {
        add_if_targeted(path);
      }
      rng_.shuffle(targets);
      break;
    }
    case Traversal::extension_priority: {
      std::map<std::size_t, std::vector<std::string>> buckets;
      for (const std::string& path : fs.list_files_recursive(root)) {
        if (is_note(path)) continue;
        const std::string ext = vfs::path_extension(path);
        const auto it = std::find(profile_.target_extensions.begin(),
                                  profile_.target_extensions.end(), ext);
        const std::size_t rank =
            it == profile_.target_extensions.end()
                ? profile_.target_extensions.size()
                : static_cast<std::size_t>(it - profile_.target_extensions.begin());
        buckets[rank].push_back(path);
      }
      for (auto& [rank, bucket] : buckets) {
        (void)rank;
        rng_.shuffle(bucket);  // per-sample order within a priority rank
        for (std::string& path : bucket) targets.push_back(std::move(path));
      }
      break;
    }
  }
  return targets;
}

bool RansomwareSample::drop_note(vfs::FileSystem& fs, vfs::ProcessId pid,
                                 const std::string& dir, SampleRun& result) {
  const Status status = fs.write_file(pid, vfs::path_join(dir, profile_.note_name),
                                      to_bytes(ransom_note_text()));
  if (denied(status)) {
    ++result.ops_denied;
    return false;
  }
  return true;
}

bool RansomwareSample::attack_class_a(vfs::FileSystem& fs, vfs::ProcessId pid,
                                      const std::string& path, SampleRun& result) {
  auto handle = fs.open(pid, path, vfs::kRead | vfs::kWrite);
  if (!handle) {
    if (denied(handle.status())) { ++result.ops_denied; return false; }
    return true;  // unreadable/locked file: move on, like real samples
  }
  auto info = fs.stat(path);
  const std::size_t size = info ? static_cast<std::size_t>(info.value().size) : 0;
  auto plaintext = fs.read(pid, handle.value(), size);
  if (!plaintext) {
    if (denied(plaintext.status())) {
      ++result.ops_denied;
      (void)fs.close(pid, handle.value());
      return false;
    }
    (void)fs.close(pid, handle.value());
    return true;
  }

  result.attack_order.push_back(path);
  ++result.files_attacked;

  const Bytes ciphertext = encrypt(ByteView(plaintext.value()), result);
  if (Status s = fs.seek(pid, handle.value(), 0); !s.is_ok()) return true;
  for (std::size_t off = 0; off < ciphertext.size(); off += profile_.write_chunk) {
    const std::size_t n = std::min(profile_.write_chunk, ciphertext.size() - off);
    const Status wrote =
        fs.write(pid, handle.value(), ByteView(ciphertext).subspan(off, n));
    if (denied(wrote)) {
      ++result.ops_denied;
      (void)fs.close(pid, handle.value());
      return false;
    }
    if (!wrote.is_ok()) break;
  }
  if (Status closed = fs.close(pid, handle.value()); denied(closed)) {
    ++result.ops_denied;
    return false;
  }

  if (profile_.rename_encrypted && !profile_.encrypted_extension.empty()) {
    const Status renamed = fs.rename(pid, path, path + profile_.encrypted_extension);
    if (denied(renamed)) { ++result.ops_denied; return false; }
  }
  ++result.files_completed;
  return true;
}

bool RansomwareSample::attack_class_b(vfs::FileSystem& fs, vfs::ProcessId pid,
                                      const std::string& path, SampleRun& result) {
  // Stage the file outside the documents tree.
  (void)fs.mkdir(pid, profile_.staging_dir);
  const std::string staged =
      vfs::path_join(profile_.staging_dir,
                     std::string(vfs::path_filename(path)) + "." +
                         std::to_string(file_counter_) + ".tmp");
  Status moved = fs.rename(pid, path, staged);
  if (denied(moved)) { ++result.ops_denied; return false; }
  if (!moved.is_ok()) return true;  // locked/read-only: skip

  result.attack_order.push_back(path);
  ++result.files_attacked;

  // Encrypt in the staging area — invisible to a documents-root monitor.
  auto plaintext = fs.read_file(pid, staged);
  if (!plaintext) {
    if (denied(plaintext.status())) { ++result.ops_denied; return false; }
    return true;
  }
  const Status wrote =
      fs.write_file(pid, staged, encrypt(ByteView(plaintext.value()), result));
  if (denied(wrote)) { ++result.ops_denied; return false; }

  // Move it back — possibly under a new name.
  std::string dest;
  if (profile_.return_with_new_name) {
    dest = vfs::path_join(vfs::path_parent(path),
                          synth_token(rng_, 8, 14) + profile_.encrypted_extension);
  } else {
    dest = path;
    if (profile_.rename_encrypted) dest += profile_.encrypted_extension;
  }
  const Status back = fs.rename(pid, staged, dest);
  if (denied(back)) { ++result.ops_denied; return false; }
  if (back.is_ok()) ++result.files_completed;
  return true;
}

bool RansomwareSample::attack_class_c(vfs::FileSystem& fs, vfs::ProcessId pid,
                                      const std::string& path, SampleRun& result) {
  auto plaintext = fs.read_file(pid, path);
  if (!plaintext) {
    if (denied(plaintext.status())) { ++result.ops_denied; return false; }
    return true;
  }

  result.attack_order.push_back(path);
  ++result.files_attacked;

  // Independent output stream: a brand-new file next to the original.
  const std::string out_path = path + profile_.encrypted_extension;
  const Status wrote =
      fs.write_file(pid, out_path, encrypt(ByteView(plaintext.value()), result));
  if (denied(wrote)) { ++result.ops_denied; return false; }
  if (!wrote.is_ok()) return true;

  if (profile_.delete_original) {
    const Status removed = fs.remove(pid, path);
    if (denied(removed)) { ++result.ops_denied; return false; }
    if (removed.code() == Errc::read_only) {
      // The GPcode quirk: read-only originals survive.
      ++result.failed_deletes;
    }
  } else {
    // Move the ciphertext over the original — the variant whose pre-image
    // linkage the engine exploits.
    const Status replaced = fs.rename(pid, out_path, path);
    if (denied(replaced)) { ++result.ops_denied; return false; }
    if (replaced.code() == Errc::read_only) ++result.failed_deletes;
  }
  ++result.files_completed;
  return true;
}

SampleRun RansomwareSample::run(vfs::FileSystem& fs, vfs::ProcessId pid,
                                const std::string& root) {
  SampleRun result;

  if (profile_.delete_shadow_copies) {
    disable_shadow_copies(fs, pid);
  }

  // Spawned workers: the attack rotates across the children; the run
  // ends only when every worker in the family has been paused.
  std::vector<vfs::ProcessId> actors;
  if (profile_.worker_processes > 0) {
    for (std::size_t i = 0; i < profile_.worker_processes; ++i) {
      actors.push_back(fs.register_process(
          std::string(fs.process_name(pid)) + ".worker" + std::to_string(i), pid));
    }
  } else {
    actors.push_back(pid);
  }
  std::vector<bool> alive(actors.size(), true);
  std::size_t live_count = actors.size();
  std::size_t next_actor = 0;
  auto pick_actor = [&]() -> vfs::ProcessId {
    while (!alive[next_actor % actors.size()]) ++next_actor;
    return actors[next_actor++ % actors.size()];
  };
  auto actor_died = [&](vfs::ProcessId dead) {
    for (std::size_t i = 0; i < actors.size(); ++i) {
      if (actors[i] == dead && alive[i]) {
        alive[i] = false;
        --live_count;
      }
    }
    return live_count > 0;
  };
  auto index_of = [&](vfs::ProcessId id) -> std::size_t {
    for (std::size_t i = 0; i < actors.size(); ++i) {
      if (actors[i] == id) return i;
    }
    return 0;
  };
  // One more denial for `actor`. Returns false when the whole run must
  // stop (the actor's patience ran out and it was the last one alive).
  std::vector<std::size_t> denial_streak(actors.size(), 0);
  auto shrug_off_denial = [&](vfs::ProcessId actor) {
    const std::size_t limit = std::max<std::size_t>(profile_.give_up_after_denials, 1);
    if (++denial_streak[index_of(actor)] < limit) return true;  // retry later
    return actor_died(actor);
  };

  const std::vector<std::string> targets = plan_targets(fs, root);

  std::string last_note_dir;
  std::size_t attacked = 0;
  for (const std::string& path : targets) {
    if (attacked >= profile_.max_files) break;
    if (profile_.evasion.think_micros_per_file > 0) {
      fs.advance_time(profile_.evasion.think_micros_per_file);
    }
    const vfs::ProcessId actor = pick_actor();
    const std::string dir = vfs::path_parent(path);

    if (profile_.write_ransom_note && profile_.note_first && dir != last_note_dir) {
      last_note_dir = dir;
      if (!drop_note(fs, actor, dir, result) && !shrug_off_denial(actor)) return result;
    }
    if (profile_.evasion.decoy_writes_per_file > 0) {
      if (!write_decoys(fs, actor, dir, result) && !shrug_off_denial(actor)) return result;
    }

    bool keep_going = true;
    switch (profile_.behavior) {
      case BehaviorClass::A:
        keep_going = attack_class_a(fs, actor, path, result);
        break;
      case BehaviorClass::B:
        keep_going = attack_class_b(fs, actor, path, result);
        break;
      case BehaviorClass::C:
        keep_going = attack_class_c(fs, actor, path, result);
        break;
    }
    if (!keep_going) {
      if (!shrug_off_denial(actor)) return result;
      continue;  // retry with the next file, or let other workers carry on
    }
    ++attacked;
    denial_streak[index_of(actor)] = 0;  // progress: the denial was transient

    if (profile_.write_ransom_note && !profile_.note_first && dir != last_note_dir) {
      last_note_dir = dir;
      if (!drop_note(fs, actor, dir, result) && !shrug_off_denial(actor)) return result;
    }
  }
  result.ran_to_completion = true;
  return result;
}

}  // namespace cryptodrop::sim
