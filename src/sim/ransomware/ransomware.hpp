// Parameterized encrypting-ransomware simulator.
//
// Stands in for the paper's 492 live VirusTotal samples. The paper's
// taxonomy (§III) drives the design:
//
//   Class A — overwrites the original file in place (open, read, write
//             encrypted content through the same handle, close), then
//             optionally renames it.
//   Class B — moves the file *out* of the documents tree (e.g. to a temp
//             directory), encrypts it there — invisible to a monitor
//             scoped to the documents root — then moves it back, possibly
//             under a different name.
//   Class C — reads the original and writes an independent encrypted
//             file, then deletes the original or moves the new file over
//             it ("two independent access streams").
//
// Everything the paper observed about real families is expressible as a
// RansomwareProfile: traversal order (TeslaCrypt's depth-first descent,
// CTB-Locker's global size-ascending .txt/.md sweep, GPcode's root-down
// walk), cipher strength (Xorist's repeating-key XOR vs. ChaCha20/AES),
// ransom-note placement, rename habits, and Class C disposal strategy.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "vfs/filesystem.hpp"

namespace cryptodrop::sim {

/// Paper §III taxonomy: how a sample reaches and replaces user data.
enum class BehaviorClass : std::uint8_t { A, B, C };

/// "class_a"/"class_b"/"class_c", for reports and test output.
std::string_view behavior_class_name(BehaviorClass c);

/// Order in which the documents tree is attacked (observed per-family
/// habits the engine's indicators are exposed to).
enum class Traversal : std::uint8_t {
  depth_first_deepest,  ///< Recurse to the deepest directories first (TeslaCrypt).
  size_ascending,       ///< All targets globally, smallest file first (CTB-Locker).
  root_down,            ///< Breadth-first from the documents root (GPcode).
  alphabetical,         ///< Pre-order walk, files before subdirectories.
  random_order,         ///< Shuffled target list.
  extension_priority,   ///< target_extensions order defines attack priority.
};

/// Cipher the sample encrypts with; strength decides how much
/// structure leaks into the ciphertext indicators.
enum class CipherKind : std::uint8_t {
  chacha20,  ///< Strong stream cipher: uniform ciphertext.
  aes_ctr,   ///< Strong block cipher in CTR mode: uniform ciphertext.
  xor_weak,  ///< Repeating-key XOR (Xorist): structure leaks through.
};

/// Indicator-evasion techniques (paper §III-F). Each buys the attacker
/// stealth against one indicator at a concrete cost in how much victim
/// data is actually denied — the "very difficult engineering trade-offs"
/// the paper predicts. bench_evasion quantifies the trade-off.
struct EvasionConfig {
  /// Keep this many plaintext bytes at the head of each file (magic
  /// bytes survive -> the type-change indicator stays silent; the
  /// preserved region is recoverable by the victim).
  std::size_t preserve_header_bytes = 0;

  /// Leave this fraction of each file's blocks unencrypted, interleaved
  /// (weakens similarity loss and entropy delta; the untouched blocks
  /// are recoverable).
  double preserve_fraction = 0.0;

  /// Append this many low-entropy filler bytes per encrypted file
  /// (drags the write-entropy mean down; bloats the attacker's I/O).
  std::size_t pad_low_entropy_bytes = 0;

  /// Between victim files, write this many decoy files of prose (~4.2
  /// bits/byte) to keep Pwrite below Pread + threshold.
  std::size_t decoy_writes_per_file = 0;
  std::size_t decoy_bytes = 64 * 1024;

  /// Virtual-clock pause between victim files: the slow-attacker evasion
  /// of any rate/time-window indicator ("it can change its rate of
  /// attack to overcome the window" — §V-F).
  std::uint64_t think_micros_per_file = 0;

  /// True when any evasion knob is set (decides bench table rows).
  [[nodiscard]] bool any() const {
    return preserve_header_bytes > 0 || preserve_fraction > 0.0 ||
           pad_low_entropy_bytes > 0 || decoy_writes_per_file > 0;
  }
};

/// Everything that varies between families: one profile = one family,
/// profile + seed = one sample.
struct RansomwareProfile {
  std::string family;
  BehaviorClass behavior = BehaviorClass::A;
  Traversal traversal = Traversal::alphabetical;
  CipherKind cipher = CipherKind::chacha20;

  /// Extensions to attack (lower-case, no dot). Empty = every file.
  std::vector<std::string> target_extensions;

  /// Append this to encrypted files' names ("" = keep the name).
  std::string encrypted_extension = ".encrypted";
  bool rename_encrypted = true;

  bool write_ransom_note = true;
  std::string note_name = "HELP_DECRYPT.txt";
  /// Write the note on first entry to each directory, before touching any
  /// file there (TeslaCrypt's observed habit).
  bool note_first = true;

  /// Class B: where files are staged while encrypted (outside the
  /// protected root, hence invisible to the monitor).
  std::string staging_dir = "users/victim/appdata/local/temp";
  /// Class B: move back under a generated name instead of the original.
  bool return_with_new_name = false;

  /// Class C: true = delete the original after writing the ciphertext
  /// copy (evades pre-image linkage); false = move the new file over the
  /// original (the 41/63 variant the engine links and catches).
  bool delete_original = true;

  /// Bytes written per write operation (ransomware uses ordinary buffered
  /// I/O; the per-op granularity is what the entropy indicator sees).
  std::size_t write_chunk = 64 * 1024;

  /// Stop after this many files (simulates crippled/trial variants).
  std::size_t max_files = std::numeric_limits<std::size_t>::max();

  /// Consecutive denied attacks an actor shrugs off before concluding it
  /// has been suspended and halting. 1 (the default) gives up at the
  /// first denial — the paper's model, where every denial means
  /// suspension. Chaos campaigns raise it so a sample survives spurious
  /// denials injected by a fault filter (a real suspension still stops
  /// it: every subsequent operation is denied, so the streak fills).
  std::size_t give_up_after_denials = 1;

  /// Indicator-evasion behavior (§III-F); default: none.
  EvasionConfig evasion;

  /// Disable Windows Volume Shadow Copies before attacking (TeslaCrypt's
  /// documented habit). Modeled as deleting the shadow-storage files
  /// outside the documents tree — operations CryptoDrop deliberately
  /// ignores ("they do not directly alter user data").
  bool delete_shadow_copies = false;
  std::string shadow_copy_dir = "system volume information/shadow";

  /// Number of worker child processes the sample spawns and spreads its
  /// file attacks across (0 = single process). Splitting activity across
  /// a process tree dilutes per-process scores — the evasion that the
  /// engine's family-level scoring (paper: suspends "the suspicious
  /// process (or family of processes)") exists to counter.
  std::size_t worker_processes = 0;
};

/// Outcome of one sample execution.
struct SampleRun {
  /// Files whose encryption was *started* before the run ended.
  std::size_t files_attacked = 0;
  /// Files fully processed (encrypted + disposed).
  std::size_t files_completed = 0;
  /// True when the sample ran out of targets; false when it was halted by
  /// a denied operation (CryptoDrop suspension) or an unrecoverable error.
  bool ran_to_completion = false;
  /// Operations that came back access_denied.
  std::size_t ops_denied = 0;
  /// Delete attempts that failed (read-only files — the GPcode quirk).
  std::size_t failed_deletes = 0;
  /// Paths whose encryption started, in attack order.
  std::vector<std::string> attack_order;
  /// Victim-data accounting for the evasion trade-off study: bytes the
  /// sample actually replaced with ciphertext vs. total bytes of the
  /// files it touched (preserved headers/blocks are recoverable).
  std::uint64_t bytes_destroyed = 0;
  std::uint64_t bytes_touched = 0;
};

/// One runnable sample: a profile bound to key material and an RNG.
class RansomwareSample {
 public:
  /// `seed` individualizes this sample within its family (key material,
  /// tie-breaking, generated names) without changing its behavior class.
  RansomwareSample(RansomwareProfile profile, std::uint64_t seed);

  /// Unleashes the sample as process `pid` against the documents tree at
  /// `root`. Returns when every target is processed or the first time an
  /// operation is denied (the engine suspended the process). When the
  /// profile asks for worker processes, children are registered as
  /// children of `pid` and the run stops when the whole family is denied.
  SampleRun run(vfs::FileSystem& fs, vfs::ProcessId pid, const std::string& root);

  /// The profile this sample was built from.
  [[nodiscard]] const RansomwareProfile& profile() const { return profile_; }

 private:
  [[nodiscard]] bool targets_extension(const std::string& ext) const;
  [[nodiscard]] std::vector<std::string> plan_targets(const vfs::FileSystem& fs,
                                                      const std::string& root);
  /// Applies the cipher plus any configured evasion shaping; updates the
  /// destroyed/touched accounting.
  Bytes encrypt(ByteView plaintext, SampleRun& result);
  [[nodiscard]] std::string ransom_note_text();
  bool write_decoys(vfs::FileSystem& fs, vfs::ProcessId pid, const std::string& dir,
                    SampleRun& result);
  void disable_shadow_copies(vfs::FileSystem& fs, vfs::ProcessId pid);

  /// Per-class attack on one file. Returns false when the run must stop
  /// (operation denied).
  bool attack_class_a(vfs::FileSystem& fs, vfs::ProcessId pid, const std::string& path,
                      SampleRun& result);
  bool attack_class_b(vfs::FileSystem& fs, vfs::ProcessId pid, const std::string& path,
                      SampleRun& result);
  bool attack_class_c(vfs::FileSystem& fs, vfs::ProcessId pid, const std::string& path,
                      SampleRun& result);
  bool drop_note(vfs::FileSystem& fs, vfs::ProcessId pid, const std::string& dir,
                 SampleRun& result);

  RansomwareProfile profile_;
  Rng rng_;
  Bytes key_;
  std::uint32_t file_counter_ = 0;
};

}  // namespace cryptodrop::sim
