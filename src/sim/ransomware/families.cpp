#include "sim/ransomware/families.hpp"

#include <cassert>

#include "common/rng.hpp"

namespace cryptodrop::sim {

namespace {

/// Productivity formats most families prioritize (Figure 5's head).
const std::vector<std::string> kProductivityFirst = {
    "pdf", "odt", "docx", "pptx", "xlsx", "doc", "xls", "ppt",
    "rtf", "txt", "csv",  "md",   "html", "xml",
};

/// Text-heavy priority (low-entropy sources first: entropy delta fires
/// from the first file, which is why these families detect fastest).
const std::vector<std::string> kTextFirst = {
    "txt", "md", "csv", "log", "rtf", "html", "xml", "doc",
    "xls", "ppt", "odt", "docx", "xlsx", "pptx", "pdf",
};

}  // namespace

const std::vector<std::string>& family_names() {
  static const std::vector<std::string> kNames = {
      "CryptoDefense",
      "CryptoFortress",
      "CryptoLocker",
      "CryptoLocker (copycat)",
      "CryptoTorLocker2015",
      "CryptoWall",
      "CTB-Locker",
      "Filecoder",
      "GPcode",
      "MBL Advisory",
      "PoshCoder",
      "TeslaCrypt",
      "Virlock",
      "Xorist",
      "Ransom-FUE",
  };
  return kNames;
}

RansomwareProfile family_profile(const std::string& family, BehaviorClass behavior) {
  RansomwareProfile p;
  p.family = family;
  p.behavior = behavior;

  if (family == "TeslaCrypt") {
    // §V-C: depth-first search; writes the ransom demand into a directory
    // before encrypting there; renames to .vvv.
    p.traversal = Traversal::depth_first_deepest;
    p.cipher = CipherKind::chacha20;
    p.encrypted_extension = ".vvv";
    p.note_name = "HELP_TO_DECRYPT_YOUR_FILES.txt";
    p.note_first = true;
    // Real TeslaCrypt ships an extension list of documents, spreadsheets,
    // presentations and images (it skips loose text files).
    p.target_extensions = {"pdf", "odt",  "docx", "pptx", "xlsx", "doc",
                           "xls", "ppt",  "rtf",  "csv",  "html", "xml",
                           "jpg", "png",  "gif",  "bmp",  "zip",  "ps"};
    p.delete_original = false;  // its one Class C sample moves over originals
  } else if (family == "CTB-Locker") {
    // §V-C: attacks .txt and .md in ascending order by file size,
    // globally across the corpus. Class B dominates the family.
    p.traversal = Traversal::size_ascending;
    p.cipher = CipherKind::chacha20;
    p.target_extensions = {"txt", "md"};
    p.encrypted_extension = ".ctbl";
    p.return_with_new_name = true;
    p.note_name = "Decrypt-All-Files.txt";
    p.note_first = false;
    p.delete_original = false;
  } else if (family == "GPcode") {
    // §V-C: starts at the root and moves down the tree; its Class C
    // sample could not delete read-only files.
    p.traversal = Traversal::root_down;
    p.cipher = CipherKind::aes_ctr;
    p.encrypted_extension = "._crypt";
    p.note_name = "HOW_TO_GET_YOUR_FILES_BACK.txt";
    p.note_first = false;
    p.delete_original = true;
  } else if (family == "Xorist") {
    // Weak repeating-key XOR; goes after text documents first, so the
    // entropy delta trips immediately (median 3 files lost in Table I).
    p.traversal = Traversal::extension_priority;
    p.cipher = CipherKind::xor_weak;
    p.target_extensions = kTextFirst;
    p.encrypted_extension = ".EnCiPhErEd";
    p.note_name = "HOW TO DECRYPT FILES.txt";
    p.note_first = true;
  } else if (family == "CryptoTorLocker2015") {
    p.traversal = Traversal::extension_priority;
    p.cipher = CipherKind::chacha20;
    p.target_extensions = kTextFirst;
    p.encrypted_extension = ".CryptoTorLocker2015!";
    p.note_name = "HOW TO DECRYPT FILES.txt";
    p.note_first = true;
  } else if (family == "CryptoDefense") {
    // Class C, deletes originals — the union-evading variant the paper
    // catches via entropy writes + deletions (median 6.5).
    p.traversal = Traversal::alphabetical;
    p.cipher = CipherKind::aes_ctr;
    p.target_extensions = {};
    p.encrypted_extension = "";
    p.rename_encrypted = false;
    p.delete_original = true;
    p.note_name = "HOW_DECRYPT.txt";
    p.note_first = true;
    // CryptoDefense famously wrote ciphertext to <name> while the
    // original became <name>.bak-like removals; modeled as independent
    // stream + delete. Output keeps the original name plus a suffix.
    p.encrypted_extension = ".enc";
  } else if (family == "CryptoWall") {
    p.traversal = Traversal::random_order;
    p.cipher = CipherKind::aes_ctr;
    p.encrypted_extension = ".aaa";
    p.note_name = "DECRYPT_INSTRUCTION.txt";
    p.note_first = true;
    p.delete_original = true;  // overridden per sample for the move-over pair
  } else if (family == "CryptoLocker") {
    p.traversal = Traversal::alphabetical;
    p.cipher = CipherKind::aes_ctr;
    p.target_extensions = kProductivityFirst;
    p.encrypted_extension = ".cryptolocker";
    p.note_name = "YOUR_FILES_ARE_ENCRYPTED.txt";
    p.note_first = false;
    p.delete_original = false;
  } else if (family == "CryptoLocker (copycat)") {
    p.traversal = Traversal::alphabetical;
    p.cipher = CipherKind::chacha20;
    p.target_extensions = kProductivityFirst;
    p.encrypted_extension = ".clf";
    p.note_name = "README_DECRYPT.txt";
    p.note_first = false;
    p.return_with_new_name = true;
    p.delete_original = false;
  } else if (family == "CryptoFortress") {
    p.traversal = Traversal::alphabetical;
    p.cipher = CipherKind::chacha20;
    p.encrypted_extension = ".frtrss";
    p.note_name = "READ IF YOU WANT YOUR FILES BACK.html";
    p.note_first = true;
  } else if (family == "Filecoder") {
    // A generic detection name: behaviorally the most diverse family in
    // the paper. Sample jitter varies its traversal (see table1_samples).
    p.traversal = Traversal::random_order;
    p.cipher = CipherKind::chacha20;
    p.encrypted_extension = ".crypted";
    p.note_name = "READ_ME_FOR_DECRYPT.txt";
    p.note_first = false;
    p.delete_original = false;
  } else if (family == "MBL Advisory") {
    p.traversal = Traversal::root_down;
    p.cipher = CipherKind::aes_ctr;
    p.encrypted_extension = ".mbl";
    p.note_name = "WARNING.txt";
    p.note_first = true;
    p.delete_original = false;
  } else if (family == "PoshCoder") {
    // PowerShell-based (§V-E): behaviorally an ordinary Class A
    // encryptor — CryptoDrop cares about the data changes, not the
    // delivery mechanism.
    p.traversal = Traversal::alphabetical;
    p.cipher = CipherKind::aes_ctr;
    p.target_extensions = kProductivityFirst;
    p.encrypted_extension = ".poshcoder";
    p.note_name = "UNLOCK_FILES_INSTRUCTIONS.txt";
    p.note_first = false;
  } else if (family == "Virlock") {
    // Polymorphic infector: embeds files in new containers (Class C) and
    // replaces the originals.
    p.traversal = Traversal::alphabetical;
    p.cipher = CipherKind::chacha20;
    p.encrypted_extension = ".exe";
    p.rename_encrypted = true;
    p.write_ransom_note = false;  // Virlock locks the screen instead
    p.delete_original = false;    // moves infected container over original
  } else if (family == "Ransom-FUE") {
    p.traversal = Traversal::random_order;
    p.cipher = CipherKind::chacha20;
    p.encrypted_extension = ".fue";
    p.note_name = "RECOVER_FILES.txt";
    p.note_first = false;
  } else {
    assert(false && "unknown family");
  }
  return p;
}

namespace {

void add_samples(std::vector<SampleSpec>& out, Rng& rng, const std::string& family,
                 BehaviorClass behavior, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    SampleSpec spec;
    spec.family = family;
    spec.behavior = behavior;
    spec.profile = family_profile(family, behavior);
    spec.seed = rng.next();

    // Per-sample behavioral jitter, mirroring intra-family variation the
    // paper observed ("two or fewer samples showed behaviors beyond their
    // family's primary behavior class" — the class mix itself is encoded
    // in the counts below; jitter only varies minor habits).
    Rng jitter(spec.seed);
    if (family == "Filecoder") {
      // The grab-bag family: traversal and cipher vary per sample.
      static const Traversal kTraversals[] = {
          Traversal::alphabetical, Traversal::random_order,
          Traversal::root_down, Traversal::extension_priority};
      spec.profile.traversal = kTraversals[jitter.uniform(0, 3)];
      if (spec.profile.traversal == Traversal::extension_priority) {
        spec.profile.target_extensions = kTextFirst;
      }
      if (jitter.chance(0.3)) spec.profile.cipher = CipherKind::aes_ctr;
      if (jitter.chance(0.25)) spec.profile.rename_encrypted = false;
    }
    if (behavior == BehaviorClass::B && jitter.chance(0.3)) {
      spec.profile.return_with_new_name = !spec.profile.return_with_new_name;
    }
    if (jitter.chance(0.2)) spec.profile.note_first = !spec.profile.note_first;
    if (jitter.chance(0.15)) spec.profile.write_chunk = 32 * 1024;

    out.push_back(std::move(spec));
  }
}

}  // namespace

std::vector<SampleSpec> table1_samples(std::uint64_t base_seed) {
  Rng rng(base_seed);
  std::vector<SampleSpec> out;
  out.reserve(492);

  add_samples(out, rng, "CryptoDefense", BehaviorClass::C, 18);
  add_samples(out, rng, "CryptoFortress", BehaviorClass::A, 2);
  add_samples(out, rng, "CryptoLocker", BehaviorClass::A, 13);
  add_samples(out, rng, "CryptoLocker", BehaviorClass::B, 16);
  add_samples(out, rng, "CryptoLocker", BehaviorClass::C, 2);
  add_samples(out, rng, "CryptoLocker (copycat)", BehaviorClass::B, 1);
  add_samples(out, rng, "CryptoLocker (copycat)", BehaviorClass::C, 1);
  add_samples(out, rng, "CryptoTorLocker2015", BehaviorClass::A, 1);
  add_samples(out, rng, "CryptoWall", BehaviorClass::A, 2);
  add_samples(out, rng, "CryptoWall", BehaviorClass::C, 6);
  add_samples(out, rng, "CTB-Locker", BehaviorClass::A, 1);
  add_samples(out, rng, "CTB-Locker", BehaviorClass::B, 120);
  add_samples(out, rng, "CTB-Locker", BehaviorClass::C, 1);
  add_samples(out, rng, "Filecoder", BehaviorClass::A, 51);
  add_samples(out, rng, "Filecoder", BehaviorClass::B, 9);
  add_samples(out, rng, "Filecoder", BehaviorClass::C, 12);
  add_samples(out, rng, "GPcode", BehaviorClass::A, 12);
  add_samples(out, rng, "GPcode", BehaviorClass::C, 1);
  add_samples(out, rng, "MBL Advisory", BehaviorClass::C, 1);
  add_samples(out, rng, "PoshCoder", BehaviorClass::A, 1);
  add_samples(out, rng, "Ransom-FUE", BehaviorClass::B, 1);
  add_samples(out, rng, "TeslaCrypt", BehaviorClass::A, 148);
  add_samples(out, rng, "TeslaCrypt", BehaviorClass::C, 1);
  add_samples(out, rng, "Virlock", BehaviorClass::C, 20);
  add_samples(out, rng, "Xorist", BehaviorClass::A, 51);

  // §V-B.2: of the 63 Class C samples, 41 move the ciphertext over the
  // original (pre-image linkage → union detection) and 22 dispose by
  // deletion (union evaders). CryptoDefense's 18 and four of CryptoWall's
  // six delete; everyone else moves over.
  std::size_t cryptowall_c = 0;
  for (SampleSpec& spec : out) {
    if (spec.behavior != BehaviorClass::C) continue;
    if (spec.family == "CryptoDefense") {
      spec.profile.delete_original = true;
    } else if (spec.family == "CryptoWall") {
      spec.profile.delete_original = ++cryptowall_c <= 4;
    } else {
      spec.profile.delete_original = false;
    }
  }

  assert(out.size() == 492);
  return out;
}

}  // namespace cryptodrop::sim
