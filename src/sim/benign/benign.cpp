#include "sim/benign/benign.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/text.hpp"
#include "corpus/generators.hpp"
#include "crypto/chacha20.hpp"
#include "vfs/path.hpp"

namespace cryptodrop::sim {

namespace {

using corpus::FileKind;
using corpus::generate_content;

/// Every helper returns false when an operation came back access_denied —
/// the workload stops immediately, like a real app whose I/O hangs once
/// CryptoDrop pauses it.
bool denied(const Status& s) { return s.code() == Errc::access_denied; }

/// Files under the docs root with one of the given extensions (all files
/// when `exts` is empty), capped at `limit`.
std::vector<std::string> files_by_ext(const WorkloadContext& ctx,
                                      const std::vector<std::string>& exts,
                                      std::size_t limit) {
  std::vector<std::string> out;
  for (const std::string& path : ctx.fs.list_files_recursive(ctx.docs_root)) {
    if (!exts.empty()) {
      const std::string ext = vfs::path_extension(path);
      if (std::find(exts.begin(), exts.end(), ext) == exts.end()) continue;
    }
    out.push_back(path);
    if (out.size() >= limit) break;
  }
  return out;
}

/// Filtered whole-file read. Returns false on denial.
bool app_read(WorkloadContext& ctx, const std::string& path) {
  auto data = ctx.fs.read_file(ctx.pid, path);
  return !denied(data.status());
}

/// Filtered whole-file write (create/truncate). Returns false on denial.
bool app_write(WorkloadContext& ctx, const std::string& path, ByteView data) {
  return !denied(ctx.fs.write_file(ctx.pid, path, data));
}

/// High-entropy filler (compressed output of the simulated app).
Bytes compressed(Rng& rng, std::size_t n) {
  crypto::ChaCha20 stream(rng.bytes(32), rng.bytes(12));
  return stream.keystream(n);
}

/// What the regenerated region of a rewrite looks like.
enum class Filler {
  compressed,  ///< Binary/compressed output (Office containers, databases).
  text,        ///< Prose (notes apps, logs, configs).
};

/// Information-preserving in-place rewrite: reads the file through the
/// filter stack, keeps `preserve_fraction` of its bytes (as a prefix),
/// regenerates the rest, optionally appends growth. This is how benign
/// incremental saves look at the byte level.
bool rewrite_preserving(WorkloadContext& ctx, const std::string& path,
                        double preserve_fraction, std::size_t append_bytes,
                        Filler filler = Filler::compressed) {
  auto handle = ctx.fs.open(ctx.pid, path, vfs::kRead | vfs::kWrite);
  if (!handle) return !denied(handle.status());
  auto info = ctx.fs.stat(path);
  const std::size_t size = info ? static_cast<std::size_t>(info.value().size) : 0;
  auto old = ctx.fs.read(ctx.pid, handle.value(), size);
  if (!old) {
    (void)ctx.fs.close(ctx.pid, handle.value());
    return !denied(old.status());
  }
  Bytes fresh = std::move(old).value();
  const std::size_t keep =
      static_cast<std::size_t>(static_cast<double>(fresh.size()) * preserve_fraction);
  auto make_filler = [&](std::size_t n) {
    return filler == Filler::compressed ? compressed(ctx.rng, n)
                                        : to_bytes(synth_prose(ctx.rng, n));
  };
  if (keep < fresh.size()) {
    const Bytes repl = make_filler(fresh.size() - keep);
    std::copy(repl.begin(), repl.end(),
              fresh.begin() + static_cast<std::ptrdiff_t>(keep));
  }
  if (append_bytes > 0) append(fresh, ByteView(make_filler(append_bytes)));

  if (Status s = ctx.fs.seek(ctx.pid, handle.value(), 0); !s.is_ok()) {
    (void)ctx.fs.close(ctx.pid, handle.value());
    return true;
  }
  const Status wrote = ctx.fs.write(ctx.pid, handle.value(), ByteView(fresh));
  const Status closed = ctx.fs.close(ctx.pid, handle.value());
  return !denied(wrote) && !denied(closed);
}

/// LibreOffice-style "safe save": write a temp sibling, delete the
/// original, rename the temp into place. `content` is the new full file
/// content. (The delete severs the engine's pre-image linkage; contrast
/// with replace_file_save below.)
bool replace_save(WorkloadContext& ctx, const std::string& path, ByteView content) {
  const std::string tmp = path + ".tmp~";
  if (!app_write(ctx, tmp, content)) return false;
  if (denied(ctx.fs.remove(ctx.pid, path))) return false;
  return !denied(ctx.fs.rename(ctx.pid, tmp, path));
}

/// Office ReplaceFile()-style save: write a temp sibling and rename it
/// *over* the original (replacement, no delete), plus an autorecovery
/// file that is created and cleaned up per save. The rename-over gives
/// the engine a pre-image to compare against — and the fully recompressed
/// container legitimately scores near zero similarity.
bool replace_file_save(WorkloadContext& ctx, const std::string& path,
                       ByteView content) {
  const std::string tmp = path + ".tmp~";
  const std::string autosave = path + ".asd";
  const std::string backup = path + ".bak~";
  if (!app_write(ctx, tmp, content)) return false;
  if (!app_write(ctx, autosave, ByteView(content.first(content.size() / 2)))) {
    return false;
  }
  // ReplaceFile keeps a transient backup of the replaced file, then both
  // scratch files are cleaned up.
  if (!app_write(ctx, backup, ByteView(content.first(content.size() / 3)))) {
    return false;
  }
  if (denied(ctx.fs.rename(ctx.pid, tmp, path))) return false;
  if (denied(ctx.fs.remove(ctx.pid, autosave))) return false;
  return !denied(ctx.fs.remove(ctx.pid, backup));
}

// ----------------------------------------------------------------------
// The five Figure-6 applications, following the paper's test scripts.
// ----------------------------------------------------------------------

/// "We imported a set of 1,073 JPEG image files ... performed an
/// 'automatic tone' function on every picture, converted 5 photos to
/// black-and-white, and exported these 5 photos to the user's documents
/// folder."  Lightroom edits non-destructively: originals are untouched,
/// the catalog (SQLite) absorbs every change, and each transaction spins
/// up and deletes a journal file.
void run_lightroom(WorkloadContext& ctx) {
  const auto photos = files_by_ext(ctx, {"jpg"}, 1073);
  const std::string lr_dir = vfs::path_join(ctx.docs_root, "lightroom");
  const std::string catalog = vfs::path_join(lr_dir, "catalog.lrcat");
  (void)ctx.fs.mkdir(ctx.pid, lr_dir);

  // Create the catalog (SQLite database).
  Bytes db = to_bytes(std::string("SQLite format 3\0", 16));
  append(db, ByteView(compressed(ctx.rng, 24 * 1024)));
  if (!app_write(ctx, catalog, ByteView(db))) return;

  // Import: read every photo; extend the catalog in transactions, each
  // with a journal file that is created and deleted.
  std::size_t batch = 0;
  for (const std::string& photo : photos) {
    ctx.think_ms(3000);  // import + preview render pace (~1 h for 1,073)
    if (!app_read(ctx, photo)) return;
    if (++batch % 48 == 0) {
      const std::string journal = catalog + "-journal";
      if (!app_write(ctx, journal, ByteView(compressed(ctx.rng, 4096)))) return;
      if (!rewrite_preserving(ctx, catalog, 0.92, 8 * 1024)) return;
      if (denied(ctx.fs.remove(ctx.pid, journal))) return;
    }
  }
  // Tone adjustments land in the catalog, not the photos.
  if (!rewrite_preserving(ctx, catalog, 0.90, 16 * 1024)) return;

  // Export 5 black-and-white conversions as new JPEGs.
  for (int i = 0; i < 5; ++i) {
    const std::string out =
        vfs::path_join(ctx.docs_root, "export_bw_" + std::to_string(i) + ".jpg");
    if (!app_write(ctx, out,
                   ByteView(generate_content(FileKind::jpg, 180 * 1024, ctx.rng)))) {
      return;
    }
  }
}

/// "We performed a batch modification of the same 1,073 JPEG image files,
/// using the ImageMagick mogrify utility. Each picture was rotated 90
/// degrees and saved in-place."  Rotation preserves the image
/// information: headers/EXIF stay, and the entropy-coded payload carries
/// the same content (modeled as a block permutation with light re-encode
/// noise), so the similarity digest stays high and the type unchanged.
void run_imagemagick(WorkloadContext& ctx) {
  const auto photos = files_by_ext(ctx, {"jpg"}, 1073);
  for (const std::string& photo : photos) {
    ctx.think_ms(150);  // decode, rotate, re-encode
    auto handle = ctx.fs.open(ctx.pid, photo, vfs::kRead | vfs::kWrite);
    if (!handle) {
      if (denied(handle.status())) return;
      continue;  // read-only photos are skipped by mogrify with a warning
    }
    auto info = ctx.fs.stat(photo);
    const std::size_t size = info ? static_cast<std::size_t>(info.value().size) : 0;
    auto old = ctx.fs.read(ctx.pid, handle.value(), size);
    if (!old) {
      (void)ctx.fs.close(ctx.pid, handle.value());
      if (denied(old.status())) return;
      continue;
    }
    Bytes img = std::move(old).value();
    // Keep header + EXIF verbatim; locally reorder the entropy-coded
    // payload (adjacent 4 KiB block swaps) and re-encode ~10% of blocks.
    // This models a lossless-transform rotation: the compressed segments
    // survive byte-identically in a new arrangement, so the similarity
    // digest stays far above the "no match" bar.
    const std::size_t header = std::min<std::size_t>(img.size(), 8 * 1024);
    constexpr std::size_t kBlock = 4096;
    if (img.size() > header + 2 * kBlock) {
      const std::size_t blocks = (img.size() - header) / kBlock;
      Bytes rotated(img.begin(), img.begin() + static_cast<std::ptrdiff_t>(header));
      for (std::size_t pair = 0; pair + 1 < blocks; pair += 2) {
        for (std::size_t b : {pair + 1, pair}) {  // swap adjacent blocks
          const std::size_t off = header + b * kBlock;
          if (ctx.rng.chance(0.10)) {
            append(rotated, ByteView(compressed(ctx.rng, kBlock)));  // re-encoded
          } else {
            rotated.insert(rotated.end(),
                           img.begin() + static_cast<std::ptrdiff_t>(off),
                           img.begin() + static_cast<std::ptrdiff_t>(off + kBlock));
          }
        }
      }
      rotated.resize(img.size(), 0);
      img = std::move(rotated);
    }
    (void)ctx.fs.seek(ctx.pid, handle.value(), 0);
    const Status wrote = ctx.fs.write(ctx.pid, handle.value(), ByteView(img));
    const Status closed = ctx.fs.close(ctx.pid, handle.value());
    if (denied(wrote) || denied(closed)) return;
  }
}

/// "We deleted the iTunes library ... imported all 70 of the Coldwell
/// audio comparison files, and allowed iTunes to convert any files that
/// were unsupported. We played three songs, then converted all of the
/// audio files to AAC."  Conversions land in the iTunes media library
/// *outside* the documents tree; inside it, iTunes only refreshes a
/// little artwork/metadata cache.
void run_itunes(WorkloadContext& ctx) {
  const std::string library = "users/victim/music/itunes";
  (void)ctx.fs.mkdir(ctx.pid, library);
  const auto songs = files_by_ext(ctx, {"wav", "mp3", "m4a", "flac"}, 70);

  for (const std::string& song : songs) {
    ctx.think_ms(800);  // import scan
    if (!app_read(ctx, song)) return;
  }
  // Playback re-reads (three full songs).
  for (std::size_t i = 0; i < std::min<std::size_t>(3, songs.size()); ++i) {
    ctx.think_ms(200000);
    if (!app_read(ctx, songs[i])) return;
  }
  // Convert to AAC into the library (unmonitored).
  for (std::size_t i = 0; i < songs.size(); ++i) {
    ctx.think_ms(4000);  // transcode time per track
    if (!app_read(ctx, songs[i])) return;
    const std::string out = vfs::path_join(library, "track_" + std::to_string(i) + ".m4a");
    if (!app_write(ctx, out,
                   ByteView(generate_content(FileKind::m4a, 96 * 1024, ctx.rng)))) {
      return;
    }
  }
  // Artwork cache refresh inside the documents music folder.
  const std::string art_dir = vfs::path_join(ctx.docs_root, "album artwork");
  (void)ctx.fs.mkdir(ctx.pid, art_dir);
  for (int i = 0; i < 2; ++i) {
    const std::string itc = vfs::path_join(art_dir, "cache" + std::to_string(i) + ".itc");
    if (!app_write(ctx, itc, ByteView(compressed(ctx.rng, 48 * 1024)))) return;
  }
}

/// "We created a new blank document and entered 5 paragraphs ... saved
/// ... created a table ... saved again ... imported a photo ... inserted
/// a 'SmartArt' graphic ... and saved."  Word saves incrementally:
/// most of the file's bytes survive each save.
void run_word(WorkloadContext& ctx) {
  const std::string doc = vfs::path_join(ctx.docs_root, "report.docx");
  if (!app_write(ctx, doc,
                 ByteView(generate_content(FileKind::docx, 36 * 1024, ctx.rng)))) {
    return;
  }
  ctx.think_ms(240000);  // five paragraphs of typing
  if (!rewrite_preserving(ctx, doc, 0.88, 6 * 1024)) return;   // table added
  ctx.think_ms(180000);
  if (!app_read(ctx, doc)) return;
  if (!rewrite_preserving(ctx, doc, 0.85, 180 * 1024)) return; // photo embedded
  ctx.think_ms(120000);
  if (!rewrite_preserving(ctx, doc, 0.90, 12 * 1024)) return;  // SmartArt
}

/// "We created a blank document and filled in two 500-cell columns ...
/// created a line chart ... saved ... re-opened Excel, added another
/// column ... a scatter plot ... saved again."  Excel's safe-save
/// rewrites the whole compressed container through a temp file and
/// deletes the old copy — every byte changes, so the similarity digest
/// collapses on each save (this is what puts Excel near, but below, the
/// detection threshold in Figure 6).
void run_excel(WorkloadContext& ctx) {
  const std::string book = vfs::path_join(ctx.docs_root, "budget.xlsx");
  std::size_t size = 22 * 1024;
  if (!app_write(ctx, book, ByteView(generate_content(FileKind::xlsx, size, ctx.rng)))) {
    return;
  }
  // Session 1: data + line chart, two saves.
  for (int save = 0; save < 2; ++save) {
    ctx.think_ms(150000);  // fill in the columns / build the chart
    size += 6 * 1024;
    if (!replace_file_save(ctx, book,
                           ByteView(generate_content(FileKind::xlsx, size, ctx.rng)))) {
      return;
    }
  }
  // Session 2: re-open, new column + scatter plot, two saves.
  if (!app_read(ctx, book)) return;
  for (int save = 0; save < 2; ++save) {
    ctx.think_ms(120000);
    size += 5 * 1024;
    if (!replace_file_save(ctx, book,
                           ByteView(generate_content(FileKind::xlsx, size, ctx.rng)))) {
      return;
    }
  }
}

// ----------------------------------------------------------------------
// 7-zip — the expected false positive (§V-G).
// ----------------------------------------------------------------------

/// Archives the entire documents directory: reads every file (dozens of
/// distinct types) while streaming one high-entropy archive back into the
/// tree. The paper calls this detection "normal, expected, desirable".
void run_sevenzip(WorkloadContext& ctx) {
  const std::string archive = vfs::path_join(ctx.docs_root, "documents.7z");
  auto handle = ctx.fs.open(ctx.pid, archive, vfs::kWrite | vfs::kCreate);
  if (!handle) return;
  // 7z signature, then compressed stream.
  const Bytes sig = to_bytes(std::string("7z\xbc\xaf\x27\x1c\x00\x04", 8));
  if (denied(ctx.fs.write(ctx.pid, handle.value(), ByteView(sig)))) {
    (void)ctx.fs.close(ctx.pid, handle.value());
    return;
  }
  for (const std::string& path : ctx.fs.list_files_recursive(ctx.docs_root)) {
    if (path == archive) continue;
    auto data = ctx.fs.read_file(ctx.pid, path);
    if (!data) {
      if (denied(data.status())) break;
      continue;
    }
    // ~45% compression ratio, written in 64 KiB chunks.
    std::size_t out_bytes = std::max<std::size_t>(data.value().size() * 45 / 100, 64);
    const Bytes chunk_src = compressed(ctx.rng, out_bytes);
    bool stop = false;
    for (std::size_t off = 0; off < chunk_src.size(); off += 64 * 1024) {
      const std::size_t n = std::min<std::size_t>(64 * 1024, chunk_src.size() - off);
      if (denied(ctx.fs.write(ctx.pid, handle.value(),
                              ByteView(chunk_src).subspan(off, n)))) {
        stop = true;
        break;
      }
    }
    if (stop) break;
  }
  (void)ctx.fs.close(ctx.pid, handle.value());
}

// ----------------------------------------------------------------------
// The remaining applications: lighter-footprint workloads.
// ----------------------------------------------------------------------

void run_avast(WorkloadContext& ctx) {
  // On-demand scan: reads everything, writes only its own logs elsewhere.
  for (const std::string& path : ctx.fs.list_files_recursive(ctx.docs_root)) {
    ctx.think_ms(10);  // per-file scan cost
    if (!app_read(ctx, path)) return;
  }
  (void)ctx.fs.write_file(ctx.pid, "programdata/avast/scan.log",
                          to_bytes(synth_prose(ctx.rng, 4096)));
}

void run_chocolate_doom(WorkloadContext& ctx) {
  const std::string saves = vfs::path_join(ctx.docs_root, "doom");
  (void)ctx.fs.mkdir(ctx.pid, saves);
  for (int slot = 0; slot < 3; ++slot) {
    const std::string file = vfs::path_join(saves, "savegame" + std::to_string(slot) + ".dsg");
    Bytes save = to_bytes(std::string("DOOM SAVE v1\0", 13));
    append(save, ByteView(ctx.rng.bytes(12 * 1024)));
    if (!app_write(ctx, file, ByteView(save))) return;
    if (!app_read(ctx, file)) return;
    if (!rewrite_preserving(ctx, file, 0.75, 512)) return;  // re-save
  }
}

void run_chrome(WorkloadContext& ctx) {
  // Three downloads into the documents tree; no reads.
  const std::string downloads = vfs::path_join(ctx.docs_root, "downloads");
  (void)ctx.fs.mkdir(ctx.pid, downloads);
  const FileKind kinds[] = {FileKind::pdf, FileKind::zip, FileKind::jpg};
  int i = 0;
  for (FileKind kind : kinds) {
    const std::string name = "download_" + std::to_string(i++) + "." +
                             std::string(corpus::kind_extension(kind));
    // Browsers stream to .crdownload and rename when complete.
    const std::string partial = vfs::path_join(downloads, name + ".crdownload");
    ctx.think_ms(30000);  // network transfer
    if (!app_write(ctx, partial,
                   ByteView(generate_content(kind, 300 * 1024, ctx.rng)))) {
      return;
    }
    if (denied(ctx.fs.rename(ctx.pid, partial, vfs::path_join(downloads, name)))) return;
  }
}

void run_dropbox(WorkloadContext& ctx) {
  // Sync indexing: reads a broad sample of the tree, then materializes a
  // couple of "conflicted copy" duplicates (content identical).
  const auto sample = files_by_ext(ctx, {}, 400);
  for (const std::string& path : sample) {
    ctx.think_ms(60);  // hash + upload pacing
    if (!app_read(ctx, path)) return;
  }
  for (std::size_t i = 0; i < std::min<std::size_t>(2, sample.size()); ++i) {
    const std::string& src = sample[i * 37 % sample.size()];
    auto data = ctx.fs.read_file(ctx.pid, src);
    if (!data) return;
    const std::string copy = src + " (conflicted copy)";
    if (!app_write(ctx, copy, ByteView(data.value()))) return;
  }
}

void run_noop_outside_docs(WorkloadContext& ctx) {
  // Tray utilities (F.lux, VPN clients, Skype, Spotify): config and cache
  // churn in their own directories, nothing under the documents root.
  (void)ctx.fs.write_file(ctx.pid, "users/victim/appdata/roaming/app/settings.ini",
                          to_bytes(synth_prose(ctx.rng, 800)));
  (void)ctx.fs.write_file(ctx.pid, "users/victim/appdata/local/app/cache.bin",
                          ctx.rng.bytes(64 * 1024));
}

void run_gimp(WorkloadContext& ctx) {
  const auto images = files_by_ext(ctx, {"png", "jpg"}, 4);
  if (images.empty()) return;
  if (!app_read(ctx, images[0])) return;
  // Save working copy as .xcf (new file), then export once over a PNG
  // (full recompression — similarity legitimately collapses, a single
  // modest score hit).
  const std::string xcf = vfs::path_join(ctx.docs_root, "artwork.xcf");
  Bytes working = to_bytes(std::string("gimp xcf file\0", 14));
  append(working, ByteView(compressed(ctx.rng, 400 * 1024)));
  if (!app_write(ctx, xcf, ByteView(working))) return;
  auto info = ctx.fs.stat(images[0]);
  const std::size_t size = info ? static_cast<std::size_t>(info.value().size) : 64 * 1024;
  if (!app_write(ctx, images[0],
                 ByteView(generate_content(FileKind::png, size, ctx.rng)))) {
    return;
  }
}

void run_launchy(WorkloadContext& ctx) {
  // Indexer: walks the namespace, opens nothing.
  std::vector<std::string> stack{ctx.docs_root};
  while (!stack.empty()) {
    const std::string dir = stack.back();
    stack.pop_back();
    for (const vfs::DirEntry& entry : ctx.fs.list(dir)) {
      if (entry.is_directory) stack.push_back(vfs::path_join(dir, entry.name));
    }
  }
  (void)ctx.fs.write_file(ctx.pid, "users/victim/appdata/roaming/launchy/index.db",
                          ctx.rng.bytes(32 * 1024));
}

/// LibreOffice saves through a temp file + replace, recompressing the
/// whole container (like Excel) — but the paper's quick benign runs only
/// include a couple of saves.
void run_libreoffice(WorkloadContext& ctx, FileKind kind, const std::string& filename) {
  const std::string doc = vfs::path_join(ctx.docs_root, filename);
  std::size_t size = 30 * 1024;
  if (!app_write(ctx, doc, ByteView(generate_content(kind, size, ctx.rng)))) return;
  for (int save = 0; save < 2; ++save) {
    size += 4 * 1024;
    if (!app_read(ctx, doc)) return;
    if (!replace_save(ctx, doc, ByteView(generate_content(kind, size, ctx.rng)))) return;
  }
}

void run_office_viewers(WorkloadContext& ctx) {
  for (const std::string& path :
       files_by_ext(ctx, {"doc", "docx", "xls", "xlsx", "ppt", "pptx"}, 20)) {
    if (!app_read(ctx, path)) return;
  }
}

void run_musicbee(WorkloadContext& ctx) {
  // Library scan + in-place tag edits: only the small tag region at the
  // head of each file changes.
  for (const std::string& song : files_by_ext(ctx, {"mp3"}, 40)) {
    ctx.think_ms(400);  // tag scan
    if (!app_read(ctx, song)) return;
  }
  for (const std::string& song : files_by_ext(ctx, {"mp3"}, 8)) {
    auto handle = ctx.fs.open(ctx.pid, song, vfs::kRead | vfs::kWrite);
    if (!handle) {
      if (denied(handle.status())) return;
      continue;
    }
    Bytes tag = to_bytes(std::string("ID3\x03\x00\x00", 6));
    append(tag, to_bytes(synth_prose(ctx.rng, 250)));
    const Status wrote = ctx.fs.write(ctx.pid, handle.value(), ByteView(tag));
    const Status closed = ctx.fs.close(ctx.pid, handle.value());
    if (denied(wrote) || denied(closed)) return;
  }
}

void run_paintdotnet(WorkloadContext& ctx) {
  const auto images = files_by_ext(ctx, {"jpg", "png"}, 2);
  if (images.empty()) return;
  if (!app_read(ctx, images[0])) return;
  const std::string pdn = vfs::path_join(ctx.docs_root, "drawing.pdn");
  Bytes working = to_bytes(std::string("PDN3", 4));
  append(working, ByteView(compressed(ctx.rng, 200 * 1024)));
  (void)app_write(ctx, pdn, ByteView(working));
}

void run_phrase_express(WorkloadContext& ctx) {
  const std::string phrases = vfs::path_join(ctx.docs_root, "phrases.pxp");
  if (!app_write(ctx, phrases, to_bytes(synth_prose(ctx.rng, 6 * 1024)))) return;
  for (int i = 0; i < 2; ++i) {
    if (!rewrite_preserving(ctx, phrases, 0.9, 256, Filler::text)) return;
  }
}

void run_picasa(WorkloadContext& ctx) {
  // Scans pictures and leaves a .picasa.ini in each directory visited.
  std::size_t dirs_done = 0;
  for (const std::string& photo : files_by_ext(ctx, {"jpg", "png", "gif"}, 200)) {
    ctx.think_ms(250);  // thumbnailing
    if (!app_read(ctx, photo)) return;
    const std::string ini = vfs::path_join(vfs::path_parent(photo), ".picasa.ini");
    if (!ctx.fs.exists(ini)) {
      std::string body = "[" + std::string(vfs::path_filename(photo)) + "]\nstar=yes\n";
      if (!app_write(ctx, ini, to_bytes(body))) return;
      if (++dirs_done >= 20) break;
    }
  }
}

void run_pidgin(WorkloadContext& ctx) {
  const std::string logs = vfs::path_join(ctx.docs_root, "pidgin logs");
  (void)ctx.fs.mkdir(ctx.pid, logs);
  const std::string log = vfs::path_join(logs, "buddy.html");
  if (!app_write(ctx, log, to_bytes(std::string("<html><body>\n")))) return;
  for (int msg = 0; msg < 20; ++msg) {
    ctx.think_ms(static_cast<std::uint64_t>(20000 + ctx.rng.uniform(0, 60000)));
    auto handle = ctx.fs.open(ctx.pid, log, vfs::kRead | vfs::kWrite);
    if (!handle) return;
    auto info = ctx.fs.stat(log);
    (void)ctx.fs.seek(ctx.pid, handle.value(),
                      info ? info.value().size : 0);
    const Status wrote = ctx.fs.write(
        ctx.pid, handle.value(),
        to_bytes("<p>" + synth_prose(ctx.rng, 80) + "</p>\n"));
    const Status closed = ctx.fs.close(ctx.pid, handle.value());
    if (denied(wrote) || denied(closed)) return;
  }
}

void run_ccleaner(WorkloadContext& ctx) {
  // Cleans caches *outside* the documents tree.
  for (int i = 0; i < 10; ++i) {
    const std::string tmp = "users/victim/appdata/local/temp/junk" + std::to_string(i) + ".tmp";
    (void)ctx.fs.write_file(ctx.pid, tmp, ctx.rng.bytes(2048));
    (void)ctx.fs.remove(ctx.pid, tmp);
  }
}

void run_resoph_notes(WorkloadContext& ctx) {
  const std::string notes = vfs::path_join(ctx.docs_root, "resophnotes");
  (void)ctx.fs.mkdir(ctx.pid, notes);
  for (int i = 0; i < 10; ++i) {
    ctx.think_ms(25000);  // writing the note
    const std::string note = vfs::path_join(notes, "note" + std::to_string(i) + ".txt");
    if (!app_write(ctx, note, to_bytes(synth_prose(ctx.rng, 600)))) return;
  }
  for (int i = 0; i < 5; ++i) {
    const std::string note = vfs::path_join(notes, "note" + std::to_string(i) + ".txt");
    if (!rewrite_preserving(ctx, note, 0.8, 120, Filler::text)) return;
  }
}

void run_sticky_notes(WorkloadContext& ctx) {
  const std::string snt = vfs::path_join(ctx.docs_root, "StickyNotes.snt");
  if (!app_write(ctx, snt, to_bytes(synth_prose(ctx.rng, 900)))) return;
  (void)rewrite_preserving(ctx, snt, 0.85, 100, Filler::text);
}

void run_sumatra(WorkloadContext& ctx) {
  for (const std::string& pdf : files_by_ext(ctx, {"pdf"}, 10)) {
    if (!app_read(ctx, pdf)) return;
  }
  (void)ctx.fs.write_file(ctx.pid,
                          "users/victim/appdata/roaming/sumatrapdf/settings.txt",
                          to_bytes(synth_prose(ctx.rng, 1200)));
}

void run_utorrent(WorkloadContext& ctx) {
  // Streams a download into the documents tree (write-only: no reads, so
  // the entropy-delta indicator never arms), then renames it complete.
  const std::string partial = vfs::path_join(ctx.docs_root, "ubuntu.iso.!ut");
  auto handle = ctx.fs.open(ctx.pid, partial, vfs::kWrite | vfs::kCreate);
  if (!handle) return;
  for (int chunk = 0; chunk < 40; ++chunk) {
    if (denied(ctx.fs.write(ctx.pid, handle.value(),
                            ByteView(compressed(ctx.rng, 64 * 1024))))) {
      (void)ctx.fs.close(ctx.pid, handle.value());
      return;
    }
  }
  if (denied(ctx.fs.close(ctx.pid, handle.value()))) return;
  (void)ctx.fs.rename(ctx.pid, partial,
                      vfs::path_join(ctx.docs_root, "ubuntu.iso"));
}

void run_vlc(WorkloadContext& ctx) {
  for (const std::string& media : files_by_ext(ctx, {"mp3", "wav", "m4a"}, 6)) {
    if (!app_read(ctx, media)) return;
  }
  std::string playlist = "<?xml version=\"1.0\"?>\n<playlist>\n";
  for (const std::string& media : files_by_ext(ctx, {"mp3"}, 4)) {
    playlist += "  <track>" + media + "</track>\n";
  }
  playlist += "</playlist>\n";
  (void)app_write(ctx, vfs::path_join(ctx.docs_root, "favorites.xspf"),
                  to_bytes(playlist));
}

}  // namespace

std::vector<BenignWorkload> all_benign_workloads() {
  std::vector<BenignWorkload> out;
  auto add = [&](std::string name, std::function<void(WorkloadContext&)> fn,
                 bool expected_fp = false) {
    out.push_back(BenignWorkload{std::move(name), expected_fp, std::move(fn)});
  };
  add("7-zip", run_sevenzip, /*expected_fp=*/true);
  add("Adobe Lightroom", run_lightroom);
  add("Avast Anti-Virus", run_avast);
  add("Chocolate Doom", run_chocolate_doom);
  add("Chrome", run_chrome);
  add("Dropbox", run_dropbox);
  add("F.lux", run_noop_outside_docs);
  add("GIMP", run_gimp);
  add("ImageMagick", run_imagemagick);
  add("iTunes", run_itunes);
  add("Launchy", run_launchy);
  add("LibreOffice Calc", [](WorkloadContext& ctx) {
    run_libreoffice(ctx, FileKind::odt, "ledger.ods");
  });
  add("LibreOffice Writer", [](WorkloadContext& ctx) {
    run_libreoffice(ctx, FileKind::odt, "essay.odt");
  });
  add("Microsoft Excel", run_excel);
  add("Microsoft Office Viewers", run_office_viewers);
  add("Microsoft Word", run_word);
  add("MusicBee", run_musicbee);
  add("Paint.NET", run_paintdotnet);
  add("PhraseExpress", run_phrase_express);
  add("Picasa", run_picasa);
  add("Pidgin", run_pidgin);
  add("Piriform CCleaner", run_ccleaner);
  add("Private Internet Access VPN", run_noop_outside_docs);
  add("ResophNotes", run_resoph_notes);
  add("Skype", run_noop_outside_docs);
  add("Spotify", run_noop_outside_docs);
  add("Sticky Notes", run_sticky_notes);
  add("SumatraPDF", run_sumatra);
  add("uTorrent", run_utorrent);
  add("VLC Media Player", run_vlc);
  return out;
}

std::vector<BenignWorkload> figure6_workloads() {
  std::vector<BenignWorkload> out;
  for (const std::string name : {"Adobe Lightroom", "ImageMagick", "iTunes",
                                 "Microsoft Word", "Microsoft Excel"}) {
    out.push_back(benign_workload(name));
  }
  return out;
}

BenignWorkload benign_workload(const std::string& name) {
  for (BenignWorkload& workload : all_benign_workloads()) {
    if (workload.name == name) return workload;
  }
  throw std::out_of_range("unknown benign workload: " + name);
}

}  // namespace cryptodrop::sim
