// Benign application workload simulators (paper §V-F).
//
// The false-positive evaluation runs thirty common Windows applications'
// documented file-access patterns against the same corpus and engine as
// the malware runs. Five are modeled in detail after the paper's own test
// scripts (Adobe Lightroom, ImageMagick, iTunes, Microsoft Word,
// Microsoft Excel — Figure 6), plus 7-zip, the paper's single expected
// false positive; the remainder reproduce each application's typical
// footprint in the documents tree.
//
// Modeling principle: benign software *preserves information*. Edits
// keep most of a file's bytes (incremental saves, in-place tag edits,
// header-preserving image rewrites), so the similarity digest stays high
// and the type never changes. The deliberate exceptions mirror reality:
// Excel/LibreOffice-style save-via-temp-replace rewrites every compressed
// byte (similarity collapses) and deletes the old file; 7-zip reads the
// entire tree while emitting one high-entropy stream — exactly the
// "bulk transformation" the engine is built to flag.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "vfs/filesystem.hpp"

namespace cryptodrop::sim {

/// Everything a workload needs to execute.
struct WorkloadContext {
  vfs::FileSystem& fs;
  vfs::ProcessId pid;
  std::string docs_root;  ///< The protected documents directory.
  Rng rng;

  /// Human/computation pacing on the virtual clock. The paper notes its
  /// benign tests "took tens of minutes of high disk activity" (Lightroom
  /// nearly an hour) while ransomware attacks take seconds — the contrast
  /// the §V-F time-window discussion is about.
  void think_ms(std::uint64_t ms) { fs.advance_time(ms * 1000); }
};

/// One benign application workload.
struct BenignWorkload {
  std::string name;
  /// True for 7-zip: the paper expects (and welcomes) this detection.
  bool expected_false_positive = false;
  /// Executes the workload against the context's filesystem.
  std::function<void(WorkloadContext&)> run;
};

/// All thirty applications from the paper's benign set, in the paper's
/// listing order.
std::vector<BenignWorkload> all_benign_workloads();

/// The five applications analyzed in detail for Figure 6.
std::vector<BenignWorkload> figure6_workloads();

/// Lookup by name (exact match against the paper's names). Throws
/// std::out_of_range for unknown names.
BenignWorkload benign_workload(const std::string& name);

}  // namespace cryptodrop::sim
