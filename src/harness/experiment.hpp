// Experiment harness: builds the environment once, then executes malware
// samples / benign workloads against cheap copy-on-write clones of it —
// the in-memory equivalent of the paper's "revert the VM snapshot between
// samples" methodology — and gathers the measurements every table and
// figure is derived from.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/engine.hpp"
#include "corpus/builder.hpp"
#include "obs/span.hpp"
#include "sim/benign/benign.hpp"
#include "sim/ransomware/families.hpp"
#include "sim/ransomware/ransomware.hpp"
#include "vfs/filesystem.hpp"

namespace cryptodrop::harness {

/// A populated victim machine: base volume + corpus manifest.
struct Environment {
  vfs::FileSystem base_fs;
  corpus::Corpus corpus;
  corpus::CorpusSpec spec;
};

/// Builds the standard 5,099-file / 511-directory environment (or a
/// custom `spec`). Deterministic in `seed`.
Environment make_environment(const corpus::CorpusSpec& spec, std::uint64_t seed);
/// make_environment() with the paper's default corpus spec.
Environment make_default_environment(std::uint64_t seed);

/// A scaled-down environment for unit/integration tests (fast to build).
corpus::CorpusSpec small_corpus_spec(std::size_t files, std::size_t dirs);

/// One registered process of a trial volume (pid order). The daemon
/// parity runner replays this roster through `spawn` requests so the
/// tenant's process table — and therefore family scoring — reproduces
/// the golden run's exactly.
struct ProcessRosterEntry {
  vfs::ProcessId pid = 0;
  std::string name;
  vfs::ProcessId parent = 0;  ///< 0 = no parent.
};

/// Outcome of one ransomware sample vs. CryptoDrop.
struct RansomwareRunResult {
  std::string family;
  sim::BehaviorClass behavior{};
  bool detected = false;
  std::size_t files_lost = 0;
  int final_score = 0;
  bool union_triggered = false;
  std::uint64_t union_count = 0;
  core::ProcessReport report;
  /// The full end-of-run engine snapshot (every process report + the
  /// default threshold) — the daemon parity gate compares this
  /// scoreboard against a live daemon's `verdicts` response
  /// (harness/daemon_runner.hpp).
  core::EngineSnapshot scoreboard;
  /// Every process registered on the trial volume when the run ended.
  std::vector<ProcessRosterEntry> roster;
  /// The trial engine's full metrics at the end of the run (counters,
  /// gauges, stage-latency histograms). Merge across trials with
  /// merged_metrics().
  obs::MetricsSnapshot metrics;
  /// Every span the trial's tracer retained (empty unless the run was
  /// given enabled TraceOptions). Export with harness::trace_report.
  obs::SpanSnapshot trace;
  sim::SampleRun sample;
  /// Directories (under the corpus root) where the sample read or wrote
  /// at least one file before being stopped — Figure 4's shading.
  std::set<std::string> directories_touched;
  /// Distinct extensions of corpus files the sample accessed — Figure 5.
  std::set<std::string> extensions_accessed;
};

/// Runs one ransomware sample in a fresh MonitorSession over a pristine
/// clone of `env.base_fs` and reports the outcome. Deterministic in the
/// spec's seed.
RansomwareRunResult run_ransomware_sample(const Environment& env,
                                          const sim::SampleSpec& spec,
                                          const core::ScoringConfig& config);

/// run_ransomware_sample() with an extra filter stacked *below* the
/// engine (attached after it, nearer the volume) for the trial — the
/// slot a FaultInjectionFilter occupies in a chaos run. `below_engine`
/// may be null (plain run); it is attached before the sample starts and
/// detached before returning, so one caller-owned filter serves exactly
/// one trial. When `trace.enabled`, the trial session records spans and
/// the result's `trace` carries the snapshot.
RansomwareRunResult run_ransomware_sample_filtered(
    const Environment& env, const sim::SampleSpec& spec,
    const core::ScoringConfig& config, vfs::Filter* below_engine,
    const obs::TraceOptions& trace = {});

/// Runs the full Table-I campaign (all `specs`) and returns per-sample
/// results. `progress` (nullable) is invoked after each sample.
std::vector<RansomwareRunResult> run_campaign(
    const Environment& env, const std::vector<sim::SampleSpec>& specs,
    const core::ScoringConfig& config,
    const std::function<void(std::size_t, std::size_t)>& progress = {});

/// Outcome of one benign workload vs. CryptoDrop.
struct BenignRunResult {
  std::string app;
  bool detected = false;           ///< Suspended at the configured threshold.
  bool expected_false_positive = false;
  int final_score = 0;
  bool union_triggered = false;
  core::ProcessReport report;
  /// The full end-of-run engine snapshot (daemon parity gate input, as
  /// in RansomwareRunResult).
  core::EngineSnapshot scoreboard;
  /// Every process registered on the trial volume when the run ended.
  std::vector<ProcessRosterEntry> roster;
  /// The trial engine's full metrics at the end of the run.
  obs::MetricsSnapshot metrics;
  /// Spans retained by the trial's tracer (empty unless traced).
  obs::SpanSnapshot trace;
};

/// Runs one benign workload in a fresh MonitorSession; deterministic in
/// `seed`.
BenignRunResult run_benign_workload(const Environment& env,
                                    const sim::BenignWorkload& workload,
                                    const core::ScoringConfig& config,
                                    std::uint64_t seed);

/// run_benign_workload() with an extra filter stacked below the engine
/// for the trial (see run_ransomware_sample_filtered) and optional span
/// tracing.
BenignRunResult run_benign_workload_filtered(
    const Environment& env, const sim::BenignWorkload& workload,
    const core::ScoringConfig& config, std::uint64_t seed,
    vfs::Filter* below_engine, const obs::TraceOptions& trace = {});

// --- aggregation helpers (the numbers the paper reports) ---------------

/// Sums the per-trial metrics of a campaign into one snapshot: counters
/// and histogram counts add across trials, gauges keep their maximum.
obs::MetricsSnapshot merged_metrics(const std::vector<RansomwareRunResult>& results);
/// merged_metrics() over the benign suite's per-trial metrics.
obs::MetricsSnapshot merged_metrics(const std::vector<BenignRunResult>& results);

/// One row of Table I.
struct FamilyRow {
  std::string family;
  std::size_t class_a = 0;
  std::size_t class_b = 0;
  std::size_t class_c = 0;
  std::size_t total = 0;
  double median_files_lost = 0.0;
};

/// Groups campaign results per family (Table I rows, family-name order).
std::vector<FamilyRow> aggregate_table1(const std::vector<RansomwareRunResult>& results);

/// Files-lost values in campaign order (Figure 3's sample set).
std::vector<double> files_lost_values(const std::vector<RansomwareRunResult>& results);

/// Aggregate extension access frequency: for each extension, how many
/// samples accessed at least one such file before detection (Figure 5).
std::vector<std::pair<std::string, std::size_t>> extension_frequency(
    const std::vector<RansomwareRunResult>& results);

}  // namespace cryptodrop::harness
