// Plain-text table / figure rendering for the bench binaries, so each
// bench prints rows directly comparable to the paper's tables and ASCII
// renderings of its figures.
#pragma once

#include <string>
#include <vector>

namespace cryptodrop::harness {

/// Simple left/right-aligned column table.
class TextTable {
 public:
  /// A table with these column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Appends one row (must match the header count).
  void add_row(std::vector<std::string> cells);
  /// Renders with a header underline; columns sized to the widest cell.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fractional digits, trimming a trailing
/// ".0" for whole numbers when digits == 1.
std::string fmt_double(double value, int digits);

/// "57.32%"-style percentage.
std::string fmt_percent(double fraction, int digits = 2);

}  // namespace cryptodrop::harness
