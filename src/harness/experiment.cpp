#include "harness/experiment.hpp"

#include <algorithm>
#include <map>

#include "common/stats.hpp"
#include "core/session.hpp"
#include "vfs/path.hpp"
#include "vfs/recording_filter.hpp"

namespace cryptodrop::harness {

Environment make_environment(const corpus::CorpusSpec& spec, std::uint64_t seed) {
  Environment env;
  env.spec = spec;
  Rng rng(seed);
  env.corpus = corpus::build_corpus(env.base_fs, spec, rng);
  return env;
}

Environment make_default_environment(std::uint64_t seed) {
  return make_environment(corpus::CorpusSpec{}, seed);
}

corpus::CorpusSpec small_corpus_spec(std::size_t files, std::size_t dirs) {
  corpus::CorpusSpec spec;
  spec.total_files = files;
  spec.total_dirs = dirs;
  spec.max_depth = 4;
  return spec;
}

RansomwareRunResult run_ransomware_sample(const Environment& env,
                                          const sim::SampleSpec& spec,
                                          const core::ScoringConfig& config) {
  return run_ransomware_sample_filtered(env, spec, config, nullptr);
}

RansomwareRunResult run_ransomware_sample_filtered(
    const Environment& env, const sim::SampleSpec& spec,
    const core::ScoringConfig& config, vfs::Filter* below_engine,
    const obs::TraceOptions& trace) {
  core::MonitorSession session(env.base_fs, config, trace);
  vfs::FileSystem& fs = session.fs();
  vfs::RecordingFilter recorder;
  fs.attach_filter(&recorder);
  // Stack order: engine, recorder, then the caller's filter — lowest.
  // A fault injected there fails the op before it reaches the volume,
  // and both the engine and the recorder observe the failed outcome in
  // their post callbacks.
  if (below_engine != nullptr) fs.attach_filter(below_engine);

  const vfs::ProcessId pid = session.spawn(spec.family);
  sim::RansomwareSample sample(spec.profile, spec.seed);

  RansomwareRunResult result;
  result.family = spec.family;
  result.behavior = spec.behavior;
  result.sample = sample.run(fs, pid, env.corpus.root);
  result.files_lost = corpus::count_files_lost(fs, env.corpus);
  const core::EngineSnapshot snap = session.snapshot();
  result.report = snap.report_for(pid);
  result.scoreboard = snap;
  for (vfs::ProcessId p = 1; p <= fs.process_count(); ++p) {
    result.roster.push_back({p, std::string(fs.process_name(p)),
                             fs.process_parent(p)});
  }
  result.metrics = snap.metrics;
  // With family scoring, the root's report covers spawned workers; when
  // an ablation disables it, a run halted by denials still counts as
  // detected (every worker was individually flagged).
  result.detected = result.report.suspended ||
                    (!result.sample.ran_to_completion && result.sample.ops_denied > 0);
  result.final_score = result.report.score;
  result.union_triggered = result.report.union_triggered;
  result.union_count = result.report.union_count;

  for (const std::string& dir : recorder.directories_touched_by(pid)) {
    if (vfs::path_is_under(dir, env.corpus.root)) result.directories_touched.insert(dir);
  }
  // Extensions of *corpus* files the sample touched. Figure 5 reflects
  // "the first files attacked by each sample", so the sample's own
  // artifacts — ransom notes, .encrypted outputs — must not count;
  // membership in the pristine manifest is the filter.
  std::set<std::string> corpus_paths;
  for (const corpus::ManifestEntry& entry : env.corpus.manifest) {
    corpus_paths.insert(entry.path);
  }
  for (const vfs::RecordedOp& op : recorder.ops()) {
    if (op.pid != pid || !op.succeeded) continue;
    if (op.op != vfs::OpType::read && op.op != vfs::OpType::write &&
        op.op != vfs::OpType::rename && op.op != vfs::OpType::remove) {
      continue;
    }
    if (!corpus_paths.contains(op.path)) continue;
    const std::string ext = vfs::path_extension(op.path);
    if (!ext.empty()) result.extensions_accessed.insert(ext);
  }

  if (below_engine != nullptr) fs.detach_filter(below_engine);
  fs.detach_filter(&recorder);
  result.trace = session.trace_snapshot();
  return result;
}

std::vector<RansomwareRunResult> run_campaign(
    const Environment& env, const std::vector<sim::SampleSpec>& specs,
    const core::ScoringConfig& config,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  std::vector<RansomwareRunResult> results;
  results.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    results.push_back(run_ransomware_sample(env, specs[i], config));
    if (progress) progress(i + 1, specs.size());
  }
  return results;
}

BenignRunResult run_benign_workload(const Environment& env,
                                    const sim::BenignWorkload& workload,
                                    const core::ScoringConfig& config,
                                    std::uint64_t seed) {
  return run_benign_workload_filtered(env, workload, config, seed, nullptr);
}

BenignRunResult run_benign_workload_filtered(
    const Environment& env, const sim::BenignWorkload& workload,
    const core::ScoringConfig& config, std::uint64_t seed,
    vfs::Filter* below_engine, const obs::TraceOptions& trace) {
  core::MonitorSession session(env.base_fs, config, trace);
  if (below_engine != nullptr) session.fs().attach_filter(below_engine);

  const vfs::ProcessId pid = session.spawn(workload.name);
  sim::WorkloadContext ctx{session.fs(), pid, env.corpus.root, Rng(seed)};
  workload.run(ctx);

  BenignRunResult result;
  result.app = workload.name;
  result.expected_false_positive = workload.expected_false_positive;
  const core::EngineSnapshot snap = session.snapshot();
  result.report = snap.report_for(pid);
  result.scoreboard = snap;
  for (vfs::ProcessId p = 1; p <= session.fs().process_count(); ++p) {
    result.roster.push_back({p, std::string(session.fs().process_name(p)),
                             session.fs().process_parent(p)});
  }
  result.metrics = snap.metrics;
  result.detected = result.report.suspended;
  result.final_score = result.report.score;
  result.union_triggered = result.report.union_triggered;
  if (below_engine != nullptr) session.fs().detach_filter(below_engine);
  result.trace = session.trace_snapshot();
  return result;
}

obs::MetricsSnapshot merged_metrics(const std::vector<RansomwareRunResult>& results) {
  obs::MetricsSnapshot merged;
  for (const RansomwareRunResult& r : results) merged.merge(r.metrics);
  return merged;
}

obs::MetricsSnapshot merged_metrics(const std::vector<BenignRunResult>& results) {
  obs::MetricsSnapshot merged;
  for (const BenignRunResult& r : results) merged.merge(r.metrics);
  return merged;
}

std::vector<FamilyRow> aggregate_table1(const std::vector<RansomwareRunResult>& results) {
  std::map<std::string, std::vector<const RansomwareRunResult*>> by_family;
  for (const RansomwareRunResult& r : results) by_family[r.family].push_back(&r);

  std::vector<FamilyRow> rows;
  for (const auto& [family, runs] : by_family) {
    FamilyRow row;
    row.family = family;
    std::vector<double> losses;
    for (const RansomwareRunResult* r : runs) {
      switch (r->behavior) {
        case sim::BehaviorClass::A: ++row.class_a; break;
        case sim::BehaviorClass::B: ++row.class_b; break;
        case sim::BehaviorClass::C: ++row.class_c; break;
      }
      losses.push_back(static_cast<double>(r->files_lost));
    }
    row.total = runs.size();
    row.median_files_lost = median(std::move(losses));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<double> files_lost_values(const std::vector<RansomwareRunResult>& results) {
  std::vector<double> out;
  out.reserve(results.size());
  for (const RansomwareRunResult& r : results) {
    out.push_back(static_cast<double>(r.files_lost));
  }
  return out;
}

std::vector<std::pair<std::string, std::size_t>> extension_frequency(
    const std::vector<RansomwareRunResult>& results) {
  std::map<std::string, std::size_t> counts;
  for (const RansomwareRunResult& r : results) {
    for (const std::string& ext : r.extensions_accessed) ++counts[ext];
  }
  std::vector<std::pair<std::string, std::size_t>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace cryptodrop::harness
