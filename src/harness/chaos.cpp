#include "harness/chaos.hpp"

#include <algorithm>
#include <stdexcept>

namespace cryptodrop::harness {

RansomwareRunResult run_ransomware_sample_faulted(
    const Environment& env, const sim::SampleSpec& spec,
    const core::ScoringConfig& config, const FaultCampaignOptions& options,
    const obs::TraceOptions& trace) {
  sim::SampleSpec faulted = spec;
  faulted.profile.give_up_after_denials =
      std::max<std::size_t>(options.sample_give_up_after_denials, 1);

  vfs::FaultInjectionFilter filter(options.plan.reseeded(spec.seed));
  RansomwareRunResult result =
      run_ransomware_sample_filtered(env, faulted, config, &filter, trace);

  // Injected denials halt a sample exactly like a suspension does, so
  // the fault-free harness's "halted by denials" fallback would credit
  // the fault filter's noise to the detector. Under chaos, only the
  // engine's own verdict counts.
  result.detected = result.report.suspended;
  result.metrics.merge(filter.metrics_snapshot());
  return result;
}

std::vector<RansomwareRunResult> run_campaign_faulted(
    const Environment& env, const std::vector<sim::SampleSpec>& specs,
    const core::ScoringConfig& config, const FaultCampaignOptions& options,
    const RunnerOptions& runner) {
  if (Status s = config.validate(); !s.is_ok()) {
    throw std::invalid_argument("run_campaign_faulted: " + s.to_string());
  }
  if (Status s = options.plan.validate(); !s.is_ok()) {
    throw std::invalid_argument("run_campaign_faulted: " + s.to_string());
  }
  std::vector<RansomwareRunResult> results(specs.size());
  parallel_for(specs.size(), runner, [&](std::size_t i) {
    results[i] =
        run_ransomware_sample_faulted(env, specs[i], config, options, runner.trace);
  });
  return results;
}

BenignRunResult run_benign_workload_faulted(
    const Environment& env, const sim::BenignWorkload& workload,
    const core::ScoringConfig& config, std::uint64_t seed,
    const FaultCampaignOptions& options, const obs::TraceOptions& trace) {
  // Per-workload fault stream, independent of trial order: salt the plan
  // with the workload's name and the suite seed.
  vfs::FaultInjectionFilter filter(
      options.plan.reseeded(seed_from_string(workload.name) + seed));
  BenignRunResult result =
      run_benign_workload_filtered(env, workload, config, seed, &filter, trace);
  result.metrics.merge(filter.metrics_snapshot());
  return result;
}

std::vector<BenignRunResult> run_benign_suite_faulted(
    const Environment& env, const std::vector<sim::BenignWorkload>& workloads,
    const core::ScoringConfig& config, std::uint64_t seed,
    const FaultCampaignOptions& options, const RunnerOptions& runner) {
  if (Status s = config.validate(); !s.is_ok()) {
    throw std::invalid_argument("run_benign_suite_faulted: " + s.to_string());
  }
  if (Status s = options.plan.validate(); !s.is_ok()) {
    throw std::invalid_argument("run_benign_suite_faulted: " + s.to_string());
  }
  std::vector<BenignRunResult> results(workloads.size());
  parallel_for(workloads.size(), runner, [&](std::size_t i) {
    results[i] = run_benign_workload_faulted(env, workloads[i], config, seed,
                                             options, runner.trace);
  });
  return results;
}

}  // namespace cryptodrop::harness
