// Parallel experiment runner — the thread-pool substrate under every
// sweep (Table I, Figures 3–6, ROC/ablation studies).
//
// The paper's methodology is embarrassingly parallel: each trial (one
// ransomware sample or benign app × one config) runs against a pristine
// clone of the victim volume, reverted between samples. Trials share
// nothing mutable — FileSystem::clone() hands each one its own tree and
// the file *content* is shared copy-on-write (immutable bytes, atomic
// refcounts) — so N trials saturate N cores without locks beyond the
// engine's own shards.
//
// Determinism contract: results are index-addressed (trial i writes
// results[i]), every trial seeds its own Rng from the spec, and nothing
// reads wall-clock — so a parallel sweep is bit-identical to the serial
// one, at any job count. runner_test.cpp asserts this.
#pragma once

#include <cstddef>
#include <functional>

#include "harness/experiment.hpp"

namespace cryptodrop::harness {

/// Knobs for the parallel trial runner (shared by every *_parallel entry
/// point). Plain value type.
struct RunnerOptions {
  /// Worker threads; 0 means one per hardware thread.
  std::size_t jobs = 0;
  /// Invoked after each finished trial with (finished, total). Calls are
  /// serialized, but trials finish out of submission order.
  std::function<void(std::size_t, std::size_t)> progress;
  /// Span-tracing knobs for every trial the runner launches. Disabled by
  /// default; when enabled each trial's result carries its own
  /// SpanSnapshot, and the deterministic span-id scheme makes the merged
  /// trace identical at any job count (span_test.cpp asserts this).
  obs::TraceOptions trace;
};

/// Resolves a requested job count: 0 → std::thread::hardware_concurrency()
/// (min 1). Never returns 0.
std::size_t effective_jobs(std::size_t requested);

/// Runs body(i) for i in [0, count) on `options.jobs` workers. With one
/// job (or one item) the bodies run inline, in order, on the calling
/// thread — the exact serial path. The first exception thrown by any
/// body is rethrown on the caller after all workers join.
void parallel_for(std::size_t count, const RunnerOptions& options,
                  const std::function<void(std::size_t)>& body);

/// run_campaign, on the pool: one sample trial per spec, results in spec
/// order. Throws std::invalid_argument when `config` does not validate
/// (before any thread is spawned).
std::vector<RansomwareRunResult> run_campaign_parallel(
    const Environment& env, const std::vector<sim::SampleSpec>& specs,
    const core::ScoringConfig& config, const RunnerOptions& options = {});

/// The benign suite, on the pool: one trial per workload (all with the
/// same `seed`, like the serial loops in the benches), results in
/// workload order. Validates `config` up front.
std::vector<BenignRunResult> run_benign_suite_parallel(
    const Environment& env, const std::vector<sim::BenignWorkload>& workloads,
    const core::ScoringConfig& config, std::uint64_t seed,
    const RunnerOptions& options = {});

}  // namespace cryptodrop::harness
