#include "harness/daemon_runner.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "common/json.hpp"
#include "daemon/wire.hpp"
#include "vfs/trace.hpp"

namespace cryptodrop::harness {
namespace {

/// Everything one trial needs to replay through a daemon tenant.
struct GoldenTrial {
  std::string label;
  std::string tenant;
  bool detected = false;
  std::string golden_line;  ///< Expected `verdicts` response, serialized.
  std::vector<vfs::TraceEntry> entries;
  std::vector<ProcessRosterEntry> spawns;  ///< Roster beyond the base volume.
};

/// The byte-exact response a parity-clean daemon must send for
/// `verdicts`: the same serializer (daemon/wire.hpp) over the golden
/// scoreboard, wrapped in the same envelope the dispatcher emits.
std::string expected_verdicts_line(const core::EngineSnapshot& scoreboard) {
  return Json::object()
      .set("ok", true)
      .set("scoreboard", daemon::scoreboard_to_json(scoreboard))
      .to_string();
}

/// Roster entries the daemon must replay: processes the trial created on
/// top of the base volume (base pids exist in every tenant clone already).
std::vector<ProcessRosterEntry> trial_spawns(
    const std::vector<ProcessRosterEntry>& roster, std::size_t base_count) {
  std::vector<ProcessRosterEntry> out;
  for (const ProcessRosterEntry& entry : roster) {
    if (entry.pid > base_count) out.push_back(entry);
  }
  return out;
}

GoldenTrial make_golden(std::size_t index, std::string label, bool detected,
                        const core::EngineSnapshot& scoreboard,
                        std::vector<ProcessRosterEntry> roster,
                        std::size_t base_count,
                        std::vector<vfs::TraceEntry> entries) {
  GoldenTrial trial;
  trial.label = std::move(label);
  trial.tenant = "parity_" + std::to_string(index) + "_" + trial.label;
  trial.detected = detected;
  trial.golden_line = expected_verdicts_line(scoreboard);
  trial.entries = std::move(entries);
  trial.spawns = trial_spawns(roster, base_count);
  return trial;
}

/// Replays one golden trial through the control API and records whether
/// the daemon's scoreboard matched byte for byte.
DaemonParityTrial replay_trial(const GoldenTrial& golden,
                               const Transport& transport,
                               std::size_t ops_per_submit) {
  DaemonParityTrial out;
  out.label = golden.label;
  out.tenant = golden.tenant;
  out.golden_detected = golden.detected;
  out.ops = golden.entries.size();
  out.golden_line = golden.golden_line;

  transport(Json::object()
                .set("type", "attach")
                .set("tenant", golden.tenant)
                .to_string());
  for (const ProcessRosterEntry& spawn : golden.spawns) {
    transport(Json::object()
                  .set("type", "spawn")
                  .set("tenant", golden.tenant)
                  .set("pid", spawn.pid)
                  .set("name", spawn.name)
                  .set("parent", spawn.parent)
                  .to_string());
  }
  for (std::size_t start = 0; start < golden.entries.size();
       start += ops_per_submit) {
    const std::size_t end =
        std::min(start + ops_per_submit, golden.entries.size());
    Json ops = Json::array();
    for (std::size_t i = start; i < end; ++i) {
      ops.push(vfs::serialize_trace_entry(golden.entries[i]));
    }
    transport(Json::object()
                  .set("type", "submit")
                  .set("tenant", golden.tenant)
                  .set("ops", std::move(ops))
                  .to_string());
  }
  transport(Json::object()
                .set("type", "drain")
                .set("tenant", golden.tenant)
                .to_string());
  out.daemon_line = transport(Json::object()
                                  .set("type", "verdicts")
                                  .set("tenant", golden.tenant)
                                  .to_string());
  out.match = out.daemon_line == out.golden_line;
  transport(Json::object()
                .set("type", "detach")
                .set("tenant", golden.tenant)
                .to_string());
  return out;
}

}  // namespace

DaemonParityReport run_daemon_parity(
    const Environment& env, const std::vector<sim::SampleSpec>& samples,
    const std::vector<sim::BenignWorkload>& benign, std::uint64_t benign_seed,
    const core::ScoringConfig& config,
    const TransportFactory& transport_factory,
    const DaemonParityOptions& options) {
  const std::size_t base_count = env.base_fs.process_count();
  std::vector<GoldenTrial> goldens;
  goldens.reserve(samples.size() + benign.size());

  // Golden phase (serial): each trial records the exact op stream its
  // volume applied — a content-carrying trace below the engine, so ops
  // the engine denied never appear.
  for (const sim::SampleSpec& spec : samples) {
    vfs::TraceRecorder recorder(/*capture_content=*/true);
    RansomwareRunResult result =
        run_ransomware_sample_filtered(env, spec, config, &recorder);
    goldens.push_back(make_golden(goldens.size(), result.family,
                                  result.detected, result.scoreboard,
                                  std::move(result.roster), base_count,
                                  recorder.entries()));
  }
  for (const sim::BenignWorkload& workload : benign) {
    vfs::TraceRecorder recorder(/*capture_content=*/true);
    BenignRunResult result = run_benign_workload_filtered(
        env, workload, config, benign_seed, &recorder);
    goldens.push_back(make_golden(goldens.size(), result.app, result.detected,
                                  result.scoreboard, std::move(result.roster),
                                  base_count, recorder.entries()));
  }

  // Replay phase (parallel): one tenant per trial, `concurrent_tenants`
  // client threads pulling trials from a shared cursor.
  DaemonParityReport report;
  report.trials.resize(goldens.size());
  std::atomic<std::size_t> cursor{0};
  const std::size_t clients =
      std::max<std::size_t>(1, options.concurrent_tenants);
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      const Transport transport = transport_factory();
      for (std::size_t idx = cursor.fetch_add(1); idx < goldens.size();
           idx = cursor.fetch_add(1)) {
        report.trials[idx] =
            replay_trial(goldens[idx], transport, options.ops_per_submit);
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  return report;
}

}  // namespace cryptodrop::harness
