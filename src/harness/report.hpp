// Machine-readable (JSON) experiment reports: per-sample results,
// campaign aggregates in Table-I shape, and benign-suite summaries —
// for plotting pipelines and regression tracking outside this repo.
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"
#include "harness/experiment.hpp"

namespace cryptodrop::harness {

/// One ransomware run as a JSON object (family, class, detection,
/// files lost, per-indicator counts, union state).
Json to_json(const RansomwareRunResult& result);

/// One benign run as a JSON object.
Json to_json(const BenignRunResult& result);

/// Full campaign report: environment summary, per-family Table-I rows,
/// overall aggregates, and (optionally) every per-sample record.
Json campaign_report(const Environment& env,
                     const std::vector<RansomwareRunResult>& results,
                     bool include_samples = false);

/// Benign-suite report: per-app scores and the false-positive count.
Json benign_report(const std::vector<BenignRunResult>& results);

/// Instrumentation sidecar (the `--metrics-out` payload): the campaign's
/// merged metrics plus every run's forensic timeline — see
/// docs/OBSERVABILITY.md for the schema.
Json metrics_report(const std::vector<RansomwareRunResult>& results);
/// metrics_report() for a benign-suite run.
Json metrics_report(const std::vector<BenignRunResult>& results);

/// Span-trace sidecar (the `--trace-out` payload): every trial's spans
/// merged into one Chrome trace-event document, one pid block per trial
/// (pid offsets keep tracks distinct; `process_name` metadata labels
/// each block with the family/app and trial index). Loadable in Perfetto
/// and consumable by `cryptodrop trace-report` — see
/// docs/OBSERVABILITY.md "Span tracing".
Json trace_report(const std::vector<RansomwareRunResult>& results);
/// trace_report() for a benign-suite run.
Json trace_report(const std::vector<BenignRunResult>& results);

}  // namespace cryptodrop::harness
