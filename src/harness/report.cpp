#include "harness/report.hpp"

#include "common/stats.hpp"
#include "obs/trace_export.hpp"

namespace cryptodrop::harness {

Json to_json(const RansomwareRunResult& result) {
  Json indicators = Json::object();
  indicators.set("entropy", result.report.entropy_events)
      .set("type_change", result.report.type_change_events)
      .set("similarity_drop", result.report.similarity_drop_events)
      .set("deletion", result.report.deletion_events)
      .set("funneling", result.report.funneling_events)
      .set("burst_rate", result.report.rate_events);

  Json j = Json::object();
  j.set("family", result.family)
      .set("class", std::string(sim::behavior_class_name(result.behavior)))
      .set("detected", result.detected)
      .set("files_lost", result.files_lost)
      .set("final_score", result.final_score)
      .set("union_triggered", result.union_triggered)
      .set("union_count", result.union_count)
      .set("files_attacked", result.sample.files_attacked)
      .set("ran_to_completion", result.sample.ran_to_completion)
      .set("bytes_destroyed", result.sample.bytes_destroyed)
      .set("bytes_touched", result.sample.bytes_touched)
      .set("directories_touched", result.directories_touched.size())
      .set("indicators", std::move(indicators));
  return j;
}

Json to_json(const BenignRunResult& result) {
  Json j = Json::object();
  j.set("application", result.app)
      .set("score", result.final_score)
      .set("detected", result.detected)
      .set("expected_false_positive", result.expected_false_positive)
      .set("union_triggered", result.union_triggered);
  return j;
}

Json campaign_report(const Environment& env,
                     const std::vector<RansomwareRunResult>& results,
                     bool include_samples) {
  Json environment = Json::object();
  environment.set("corpus_files", env.corpus.file_count())
      .set("corpus_bytes", env.corpus.total_bytes())
      .set("corpus_root", env.corpus.root);

  std::size_t detected = 0;
  std::size_t with_union = 0;
  std::vector<double> losses;
  for (const RansomwareRunResult& r : results) {
    detected += r.detected ? 1 : 0;
    with_union += r.union_triggered ? 1 : 0;
    losses.push_back(static_cast<double>(r.files_lost));
  }

  Json families = Json::array();
  for (const FamilyRow& row : aggregate_table1(results)) {
    Json family = Json::object();
    family.set("family", row.family)
        .set("class_a", row.class_a)
        .set("class_b", row.class_b)
        .set("class_c", row.class_c)
        .set("total", row.total)
        .set("median_files_lost", row.median_files_lost);
    families.push(std::move(family));
  }

  Json aggregate = Json::object();
  aggregate.set("samples", results.size())
      .set("detected", detected)
      .set("detection_rate",
           results.empty() ? 0.0
                           : static_cast<double>(detected) /
                                 static_cast<double>(results.size()))
      .set("union_rate", results.empty()
                             ? 0.0
                             : static_cast<double>(with_union) /
                                   static_cast<double>(results.size()))
      .set("median_files_lost", losses.empty() ? 0.0 : median(losses))
      .set("max_files_lost",
           losses.empty() ? 0.0 : percentile(losses, 100.0));

  Json j = Json::object();
  j.set("experiment", "table1_campaign")
      .set("environment", std::move(environment))
      .set("aggregate", std::move(aggregate))
      .set("families", std::move(families));
  if (include_samples) {
    Json samples = Json::array();
    for (const RansomwareRunResult& r : results) samples.push(to_json(r));
    j.set("samples", std::move(samples));
  }
  return j;
}

namespace {

/// Shared shape of both metrics_report overloads: merged metrics up
/// front, then one forensic timeline per run (suspended runs are where
/// the "why was pid X suspended?" answer lives).
template <typename Result>
Json metrics_report_impl(const char* experiment,
                         const std::vector<Result>& results) {
  obs::MetricsSnapshot merged;
  Json timelines = Json::array();
  for (const Result& r : results) {
    merged.merge(r.metrics);
    timelines.push(obs::to_json(r.report.forensic));
  }
  Json j = Json::object();
  j.set("experiment", experiment)
      .set("runs", results.size())
      .set("metrics", obs::to_json(merged))
      .set("timelines", std::move(timelines));
  return j;
}

/// Trial labels for the merged trace's process_name metadata.
std::string trial_label(const RansomwareRunResult& r) { return r.family; }
std::string trial_label(const BenignRunResult& r) { return r.app; }

/// Shared shape of both trace_report overloads: one Chrome trace
/// document, trials kept on distinct (pid, tid) tracks by a per-trial
/// offset so the merged file still satisfies validate_trace_events.
template <typename Result>
Json trace_report_impl(const char* experiment,
                       const std::vector<Result>& results) {
  // Far above any real pid (ProcessIds are small and dense) so trial
  // blocks can never collide.
  constexpr std::uint64_t kTrialStride = 1u << 16;

  Json events = Json::array();
  std::uint64_t exported = 0;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    obs::TraceExportOptions options;
    options.pid_offset = i * kTrialStride;
    options.tid_offset = i * kTrialStride;
    options.process_label =
        trial_label(r) + " (trial " + std::to_string(i) + ")";
    obs::append_trace_events(events, r.trace, options);
    exported += r.trace.spans.size();
    recorded += r.trace.recorded;
    dropped += r.trace.dropped;
  }

  Json other = Json::object();
  other.set("tool", "cryptodrop")
      .set("experiment", experiment)
      .set("runs", results.size())
      .set("spans_exported", exported)
      .set("spans_recorded", recorded)
      .set("spans_dropped", dropped);

  Json j = Json::object();
  j.set("traceEvents", std::move(events))
      .set("displayTimeUnit", "ms")
      .set("otherData", std::move(other));
  return j;
}

}  // namespace

Json metrics_report(const std::vector<RansomwareRunResult>& results) {
  return metrics_report_impl("table1_campaign", results);
}

Json metrics_report(const std::vector<BenignRunResult>& results) {
  return metrics_report_impl("benign_suite", results);
}

Json trace_report(const std::vector<RansomwareRunResult>& results) {
  return trace_report_impl("table1_campaign", results);
}

Json trace_report(const std::vector<BenignRunResult>& results) {
  return trace_report_impl("benign_suite", results);
}

Json benign_report(const std::vector<BenignRunResult>& results) {
  std::size_t false_positives = 0;
  Json apps = Json::array();
  for (const BenignRunResult& r : results) {
    if (r.detected) ++false_positives;
    apps.push(to_json(r));
  }
  Json j = Json::object();
  j.set("experiment", "benign_suite")
      .set("applications", results.size())
      .set("false_positives", false_positives)
      .set("apps", std::move(apps));
  return j;
}

}  // namespace cryptodrop::harness
