#include "harness/table.hpp"

#include <algorithm>
#include <cstdio>

namespace cryptodrop::harness {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < row.size()) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string fmt_double(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string out(buf);
  if (digits == 1 && out.size() > 2 && out.ends_with(".0")) {
    out.resize(out.size() - 2);
  }
  return out;
}

std::string fmt_percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return std::string(buf);
}

}  // namespace cryptodrop::harness
