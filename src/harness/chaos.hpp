// Chaos campaigns: the experiment harness replayed over a faulted
// volume.
//
// Each trial gets its own FaultInjectionFilter stacked below the engine,
// seeded from the campaign's FaultPlan re-derived with the trial's own
// seed — so trials are independent of execution order and a parallel
// campaign is bit-identical to the serial one, exactly like the
// fault-free runner. Detection is judged strictly by engine suspension
// here: an injected denial halts a sample just like a suspension would,
// so the fault-free harness's "halted by denials" fallback would count
// the substrate's faults as the detector's work.
#pragma once

#include <cstdint>
#include <vector>

#include "harness/runner.hpp"
#include "vfs/fault_filter.hpp"

namespace cryptodrop::harness {

/// Knobs of one chaos campaign. Plain value type.
struct FaultCampaignOptions {
  /// Base fault schedule; each trial runs under plan.reseeded(<trial
  /// seed>), so the faults a sample sees depend only on the plan and
  /// that sample's own seed.
  vfs::FaultPlan plan;
  /// Samples tolerate this many consecutive denied attacks before
  /// giving up (RansomwareProfile::give_up_after_denials override).
  /// Under spurious injected denials a first-denial quitter would stop
  /// with near-zero files lost on its own — masking the detector — so
  /// chaos samples are configured more stubborn than the default 1.
  std::size_t sample_give_up_after_denials = 4;
};

/// One ransomware trial under faults: the sample (hardened with the
/// campaign's give-up tolerance) runs over a per-trial fault filter, the
/// filter's faults_injected_total counters are merged into the result's
/// metrics, and `detected` means the engine suspended the process —
/// nothing else. Deterministic in (options.plan, spec.seed). When
/// `trace.enabled`, the trial records spans (the fault filter shows up
/// as `vfs.filter.*` children named "fault_injection").
RansomwareRunResult run_ransomware_sample_faulted(
    const Environment& env, const sim::SampleSpec& spec,
    const core::ScoringConfig& config, const FaultCampaignOptions& options,
    const obs::TraceOptions& trace = {});

/// The zoo campaign under faults: one faulted trial per spec, results in
/// spec order, parallel per `runner` (bit-identical at any job count).
std::vector<RansomwareRunResult> run_campaign_faulted(
    const Environment& env, const std::vector<sim::SampleSpec>& specs,
    const core::ScoringConfig& config, const FaultCampaignOptions& options,
    const RunnerOptions& runner = {});

/// One benign trial under faults. The workload may be halted early by an
/// injected denial (benign apps do not retry); `detected` still means
/// engine suspension only. Fault stream depends on the workload's name
/// and `seed`, not on trial order.
BenignRunResult run_benign_workload_faulted(
    const Environment& env, const sim::BenignWorkload& workload,
    const core::ScoringConfig& config, std::uint64_t seed,
    const FaultCampaignOptions& options, const obs::TraceOptions& trace = {});

/// The benign suite under faults, results in workload order, parallel
/// per `runner`.
std::vector<BenignRunResult> run_benign_suite_faulted(
    const Environment& env, const std::vector<sim::BenignWorkload>& workloads,
    const core::ScoringConfig& config, std::uint64_t seed,
    const FaultCampaignOptions& options, const RunnerOptions& runner = {});

}  // namespace cryptodrop::harness
