// Daemon parity runner — the gate behind cryptodropd's core promise
// (docs/DAEMON.md "Parity contract"):
//
//   Running a workload through a live multi-tenant daemon produces a
//   per-tenant scoreboard *bit-identical* to running the same workload
//   through the in-process batch harness.
//
// Mechanics: each trial first runs in-process (the golden run) with a
// content-carrying vfs::TraceRecorder stacked below the engine, so the
// recorded trace is exactly the op stream the volume applied. The trial
// then replays through the daemon's control API — attach a tenant,
// register the golden run's processes, submit the recorded ops, drain,
// fetch `verdicts` — and the daemon's response line is compared byte for
// byte against the same serializer run over the golden scoreboard. Many
// trials replay concurrently, one tenant each, so the gate also proves
// tenant isolation under parallel load.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "harness/experiment.hpp"
#include "sim/benign/benign.hpp"
#include "sim/ransomware/ransomware.hpp"

namespace cryptodrop::harness {

/// One control-API round-trip: request line in, response line out.
using Transport = std::function<std::string(const std::string&)>;

/// Makes one Transport per replaying thread — an in-process
/// ControlDispatcher closure, or a fresh daemon::DaemonClient connection
/// (the socket smoke test), so the same gate runs over either transport.
using TransportFactory = std::function<Transport()>;

/// One trial's parity verdict.
struct DaemonParityTrial {
  std::string label;    ///< Sample family / benign app name.
  std::string tenant;   ///< Tenant id the replay ran under.
  bool golden_detected = false;  ///< The in-process run's verdict.
  bool match = false;   ///< Daemon response == golden bytes.
  std::size_t ops = 0;  ///< Trace entries shipped to the daemon.
  std::string golden_line;  ///< Expected `verdicts` response line.
  std::string daemon_line;  ///< Actual `verdicts` response line.
};

/// Aggregate outcome of a parity campaign.
struct DaemonParityReport {
  std::vector<DaemonParityTrial> trials;
  /// True when every trial's scoreboard matched byte for byte.
  [[nodiscard]] bool all_match() const {
    for (const DaemonParityTrial& t : trials) {
      if (!t.match) return false;
    }
    return !trials.empty();
  }
  /// Trials that diverged (empty on a green gate).
  [[nodiscard]] std::vector<const DaemonParityTrial*> mismatches() const {
    std::vector<const DaemonParityTrial*> out;
    for (const DaemonParityTrial& t : trials) {
      if (!t.match) out.push_back(&t);
    }
    return out;
  }
};

/// Parity-campaign knobs.
struct DaemonParityOptions {
  /// Replaying client threads (== concurrently attached tenants).
  std::size_t concurrent_tenants = 8;
  /// Trace entries per `submit` request (control-API batching).
  std::size_t ops_per_submit = 64;
};

/// Runs every sample and benign workload through the golden in-process
/// path, then replays all of them through the daemon behind
/// `transport_factory` with `options.concurrent_tenants` parallel
/// clients. The daemon must have been constructed with `config` as its
/// default scoring config and a clone-identical base volume
/// (`env.base_fs`) — the parity contract is only meaningful when both
/// sides start from the same bytes.
DaemonParityReport run_daemon_parity(
    const Environment& env, const std::vector<sim::SampleSpec>& samples,
    const std::vector<sim::BenignWorkload>& benign, std::uint64_t benign_seed,
    const core::ScoringConfig& config,
    const TransportFactory& transport_factory,
    const DaemonParityOptions& options = {});

}  // namespace cryptodrop::harness
