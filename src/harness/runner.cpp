#include "harness/runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/ranked_mutex.hpp"

namespace cryptodrop::harness {

std::size_t effective_jobs(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t count, const RunnerOptions& options,
                  const std::function<void(std::size_t)>& body) {
  const std::size_t jobs = std::min(effective_jobs(options.jobs), count);
  if (count == 0) return;

  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      body(i);
      if (options.progress) options.progress(i + 1, count);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  // Runner locks rank below every engine lock: the progress callback
  // may query an engine (snapshot, metrics) while it is held.
  common::RankedMutex<common::lockrank::kRunnerProgress> progress_mu;
  std::exception_ptr first_error;
  common::RankedMutex<common::lockrank::kRunnerError> error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        // Keep draining: a failed trial must not wedge the pool, and
        // index-addressed results stay well-defined for the survivors.
      }
      const std::size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options.progress) {
        std::lock_guard lock(progress_mu);
        options.progress(finished, count);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

namespace {

void validate_or_throw(const core::ScoringConfig& config, const char* what) {
  const Status valid = config.validate();
  if (!valid.is_ok()) {
    throw std::invalid_argument(std::string(what) + ": " + valid.to_string());
  }
}

}  // namespace

std::vector<RansomwareRunResult> run_campaign_parallel(
    const Environment& env, const std::vector<sim::SampleSpec>& specs,
    const core::ScoringConfig& config, const RunnerOptions& options) {
  validate_or_throw(config, "campaign config");
  std::vector<RansomwareRunResult> results(specs.size());
  parallel_for(specs.size(), options, [&](std::size_t i) {
    results[i] =
        run_ransomware_sample_filtered(env, specs[i], config, nullptr, options.trace);
  });
  return results;
}

std::vector<BenignRunResult> run_benign_suite_parallel(
    const Environment& env, const std::vector<sim::BenignWorkload>& workloads,
    const core::ScoringConfig& config, std::uint64_t seed,
    const RunnerOptions& options) {
  validate_or_throw(config, "benign-suite config");
  std::vector<BenignRunResult> results(workloads.size());
  parallel_for(workloads.size(), options, [&](std::size_t i) {
    results[i] = run_benign_workload_filtered(env, workloads[i], config, seed,
                                              nullptr, options.trace);
  });
  return results;
}

}  // namespace cryptodrop::harness
