#include "vfs/path.hpp"

#include <cctype>

namespace cryptodrop::vfs {

std::optional<std::string> normalize_path(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  std::size_t i = 0;
  while (i < raw.size()) {
    while (i < raw.size() && raw[i] == '/') ++i;
    const std::size_t start = i;
    while (i < raw.size() && raw[i] != '/') ++i;
    const std::string_view comp = raw.substr(start, i - start);
    if (comp.empty()) continue;
    if (comp == "." || comp == "..") return std::nullopt;
    if (comp.find('\0') != std::string_view::npos) return std::nullopt;
    if (!out.empty()) out.push_back('/');
    out.append(comp);
  }
  return out;
}

std::string path_join(std::string_view a, std::string_view b) {
  if (a.empty()) return std::string(b);
  if (b.empty()) return std::string(a);
  std::string out;
  out.reserve(a.size() + 1 + b.size());
  out.append(a);
  out.push_back('/');
  out.append(b);
  return out;
}

std::string path_parent(std::string_view path) {
  const std::size_t pos = path.rfind('/');
  if (pos == std::string_view::npos) return std::string();
  return std::string(path.substr(0, pos));
}

std::string_view path_filename(std::string_view path) {
  const std::size_t pos = path.rfind('/');
  if (pos == std::string_view::npos) return path;
  return path.substr(pos + 1);
}

std::string path_extension(std::string_view path) {
  const std::string_view name = path_filename(path);
  const std::size_t dot = name.rfind('.');
  if (dot == std::string_view::npos || dot == 0 || dot + 1 == name.size()) {
    return std::string();
  }
  std::string ext(name.substr(dot + 1));
  for (char& c : ext) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return ext;
}

std::size_t path_depth(std::string_view path) {
  if (path.empty()) return 0;
  std::size_t depth = 1;
  for (char c : path) {
    if (c == '/') ++depth;
  }
  return depth;
}

std::vector<std::string_view> path_components(std::string_view path) {
  std::vector<std::string_view> out;
  if (path.empty()) return out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = path.find('/', start);
    if (pos == std::string_view::npos) {
      out.push_back(path.substr(start));
      break;
    }
    out.push_back(path.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

bool path_is_under(std::string_view path, std::string_view dir) {
  if (dir.empty()) return true;
  if (path.size() < dir.size()) return false;
  if (path.substr(0, dir.size()) != dir) return false;
  return path.size() == dir.size() || path[dir.size()] == '/';
}

}  // namespace cryptodrop::vfs
