#include "vfs/fault_filter.hpp"

#include <stdexcept>
#include <string>

#include "vfs/filesystem.hpp"

namespace cryptodrop::vfs {

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::io_error: return "io_error";
    case FaultKind::access_denied: return "access_denied";
    case FaultKind::short_write: return "short_write";
    case FaultKind::delay_post: return "delay_post";
  }
  return "?";
}

FaultPlan FaultPlan::uniform(double rate, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  const FaultRates common{rate, rate / 4.0, 0.0, rate};
  plan.open = common;
  plan.read = common;
  plan.write = common;
  plan.write.short_write = rate;
  plan.truncate = common;
  plan.close = common;
  plan.remove = common;
  plan.rename = common;
  return plan;
}

FaultPlan FaultPlan::reseeded(std::uint64_t salt) const {
  FaultPlan plan = *this;
  // Two splitmix rounds decorrelate nearby (seed, salt) pairs — trial
  // seeds are often small consecutive integers.
  std::uint64_t state = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  splitmix64(state);
  plan.seed = splitmix64(state);
  return plan;
}

Status FaultPlan::validate() const {
  const struct {
    const FaultRates& rates;
    std::string_view op;
  } all[] = {{open, "open"},         {read, "read"},     {write, "write"},
             {truncate, "truncate"}, {close, "close"},   {remove, "remove"},
             {rename, "rename"}};
  for (const auto& entry : all) {
    const double probs[] = {entry.rates.io_error, entry.rates.access_denied,
                            entry.rates.short_write, entry.rates.delay_post};
    for (double p : probs) {
      if (!(p >= 0.0 && p <= 1.0)) {
        return Status(Errc::invalid_argument,
                      "fault probability for " + std::string(entry.op) +
                          " outside [0, 1]");
      }
    }
  }
  return Status::ok();
}

const FaultRates* FaultPlan::rates_for(OpType op) const {
  switch (op) {
    case OpType::open: return &open;
    case OpType::read: return &read;
    case OpType::write: return &write;
    case OpType::truncate: return &truncate;
    case OpType::close: return &close;
    case OpType::remove: return &remove;
    case OpType::rename: return &rename;
    case OpType::mkdir: return nullptr;
  }
  return nullptr;
}

FaultInjectionFilter::FaultInjectionFilter(FaultPlan plan)
    : plan_(plan), rng_(plan.seed) {
  if (Status s = plan_.validate(); !s.is_ok()) {
    throw std::invalid_argument("FaultPlan: " + s.to_string());
  }
  const FaultKind kinds[] = {FaultKind::io_error, FaultKind::access_denied,
                             FaultKind::short_write, FaultKind::delay_post};
  for (FaultKind kind : kinds) {
    m_faults_[static_cast<std::size_t>(kind)] = &metrics_.counter(
        "faults_injected_total." + std::string(fault_kind_name(kind)),
        "Faults injected by the fault-injection filter, by fault kind.",
        "faults");
  }
}

void FaultInjectionFilter::on_attach(FileSystem& fs) { fs_ = &fs; }

Status FaultInjectionFilter::pre_operation_mut(OperationEvent& event) {
  const FaultRates* rates = plan_.rates_for(event.op);
  if (rates == nullptr) return Status::ok();
  // Draw order is part of the replay contract: io_error, then denial,
  // then short write. Each op consumes the same number of Rng draws on
  // every replay of the same plan regardless of which fault fires, so
  // one injected fault never shifts the schedule of later ones.
  const bool hit_io = rng_.chance(rates->io_error);
  const bool hit_denied = rng_.chance(rates->access_denied);
  const bool hit_short = rng_.chance(rates->short_write);
  if (hit_io) {
    m_faults_[static_cast<std::size_t>(FaultKind::io_error)]->add();
    return Status(Errc::io_error, "injected I/O error");
  }
  if (hit_denied) {
    m_faults_[static_cast<std::size_t>(FaultKind::access_denied)]->add();
    return Status(Errc::access_denied, "injected denial");
  }
  if (hit_short && event.op == OpType::write && event.data.size() >= 2) {
    // Strict prefix: at least 1 byte survives, at least 1 is dropped.
    const std::uint64_t keep = rng_.uniform(1, event.data.size() - 1);
    event.data = event.data.first(static_cast<std::size_t>(keep));
    m_faults_[static_cast<std::size_t>(FaultKind::short_write)]->add();
  }
  return Status::ok();
}

void FaultInjectionFilter::post_operation(const OperationEvent& event,
                                          const Status& outcome) {
  (void)outcome;  // Completions are delayed whether the op succeeded or not.
  const FaultRates* rates = plan_.rates_for(event.op);
  if (rates == nullptr) return;
  if (rng_.chance(rates->delay_post)) {
    m_faults_[static_cast<std::size_t>(FaultKind::delay_post)]->add();
    if (fs_ != nullptr) fs_->advance_time(plan_.delay_micros);
  }
}

std::uint64_t FaultInjectionFilter::faults_injected() const {
  std::uint64_t total = 0;
  for (const obs::Counter* c : m_faults_) total += c->value();
  return total;
}

std::uint64_t FaultInjectionFilter::faults_injected(FaultKind kind) const {
  return m_faults_[static_cast<std::size_t>(kind)]->value();
}

obs::MetricsSnapshot FaultInjectionFilter::metrics_snapshot() const {
  return metrics_.snapshot();
}

}  // namespace cryptodrop::vfs
