#include "vfs/trace.hpp"

#include <charconv>
#include <map>

#include "common/hex.hpp"

namespace cryptodrop::vfs {

void TraceRecorder::post_operation(const OperationEvent& event, const Status& outcome) {
  if (!outcome.is_ok()) return;
  TraceEntry entry;
  entry.op = event.op;
  entry.pid = event.pid;
  entry.timestamp = event.timestamp;
  entry.path = event.path;
  entry.dest_path = event.dest_path;
  entry.open_mode = event.open_mode;
  entry.offset = event.offset;
  entry.length = event.op == OpType::read || event.op == OpType::write
                     ? event.data.size()
                     : event.length;
  entry.handle = event.handle;
  if (capture_content_ && event.op == OpType::write) {
    entry.data.assign(event.data.begin(), event.data.end());
  }
  entries_.push_back(std::move(entry));
}

namespace {

/// Paths may contain anything but newline in this VFS; escape the field
/// separator and newlines.
std::string escape_field(std::string_view s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '|': out += "\\p"; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::optional<std::string> unescape_field(std::string_view s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (++i >= s.size()) return std::nullopt;
    switch (s[i]) {
      case 'p': out.push_back('|'); break;
      case '\\': out.push_back('\\'); break;
      case 'n': out.push_back('\n'); break;
      default: return std::nullopt;
    }
  }
  return out;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<OpType> op_from_name(std::string_view name) {
  for (OpType op : {OpType::open, OpType::read, OpType::write, OpType::truncate,
                    OpType::close, OpType::remove, OpType::rename, OpType::mkdir}) {
    if (op_name(op) == name) return op;
  }
  return std::nullopt;
}

}  // namespace

std::string serialize_trace_entry(const TraceEntry& entry) {
  std::string out;
  out += std::string(op_name(entry.op));
  out += '|';
  out += std::to_string(entry.pid);
  out += '|';
  out += std::to_string(entry.timestamp);
  out += '|';
  out += escape_field(entry.path);
  out += '|';
  out += escape_field(entry.dest_path);
  out += '|';
  out += std::to_string(entry.open_mode);
  out += '|';
  out += std::to_string(entry.offset);
  out += '|';
  out += std::to_string(entry.length);
  out += '|';
  out += std::to_string(entry.handle);
  out += '|';
  out += hex_encode(ByteView(entry.data));
  return out;
}

std::string serialize_trace(const std::vector<TraceEntry>& entries) {
  std::string out = "# cryptodrop trace v2\n";
  for (const TraceEntry& entry : entries) {
    out += serialize_trace_entry(entry);
    out += '\n';
  }
  return out;
}

std::optional<TraceEntry> parse_trace_entry(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t field_start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    // '|' is escaped inside fields as "\p", so raw '|' is a separator.
    if (i == line.size() || line[i] == '|') {
      fields.push_back(line.substr(field_start, i - field_start));
      field_start = i + 1;
    }
  }
  // v1 lines have 9 fields; v2 inserts `handle` before the payload.
  const bool v2 = fields.size() == 10;
  if (fields.size() != 9 && !v2) return std::nullopt;

  TraceEntry entry;
  const auto op = op_from_name(fields[0]);
  const auto pid = parse_u64(fields[1]);
  const auto timestamp = parse_u64(fields[2]);
  const auto path = unescape_field(fields[3]);
  const auto dest = unescape_field(fields[4]);
  const auto mode = parse_u64(fields[5]);
  const auto offset = parse_u64(fields[6]);
  const auto length = parse_u64(fields[7]);
  const auto handle = v2 ? parse_u64(fields[8]) : std::optional<std::uint64_t>(0);
  const auto data = hex_decode(fields[v2 ? 9 : 8]);
  if (!op || !pid || !timestamp || !path || !dest || !mode || !offset ||
      !length || !handle || !data) {
    return std::nullopt;
  }
  entry.op = *op;
  entry.pid = static_cast<ProcessId>(*pid);
  entry.timestamp = *timestamp;
  entry.path = *path;
  entry.dest_path = *dest;
  entry.open_mode = static_cast<unsigned>(*mode);
  entry.offset = *offset;
  entry.length = *length;
  entry.handle = *handle;
  entry.data = *data;
  return entry;
}

std::optional<std::vector<TraceEntry>> parse_trace(std::string_view text) {
  std::vector<TraceEntry> entries;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    std::optional<TraceEntry> entry = parse_trace_entry(line);
    if (!entry) return std::nullopt;
    entries.push_back(std::move(*entry));
  }
  return entries;
}

ReplayResult replay_trace(FileSystem& fs, const std::vector<TraceEntry>& entries) {
  ReplayResult result;
  std::map<ProcessId, ProcessId> pid_map;
  // Open handles are not serialized; each read/write replays through a
  // short-lived handle positioned at the recorded offset.
  auto replay_pid = [&](ProcessId original) {
    auto it = pid_map.find(original);
    if (it != pid_map.end()) return it->second;
    const ProcessId fresh =
        fs.register_process("replay_" + std::to_string(original));
    pid_map.emplace(original, fresh);
    return fresh;
  };

  std::uint64_t last_timestamp = 0;
  for (const TraceEntry& entry : entries) {
    if (entry.timestamp > last_timestamp) {
      // Preserve inter-op pacing (rate-indicator studies depend on it).
      const std::uint64_t gap = entry.timestamp - last_timestamp;
      if (gap > FileSystem::kOpCostMicros) {
        fs.advance_time(gap - FileSystem::kOpCostMicros);
      }
      last_timestamp = entry.timestamp;
    }
    const ProcessId pid = replay_pid(entry.pid);
    Status status = Status::ok();
    switch (entry.op) {
      case OpType::mkdir:
        status = fs.mkdir(pid, entry.path);
        break;
      case OpType::open:
      case OpType::close:
        // Handle lifetimes are reconstructed around reads/writes below;
        // bare opens and closes carry no replayable state. A recorded
        // truncating open must still truncate.
        if (entry.op == OpType::open && (entry.open_mode & kTruncate) != 0) {
          auto h = fs.open(pid, entry.path, entry.open_mode);
          if (h) status = fs.close(pid, h.value());
          else status = h.status();
        }
        break;
      case OpType::read: {
        auto h = fs.open(pid, entry.path, kRead);
        if (!h) {
          status = h.status();
          break;
        }
        (void)fs.seek(pid, h.value(), entry.offset);
        auto data = fs.read(pid, h.value(), static_cast<std::size_t>(entry.length));
        status = data ? fs.close(pid, h.value()) : data.status();
        if (!data) (void)fs.close(pid, h.value());
        break;
      }
      case OpType::write: {
        auto h = fs.open(pid, entry.path, kWrite | kCreate);
        if (!h) {
          status = h.status();
          break;
        }
        (void)fs.seek(pid, h.value(), entry.offset);
        // Metadata-only traces have no payload: replay zeros of the
        // recorded length (all a content-free log can reconstruct).
        Bytes payload = entry.data;
        if (payload.size() != entry.length) {
          payload.assign(static_cast<std::size_t>(entry.length), 0);
        }
        status = fs.write(pid, h.value(), ByteView(payload));
        Status closed = fs.close(pid, h.value());
        if (status.is_ok()) status = closed;
        break;
      }
      case OpType::truncate: {
        auto h = fs.open(pid, entry.path, kWrite);
        if (!h) {
          status = h.status();
          break;
        }
        status = fs.truncate(pid, h.value(), entry.length);
        Status closed = fs.close(pid, h.value());
        if (status.is_ok()) status = closed;
        break;
      }
      case OpType::remove:
        status = fs.remove(pid, entry.path);
        break;
      case OpType::rename:
        status = fs.rename(pid, entry.path, entry.dest_path);
        break;
    }
    if (status.is_ok()) {
      ++result.applied;
    } else {
      ++result.failed;
    }
  }
  return result;
}

ProcessId ExactReplayer::live_pid(ProcessId recorded) {
  auto it = pids_.find(recorded);
  if (it != pids_.end()) return it->second;
  const ProcessId fresh =
      fs_->register_process("replay_" + std::to_string(recorded));
  pids_.emplace(recorded, fresh);
  return fresh;
}

ExactReplayer::Outcome ExactReplayer::apply(const TraceEntry& entry) {
  FileSystem& fs = *fs_;
  // Clock sync: the recorded timestamp was stamped *after* the op's own
  // kOpCostMicros advance, so park the clock kOpCostMicros short of it.
  // Gaps cover both workload think-time and ops that advanced the
  // original clock without being recorded (engine-denied attempts).
  const std::uint64_t now = fs.now_micros();
  if (entry.timestamp > now + FileSystem::kOpCostMicros) {
    fs.advance_time(entry.timestamp - FileSystem::kOpCostMicros - now);
  }

  if (entry.handle != 0 && dead_.count(entry.handle) != 0) {
    if (entry.op == OpType::close) dead_.erase(entry.handle);
    return Outcome::skipped_dead_handle;
  }

  const ProcessId pid = live_pid(entry.pid);
  Status status = Status::ok();
  switch (entry.op) {
    case OpType::mkdir:
      status = fs.mkdir(pid, entry.path);
      break;
    case OpType::open: {
      auto h = fs.open(pid, entry.path, entry.open_mode);
      if (!h) {
        // The open failed here although it succeeded when recorded —
        // later ops on this handle cannot replay either.
        kill_handle(entry.handle);
        status = h.status();
        break;
      }
      if (entry.handle != 0) handles_[entry.handle] = h.value();
      break;
    }
    case OpType::read:
    case OpType::write:
    case OpType::truncate:
    case OpType::close: {
      auto it = handles_.find(entry.handle);
      if (it == handles_.end()) return Outcome::skipped_dead_handle;
      const Handle h = it->second;
      if (entry.op == OpType::read) {
        // seek is unfiltered (no event, no clock cost): position the
        // handle exactly where the recorded read started.
        (void)fs.seek(pid, h, entry.offset);
        auto data = fs.read(pid, h, static_cast<std::size_t>(entry.length));
        status = data ? Status::ok() : data.status();
      } else if (entry.op == OpType::write) {
        (void)fs.seek(pid, h, entry.offset);
        status = fs.write(pid, h, ByteView(entry.data));
      } else if (entry.op == OpType::truncate) {
        status = fs.truncate(pid, h, entry.length);
      } else {
        status = fs.close(pid, h);
        handles_.erase(it);
      }
      break;
    }
    case OpType::remove:
      status = fs.remove(pid, entry.path);
      break;
    case OpType::rename:
      status = fs.rename(pid, entry.path, entry.dest_path);
      break;
  }
  return status.is_ok() ? Outcome::applied : Outcome::failed;
}

}  // namespace cryptodrop::vfs
