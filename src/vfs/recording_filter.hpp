// A filter that records the operation stream — used by tests, the
// harness's per-run telemetry (directories touched, extensions accessed
// for Figures 4 and 5), and as a worked example of the Filter API.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "vfs/filter.hpp"

namespace cryptodrop::vfs {

/// One recorded operation (a compact copy of the event; `data` is not
/// retained, only its size).
struct RecordedOp {
  OpType op{};
  ProcessId pid{};
  std::string path;
  std::string dest_path;
  FileId file_id = kNoFile;
  std::uint64_t bytes = 0;
  bool succeeded = false;
};

/// Observe-only filter: copies every post-operation event into a list
/// tests and the harness can query afterwards.
class RecordingFilter : public Filter {
 public:
  /// Always allows; recording happens in the post callback.
  Verdict pre_operation(const OperationEvent& event) override;
  /// Appends one RecordedOp per completed operation.
  void post_operation(const OperationEvent& event, const Status& outcome) override;
  /// Stable name used in spans and test output.
  [[nodiscard]] std::string_view filter_name() const override {
    return "recorder";
  }

  /// Every recorded operation, in dispatch order.
  [[nodiscard]] const std::vector<RecordedOp>& ops() const { return ops_; }
  /// Drops the recording (between experiment phases).
  void clear() { ops_.clear(); }

  /// Paths of files a given process read (successfully).
  [[nodiscard]] std::vector<std::string> paths_read_by(ProcessId pid) const;
  /// Paths of files a given process wrote, truncated, removed, or renamed.
  [[nodiscard]] std::vector<std::string> paths_modified_by(ProcessId pid) const;
  /// Distinct directories containing any file the process read or wrote.
  [[nodiscard]] std::set<std::string> directories_touched_by(ProcessId pid) const;

 private:
  std::vector<RecordedOp> ops_;
};

}  // namespace cryptodrop::vfs
