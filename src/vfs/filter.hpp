// Filesystem filter interface — the analogue of a Windows minifilter.
//
// CryptoDrop's kernel driver "interposes on calls between processes and
// the filesystem driver" (paper Fig. 2): every operation produces a
// pre-operation callback (which may deny it — this is how a suspended
// process is kept from touching the disk) and a post-operation callback
// carrying the outcome. Filters run in attach order for pre callbacks and
// in reverse order for post callbacks, mirroring filter-manager altitude
// stacking; the paper notes the ordering relative to other drivers does
// not matter for CryptoDrop.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace cryptodrop::vfs {

class FileSystem;

using FileId = std::uint64_t;     ///< Stable across rename/move (inode analogue).
using ProcessId = std::uint32_t;  ///< Assigned by FileSystem::register_process.
using HandleId = std::uint64_t;

inline constexpr FileId kNoFile = 0;

/// Open-mode bit flags.
enum OpenMode : unsigned {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kTruncate = 1u << 2,  ///< Clear existing content at open (implies kWrite).
  kCreate = 1u << 3,    ///< Create if missing (implies kWrite).
};

/// The operation kinds a filter can observe or deny.
enum class OpType : std::uint8_t {
  open,
  read,
  write,
  truncate,
  close,
  remove,
  rename,
  mkdir,
};

/// One filesystem operation as seen by the filter stack.
///
/// Field validity by op:
///  - open:    path, file_id (kNoFile when creating), open_mode;
///             `handle` = the handle created (assigned during apply, so
///             it is 0 in pre callbacks and set in post callbacks)
///  - read:    path, file_id, handle, offset; `data` = bytes read (post only)
///  - write:   path, file_id, handle, offset, `data` = bytes to be written;
///             `length` = bytes the caller requested. A stacked filter may
///             shrink `data` to a prefix in its pre callback (a short
///             write): the filesystem applies, and post callbacks see,
///             only the surviving `data` bytes
///  - truncate:path, file_id, handle, length = new size
///  - close:   path, file_id, handle, wrote = any write/truncate happened
///             on the handle, wrote_bytes = total bytes written through it
///  - remove:  path, file_id
///  - rename:  path (source), file_id, dest_path, dest_file_id (kNoFile
///             when the destination does not exist / is not replaced)
///  - mkdir:   path
struct OperationEvent {
  OpType op{};
  ProcessId pid{};
  /// Virtual-clock timestamp (µs) at which the operation was issued.
  std::uint64_t timestamp = 0;
  std::string process_name;
  std::string path;
  FileId file_id = kNoFile;
  unsigned open_mode = 0;
  /// Handle the operation ran through (0 for handle-less ops). For open,
  /// the handle being created — recorded traces use it to reconstruct
  /// handle lifetimes exactly on replay (vfs/trace.hpp ExactReplayer).
  HandleId handle = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  ByteView data{};
  std::string dest_path;
  FileId dest_file_id = kNoFile;
  bool wrote = false;
  std::uint64_t wrote_bytes = 0;
};

/// Pre-operation decision: deny short-circuits the dispatch.
enum class Verdict : std::uint8_t { allow, deny };

/// Base class for all filters. Callbacks default to allow/no-op so a
/// filter overrides only what it watches. Filters may read file content
/// out-of-band through the FileSystem's unfiltered accessors (the paper's
/// driver does the same "using the kernel code").
class Filter {
 public:
  virtual ~Filter() = default;

  /// Called before the operation is applied. Returning deny fails the
  /// operation with Errc::access_denied and suppresses post callbacks.
  virtual Verdict pre_operation(const OperationEvent& event) {
    (void)event;
    return Verdict::allow;
  }

  /// The mutating/full-status variant of the pre callback — what the
  /// filter manager actually invokes. A filter may fail the operation
  /// with any status (not just access_denied; a fault filter returns
  /// io_error) and may mutate the event within its documented contract
  /// (shrinking a write's `data` to a prefix models a short write).
  /// Default: bridges to pre_operation(), so ordinary filters override
  /// only the const form.
  virtual Status pre_operation_mut(OperationEvent& event) {
    if (pre_operation(event) == Verdict::deny) {
      return Status(Errc::access_denied, "denied by filter");
    }
    return Status::ok();
  }

  /// Called after the operation was applied (success or failure).
  virtual void post_operation(const OperationEvent& event, const Status& outcome) {
    (void)event;
    (void)outcome;
  }

  /// Invoked when the filter is attached; gives the filter its unfiltered
  /// view of the volume.
  virtual void on_attach(FileSystem& fs) { (void)fs; }

  /// Short stable identifier for observability: the `filter` arg on this
  /// filter's per-operation spans (obs/span.hpp) and log lines. Must
  /// return a view with static storage duration.
  [[nodiscard]] virtual std::string_view filter_name() const {
    return "filter";
  }
};

/// Short mnemonic for logs ("open", "write", ...).
inline std::string_view op_name(OpType op) {
  switch (op) {
    case OpType::open: return "open";
    case OpType::read: return "read";
    case OpType::write: return "write";
    case OpType::truncate: return "truncate";
    case OpType::close: return "close";
    case OpType::remove: return "remove";
    case OpType::rename: return "rename";
    case OpType::mkdir: return "mkdir";
  }
  return "?";
}

}  // namespace cryptodrop::vfs
