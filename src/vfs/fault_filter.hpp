// Deterministic fault injection for the filter stack.
//
// The paper's detector lives in the kernel I/O path, where operations
// fail constantly: sharing violations, short writes, AV filters racing
// for the same file, transient device errors. The engine must keep its
// measurements honest on that substrate — reputation points may only be
// assessed for operations that actually happened. FaultInjectionFilter
// makes the hostile substrate reproducible: stacked below the engine
// (attached after it), it fails, truncates, or delays operations with
// per-op-type probabilities drawn from a seeded Rng, so every chaos
// campaign replays bit-identically from its FaultPlan.
//
// Fault classes (the `faults_injected_total.<fault>` metric family):
//  * io_error      — the op fails in pre with Errc::io_error; the engine
//                    sees the failed outcome in its post callback and
//                    must not score it.
//  * access_denied — a spurious denial, indistinguishable (by status)
//                    from a suspension-driven denial by another filter.
//  * short_write   — writes only: event.data is shrunk to a strict
//                    prefix, the op succeeds, and post callbacks carry
//                    the byte count that actually hit the disk.
//  * delay_post    — the post callback stalls the virtual clock by
//                    FaultPlan::delay_micros (a slow lower filter),
//                    stretching the inter-op timing the burst-rate
//                    indicator measures.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "vfs/filter.hpp"

namespace cryptodrop::vfs {

/// Which fault a FaultInjectionFilter injected (metric label / log tag).
enum class FaultKind : std::uint8_t {
  io_error,
  access_denied,
  short_write,
  delay_post,
};

/// Number of FaultKind values (array sizing).
inline constexpr std::size_t kFaultKindCount = 4;

/// Stable lowercase label for a fault kind ("io_error", "short_write", ...).
std::string_view fault_kind_name(FaultKind kind);

/// Per-op-type fault probabilities, each in [0, 1]. short_write only
/// applies to write operations (other ops have nothing to truncate).
struct FaultRates {
  double io_error = 0.0;       ///< Fail the op in pre with Errc::io_error.
  double access_denied = 0.0;  ///< Fail the op in pre with a spurious denial.
  double short_write = 0.0;    ///< Shrink event.data to a strict prefix.
  double delay_post = 0.0;     ///< Stall the post callback (virtual clock).
};

/// The seeded, replayable schedule of one FaultInjectionFilter: which
/// operation types fault, how often, and the Rng stream deciding when.
/// Plain value type — copy freely; same plan, same op sequence => same
/// injected faults, bit for bit.
struct FaultPlan {
  /// Seed of the filter's private Rng stream. Derive per-trial seeds
  /// with reseeded() so parallel campaigns stay order-independent.
  std::uint64_t seed = 0;
  /// Virtual-clock stall applied per delayed post callback.
  std::uint64_t delay_micros = 500;

  FaultRates open;      ///< Faults for open operations.
  FaultRates read;      ///< Faults for read operations.
  FaultRates write;     ///< Faults for write operations (incl. short writes).
  FaultRates truncate;  ///< Faults for truncate operations.
  FaultRates close;     ///< Faults for close operations (a lost measurement
                        ///< window: the engine evaluates files at close).
  FaultRates remove;    ///< Faults for remove operations.
  FaultRates rename;    ///< Faults for rename operations.

  /// The canonical chaos-campaign plan: every fallible op gets io_error,
  /// short_write (writes) and delay_post at `rate`; spurious denials run
  /// at a quarter of `rate`, because a denial is the engine's suspension
  /// signal — a substrate that denies everything makes every process
  /// look suspended, which tests the samples' patience, not the engine.
  static FaultPlan uniform(double rate, std::uint64_t seed);

  /// This plan with its Rng stream re-derived for one trial: mixes
  /// `salt` (e.g. the sample spec's seed) into `seed`. Deterministic and
  /// independent of trial execution order.
  [[nodiscard]] FaultPlan reseeded(std::uint64_t salt) const;

  /// Rejects probabilities outside [0, 1] (invalid_argument status).
  [[nodiscard]] Status validate() const;

  /// The rates governing `op`, or nullptr when `op` is never faulted
  /// (mkdir — namespace-only, nothing to lose).
  [[nodiscard]] const FaultRates* rates_for(OpType op) const;
};

/// A vfs::Filter that injects FaultPlan-scheduled faults. Attach it
/// *after* the engine so the engine observes every injected failure in
/// its post callbacks (the fault models the storage stack below the
/// detector's altitude). One filter serves one (single-threaded) volume:
/// the fault Rng is intentionally unsynchronized, like every simulator
/// in this repo — parallel campaigns give each trial its own filter.
class FaultInjectionFilter : public Filter {
 public:
  /// Throws std::invalid_argument when `plan.validate()` fails.
  explicit FaultInjectionFilter(FaultPlan plan);

  /// Draws this operation's faults: may fail it (io_error / spurious
  /// denial) or shrink a write to a short write.
  Status pre_operation_mut(OperationEvent& event) override;
  /// Draws the delay_post fault: stalls the virtual clock, modeling a
  /// slow lower filter completing the request late.
  void post_operation(const OperationEvent& event, const Status& outcome) override;
  /// Records the owning filesystem (delay_post needs its clock).
  void on_attach(FileSystem& fs) override;
  /// Span/log identity ("fault_injection" child spans in traces).
  [[nodiscard]] std::string_view filter_name() const override {
    return "fault_injection";
  }

  /// The plan this filter was built with (immutable).
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// Total faults injected so far, across all kinds.
  [[nodiscard]] std::uint64_t faults_injected() const;
  /// Faults injected of one kind.
  [[nodiscard]] std::uint64_t faults_injected(FaultKind kind) const;
  /// The filter's `faults_injected_total.<fault>` counters, snapshotted.
  /// Merge into an engine's snapshot to report a trial's full picture.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;

 private:
  FaultPlan plan_;
  Rng rng_;
  FileSystem* fs_ = nullptr;
  mutable obs::MetricsRegistry metrics_;
  std::array<obs::Counter*, kFaultKindCount> m_faults_{};
};

}  // namespace cryptodrop::vfs
