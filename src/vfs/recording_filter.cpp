#include "vfs/recording_filter.hpp"

#include "vfs/path.hpp"

namespace cryptodrop::vfs {

Verdict RecordingFilter::pre_operation(const OperationEvent& event) {
  (void)event;
  return Verdict::allow;
}

void RecordingFilter::post_operation(const OperationEvent& event, const Status& outcome) {
  RecordedOp rec;
  rec.op = event.op;
  rec.pid = event.pid;
  rec.path = event.path;
  rec.dest_path = event.dest_path;
  rec.file_id = event.file_id;
  rec.bytes = event.op == OpType::read || event.op == OpType::write
                  ? event.data.size()
                  : event.wrote_bytes;
  rec.succeeded = outcome.is_ok();
  ops_.push_back(std::move(rec));
}

std::vector<std::string> RecordingFilter::paths_read_by(ProcessId pid) const {
  std::vector<std::string> out;
  for (const RecordedOp& rec : ops_) {
    if (rec.pid == pid && rec.op == OpType::read && rec.succeeded) {
      out.push_back(rec.path);
    }
  }
  return out;
}

std::vector<std::string> RecordingFilter::paths_modified_by(ProcessId pid) const {
  std::vector<std::string> out;
  for (const RecordedOp& rec : ops_) {
    if (rec.pid != pid || !rec.succeeded) continue;
    switch (rec.op) {
      case OpType::write:
      case OpType::truncate:
      case OpType::remove:
      case OpType::rename:
        out.push_back(rec.path);
        break;
      default:
        break;
    }
  }
  return out;
}

std::set<std::string> RecordingFilter::directories_touched_by(ProcessId pid) const {
  std::set<std::string> out;
  for (const RecordedOp& rec : ops_) {
    if (rec.pid != pid || !rec.succeeded) continue;
    switch (rec.op) {
      case OpType::read:
      case OpType::write:
      case OpType::remove:
        out.insert(path_parent(rec.path));
        break;
      case OpType::rename:
        out.insert(path_parent(rec.path));
        out.insert(path_parent(rec.dest_path));
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace cryptodrop::vfs
