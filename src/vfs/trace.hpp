// Operation-trace recording and replay.
//
// Naming note: this header records and replays the *operations
// themselves* (an input log for §V-F replay experiments). It is NOT the
// span tracer — obs/span.hpp ("span tracing") records where wall-clock
// time goes *inside* each operation's causal chain and exports Chrome
// trace-event JSON. See docs/OBSERVABILITY.md for the distinction.
//
// Motivated by the paper's §V-F observation that CryptoDrop cannot be
// evaluated on passively collected activity logs: "techniques used in
// dynamic malware analysis (e.g., passively observing benign activity on
// a system and running the detector on it later) will not work since
// CryptoDrop needs to measure the user's documents before and after each
// change."
//
// The TraceRecorder can capture either a *content-carrying* trace
// (written bytes included — enough information to reproduce every
// engine measurement on replay) or a *metadata-only* trace (op, path,
// sizes — what a typical syscall logger keeps). Replaying the former
// against a clone of the original volume reproduces detection;
// replaying the latter demonstrably loses indicators. The text format
// is line-based and diff-friendly.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/filter.hpp"

namespace cryptodrop::vfs {

/// One recorded operation, replayable.
struct TraceEntry {
  OpType op{};
  ProcessId pid = 0;
  std::uint64_t timestamp = 0;
  std::string path;
  std::string dest_path;
  unsigned open_mode = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  /// Handle the operation ran through (0 for handle-less ops and for
  /// traces recorded before the v2 format). Lets ExactReplayer
  /// reconstruct handle lifetimes instead of re-opening per op.
  HandleId handle = 0;
  /// Written bytes (empty in metadata-only traces or for non-writes).
  Bytes data;
};

/// A filter that appends successful operations to a trace.
class TraceRecorder : public Filter {
 public:
  /// `capture_content` = content-carrying trace (write payloads kept).
  explicit TraceRecorder(bool capture_content)
      : capture_content_(capture_content) {}

  /// Appends one entry per successful filtered operation.
  void post_operation(const OperationEvent& event, const Status& outcome) override;
  /// Stable name used in spans and test output.
  [[nodiscard]] std::string_view filter_name() const override {
    return "op_recorder";
  }

  /// Everything recorded so far, in dispatch order.
  [[nodiscard]] const std::vector<TraceEntry>& entries() const { return entries_; }
  /// Drops the recording (between experiment phases).
  void clear() { entries_.clear(); }

 private:
  bool capture_content_;
  std::vector<TraceEntry> entries_;
};

/// Serializes one entry as a single line (no trailing newline) — the
/// unit the daemon control API ships ops in.
std::string serialize_trace_entry(const TraceEntry& entry);

/// Parses one serialized line (v1's 9 fields or v2's 10; the missing v1
/// handle field reads as 0). Returns nullopt on malformed input.
std::optional<TraceEntry> parse_trace_entry(std::string_view line);

/// Serializes a trace to the line-based text format.
std::string serialize_trace(const std::vector<TraceEntry>& entries);

/// Parses a serialized trace. Returns nullopt on malformed input.
std::optional<std::vector<TraceEntry>> parse_trace(std::string_view text);

/// Outcome of a replay.
struct ReplayResult {
  std::size_t applied = 0;
  std::size_t failed = 0;  ///< Ops whose replay returned an error.
};

/// Replays a trace against `fs`, attributing every operation to a fresh
/// "replayer" process per original pid (so per-process analysis keyed on
/// the replayed volume still separates actors). Metadata-only traces
/// replay writes as zero-filled payloads of the recorded length — the
/// best a content-free log can do, and exactly why it is not enough.
ReplayResult replay_trace(FileSystem& fs, const std::vector<TraceEntry>& entries);

/// Replays a *content-carrying, handle-carrying* trace exactly: handles
/// are kept open across entries (mapped recorded id -> live handle),
/// reads/writes are positioned with unfiltered seeks, and the virtual
/// clock is advanced so every replayed operation is stamped with its
/// recorded timestamp. Against an identical base volume this reproduces
/// the original filtered event stream bit-for-bit — the property the
/// daemon's verdict-parity gate rests on (docs/DAEMON.md).
///
/// Single-threaded, like the FileSystem it drives.
class ExactReplayer {
 public:
  /// Replays onto `fs` (non-owning; must outlive the replayer).
  explicit ExactReplayer(FileSystem& fs) : fs_(&fs) {}

  /// Pre-maps a recorded pid to a live pid (the daemon replays the
  /// original spawn sequence first). Unmapped pids are auto-registered
  /// as "replay_<pid>" on first use.
  void map_pid(ProcessId recorded, ProcessId live) { pids_[recorded] = live; }

  /// What happened to one replayed entry.
  enum class Outcome : std::uint8_t {
    applied,             ///< Operation ran and succeeded.
    failed,              ///< Operation ran and returned an error.
    skipped_dead_handle  ///< Entry referenced a handle whose open was
                         ///< dropped upstream (admission-control shed).
  };

  /// Replays one entry (clock sync + dispatch). Entries must arrive in
  /// recorded order.
  Outcome apply(const TraceEntry& entry);

  /// Marks a recorded handle dead without replaying its open — the
  /// daemon calls this when admission control sheds an open, so the
  /// handle's later reads/close skip instead of failing.
  void kill_handle(HandleId recorded) {
    if (recorded != 0) dead_.insert(recorded);
  }

 private:
  /// Live pid for a recorded pid (registering a stand-in on miss).
  ProcessId live_pid(ProcessId recorded);

  FileSystem* fs_;
  std::map<ProcessId, ProcessId> pids_;
  std::map<HandleId, Handle> handles_;
  std::set<HandleId> dead_;
};

}  // namespace cryptodrop::vfs
