// Operation-trace recording and replay.
//
// Naming note: this header records and replays the *operations
// themselves* (an input log for §V-F replay experiments). It is NOT the
// span tracer — obs/span.hpp ("span tracing") records where wall-clock
// time goes *inside* each operation's causal chain and exports Chrome
// trace-event JSON. See docs/OBSERVABILITY.md for the distinction.
//
// Motivated by the paper's §V-F observation that CryptoDrop cannot be
// evaluated on passively collected activity logs: "techniques used in
// dynamic malware analysis (e.g., passively observing benign activity on
// a system and running the detector on it later) will not work since
// CryptoDrop needs to measure the user's documents before and after each
// change."
//
// The TraceRecorder can capture either a *content-carrying* trace
// (written bytes included — enough information to reproduce every
// engine measurement on replay) or a *metadata-only* trace (op, path,
// sizes — what a typical syscall logger keeps). Replaying the former
// against a clone of the original volume reproduces detection;
// replaying the latter demonstrably loses indicators. The text format
// is line-based and diff-friendly.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/filter.hpp"

namespace cryptodrop::vfs {

/// One recorded operation, replayable.
struct TraceEntry {
  OpType op{};
  ProcessId pid = 0;
  std::uint64_t timestamp = 0;
  std::string path;
  std::string dest_path;
  unsigned open_mode = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  /// Written bytes (empty in metadata-only traces or for non-writes).
  Bytes data;
};

/// A filter that appends successful operations to a trace.
class TraceRecorder : public Filter {
 public:
  /// `capture_content` = content-carrying trace (write payloads kept).
  explicit TraceRecorder(bool capture_content)
      : capture_content_(capture_content) {}

  void post_operation(const OperationEvent& event, const Status& outcome) override;
  [[nodiscard]] std::string_view filter_name() const override {
    return "op_recorder";
  }

  [[nodiscard]] const std::vector<TraceEntry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

 private:
  bool capture_content_;
  std::vector<TraceEntry> entries_;
};

/// Serializes a trace to the line-based text format.
std::string serialize_trace(const std::vector<TraceEntry>& entries);

/// Parses a serialized trace. Returns nullopt on malformed input.
std::optional<std::vector<TraceEntry>> parse_trace(std::string_view text);

/// Outcome of a replay.
struct ReplayResult {
  std::size_t applied = 0;
  std::size_t failed = 0;  ///< Ops whose replay returned an error.
};

/// Replays a trace against `fs`, attributing every operation to a fresh
/// "replayer" process per original pid (so per-process analysis keyed on
/// the replayed volume still separates actors). Metadata-only traces
/// replay writes as zero-filled payloads of the recorded length — the
/// best a content-free log can do, and exactly why it is not enough.
ReplayResult replay_trace(FileSystem& fs, const std::vector<TraceEntry>& entries);

}  // namespace cryptodrop::vfs
