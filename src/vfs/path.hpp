// Path handling for the in-memory filesystem.
//
// Paths are '/'-separated, relative to the filesystem root, with no
// leading or trailing slash; the root itself is the empty string. This is
// deliberately simpler than Windows paths — the analysis engine only needs
// a stable name hierarchy, and normalizing at the boundary keeps every
// internal comparison a plain string compare.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cryptodrop::vfs {

/// Normalizes `raw`: collapses repeated '/', strips leading/trailing '/'.
/// Returns nullopt for components that are empty after splitting, "." or
/// "..", or for embedded NULs — there is no cwd and no traversal.
std::optional<std::string> normalize_path(std::string_view raw);

/// Joins two normalized paths. Either side may be the root ("").
std::string path_join(std::string_view a, std::string_view b);

/// Parent of a normalized path ("" for top-level names and the root).
std::string path_parent(std::string_view path);

/// Final component ("" for the root).
std::string_view path_filename(std::string_view path);

/// Lower-cased extension without the dot ("" when absent). "report.PDF"
/// yields "pdf".
std::string path_extension(std::string_view path);

/// Number of components (root = 0).
std::size_t path_depth(std::string_view path);

/// Splits into components; root yields an empty vector.
std::vector<std::string_view> path_components(std::string_view path);

/// True when `path` equals `dir` or lies beneath it.
bool path_is_under(std::string_view path, std::string_view dir);

}  // namespace cryptodrop::vfs
