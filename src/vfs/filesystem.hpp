// In-memory filesystem with a minifilter-style interposition stack.
//
// This is the substrate standing in for NTFS + the Windows filter manager
// in the paper's architecture (Fig. 2). Key properties the analysis
// engine depends on:
//
//  * every namespace/data operation is attributed to a ProcessId and
//    flows through the attached filters (pre: may deny; post: observes);
//  * each file has a stable FileId that survives rename/move — the paper
//    stresses that "the state of the file must be carefully tracked each
//    time a file is moved" (Class B/C ransomware);
//  * file content is copy-on-write (shared_ptr<const Bytes>), so cloning
//    a populated volume for the next experiment run is O(#files) pointer
//    copies, replacing the paper's VM snapshot revert;
//  * read-only files refuse writes and deletion (the GPcode sample in
//    §V-C was "uniquely unable to work around" read-only test files).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "vfs/filter.hpp"
#include "vfs/path.hpp"

namespace cryptodrop::obs {
class SpanTracer;
}  // namespace cryptodrop::obs

namespace cryptodrop::vfs {

/// Result of stat().
struct FileInfo {
  FileId id = kNoFile;
  std::uint64_t size = 0;
  bool read_only = false;
};

/// One immediate child of a directory.
struct DirEntry {
  std::string name;  ///< Component name, not full path.
  bool is_directory = false;
  std::uint64_t size = 0;  ///< 0 for directories.
};

/// Open-file handle value. Obtained from open(), released by close().
struct Handle {
  HandleId id = 0;
  /// Nonzero iff the open succeeded.
  explicit operator bool() const { return id != 0; }
};

/// Per-op-type counters (cheap instrumentation for tests and benches).
struct OpCounters {
  std::uint64_t opens = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t closes = 0;
  std::uint64_t removes = 0;
  std::uint64_t renames = 0;
};

/// The volume: namespace tree, file content, processes, handles and
/// the attached filter stack, all behind one dispatch point.
class FileSystem {
 public:
  /// An empty volume containing only the root directory.
  FileSystem();
  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;
  FileSystem(FileSystem&&) = default;
  FileSystem& operator=(FileSystem&&) = default;

  /// Copy of the volume: directory tree and file metadata are duplicated,
  /// file *content* is shared copy-on-write. Filters, processes and open
  /// handles are NOT copied — the clone is a pristine volume, like a
  /// reverted VM snapshot.
  [[nodiscard]] FileSystem clone() const;

  // --- processes -----------------------------------------------------

  /// Registers a named process and returns its id (ids are never reused).
  /// `parent` links the process into a process tree (0 = no parent) —
  /// the analysis engine scores and suspends whole families ("the
  /// suspicious process (or family of processes)").
  ProcessId register_process(std::string name, ProcessId parent = 0);
  /// Display name given at register_process(); "" for unknown pids.
  [[nodiscard]] std::string_view process_name(ProcessId pid) const;
  /// Number of processes ever registered (pids are dense: 1..count).
  [[nodiscard]] std::size_t process_count() const { return processes_.size(); }
  /// Parent id, or 0 for root processes / unknown pids.
  [[nodiscard]] ProcessId process_parent(ProcessId pid) const;
  /// Topmost ancestor of `pid` (itself when parentless).
  [[nodiscard]] ProcessId process_family_root(ProcessId pid) const;

  // --- filter stack ----------------------------------------------------

  /// Attaches a non-owning filter at the bottom of the stack. The caller
  /// keeps the filter alive while attached.
  void attach_filter(Filter* filter);
  /// Detaches a previously attached filter (no-op when absent).
  void detach_filter(Filter* filter);

  // --- span tracing ----------------------------------------------------

  /// Points dispatch at a span tracer (non-owning; null disables, the
  /// default). Every filtered operation then opens a `vfs.dispatch` root
  /// span with one child span per filter callback (obs/span.hpp). Set
  /// this *before* attaching filters: filters pick the tracer up in
  /// on_attach() to nest their own stage spans.
  void set_span_tracer(obs::SpanTracer* tracer) { span_tracer_ = tracer; }
  /// The attached span tracer, or null when tracing is off.
  [[nodiscard]] obs::SpanTracer* span_tracer() const { return span_tracer_; }

  // --- filtered operations (the "disk requests" of Fig. 2) -------------

  /// Creates a directory; parents must already exist.
  Status mkdir(ProcessId pid, std::string_view raw_path);
  /// Opens (or creates, mode-dependent) a file. See vfs/filter.hpp
  /// for the kRead/kWrite/kCreate/kTruncate mode bits.
  Result<Handle> open(ProcessId pid, std::string_view raw_path, unsigned mode);
  /// Reads up to `n` bytes from the handle position, advancing it.
  Result<Bytes> read(ProcessId pid, Handle h, std::size_t n);
  /// Writes at the handle position, advancing it; extends the file as
  /// needed. Requires kWrite mode.
  Status write(ProcessId pid, Handle h, ByteView data);
  /// Sets the file size (shrink or zero-extend). Requires kWrite mode.
  Status truncate(ProcessId pid, Handle h, std::uint64_t new_size);
  /// Repositions the handle. Positions past EOF are allowed.
  Status seek(ProcessId pid, Handle h, std::uint64_t pos);
  /// Releases the handle, firing the close post-callbacks filters
  /// score on (the paper's analysis point for completed writes).
  Status close(ProcessId pid, Handle h);
  /// Deletes a file or empty directory.
  Status remove(ProcessId pid, std::string_view raw_path);
  /// Moves/renames a file; silently replaces an existing destination file
  /// (MoveFileEx + MOVEFILE_REPLACE_EXISTING semantics). Directories
  /// cannot be renamed. A read-only destination refuses replacement.
  Status rename(ProcessId pid, std::string_view raw_from, std::string_view raw_to);

  // --- filtered conveniences (compose open/read/write/close) -----------

  /// Whole-file read: open(kRead) + read-to-EOF + close.
  Result<Bytes> read_file(ProcessId pid, std::string_view raw_path);
  /// Whole-file write: open(kWrite|kCreate|kTruncate) + write + close.
  Status write_file(ProcessId pid, std::string_view raw_path, ByteView data);

  // --- unfiltered inspection (host / engine / tests) -------------------

  /// True when a file or directory exists at the path.
  [[nodiscard]] bool exists(std::string_view raw_path) const;
  /// True when the path names a directory.
  [[nodiscard]] bool is_directory(std::string_view raw_path) const;
  /// Metadata for a file or directory, without filter traffic.
  [[nodiscard]] Result<FileInfo> stat(std::string_view raw_path) const;
  /// Current content of a file, bypassing the filter stack (what the
  /// paper's driver does when a locked file must be inspected "using the
  /// kernel code"). Returns nullptr when the path is not a file.
  [[nodiscard]] std::shared_ptr<const Bytes> read_unfiltered(std::string_view raw_path) const;
  /// Immediate children of a directory, names sorted.
  [[nodiscard]] std::vector<DirEntry> list(std::string_view raw_path) const;
  /// All file paths under `raw_path` (inclusive subtree), sorted.
  [[nodiscard]] std::vector<std::string> list_files_recursive(std::string_view raw_path) const;
  /// All directory paths under `raw_path`, excluding `raw_path` itself.
  [[nodiscard]] std::vector<std::string> list_dirs_recursive(std::string_view raw_path) const;

  /// Number of files on the volume.
  [[nodiscard]] std::size_t file_count() const { return files_.size(); }
  /// Number of directories, counting the root.
  [[nodiscard]] std::size_t dir_count() const { return dirs_.size(); }
  /// Handles currently open across all processes.
  [[nodiscard]] std::size_t open_handle_count() const { return handles_.size(); }
  /// Per-op-type totals since construction.
  [[nodiscard]] const OpCounters& counters() const { return counters_; }

  // --- virtual clock ---------------------------------------------------

  /// Simulated time in microseconds. Every filtered operation advances it
  /// by `kOpCostMicros`; workloads add their own think-time with
  /// advance_time(). Deterministic, unlike wall-clock time — which is
  /// what lets rate-based experiments (§V-F's time-window discussion)
  /// reproduce exactly.
  [[nodiscard]] std::uint64_t now_micros() const { return clock_micros_; }
  /// Advances the simulated clock (workload think-time).
  void advance_time(std::uint64_t micros) { clock_micros_ += micros; }

  /// Simulated cost of one filesystem operation (~50 µs, the order of a
  /// buffered syscall + page-cache hit).
  static constexpr std::uint64_t kOpCostMicros = 50;

  // --- unfiltered mutation (corpus construction) -----------------------

  /// Creates a file (parents included) without filter traffic — used to
  /// lay down the test corpus before any monitored process runs.
  Status put_file_raw(std::string_view raw_path, Bytes data, bool read_only = false);
  /// Creates a directory chain without filter traffic.
  Status mkdir_raw(std::string_view raw_path);
  /// Flips the read-only bit (corpus setup for §V-C-style tests).
  Status set_read_only(std::string_view raw_path, bool read_only);

 private:
  struct FileNode {
    std::shared_ptr<const Bytes> data;
    FileId id = kNoFile;
    bool read_only = false;
  };

  struct OpenHandle {
    std::string path;
    FileId file_id = kNoFile;
    ProcessId pid = 0;
    unsigned mode = 0;
    std::uint64_t pos = 0;
    bool wrote = false;
    std::uint64_t wrote_bytes = 0;
  };

  /// Runs pre callbacks in attach order; deny wins. On allow, `apply` is
  /// invoked and post callbacks run in reverse order with its outcome.
  template <typename ApplyFn>
  Status run_filtered(OperationEvent& event, ApplyFn&& apply);

  Result<std::string> check_path(std::string_view raw) const;
  FileNode* find_file(const std::string& path);
  const FileNode* find_file(const std::string& path) const;
  Status ensure_parents(const std::string& path);

  std::map<std::string, FileNode> files_;
  std::set<std::string, std::less<>> dirs_;  // always contains "" (root)
  struct ProcessInfo {
    std::string name;
    ProcessId parent = 0;
  };

  std::map<HandleId, OpenHandle> handles_;
  std::vector<Filter*> filters_;
  obs::SpanTracer* span_tracer_ = nullptr;
  std::vector<ProcessInfo> processes_;  // index = pid - 1
  FileId next_file_id_ = 1;
  HandleId next_handle_id_ = 1;
  OpCounters counters_;
  std::uint64_t clock_micros_ = 0;
};

}  // namespace cryptodrop::vfs
