#include "vfs/filesystem.hpp"

#include <algorithm>
#include <cassert>

#include "obs/span.hpp"

namespace cryptodrop::vfs {

FileSystem::FileSystem() { dirs_.insert(std::string()); }

FileSystem FileSystem::clone() const {
  FileSystem out;
  out.files_ = files_;  // FileNode copies share the content shared_ptrs
  out.dirs_ = dirs_;
  out.next_file_id_ = next_file_id_;
  return out;
}

ProcessId FileSystem::register_process(std::string name, ProcessId parent) {
  if (parent > processes_.size()) parent = 0;  // unknown parent: detach
  processes_.push_back(ProcessInfo{std::move(name), parent});
  return static_cast<ProcessId>(processes_.size());
}

std::string_view FileSystem::process_name(ProcessId pid) const {
  if (pid == 0 || pid > processes_.size()) return "<unknown>";
  return processes_[pid - 1].name;
}

ProcessId FileSystem::process_parent(ProcessId pid) const {
  if (pid == 0 || pid > processes_.size()) return 0;
  return processes_[pid - 1].parent;
}

ProcessId FileSystem::process_family_root(ProcessId pid) const {
  ProcessId current = pid;
  // Parents always predate children (ids are registration order), so
  // this walk terminates.
  while (true) {
    const ProcessId parent = process_parent(current);
    if (parent == 0 || parent == current) return current;
    current = parent;
  }
}

void FileSystem::attach_filter(Filter* filter) {
  assert(filter != nullptr);
  filters_.push_back(filter);
  filter->on_attach(*this);
}

void FileSystem::detach_filter(Filter* filter) {
  filters_.erase(std::remove(filters_.begin(), filters_.end(), filter),
                 filters_.end());
}

template <typename ApplyFn>
Status FileSystem::run_filtered(OperationEvent& event, ApplyFn&& apply) {
  clock_micros_ += kOpCostMicros;
  event.timestamp = clock_micros_;
  event.process_name = std::string(process_name(event.pid));
  // Root span for the whole operation. Its op index is the virtual-clock
  // tick (strictly increasing per filtered op on this volume), so span
  // identity is deterministic at any job count.
  obs::ScopedSpan op_span(span_tracer_, obs::span_name::kDispatch, event.pid,
                          event.timestamp / kOpCostMicros);
  if (op_span.active()) {
    op_span.arg("op", op_name(event.op));
    op_span.arg("path", event.path);
    if (event.op == OpType::write) {
      op_span.arg("bytes", static_cast<double>(event.data.size()));
    }
  }
  std::size_t ran = 0;
  for (; ran < filters_.size(); ++ran) {
    Status verdict;
    {
      obs::ScopedSpan pre_span(obs::span_name::kFilterPre);
      if (pre_span.active()) {
        pre_span.arg("filter", filters_[ran]->filter_name());
      }
      verdict = filters_[ran]->pre_operation_mut(event);
      if (!verdict.is_ok() && pre_span.active()) {
        pre_span.arg("status", errc_name(verdict.code()));
      }
    }
    if (!verdict.is_ok()) {
      // Filters that already saw the pre callback observe the failure.
      for (std::size_t i = ran + 1; i-- > 0;) {
        obs::ScopedSpan post_span(obs::span_name::kFilterPost);
        if (post_span.active()) {
          post_span.arg("filter", filters_[i]->filter_name());
        }
        filters_[i]->post_operation(event, verdict);
      }
      return verdict;
    }
  }
  Status outcome = apply();
  for (std::size_t i = filters_.size(); i-- > 0;) {
    obs::ScopedSpan post_span(obs::span_name::kFilterPost);
    if (post_span.active()) {
      post_span.arg("filter", filters_[i]->filter_name());
    }
    filters_[i]->post_operation(event, outcome);
  }
  return outcome;
}

Result<std::string> FileSystem::check_path(std::string_view raw) const {
  auto norm = normalize_path(raw);
  if (!norm) {
    return Status(Errc::invalid_argument, "bad path: " + std::string(raw));
  }
  return *std::move(norm);
}

FileSystem::FileNode* FileSystem::find_file(const std::string& path) {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

const FileSystem::FileNode* FileSystem::find_file(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

Status FileSystem::ensure_parents(const std::string& path) {
  const std::string parent = path_parent(path);
  if (dirs_.contains(parent)) return Status::ok();
  if (files_.contains(parent)) {
    return Status(Errc::not_a_directory, parent);
  }
  // Create missing ancestors top-down.
  std::string acc;
  for (const auto comp : path_components(parent)) {
    acc = path_join(acc, std::string(comp));
    if (files_.contains(acc)) return Status(Errc::not_a_directory, acc);
    dirs_.insert(acc);
  }
  return Status::ok();
}

// --------------------------------------------------------------------
// Filtered operations
// --------------------------------------------------------------------

Status FileSystem::mkdir(ProcessId pid, std::string_view raw_path) {
  auto checked = check_path(raw_path);
  if (!checked) return checked.status();
  const std::string path = std::move(checked).value();

  OperationEvent event;
  event.op = OpType::mkdir;
  event.pid = pid;
  event.path = path;
  return run_filtered(event, [&]() -> Status {
    if (files_.contains(path)) return Status(Errc::already_exists, path);
    if (dirs_.contains(path)) return Status(Errc::already_exists, path);
    if (Status s = ensure_parents(path_join(path, "x")); !s.is_ok()) return s;
    dirs_.insert(path);
    return Status::ok();
  });
}

Result<Handle> FileSystem::open(ProcessId pid, std::string_view raw_path, unsigned mode) {
  auto checked = check_path(raw_path);
  if (!checked) return checked.status();
  const std::string path = std::move(checked).value();

  if ((mode & (kTruncate | kCreate)) != 0) mode |= kWrite;
  if ((mode & (kRead | kWrite)) == 0) {
    return Status(Errc::invalid_argument, "open without read or write");
  }
  if (path.empty() || dirs_.contains(path)) {
    return Status(Errc::is_a_directory, path);
  }

  FileNode* node = find_file(path);
  if (node == nullptr && (mode & kCreate) == 0) {
    return Status(Errc::not_found, path);
  }
  if (node != nullptr && node->read_only && (mode & kWrite) != 0) {
    return Status(Errc::read_only, path);
  }

  OperationEvent event;
  event.op = OpType::open;
  event.pid = pid;
  event.path = path;
  event.file_id = node != nullptr ? node->id : kNoFile;
  event.open_mode = mode;

  Handle handle;
  Status outcome = run_filtered(event, [&]() -> Status {
    FileNode* n = find_file(path);
    if (n == nullptr) {
      if (Status s = ensure_parents(path); !s.is_ok()) return s;
      FileNode fresh;
      fresh.data = std::make_shared<Bytes>();
      fresh.id = next_file_id_++;
      n = &files_.emplace(path, std::move(fresh)).first->second;
    } else if ((mode & kTruncate) != 0) {
      n->data = std::make_shared<Bytes>();
    }
    OpenHandle oh;
    oh.path = path;
    oh.file_id = n->id;
    oh.pid = pid;
    oh.mode = mode;
    handle.id = next_handle_id_++;
    // The event is shared with post callbacks: recorders below see the
    // handle the open produced (pre callbacks ran before it existed).
    event.handle = handle.id;
    handles_.emplace(handle.id, std::move(oh));
    ++counters_.opens;
    return Status::ok();
  });
  if (!outcome.is_ok()) return outcome;
  return handle;
}

Result<Bytes> FileSystem::read(ProcessId pid, Handle h, std::size_t n) {
  auto it = handles_.find(h.id);
  if (it == handles_.end() || it->second.pid != pid) {
    return Status(Errc::invalid_argument, "bad handle");
  }
  OpenHandle& oh = it->second;
  if ((oh.mode & kRead) == 0) {
    return Status(Errc::access_denied, "handle not open for read");
  }
  FileNode* node = find_file(oh.path);
  if (node == nullptr) return Status(Errc::not_found, oh.path);

  // Compute the bytes up front so the post event can carry them; the
  // content pointer is stable during the filtered section.
  const Bytes& content = *node->data;
  const std::uint64_t start = std::min<std::uint64_t>(oh.pos, content.size());
  const std::size_t take = static_cast<std::size_t>(
      std::min<std::uint64_t>(n, content.size() - start));
  Bytes out(content.begin() + static_cast<std::ptrdiff_t>(start),
            content.begin() + static_cast<std::ptrdiff_t>(start + take));

  OperationEvent event;
  event.op = OpType::read;
  event.pid = pid;
  event.path = oh.path;
  event.file_id = oh.file_id;
  event.handle = h.id;
  event.offset = start;
  event.length = n;
  event.data = ByteView(out);

  Status outcome = run_filtered(event, [&]() -> Status {
    oh.pos = start + take;
    ++counters_.reads;
    return Status::ok();
  });
  if (!outcome.is_ok()) return outcome;
  return out;
}

Status FileSystem::write(ProcessId pid, Handle h, ByteView data) {
  auto it = handles_.find(h.id);
  if (it == handles_.end() || it->second.pid != pid) {
    return Status(Errc::invalid_argument, "bad handle");
  }
  OpenHandle& oh = it->second;
  if ((oh.mode & kWrite) == 0) {
    return Status(Errc::access_denied, "handle not open for write");
  }

  OperationEvent event;
  event.op = OpType::write;
  event.pid = pid;
  event.path = oh.path;
  event.file_id = oh.file_id;
  event.handle = h.id;
  event.offset = oh.pos;
  event.length = data.size();
  event.data = data;

  return run_filtered(event, [&]() -> Status {
    FileNode* node = find_file(oh.path);
    if (node == nullptr) return Status(Errc::not_found, oh.path);
    // Apply event.data, not the caller's buffer: a pre-callback filter
    // may have shrunk the event to a prefix (short write), and only the
    // surviving bytes may reach the disk.
    const ByteView put = event.data;
    const std::uint64_t end = oh.pos + put.size();
    // Copy-on-write with an exclusive-ownership fast path: when this
    // node is the only holder of the buffer (no snapshot clones, no
    // engine baselines referencing it), mutate in place — this is what
    // keeps streamed multi-gigabyte appends O(n) instead of O(n^2).
    // Buffers are always *created* as mutable Bytes, so the const_cast
    // below never touches a genuinely const object.
    if (node->data.use_count() == 1) {
      Bytes& buf = const_cast<Bytes&>(*node->data);
      if (buf.size() < end) buf.resize(static_cast<std::size_t>(end), 0);
      std::copy(put.begin(), put.end(),
                buf.begin() + static_cast<std::ptrdiff_t>(oh.pos));
    } else {
      const Bytes& old = *node->data;
      auto fresh = std::make_shared<Bytes>();
      fresh->reserve(static_cast<std::size_t>(std::max<std::uint64_t>(end, old.size())));
      fresh->assign(old.begin(), old.end());
      if (fresh->size() < end) fresh->resize(static_cast<std::size_t>(end), 0);
      std::copy(put.begin(), put.end(),
                fresh->begin() + static_cast<std::ptrdiff_t>(oh.pos));
      node->data = std::move(fresh);
    }
    oh.pos = end;
    oh.wrote = true;
    oh.wrote_bytes += put.size();
    ++counters_.writes;
    return Status::ok();
  });
}

Status FileSystem::truncate(ProcessId pid, Handle h, std::uint64_t new_size) {
  auto it = handles_.find(h.id);
  if (it == handles_.end() || it->second.pid != pid) {
    return Status(Errc::invalid_argument, "bad handle");
  }
  OpenHandle& oh = it->second;
  if ((oh.mode & kWrite) == 0) {
    return Status(Errc::access_denied, "handle not open for write");
  }

  OperationEvent event;
  event.op = OpType::truncate;
  event.pid = pid;
  event.path = oh.path;
  event.file_id = oh.file_id;
  event.handle = h.id;
  event.length = new_size;

  return run_filtered(event, [&]() -> Status {
    FileNode* node = find_file(oh.path);
    if (node == nullptr) return Status(Errc::not_found, oh.path);
    auto fresh = std::make_shared<Bytes>(*node->data);
    fresh->resize(static_cast<std::size_t>(new_size), 0);
    node->data = std::move(fresh);
    oh.wrote = true;
    return Status::ok();
  });
}

Status FileSystem::seek(ProcessId pid, Handle h, std::uint64_t pos) {
  auto it = handles_.find(h.id);
  if (it == handles_.end() || it->second.pid != pid) {
    return Status(Errc::invalid_argument, "bad handle");
  }
  it->second.pos = pos;
  return Status::ok();
}

Status FileSystem::close(ProcessId pid, Handle h) {
  auto it = handles_.find(h.id);
  if (it == handles_.end() || it->second.pid != pid) {
    return Status(Errc::invalid_argument, "bad handle");
  }
  const OpenHandle oh = it->second;

  OperationEvent event;
  event.op = OpType::close;
  event.pid = pid;
  event.path = oh.path;
  event.file_id = oh.file_id;
  event.handle = h.id;
  event.wrote = oh.wrote;
  event.wrote_bytes = oh.wrote_bytes;

  // Close is never denied (a filter cannot keep a handle alive), but the
  // pre/post pair still fires so the engine can run its measurements.
  return run_filtered(event, [&]() -> Status {
    handles_.erase(h.id);
    ++counters_.closes;
    return Status::ok();
  });
}

Status FileSystem::remove(ProcessId pid, std::string_view raw_path) {
  auto checked = check_path(raw_path);
  if (!checked) return checked.status();
  const std::string path = std::move(checked).value();

  const FileNode* node = find_file(path);
  if (node == nullptr) {
    if (dirs_.contains(path)) return Status(Errc::is_a_directory, path);
    return Status(Errc::not_found, path);
  }
  if (node->read_only) return Status(Errc::read_only, path);

  OperationEvent event;
  event.op = OpType::remove;
  event.pid = pid;
  event.path = path;
  event.file_id = node->id;

  return run_filtered(event, [&]() -> Status {
    files_.erase(path);
    ++counters_.removes;
    return Status::ok();
  });
}

Status FileSystem::rename(ProcessId pid, std::string_view raw_from, std::string_view raw_to) {
  auto checked_from = check_path(raw_from);
  if (!checked_from) return checked_from.status();
  auto checked_to = check_path(raw_to);
  if (!checked_to) return checked_to.status();
  const std::string from = std::move(checked_from).value();
  const std::string to = std::move(checked_to).value();

  const FileNode* src = find_file(from);
  if (src == nullptr) {
    if (dirs_.contains(from)) {
      return Status(Errc::invalid_argument, "directory rename unsupported");
    }
    return Status(Errc::not_found, from);
  }
  if (to.empty() || dirs_.contains(to)) return Status(Errc::is_a_directory, to);
  const FileNode* dst = find_file(to);
  if (dst != nullptr && dst->read_only) return Status(Errc::read_only, to);

  OperationEvent event;
  event.op = OpType::rename;
  event.pid = pid;
  event.path = from;
  event.file_id = src->id;
  event.dest_path = to;
  event.dest_file_id = dst != nullptr ? dst->id : kNoFile;

  return run_filtered(event, [&]() -> Status {
    if (from == to) return Status::ok();
    if (Status s = ensure_parents(to); !s.is_ok()) return s;
    auto it = files_.find(from);
    FileNode node = std::move(it->second);
    files_.erase(it);
    files_.insert_or_assign(to, std::move(node));
    ++counters_.renames;
    return Status::ok();
  });
}

// --------------------------------------------------------------------
// Filtered conveniences
// --------------------------------------------------------------------

Result<Bytes> FileSystem::read_file(ProcessId pid, std::string_view raw_path) {
  auto handle = open(pid, raw_path, kRead);
  if (!handle) return handle.status();
  auto info = stat(raw_path);
  const std::size_t size = info ? static_cast<std::size_t>(info.value().size) : 0;
  auto data = read(pid, handle.value(), size);
  // Close regardless of the read outcome; report the first error.
  Status closed = close(pid, handle.value());
  if (!data) return data;
  if (!closed.is_ok()) return closed;
  return data;
}

Status FileSystem::write_file(ProcessId pid, std::string_view raw_path, ByteView data) {
  auto handle = open(pid, raw_path, kWrite | kCreate | kTruncate);
  if (!handle) return handle.status();
  Status wrote = write(pid, handle.value(), data);
  Status closed = close(pid, handle.value());
  if (!wrote.is_ok()) return wrote;
  return closed;
}

// --------------------------------------------------------------------
// Unfiltered inspection
// --------------------------------------------------------------------

bool FileSystem::exists(std::string_view raw_path) const {
  auto norm = normalize_path(raw_path);
  if (!norm) return false;
  return files_.contains(*norm) || dirs_.contains(*norm);
}

bool FileSystem::is_directory(std::string_view raw_path) const {
  auto norm = normalize_path(raw_path);
  return norm && dirs_.contains(*norm);
}

Result<FileInfo> FileSystem::stat(std::string_view raw_path) const {
  auto checked = check_path(raw_path);
  if (!checked) return checked.status();
  const FileNode* node = find_file(checked.value());
  if (node == nullptr) return Status(Errc::not_found, checked.value());
  FileInfo info;
  info.id = node->id;
  info.size = node->data->size();
  info.read_only = node->read_only;
  return info;
}

std::shared_ptr<const Bytes> FileSystem::read_unfiltered(std::string_view raw_path) const {
  auto norm = normalize_path(raw_path);
  if (!norm) return nullptr;
  const FileNode* node = find_file(*norm);
  return node != nullptr ? node->data : nullptr;
}

std::vector<DirEntry> FileSystem::list(std::string_view raw_path) const {
  std::vector<DirEntry> out;
  auto norm = normalize_path(raw_path);
  if (!norm || !dirs_.contains(*norm)) return out;
  const std::string prefix = norm->empty() ? std::string() : *norm + "/";

  auto in_subtree = [&](const std::string& p) {
    return p.size() > prefix.size() && p.compare(0, prefix.size(), prefix) == 0;
  };
  auto is_immediate = [&](const std::string& p) {
    return p.find('/', prefix.size()) == std::string::npos;
  };

  for (auto it = dirs_.upper_bound(prefix); it != dirs_.end() && in_subtree(*it); ++it) {
    if (!is_immediate(*it)) continue;
    out.push_back(DirEntry{.name = it->substr(prefix.size()), .is_directory = true, .size = 0});
  }
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && in_subtree(it->first); ++it) {
    if (!is_immediate(it->first)) continue;
    out.push_back(DirEntry{.name = it->first.substr(prefix.size()),
                           .is_directory = false,
                           .size = it->second.data->size()});
  }
  std::sort(out.begin(), out.end(),
            [](const DirEntry& a, const DirEntry& b) { return a.name < b.name; });
  return out;
}

std::vector<std::string> FileSystem::list_files_recursive(std::string_view raw_path) const {
  std::vector<std::string> out;
  auto norm = normalize_path(raw_path);
  if (!norm) return out;
  for (const auto& [path, node] : files_) {
    (void)node;
    if (path_is_under(path, *norm)) out.push_back(path);
  }
  return out;
}

std::vector<std::string> FileSystem::list_dirs_recursive(std::string_view raw_path) const {
  std::vector<std::string> out;
  auto norm = normalize_path(raw_path);
  if (!norm) return out;
  for (const auto& dir : dirs_) {
    if (dir != *norm && path_is_under(dir, *norm)) out.push_back(dir);
  }
  return out;
}

// --------------------------------------------------------------------
// Unfiltered mutation
// --------------------------------------------------------------------

Status FileSystem::put_file_raw(std::string_view raw_path, Bytes data, bool read_only) {
  auto checked = check_path(raw_path);
  if (!checked) return checked.status();
  const std::string path = std::move(checked).value();
  if (path.empty() || dirs_.contains(path)) return Status(Errc::is_a_directory, path);
  if (Status s = ensure_parents(path); !s.is_ok()) return s;
  FileNode node;
  node.data = std::make_shared<Bytes>(std::move(data));
  node.read_only = read_only;
  auto it = files_.find(path);
  if (it != files_.end()) {
    node.id = it->second.id;
    it->second = std::move(node);
  } else {
    node.id = next_file_id_++;
    files_.emplace(path, std::move(node));
  }
  return Status::ok();
}

Status FileSystem::mkdir_raw(std::string_view raw_path) {
  auto checked = check_path(raw_path);
  if (!checked) return checked.status();
  const std::string path = std::move(checked).value();
  if (files_.contains(path)) return Status(Errc::not_a_directory, path);
  if (Status s = ensure_parents(path_join(path, "x")); !s.is_ok()) return s;
  dirs_.insert(path);
  return Status::ok();
}

Status FileSystem::set_read_only(std::string_view raw_path, bool read_only) {
  auto checked = check_path(raw_path);
  if (!checked) return checked.status();
  FileNode* node = find_file(checked.value());
  if (node == nullptr) return Status(Errc::not_found, checked.value());
  node->read_only = read_only;
  return Status::ok();
}

}  // namespace cryptodrop::vfs
