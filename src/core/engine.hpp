// The CryptoDrop analysis engine (paper §IV).
//
// Attached to the VFS as a filter (the minifilter analogue of Fig. 2), it
// watches every operation touching the protected documents root, measures
// the three primary indicators (file type change, similarity loss,
// entropy delta) and two secondary indicators (deletion, file type
// funneling) per process, accumulates reputation points, applies union
// indication, and — once a process crosses its threshold — suspends it by
// denying all of its subsequent filtered operations.
//
// State tracking (paper §IV-C): file identity is tracked by FileId, which
// the VFS keeps stable across rename/move. That is what lets the engine
//  * compare a Class B file's content after it returns from a temporary
//    directory against its state before it left, and
//  * link a Class C "new file moved over the original" to the original's
//    pre-image (the paper reports 41 of 63 Class C samples were caught
//    exactly this way).
//
// Threading model (DESIGN.md §9): the engine may be driven concurrently
// from many threads. The per-process scoreboard and the per-file baseline
// table are each split into fixed shards behind their own mutexes; an
// operation locks exactly one scoreboard shard and at most one file shard
// at a time, always in that order. snapshot() takes every scoreboard
// shard (in index order) for one consistent view. Alert callbacks are
// invoked with no engine lock held, on the thread whose operation crossed
// the threshold, before that operation returns.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "core/config.hpp"
#include "entropy/entropy.hpp"
#include "magic/magic.hpp"
#include "simhash/similarity.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/filter.hpp"

namespace cryptodrop::core {

/// Which indicator produced a score event.
enum class Indicator : std::uint8_t {
  entropy_delta,
  type_change,
  similarity_drop,
  deletion,
  funneling,
  union_indication,
  burst_rate,  ///< Extension: §V-F time-window indicator (off by default).
};

std::string_view indicator_name(Indicator ind);

/// One reputation-score increment.
struct ScoreEvent {
  std::uint64_t op_seq;  ///< Engine-observed operation sequence number.
  Indicator indicator;
  int points;
  std::string path;  ///< File the event concerns (empty for funneling/union).
};

/// Point-in-time view of one process's reputation (returned by
/// process_report() and inside EngineSnapshot).
struct ProcessReport {
  vfs::ProcessId pid = 0;
  std::string name;
  int score = 0;
  int threshold = 0;
  bool suspended = false;

  bool union_triggered = false;  ///< All three primaries fired at least once.
  std::uint64_t union_count = 0; ///< Files on which all three primaries co-fired.

  // Per-indicator occurrence counts.
  std::uint64_t entropy_events = 0;
  std::uint64_t type_change_events = 0;
  std::uint64_t similarity_drop_events = 0;
  std::uint64_t deletion_events = 0;
  std::uint64_t funneling_events = 0;
  std::uint64_t rate_events = 0;

  double read_entropy_mean = 0.0;   ///< Pread
  double write_entropy_mean = 0.0;  ///< Pwrite

  std::set<std::string> read_extensions;   ///< Extensions read under the root.
  std::set<std::string> write_extensions;  ///< Extensions written under the root.

  std::vector<ScoreEvent> timeline;  ///< Present when config.record_timeline.
};

/// Wall-clock cost of the engine's own measurement work, per operation
/// type — the analogue of §V-H, where the authors traced their driver
/// and reported the added latency per operation (open/read < 1 ms,
/// close 1.58 ms, write 9 ms, rename 16 ms on their prototype).
struct LatencyStats {
  struct PerOp {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    [[nodiscard]] double mean_micros() const {
      return count == 0 ? 0.0
                        : static_cast<double>(total_ns) / 1000.0 /
                              static_cast<double>(count);
    }
  };
  PerOp open, read, write, truncate, close, remove, rename, mkdir;

  [[nodiscard]] const PerOp& for_op(vfs::OpType op) const;
  PerOp& for_op(vfs::OpType op);
};

/// One consistent view of everything the engine has measured: every
/// process report, the operation count, and the latency breakdown, all
/// captured atomically (no operation is half-reflected across entries).
/// This replaces the racy observed_processes() + N× process_report()
/// query dance.
struct EngineSnapshot {
  /// Reports in ascending scoreboard-key order (the family root's pid
  /// when family scoring is enabled).
  std::vector<ProcessReport> processes;
  std::uint64_t observed_ops = 0;
  LatencyStats latency;
  int default_threshold = 0;  ///< config.score_threshold at capture time.

  /// Report for `pid`'s scoreboard entry, or nullptr if never scored.
  [[nodiscard]] const ProcessReport* find(vfs::ProcessId pid) const;
  /// Like find(), but absent pids yield an empty report carrying the
  /// default threshold (mirrors process_report() semantics).
  [[nodiscard]] ProcessReport report_for(vfs::ProcessId pid) const;
};

/// Details passed to the alert callback at the moment of detection.
struct Alert {
  vfs::ProcessId pid = 0;
  std::string process_name;
  int score = 0;
  int threshold = 0;
  bool via_union = false;
  std::uint64_t op_seq = 0;
};

class AnalysisEngine : public vfs::Filter {
 public:
  /// Throws std::invalid_argument when `config.validate()` fails — an
  /// engine never runs on a nonsensical scoring configuration.
  explicit AnalysisEngine(ScoringConfig config);

  /// Invoked once, synchronously, when a process is first suspended —
  /// the "alert the user" hook. Runs with no engine lock held. Must be
  /// set before operations are driven through the engine (it is read
  /// without synchronization on the hot path).
  void set_alert_callback(std::function<void(const Alert&)> callback);

  // --- vfs::Filter ------------------------------------------------------
  vfs::Verdict pre_operation(const vfs::OperationEvent& event) override;
  void post_operation(const vfs::OperationEvent& event, const Status& outcome) override;
  void on_attach(vfs::FileSystem& fs) override;

  // --- queries ----------------------------------------------------------
  [[nodiscard]] const ScoringConfig& config() const { return config_; }
  [[nodiscard]] bool is_suspended(vfs::ProcessId pid) const;
  [[nodiscard]] int score(vfs::ProcessId pid) const;
  [[nodiscard]] ProcessReport process_report(vfs::ProcessId pid) const;
  /// Atomically captures every process report, the observed-op count and
  /// the latency stats under one (stop-the-world) lock acquisition.
  [[nodiscard]] EngineSnapshot snapshot() const;
  /// Pids of every process the engine has scored so far.
  [[deprecated("iterate snapshot().processes instead — a pid list is stale "
               "by the time it is re-queried")]]
  [[nodiscard]] std::vector<vfs::ProcessId> observed_processes() const;
  /// Total operations the engine observed under the protected root.
  [[nodiscard]] std::uint64_t observed_ops() const {
    return op_seq_.load(std::memory_order_relaxed);
  }
  /// Per-op-type cost of the engine's own callbacks (§V-H analogue).
  /// Returned by value: the engine's internal stats are lock-guarded.
  [[nodiscard]] LatencyStats latency_stats() const;

  // --- user decisions ------------------------------------------------------
  /// The user chose to let the flagged process continue: clears the
  /// suspension and resets its reputation (it will be re-flagged if the
  /// behavior resumes).
  void resume_process(vfs::ProcessId pid);

 private:
  /// Reputation and indicator state for one process (§IV-A scoreboard).
  struct ProcessState {
    std::string name;
    int score = 0;
    int threshold = 0;
    bool suspended = false;

    // Union bookkeeping: which primaries have fired so far.
    bool saw_entropy = false;
    bool saw_type_change = false;
    bool saw_similarity_drop = false;
    bool union_triggered = false;
    std::uint64_t union_count = 0;

    std::uint64_t entropy_events = 0;
    std::uint64_t type_change_events = 0;
    std::uint64_t similarity_drop_events = 0;
    std::uint64_t deletion_events = 0;
    std::uint64_t funneling_events = 0;
    std::uint64_t rate_events = 0;
    bool funneling_fired = false;

    /// Sliding window of (timestamp, file) modification touches for the
    /// burst-rate indicator.
    std::deque<std::pair<std::uint64_t, vfs::FileId>> recent_mods;
    std::map<vfs::FileId, std::size_t> window_file_counts;

    entropy::WeightedEntropyMean read_mean;
    entropy::WeightedEntropyMean write_mean;

    std::set<magic::TypeId> read_types;
    std::set<magic::TypeId> write_types;
    std::set<std::string> read_extensions;
    std::set<std::string> write_extensions;

    std::vector<ScoreEvent> timeline;
  };

  /// Pre-modification snapshot of a protected file, keyed by FileId so it
  /// survives renames and directory moves.
  struct FileState {
    std::shared_ptr<const Bytes> baseline;  ///< Content before modification.
    magic::TypeId baseline_type = magic::TypeId::empty;
    /// Lazily computed digest of `baseline` (similarity comparisons are
    /// the engine's most expensive step; skip them until needed).
    std::optional<simhash::SimilarityDigest> baseline_digest;
    bool digest_attempted = false;
    bool pending_check = false;  ///< A write/move happened; compare on close/rename.
  };

  /// Shard counts are fixed powers of two; ids are assigned densely by
  /// the VFS, so a plain modulus spreads them evenly.
  static constexpr std::size_t kScoreboardShards = 16;
  static constexpr std::size_t kFileShards = 16;

  struct ScoreboardShard {
    mutable std::mutex mu;
    std::map<vfs::ProcessId, ProcessState> states;
  };
  struct FileShard {
    mutable std::mutex mu;
    std::map<vfs::FileId, FileState> files;
  };

  /// A scoreboard shard lock pinned to one process entry. While it lives,
  /// the shard's mutex is held and `proc` may be mutated.
  struct LockedProcess {
    std::unique_lock<std::mutex> lock;
    ProcessState* proc = nullptr;
    vfs::ProcessId key = 0;
  };

  [[nodiscard]] ScoreboardShard& shard_for_key(vfs::ProcessId key) const {
    return scoreboard_shards_[key % kScoreboardShards];
  }
  [[nodiscard]] FileShard& shard_for_file(vfs::FileId id) const {
    return file_shards_[id % kFileShards];
  }

  [[nodiscard]] bool under_root(std::string_view path) const;
  /// Resolves a pid to its scoreboard entry key (the family root when
  /// family scoring is on).
  [[nodiscard]] vfs::ProcessId scoreboard_key(vfs::ProcessId pid) const;
  /// Locks the scoreboard shard of `event.pid`'s key and pins (creating
  /// if needed) its state entry.
  LockedProcess lock_state_for(const vfs::OperationEvent& event);

  void add_points(ProcessState& proc, vfs::ProcessId pid, Indicator indicator,
                  int points, const std::string& path);
  [[nodiscard]] int scaled_entropy_points(std::size_t op_bytes, double delta) const;
  void score_write_entropy(ProcessState& proc, vfs::ProcessId pid, ByteView data,
                           const std::string& path);
  /// Burst-rate bookkeeping for one modification touch of `id`.
  void note_modification(ProcessState& proc, vfs::ProcessId pid,
                         std::uint64_t timestamp, vfs::FileId id,
                         const std::string& path);
  void check_union(ProcessState& proc, vfs::ProcessId pid, const std::string& path);
  void maybe_detect(ProcessState& proc, vfs::ProcessId pid, bool via_union);

  /// Captures the pre-image of file `id` (if not already captured).
  /// Locks the file's shard; call with no file-shard lock held.
  void capture_baseline(vfs::FileId id, const std::shared_ptr<const Bytes>& content);
  /// Runs the type-change and similarity checks of `content` against the
  /// tracked baseline of `id`, scoring `proc`. Locks the file's shard;
  /// call with the process shard lock held and no file-shard lock held.
  void evaluate_modification(ProcessState& proc, vfs::ProcessId pid, vfs::FileId id,
                             const std::string& path,
                             const std::shared_ptr<const Bytes>& content);
  /// Computes (or fetches from the shared digest cache) `data`'s digest.
  [[nodiscard]] std::optional<simhash::SimilarityDigest> baseline_digest_for(
      ByteView data) const;
  /// Drops file `id` from the baseline table.
  void forget_file(vfs::FileId id);
  /// Marks `id` for comparison at close/rename time. Returns false when
  /// the file has no tracked baseline.
  bool mark_pending_check(vfs::FileId id);

  void handle_open_pre(const vfs::OperationEvent& event);
  void handle_rename_pre(const vfs::OperationEvent& event);
  void handle_read_post(const vfs::OperationEvent& event);
  void handle_write_pre(const vfs::OperationEvent& event);
  void handle_close_post(const vfs::OperationEvent& event);
  void handle_remove_post(const vfs::OperationEvent& event);
  void handle_rename_post(const vfs::OperationEvent& event);

  ScoringConfig config_;
  vfs::FileSystem* fs_ = nullptr;  ///< Set on attach; unfiltered inspection.
  mutable std::array<ScoreboardShard, kScoreboardShards> scoreboard_shards_;
  mutable std::array<FileShard, kFileShards> file_shards_;
  std::function<void(const Alert&)> alert_callback_;
  std::atomic<std::uint64_t> op_seq_{0};
  LatencyStats latency_;
  mutable std::mutex latency_mu_;
};

}  // namespace cryptodrop::core
