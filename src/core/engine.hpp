// The CryptoDrop analysis engine (paper §IV).
//
// Attached to the VFS as a filter (the minifilter analogue of Fig. 2), it
// watches every operation touching the protected documents root, measures
// the three primary indicators (file type change, similarity loss,
// entropy delta) and two secondary indicators (deletion, file type
// funneling) per process, accumulates reputation points, applies union
// indication, and — once a process crosses its threshold — suspends it by
// denying all of its subsequent filtered operations.
//
// State tracking (paper §IV-C): file identity is tracked by FileId, which
// the VFS keeps stable across rename/move. That is what lets the engine
//  * compare a Class B file's content after it returns from a temporary
//    directory against its state before it left, and
//  * link a Class C "new file moved over the original" to the original's
//    pre-image (the paper reports 41 of 63 Class C samples were caught
//    exactly this way).
//
// Threading model (DESIGN.md §9): the engine may be driven concurrently
// from many threads. The per-process scoreboard and the per-file baseline
// table are each split into fixed shards behind their own mutexes; an
// operation locks exactly one scoreboard shard and at most one file shard
// at a time, always in that order. snapshot() takes every scoreboard
// shard (in index order) for one consistent view. Alert callbacks are
// invoked with no engine lock held, on the thread whose operation crossed
// the threshold, before that operation returns.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/ranked_mutex.hpp"
#include "core/config.hpp"
#include "entropy/backend.hpp"
#include "entropy/entropy.hpp"
#include "magic/magic.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "simhash/similarity.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/filter.hpp"

namespace cryptodrop::core {

/// Scoreboard-shard mutex: rank 10 in the project lock-rank table
/// (common/ranked_mutex.hpp; DESIGN.md §13).
using ScoreboardMutex = common::RankedMutex<common::lockrank::kScoreboardShard>;
/// File-baseline-shard mutex: rank 20 (acquired under a scoreboard shard).
using FileTableMutex = common::RankedMutex<common::lockrank::kFileTable>;
/// Latency-stats mutex: rank 40 (taken with no other engine lock held).
using LatencyMutex = common::RankedMutex<common::lockrank::kLatencyStats>;

/// Which indicator produced a score event.
enum class Indicator : std::uint8_t {
  entropy_delta,
  type_change,
  similarity_drop,
  deletion,
  funneling,
  union_indication,
  burst_rate,  ///< Extension: §V-F time-window indicator (off by default).
};

/// Stable lowercase label for an indicator ("entropy_delta", "union", ...)
/// — used in reports, metric names, and forensic-timeline JSON.
std::string_view indicator_name(Indicator ind);

/// One reputation-score increment.
struct ScoreEvent {
  std::uint64_t op_seq;  ///< Engine-observed operation sequence number.
  Indicator indicator;
  int points;
  std::string path;  ///< File the event concerns (empty for funneling/union).
  /// For entropy_delta events: which backend(s) voted, comma-joined in
  /// schema order ("shannon", "chi_square,daa"). Empty for every other
  /// indicator.
  std::string backend;
};

/// Point-in-time view of one process's reputation (returned by
/// process_report() and inside EngineSnapshot).
struct ProcessReport {
  vfs::ProcessId pid = 0;
  std::string name;
  int score = 0;
  int threshold = 0;
  bool suspended = false;

  bool union_triggered = false;  ///< All three primaries fired at least once.
  std::uint64_t union_count = 0; ///< Files on which all three primaries co-fired.

  // Per-indicator occurrence counts.
  std::uint64_t entropy_events = 0;
  std::uint64_t type_change_events = 0;
  std::uint64_t similarity_drop_events = 0;
  std::uint64_t deletion_events = 0;
  std::uint64_t funneling_events = 0;
  std::uint64_t rate_events = 0;

  double read_entropy_mean = 0.0;   ///< Pread
  double write_entropy_mean = 0.0;  ///< Pwrite

  std::set<std::string> read_extensions;   ///< Extensions read under the root.
  std::set<std::string> write_extensions;  ///< Extensions written under the root.

  std::vector<ScoreEvent> timeline;  ///< Present when config.record_timeline.

  /// Bounded forensic event history (docs/OBSERVABILITY.md): the same
  /// score changes as `timeline` but with score-before/after and
  /// indicator detail, plus suspension/resume verdict events.
  obs::ForensicTimeline forensic;
};

/// Wall-clock cost of the engine's own measurement work, per operation
/// type — the analogue of §V-H, where the authors traced their driver
/// and reported the added latency per operation (open/read < 1 ms,
/// close 1.58 ms, write 9 ms, rename 16 ms on their prototype).
struct LatencyStats {
  /// Accumulated callback cost for one operation type.
  struct PerOp {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
    /// Mean callback cost in microseconds (0 when no samples).
    [[nodiscard]] double mean_micros() const {
      return count == 0 ? 0.0
                        : static_cast<double>(total_ns) / 1000.0 /
                              static_cast<double>(count);
    }
  };
  PerOp open, read, write, truncate, close, remove, rename, mkdir;

  /// The accumulator for `op` (every OpType maps to exactly one field).
  [[nodiscard]] const PerOp& for_op(vfs::OpType op) const;
  /// Mutable variant of for_op().
  PerOp& for_op(vfs::OpType op);
};

/// One consistent view of everything the engine has measured: every
/// process report, the operation count, and the latency breakdown, all
/// captured atomically (no operation is half-reflected across entries).
/// This replaced the racy pid-list + N× process_report() query dance
/// (the old observed_processes() API, now removed).
struct EngineSnapshot {
  /// Reports in ascending scoreboard-key order (the family root's pid
  /// when family scoring is enabled).
  std::vector<ProcessReport> processes;
  std::uint64_t observed_ops = 0;
  LatencyStats latency;
  /// Every engine metric (counters, gauges, stage-latency histograms),
  /// merged across write shards at capture time — the machine-readable
  /// side of this snapshot (obs::to_json serializes it).
  obs::MetricsSnapshot metrics;
  int default_threshold = 0;  ///< config.score_threshold at capture time.

  /// Report for `pid`'s scoreboard entry, or nullptr if never scored.
  [[nodiscard]] const ProcessReport* find(vfs::ProcessId pid) const;
  /// Like find(), but absent pids yield an empty report carrying the
  /// default threshold (mirrors process_report() semantics).
  [[nodiscard]] ProcessReport report_for(vfs::ProcessId pid) const;
};

/// Details passed to the alert callback at the moment of detection.
struct Alert {
  vfs::ProcessId pid = 0;
  std::string process_name;
  int score = 0;
  int threshold = 0;
  bool via_union = false;
  std::uint64_t op_seq = 0;
};

/// The CryptoDrop detector (§IV): a vfs::Filter that scores every
/// process's file activity against the paper's indicators and suspends
/// a process whose reputation crosses the threshold. Fully thread-safe:
/// state is sharded 16 ways (scoreboard and file baselines), callbacks
/// on different processes/files proceed in parallel, and all queries may
/// run concurrently with operations.
class AnalysisEngine : public vfs::Filter {
 public:
  /// Throws std::invalid_argument when `config.validate()` fails — an
  /// engine never runs on a nonsensical scoring configuration.
  explicit AnalysisEngine(ScoringConfig config);

  /// Invoked once, synchronously, when a process is first suspended —
  /// the "alert the user" hook. Runs with no engine lock held. Must be
  /// set before operations are driven through the engine (it is read
  /// without synchronization on the hot path).
  void set_alert_callback(std::function<void(const Alert&)> callback);

  // --- vfs::Filter ------------------------------------------------------
  /// Denies every disk access (except close) of a suspended process and
  /// captures pre-images where measurement needs them. Thread-safe.
  vfs::Verdict pre_operation(const vfs::OperationEvent& event) override;
  /// Scores the completed operation (entropy, type, similarity, deletion,
  /// funneling, rate) and fires the alert callback on a new suspension.
  /// Operations with a non-ok outcome (denied, or failed below the
  /// engine) are dropped unscored: reputation points are only ever
  /// assessed for operations that actually happened. Thread-safe.
  void post_operation(const vfs::OperationEvent& event, const Status& outcome) override;
  /// Called by FileSystem::attach_filter; records the owning filesystem
  /// and picks up its span tracer (if one was set before attachment).
  void on_attach(vfs::FileSystem& fs) override;
  /// Span/log identity ("analysis_engine" child spans in traces).
  [[nodiscard]] std::string_view filter_name() const override {
    return "analysis_engine";
  }

  // --- queries ----------------------------------------------------------
  /// The validated configuration this engine was built with (immutable).
  [[nodiscard]] const ScoringConfig& config() const { return config_; }
  /// Whether `pid`'s scoreboard entry is currently suspended. Thread-safe.
  [[nodiscard]] bool is_suspended(vfs::ProcessId pid) const;
  /// `pid`'s current reputation score (0 if never scored). Thread-safe.
  [[nodiscard]] int score(vfs::ProcessId pid) const;
  /// Point-in-time report for one process (empty report with the default
  /// threshold when `pid` was never scored). Thread-safe.
  [[nodiscard]] ProcessReport process_report(vfs::ProcessId pid) const;
  /// Atomically captures every process report, the observed-op count and
  /// the latency stats under one (stop-the-world) lock acquisition.
  [[nodiscard]] EngineSnapshot snapshot() const;
  /// "Why was pid X suspended?" — the bounded forensic event history of
  /// `pid`'s scoreboard entry (score deltas with before/after values,
  /// indicator detail, and any suspension/resume verdicts). A never-seen
  /// pid yields an empty timeline carrying the default threshold.
  /// Thread-safe; locks only that pid's scoreboard shard.
  [[nodiscard]] obs::ForensicTimeline explain(vfs::ProcessId pid) const;
  /// Current value of every engine metric, merged across write shards.
  /// Thread-safe; may run concurrently with operations (counters already
  /// incremented are visible, in-flight ones may not be). Gauges are
  /// refreshed (shard walk) as part of the call.
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() const;
  /// Total operations the engine observed under the protected root.
  [[nodiscard]] std::uint64_t observed_ops() const {
    return op_seq_.load(std::memory_order_relaxed);
  }
  /// Per-op-type cost of the engine's own callbacks (§V-H analogue).
  /// Returned by value: the engine's internal stats are lock-guarded.
  [[nodiscard]] LatencyStats latency_stats() const;

  // --- user decisions ------------------------------------------------------
  /// The user chose to let the flagged process continue: clears the
  /// suspension and resets its reputation (it will be re-flagged if the
  /// behavior resumes).
  void resume_process(vfs::ProcessId pid);

 private:
  /// Reputation and indicator state for one process (§IV-A scoreboard).
  struct ProcessState {
    std::string name;
    int score = 0;
    int threshold = 0;
    bool suspended = false;

    // Union bookkeeping: which primaries have fired so far.
    bool saw_entropy = false;
    bool saw_type_change = false;
    bool saw_similarity_drop = false;
    bool union_triggered = false;
    std::uint64_t union_count = 0;

    std::uint64_t entropy_events = 0;
    std::uint64_t type_change_events = 0;
    std::uint64_t similarity_drop_events = 0;
    std::uint64_t deletion_events = 0;
    std::uint64_t funneling_events = 0;
    std::uint64_t rate_events = 0;
    bool funneling_fired = false;

    /// Sliding window of (timestamp, file) modification touches for the
    /// burst-rate indicator.
    std::deque<std::pair<std::uint64_t, vfs::FileId>> recent_mods;
    std::map<vfs::FileId, std::size_t> window_file_counts;

    /// One pair of running means per active entropy member (index
    /// parallel to the engine's `entropy_members_`; sized on entry
    /// creation). Member 0 is the primary backend surfaced in reports.
    std::vector<entropy::WeightedEntropyMean> read_means;
    std::vector<entropy::WeightedEntropyMean> write_means;

    std::set<magic::TypeId> read_types;
    std::set<magic::TypeId> write_types;
    std::set<std::string> read_extensions;
    std::set<std::string> write_extensions;

    std::vector<ScoreEvent> timeline;
    /// Bounded forensic ring (capacity fixed at entry creation from
    /// config.timeline_capacity; 0 = recording disabled). Mutated only
    /// under this entry's shard lock, so it needs no atomics of its own.
    obs::TimelineRing forensic{0};
  };

  /// Pre-modification snapshot of a protected file, keyed by FileId so it
  /// survives renames and directory moves.
  struct FileState {
    std::shared_ptr<const Bytes> baseline;  ///< Content before modification.
    magic::TypeId baseline_type = magic::TypeId::empty;
    /// Lazily computed digest of `baseline` (similarity comparisons are
    /// the engine's most expensive step; skip them until needed).
    std::optional<simhash::SimilarityDigest> baseline_digest;
    bool digest_attempted = false;
    bool pending_check = false;  ///< A write/move happened; compare on close/rename.
  };

  /// Shard counts are fixed powers of two; ids are assigned densely by
  /// the VFS, so a plain modulus spreads them evenly.
  static constexpr std::size_t kScoreboardShards = 16;
  static constexpr std::size_t kFileShards = 16;

  struct ScoreboardShard {
    mutable ScoreboardMutex mu;
    std::map<vfs::ProcessId, ProcessState> states;
  };
  struct FileShard {
    mutable FileTableMutex mu;
    std::map<vfs::FileId, FileState> files;
  };

  /// A scoreboard shard lock pinned to one process entry. While it lives,
  /// the shard's mutex is held and `proc` may be mutated.
  struct LockedProcess {
    std::unique_lock<ScoreboardMutex> lock;
    ProcessState* proc = nullptr;
    vfs::ProcessId key = 0;
  };

  [[nodiscard]] ScoreboardShard& shard_for_key(vfs::ProcessId key) const {
    return scoreboard_shards_[key % kScoreboardShards];
  }
  [[nodiscard]] FileShard& shard_for_file(vfs::FileId id) const {
    return file_shards_[id % kFileShards];
  }

  [[nodiscard]] bool under_root(std::string_view path) const;
  /// Resolves a pid to its scoreboard entry key (the family root when
  /// family scoring is on).
  [[nodiscard]] vfs::ProcessId scoreboard_key(vfs::ProcessId pid) const;
  /// Locks the scoreboard shard of `event.pid`'s key and pins (creating
  /// if needed) its state entry.
  LockedProcess lock_state_for(const vfs::OperationEvent& event);

  /// Adds `points` to `proc`, bumps the per-indicator metrics, and (when
  /// timelines are on) appends both the legacy ScoreEvent and a forensic
  /// TimelineEvent. `detail` is the indicator's measured magnitude
  /// (entropy delta, similarity score, ...); `note` is free-form context.
  void add_points(ProcessState& proc, vfs::ProcessId pid, Indicator indicator,
                  int points, const std::string& path, double detail = 0.0,
                  std::string note = {}, std::string backend = {});
  [[nodiscard]] int scaled_entropy_points(std::size_t op_bytes, double delta) const;
  void score_write_entropy(ProcessState& proc, vfs::ProcessId pid, ByteView data,
                           const std::string& path);
  /// Folds read-side content into every member's read mean (one backend
  /// evaluation per member, under the entropy stage span/timer). Caller
  /// holds the process's scoreboard shard lock.
  void fold_read_entropy(ProcessState& proc, ByteView data);
  /// Burst-rate bookkeeping for one modification touch of `id`.
  void note_modification(ProcessState& proc, vfs::ProcessId pid,
                         std::uint64_t timestamp, vfs::FileId id,
                         const std::string& path);
  void check_union(ProcessState& proc, vfs::ProcessId pid, const std::string& path);
  void maybe_detect(ProcessState& proc, vfs::ProcessId pid, bool via_union);

  /// Captures the pre-image of file `id` (if not already captured).
  /// Locks the file's shard; call with no file-shard lock held.
  void capture_baseline(vfs::FileId id, const std::shared_ptr<const Bytes>& content);
  /// Runs the type-change and similarity checks of `content` against the
  /// tracked baseline of `id`, scoring `proc`. Locks the file's shard;
  /// call with the process shard lock held and no file-shard lock held.
  void evaluate_modification(ProcessState& proc, vfs::ProcessId pid, vfs::FileId id,
                             const std::string& path,
                             const std::shared_ptr<const Bytes>& content);
  /// Computes (or fetches from the shared digest cache) `data`'s digest.
  [[nodiscard]] std::optional<simhash::SimilarityDigest> baseline_digest_for(
      ByteView data) const;
  /// Drops file `id` from the baseline table.
  void forget_file(vfs::FileId id);
  /// Marks `id` for comparison at close/rename time. Returns false when
  /// the file has no tracked baseline.
  bool mark_pending_check(vfs::FileId id);

  /// Registers every engine metric with `metrics_` and caches the
  /// instrument pointers used on the hot path (constructor only).
  void register_metrics();
  /// Walks the file shards (and the shared digest cache, if enabled) to
  /// bring the point-in-time gauges up to date before a metrics snapshot.
  void refresh_gauges(std::size_t tracked_processes) const;
  /// Copies one scoreboard entry's forensic ring into a standalone
  /// timeline. Call with `key`'s shard lock held.
  [[nodiscard]] obs::ForensicTimeline make_forensic(vfs::ProcessId key,
                                                    const ProcessState& proc) const;
  /// magic::identify wrapped in the magic_sniff stage timer.
  [[nodiscard]] magic::TypeId sniff_type(ByteView data) const;

  void handle_open_pre(const vfs::OperationEvent& event);
  void handle_rename_pre(const vfs::OperationEvent& event);
  void handle_truncate_pre(const vfs::OperationEvent& event);
  void handle_read_post(const vfs::OperationEvent& event);
  void handle_write_post(const vfs::OperationEvent& event);
  void handle_truncate_post(const vfs::OperationEvent& event);
  void handle_close_post(const vfs::OperationEvent& event);
  void handle_remove_post(const vfs::OperationEvent& event);
  void handle_rename_post(const vfs::OperationEvent& event);

  ScoringConfig config_;
  /// The resolved entropy members (config_.entropy.active_members()):
  /// never empty; member 0 is the primary backend surfaced in reports.
  std::vector<EnsembleMember> entropy_members_;
  /// One constructed backend per member, index-parallel to
  /// entropy_members_. Backends are stateless; score() is thread-safe.
  std::vector<std::unique_ptr<entropy::Backend>> entropy_backends_;
  /// Sum of all member weights (vote quorum denominator).
  double entropy_weight_total_ = 0.0;
  vfs::FileSystem* fs_ = nullptr;  ///< Set on attach; unfiltered inspection.
  /// Set on attach from the filesystem; lets the verdict path mark a
  /// suspended pid keep-all in the sampler. Stage spans themselves nest
  /// via the thread-local current span, not this pointer.
  obs::SpanTracer* tracer_ = nullptr;
  mutable std::array<ScoreboardShard, kScoreboardShards> scoreboard_shards_;
  mutable std::array<FileShard, kFileShards> file_shards_;
  std::function<void(const Alert&)> alert_callback_;
  std::atomic<std::uint64_t> op_seq_{0};
  LatencyStats latency_;
  mutable LatencyMutex latency_mu_;

  // --- observability (docs/OBSERVABILITY.md) ----------------------------
  // The registry owns the instruments; the pointers below are stable
  // hot-path handles cached by register_metrics() in the constructor.
  mutable obs::MetricsRegistry metrics_;
  obs::Counter* m_ops_observed_ = nullptr;
  obs::Counter* m_ops_denied_ = nullptr;
  obs::Counter* m_suspensions_ = nullptr;
  obs::Counter* m_resumes_ = nullptr;
  obs::Counter* m_baselines_ = nullptr;
  obs::Counter* m_digests_ = nullptr;
  obs::Counter* m_degraded_ = nullptr;
  std::array<obs::Counter*, 7> m_indicator_events_{};
  std::array<obs::Counter*, 7> m_indicator_points_{};
  std::array<obs::Counter*, entropy::kBackendCount> m_backend_events_{};
  obs::Histogram* h_sdhash_ = nullptr;
  obs::Histogram* h_entropy_ = nullptr;
  obs::Histogram* h_magic_ = nullptr;
  obs::Histogram* h_dispatch_ = nullptr;
  obs::Histogram* h_close_measure_ = nullptr;
  obs::Gauge* g_processes_ = nullptr;
  obs::Gauge* g_files_ = nullptr;
  obs::Gauge* g_cache_hits_ = nullptr;
  obs::Gauge* g_cache_misses_ = nullptr;
  obs::Gauge* g_cache_entries_ = nullptr;
  obs::Gauge* g_cache_evictions_ = nullptr;
  obs::Gauge* g_pool_acquires_ = nullptr;
  obs::Gauge* g_pool_hits_ = nullptr;
  obs::Gauge* g_pool_bytes_retained_ = nullptr;
};

}  // namespace cryptodrop::core
