#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "vfs/path.hpp"

namespace cryptodrop::core {

std::string_view indicator_name(Indicator ind) {
  switch (ind) {
    case Indicator::entropy_delta: return "entropy_delta";
    case Indicator::type_change: return "type_change";
    case Indicator::similarity_drop: return "similarity_drop";
    case Indicator::deletion: return "deletion";
    case Indicator::funneling: return "funneling";
    case Indicator::union_indication: return "union";
    case Indicator::burst_rate: return "burst_rate";
  }
  return "?";
}

const LatencyStats::PerOp& LatencyStats::for_op(vfs::OpType op) const {
  return const_cast<LatencyStats*>(this)->for_op(op);
}

LatencyStats::PerOp& LatencyStats::for_op(vfs::OpType op) {
  switch (op) {
    case vfs::OpType::open: return open;
    case vfs::OpType::read: return read;
    case vfs::OpType::write: return write;
    case vfs::OpType::truncate: return truncate;
    case vfs::OpType::close: return close;
    case vfs::OpType::remove: return remove;
    case vfs::OpType::rename: return rename;
    case vfs::OpType::mkdir: return mkdir;
  }
  return mkdir;
}

namespace {

/// Accumulates the elapsed scope time into one LatencyStats bucket.
class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyStats::PerOp& bucket)
      : bucket_(bucket), start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatency() {
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    ++bucket_.count;
    bucket_.total_ns += ns;
    bucket_.max_ns = std::max(bucket_.max_ns, ns);
  }

 private:
  LatencyStats::PerOp& bucket_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

AnalysisEngine::AnalysisEngine(ScoringConfig config) : config_(std::move(config)) {}

void AnalysisEngine::set_alert_callback(std::function<void(const Alert&)> callback) {
  alert_callback_ = std::move(callback);
}

void AnalysisEngine::on_attach(vfs::FileSystem& fs) { fs_ = &fs; }

bool AnalysisEngine::under_root(std::string_view path) const {
  if (vfs::path_is_under(path, config_.protected_root)) return true;
  for (const std::string& root : config_.additional_roots) {
    if (vfs::path_is_under(path, root)) return true;
  }
  return false;
}

vfs::ProcessId AnalysisEngine::scoreboard_key(vfs::ProcessId pid) const {
  // Family scoring: all descendants share one reputation entry, so a
  // sample cannot dilute its score across spawned workers and a
  // suspension pauses the whole tree.
  if (config_.enable_family_scoring && fs_ != nullptr) {
    return fs_->process_family_root(pid);
  }
  return pid;
}

AnalysisEngine::ProcessState& AnalysisEngine::state_for(const vfs::OperationEvent& event) {
  auto [it, inserted] = processes_.try_emplace(scoreboard_key(event.pid));
  if (inserted) {
    it->second.name = event.process_name;
    it->second.threshold = config_.score_threshold;
  }
  return it->second;
}

bool AnalysisEngine::is_suspended(vfs::ProcessId pid) const {
  auto it = processes_.find(scoreboard_key(pid));
  return it != processes_.end() && it->second.suspended;
}

int AnalysisEngine::score(vfs::ProcessId pid) const {
  auto it = processes_.find(scoreboard_key(pid));
  return it == processes_.end() ? 0 : it->second.score;
}

std::vector<vfs::ProcessId> AnalysisEngine::observed_processes() const {
  std::vector<vfs::ProcessId> out;
  out.reserve(processes_.size());
  for (const auto& [pid, state] : processes_) {
    (void)state;
    out.push_back(pid);
  }
  return out;
}

ProcessReport AnalysisEngine::process_report(vfs::ProcessId pid) const {
  ProcessReport report;
  report.pid = pid;
  auto it = processes_.find(scoreboard_key(pid));
  if (it == processes_.end()) {
    report.threshold = config_.score_threshold;
    return report;
  }
  const ProcessState& s = it->second;
  report.name = s.name;
  report.score = s.score;
  report.threshold = s.threshold;
  report.suspended = s.suspended;
  report.union_triggered = s.union_triggered;
  report.union_count = s.union_count;
  report.entropy_events = s.entropy_events;
  report.type_change_events = s.type_change_events;
  report.similarity_drop_events = s.similarity_drop_events;
  report.deletion_events = s.deletion_events;
  report.funneling_events = s.funneling_events;
  report.rate_events = s.rate_events;
  report.read_entropy_mean = s.read_mean.mean();
  report.write_entropy_mean = s.write_mean.mean();
  report.read_extensions = s.read_extensions;
  report.write_extensions = s.write_extensions;
  report.timeline = s.timeline;
  return report;
}

void AnalysisEngine::resume_process(vfs::ProcessId pid) {
  auto it = processes_.find(scoreboard_key(pid));
  if (it == processes_.end()) return;
  ProcessState& s = it->second;
  s.suspended = false;
  s.score = 0;
  s.threshold = config_.score_threshold;
  s.saw_entropy = s.saw_type_change = s.saw_similarity_drop = false;
  s.union_triggered = false;
}

// ----------------------------------------------------------------------
// Scoring plumbing
// ----------------------------------------------------------------------

void AnalysisEngine::add_points(ProcessState& proc, vfs::ProcessId pid,
                                Indicator indicator, int points,
                                const std::string& path) {
  proc.score += points;
  if (config_.record_timeline) {
    proc.timeline.push_back(ScoreEvent{op_seq_, indicator, points, path});
  }
  (void)pid;
}

void AnalysisEngine::check_union(ProcessState& proc, vfs::ProcessId pid,
                                 const std::string& path) {
  if (!config_.enable_union) return;
  if (proc.union_triggered) return;
  if (proc.saw_entropy && proc.saw_type_change && proc.saw_similarity_drop) {
    proc.union_triggered = true;
    add_points(proc, pid, Indicator::union_indication, config_.union_bonus, path);
    proc.threshold = std::min(proc.threshold, config_.union_threshold);
    maybe_detect(proc, pid, /*via_union=*/true);
  }
}

void AnalysisEngine::maybe_detect(ProcessState& proc, vfs::ProcessId pid,
                                  bool via_union) {
  if (proc.suspended || proc.score < proc.threshold) return;
  proc.suspended = true;
  if (alert_callback_) {
    Alert alert;
    alert.pid = pid;
    alert.process_name = proc.name;
    alert.score = proc.score;
    alert.threshold = proc.threshold;
    alert.via_union = via_union;
    alert.op_seq = op_seq_;
    alert_callback_(alert);
  }
}

void AnalysisEngine::capture_baseline(vfs::FileId id,
                                      const std::shared_ptr<const Bytes>& content) {
  if (id == vfs::kNoFile || content == nullptr) return;
  auto [it, inserted] = files_.try_emplace(id);
  if (!inserted && it->second.baseline != nullptr) return;  // already tracked
  it->second.baseline = content;
  it->second.baseline_type = magic::identify(ByteView(*content));
  it->second.baseline_digest.reset();
  it->second.digest_attempted = false;
}

void AnalysisEngine::evaluate_modification(
    ProcessState& proc, vfs::ProcessId pid, vfs::FileId id,
    const std::string& path, const std::shared_ptr<const Bytes>& content) {
  auto it = files_.find(id);
  if (it == files_.end() || it->second.baseline == nullptr || content == nullptr) {
    return;
  }
  FileState& file = it->second;
  if (file.baseline == content) {
    // Content untouched (e.g. moved out of and back into the protected
    // tree without modification): no transformation to judge.
    file.pending_check = false;
    return;
  }

  const magic::TypeId type_now = magic::identify(ByteView(*content));
  bool fired_type = false;
  bool fired_similarity = false;
  bool similarity_available = false;

  if (config_.enable_similarity) {
    if (!file.digest_attempted) {
      file.baseline_digest = simhash::SimilarityDigest::compute(ByteView(*file.baseline));
      file.digest_attempted = true;
    }
    if (file.baseline_digest.has_value()) {
      const auto new_digest = simhash::SimilarityDigest::compute(ByteView(*content));
      // Both versions must be digestible; sdhash yields no score for
      // sub-512-byte files, leaving this indicator silent (§V-C).
      if (new_digest.has_value()) {
        similarity_available = true;
        if (file.baseline_digest->compare(*new_digest) <= config_.similarity_drop_max) {
          fired_similarity = true;
          proc.saw_similarity_drop = true;
          ++proc.similarity_drop_events;
          add_points(proc, pid, Indicator::similarity_drop,
                     config_.points_similarity_drop, path);
        }
      }
    }
  }

  if (config_.enable_type_change && type_now != file.baseline_type) {
    fired_type = true;
    proc.saw_type_change = true;
    ++proc.type_change_events;
    int points = config_.points_type_change;
    if (config_.enable_dynamic_scoring && config_.enable_similarity &&
        !similarity_available) {
      // §V-C dynamic scoring: the similarity indicator cannot weigh in
      // on this file (too small to digest), so the one that can counts
      // for more.
      points = static_cast<int>(points * config_.dynamic_unavailable_boost);
    }
    add_points(proc, pid, Indicator::type_change, points, path);
  }

  // Funneling bookkeeping: the process has produced a file of this type.
  proc.write_types.insert(type_now);
  const std::string ext = vfs::path_extension(path);
  if (!ext.empty()) proc.write_extensions.insert(ext);

  // The new content becomes the baseline for the file's next change
  // ("measuring the user's documents before and after each change").
  file.baseline = content;
  file.baseline_type = type_now;
  file.baseline_digest.reset();
  file.digest_attempted = false;
  file.pending_check = false;

  if (fired_type && fired_similarity && proc.saw_entropy) {
    ++proc.union_count;
  }
  check_union(proc, pid, path);
  maybe_detect(proc, pid, /*via_union=*/false);
}

// ----------------------------------------------------------------------
// Filter callbacks
// ----------------------------------------------------------------------

vfs::Verdict AnalysisEngine::pre_operation(const vfs::OperationEvent& event) {
  // A suspended process's disk accesses stay paused until the user
  // resumes it. Closing handles is still permitted (not a disk access).
  if (event.op != vfs::OpType::close && is_suspended(event.pid)) {
    return vfs::Verdict::deny;
  }

  const bool src_protected = under_root(event.path);
  const bool dst_protected =
      event.op == vfs::OpType::rename && under_root(event.dest_path);
  if (!src_protected && !dst_protected) return vfs::Verdict::allow;

  ScopedLatency timer(latency_.for_op(event.op));
  ++op_seq_;
  switch (event.op) {
    case vfs::OpType::open:
      handle_open_pre(event);
      break;
    case vfs::OpType::write:
      handle_write_pre(event);
      break;
    case vfs::OpType::rename:
      handle_rename_pre(event);
      break;
    default:
      break;
  }

  // Points assessed during this pre callback may have crossed the
  // threshold; if so, this very operation is the first one paused.
  if (event.op != vfs::OpType::close && is_suspended(event.pid)) {
    return vfs::Verdict::deny;
  }
  return vfs::Verdict::allow;
}

void AnalysisEngine::post_operation(const vfs::OperationEvent& event,
                                    const Status& outcome) {
  if (!outcome.is_ok()) return;

  const bool src_protected = under_root(event.path);
  const bool dst_protected =
      event.op == vfs::OpType::rename && under_root(event.dest_path);
  if (!src_protected && !dst_protected) return;

  ScopedLatency timer(latency_.for_op(event.op));
  switch (event.op) {
    case vfs::OpType::read:
      handle_read_post(event);
      break;
    case vfs::OpType::close:
      handle_close_post(event);
      break;
    case vfs::OpType::remove:
      handle_remove_post(event);
      break;
    case vfs::OpType::rename:
      handle_rename_post(event);
      break;
    default:
      break;
  }
}

void AnalysisEngine::handle_open_pre(const vfs::OperationEvent& event) {
  if ((event.open_mode & vfs::kWrite) == 0) return;
  if (event.file_id == vfs::kNoFile) return;  // creation: no pre-image
  // Snapshot the pre-image before truncation or the first write can
  // destroy it. Copy-on-write makes this a pointer grab.
  assert(fs_ != nullptr);
  capture_baseline(event.file_id, fs_->read_unfiltered(event.path));
}

int AnalysisEngine::scaled_entropy_points(std::size_t op_bytes, double delta) const {
  const std::size_t full = std::max<std::size_t>(config_.entropy_full_points_bytes, 1);
  double scale = 1.0;
  if (op_bytes < full) {
    scale = static_cast<double>(op_bytes) / static_cast<double>(full);
  }
  if (config_.entropy_full_points_delta > 0.0 &&
      delta < config_.entropy_full_points_delta) {
    scale *= delta / config_.entropy_full_points_delta;
  }
  return std::max(1, static_cast<int>(config_.points_entropy_write * scale));
}

/// Folds write-side content into the process's entropy state and scores
/// the delta check — shared by write ops and by content arriving via an
/// inbound rename (the only write-equivalent a Class B sample exhibits
/// inside the protected tree).
void AnalysisEngine::score_write_entropy(ProcessState& proc, vfs::ProcessId pid,
                                         ByteView data, const std::string& path) {
  if (!config_.enable_entropy) return;
  proc.write_mean.add(data);
  if (proc.read_mean.empty() || proc.write_mean.empty()) return;
  const double delta = proc.write_mean.mean() - proc.read_mean.mean();
  if (delta < config_.entropy_delta_threshold) return;
  proc.saw_entropy = true;
  ++proc.entropy_events;
  add_points(proc, pid, Indicator::entropy_delta,
             scaled_entropy_points(data.size(), delta), path);
  check_union(proc, pid, path);
  maybe_detect(proc, pid, /*via_union=*/false);
}

void AnalysisEngine::note_modification(ProcessState& proc, vfs::ProcessId pid,
                                       std::uint64_t timestamp, vfs::FileId id,
                                       const std::string& path) {
  if (!config_.enable_rate_indicator || id == vfs::kNoFile) return;
  // Expire window entries.
  const std::uint64_t horizon =
      timestamp > config_.rate_window_micros ? timestamp - config_.rate_window_micros : 0;
  while (!proc.recent_mods.empty() && proc.recent_mods.front().first < horizon) {
    auto it = proc.window_file_counts.find(proc.recent_mods.front().second);
    if (it != proc.window_file_counts.end() && --it->second == 0) {
      proc.window_file_counts.erase(it);
    }
    proc.recent_mods.pop_front();
  }
  const bool new_file_in_window = !proc.window_file_counts.contains(id);
  proc.recent_mods.emplace_back(timestamp, id);
  ++proc.window_file_counts[id];
  // Score only when a *new* distinct file joins an already-bursting
  // window, so chunked writes to one file never inflate the count.
  if (new_file_in_window &&
      proc.window_file_counts.size() >= config_.rate_min_files) {
    ++proc.rate_events;
    add_points(proc, pid, Indicator::burst_rate, config_.points_rate, path);
    maybe_detect(proc, pid, /*via_union=*/false);
  }
}

void AnalysisEngine::handle_write_pre(const vfs::OperationEvent& event) {
  ProcessState& proc = state_for(event);
  score_write_entropy(proc, event.pid, event.data, event.path);
  note_modification(proc, event.pid, event.timestamp, event.file_id, event.path);

  // Defer type/similarity comparison to close, when the content is whole.
  auto it = files_.find(event.file_id);
  if (it != files_.end() && it->second.baseline != nullptr) {
    it->second.pending_check = true;
  }
}

void AnalysisEngine::handle_read_post(const vfs::OperationEvent& event) {
  ProcessState& proc = state_for(event);
  if (config_.enable_entropy) {
    proc.read_mean.add(event.data);
  }
  if (event.offset == 0 && !event.data.empty()) {
    proc.read_types.insert(magic::identify(event.data));
    const std::string ext = vfs::path_extension(event.path);
    if (!ext.empty()) proc.read_extensions.insert(ext);
  }

  if (config_.enable_funneling && !proc.funneling_fired &&
      proc.read_types.size() >= config_.funnel_min_read_types &&
      !proc.write_types.empty() &&
      proc.read_types.size() >=
          proc.write_types.size() + config_.funnel_type_gap) {
    proc.funneling_fired = true;
    ++proc.funneling_events;
    add_points(proc, event.pid, Indicator::funneling, config_.points_funneling,
               event.path);
    maybe_detect(proc, event.pid, /*via_union=*/false);
  }
}

void AnalysisEngine::handle_close_post(const vfs::OperationEvent& event) {
  if (!event.wrote) return;
  ProcessState& proc = state_for(event);
  assert(fs_ != nullptr);
  const auto content = fs_->read_unfiltered(event.path);

  auto it = files_.find(event.file_id);
  if (it != files_.end() && it->second.baseline != nullptr && it->second.pending_check) {
    evaluate_modification(proc, event.pid, event.file_id, event.path, content);
    return;
  }

  // Newly created file: no pre-image to compare, but it still counts as
  // written output for funneling, and becomes tracked from here on.
  if (content != nullptr) {
    const magic::TypeId type_now = magic::identify(ByteView(*content));
    proc.write_types.insert(type_now);
    const std::string ext = vfs::path_extension(event.path);
    if (!ext.empty()) proc.write_extensions.insert(ext);
    capture_baseline(event.file_id, content);
  }
}

void AnalysisEngine::handle_remove_post(const vfs::OperationEvent& event) {
  ProcessState& proc = state_for(event);
  note_modification(proc, event.pid, event.timestamp, event.file_id, event.path);
  if (config_.enable_deletion) {
    ++proc.deletion_events;
    add_points(proc, event.pid, Indicator::deletion, config_.points_deletion,
               event.path);
    maybe_detect(proc, event.pid, /*via_union=*/false);
  }
  files_.erase(event.file_id);
}

void AnalysisEngine::handle_rename_pre(const vfs::OperationEvent& event) {
  assert(fs_ != nullptr);
  // Track the source's content as it moves (Class B: "the state of the
  // file must be carefully tracked each time a file is moved").
  if (under_root(event.path)) {
    capture_baseline(event.file_id, fs_->read_unfiltered(event.path));
  }
  // A replacement destroys the destination's content: snapshot it so the
  // incoming content can be judged against it (Class C move-over).
  if (event.dest_file_id != vfs::kNoFile && under_root(event.dest_path)) {
    capture_baseline(event.dest_file_id, fs_->read_unfiltered(event.dest_path));
  }
}

void AnalysisEngine::handle_rename_post(const vfs::OperationEvent& event) {
  ProcessState& proc = state_for(event);
  assert(fs_ != nullptr);
  const bool src_protected = under_root(event.path);
  const bool dst_protected = under_root(event.dest_path);
  const auto content = fs_->read_unfiltered(event.dest_path);

  if (dst_protected && event.dest_file_id != vfs::kNoFile) {
    // Replacement: the incoming file (event.file_id) now sits where the
    // old file (dest_file_id) was. Judge the new content against the
    // *replaced* file's pre-image — this is the linkage that catches the
    // 41/63 Class C samples that move ciphertext over the original.
    evaluate_modification(proc, event.pid, event.dest_file_id, event.dest_path, content);
    // The replaced file's identity is gone; the survivor keeps tracking
    // under its own id with its current content as baseline.
    files_.erase(event.dest_file_id);
    files_.erase(event.file_id);
    capture_baseline(event.file_id, content);
    return;
  }

  if (dst_protected && !src_protected) {
    // A file re-entering the protected tree (Class B return trip). Its
    // content arriving counts as data written into the protected area:
    // fold it into the write-entropy mean, then compare against the
    // tracked pre-departure state.
    if (content != nullptr && !content->empty()) {
      score_write_entropy(proc, event.pid, ByteView(*content), event.dest_path);
    }
    note_modification(proc, event.pid, event.timestamp, event.file_id, event.dest_path);
    evaluate_modification(proc, event.pid, event.file_id, event.dest_path, content);
    maybe_detect(proc, event.pid, /*via_union=*/false);
    return;
  }

  if (src_protected && !dst_protected) {
    // Departure from the protected tree: the content leaving is the
    // read-side counterpart of the inbound fold above (a Class B sample
    // "reads" the user's data by carrying it out). Baseline was captured
    // in the pre callback; evaluation happens on return.
    if (config_.enable_entropy) {
      const auto departing = fs_->read_unfiltered(event.dest_path);
      if (departing != nullptr && !departing->empty()) {
        proc.read_mean.add(ByteView(*departing));
      }
    }
    auto it = files_.find(event.file_id);
    if (it != files_.end()) it->second.pending_check = true;
    return;
  }

  // Move within the protected tree without replacement: content is
  // untouched; evaluate only if a write already flagged it.
  auto it = files_.find(event.file_id);
  if (it != files_.end() && it->second.pending_check) {
    evaluate_modification(proc, event.pid, event.file_id, event.dest_path, content);
  }
}

}  // namespace cryptodrop::core
