#include "core/engine.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "common/buffer_pool.hpp"
#include "obs/span.hpp"
#include "simhash/digest_cache.hpp"
#include "vfs/path.hpp"

namespace cryptodrop::core {

std::string_view indicator_name(Indicator ind) {
  switch (ind) {
    case Indicator::entropy_delta: return "entropy_delta";
    case Indicator::type_change: return "type_change";
    case Indicator::similarity_drop: return "similarity_drop";
    case Indicator::deletion: return "deletion";
    case Indicator::funneling: return "funneling";
    case Indicator::union_indication: return "union";
    case Indicator::burst_rate: return "burst_rate";
  }
  return "?";
}

const LatencyStats::PerOp& LatencyStats::for_op(vfs::OpType op) const {
  return const_cast<LatencyStats*>(this)->for_op(op);
}

LatencyStats::PerOp& LatencyStats::for_op(vfs::OpType op) {
  switch (op) {
    case vfs::OpType::open: return open;
    case vfs::OpType::read: return read;
    case vfs::OpType::write: return write;
    case vfs::OpType::truncate: return truncate;
    case vfs::OpType::close: return close;
    case vfs::OpType::remove: return remove;
    case vfs::OpType::rename: return rename;
    case vfs::OpType::mkdir: return mkdir;
  }
  return mkdir;
}

const ProcessReport* EngineSnapshot::find(vfs::ProcessId pid) const {
  const auto it = std::lower_bound(
      processes.begin(), processes.end(), pid,
      [](const ProcessReport& r, vfs::ProcessId p) { return r.pid < p; });
  return it != processes.end() && it->pid == pid ? &*it : nullptr;
}

ProcessReport EngineSnapshot::report_for(vfs::ProcessId pid) const {
  if (const ProcessReport* report = find(pid)) return *report;
  ProcessReport report;
  report.pid = pid;
  report.threshold = default_threshold;
  return report;
}

namespace {

/// Accumulates the elapsed scope time into one LatencyStats bucket,
/// serialized by the engine's latency mutex at scope exit. The same
/// timestamps feed the lock-free dispatch histogram (if given) so the
/// metrics layer adds no clock reads of its own to the dispatch path.
class ScopedLatency {
 public:
  ScopedLatency(LatencyStats& stats, LatencyMutex& mu, vfs::OpType op,
                obs::Histogram* dispatch_hist = nullptr)
      : stats_(stats), mu_(mu), op_(op), hist_(dispatch_hist),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatency() {
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    if constexpr (obs::kMetricsEnabled) {
      if (hist_ != nullptr) hist_->record(static_cast<double>(ns) / 1000.0);
    }
    std::lock_guard lock(mu_);
    LatencyStats::PerOp& bucket = stats_.for_op(op_);
    ++bucket.count;
    bucket.total_ns += ns;
    bucket.max_ns = std::max(bucket.max_ns, ns);
  }

 private:
  LatencyStats& stats_;
  LatencyMutex& mu_;
  vfs::OpType op_;
  obs::Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Alerts raised while scoreboard locks are held are parked here and
/// delivered after the locks are released (so a callback may query the
/// engine freely). The sink is scoped to one pre/post callback; engine
/// callbacks never nest on a thread, so one slot suffices.
thread_local std::vector<Alert>* t_alert_sink = nullptr;

/// Maps a scoring indicator onto its forensic timeline event kind (the
/// first seven TimelineEventKind values mirror the Indicator enum).
obs::TimelineEventKind timeline_kind(Indicator ind) {
  switch (ind) {
    case Indicator::entropy_delta: return obs::TimelineEventKind::entropy_delta;
    case Indicator::type_change: return obs::TimelineEventKind::type_change;
    case Indicator::similarity_drop: return obs::TimelineEventKind::similarity_drop;
    case Indicator::deletion: return obs::TimelineEventKind::deletion;
    case Indicator::funneling: return obs::TimelineEventKind::funneling;
    case Indicator::union_indication: return obs::TimelineEventKind::union_indication;
    case Indicator::burst_rate: return obs::TimelineEventKind::burst_rate;
  }
  return obs::TimelineEventKind::entropy_delta;
}

class AlertScope {
 public:
  explicit AlertScope(const std::function<void(const Alert&)>& callback)
      : callback_(callback) {
    previous_ = t_alert_sink;
    t_alert_sink = &fired_;
  }
  ~AlertScope() {
    t_alert_sink = previous_;
    if (callback_) {
      for (const Alert& alert : fired_) callback_(alert);
    }
  }

 private:
  const std::function<void(const Alert&)>& callback_;
  std::vector<Alert> fired_;
  std::vector<Alert>* previous_ = nullptr;
};

}  // namespace

AnalysisEngine::AnalysisEngine(ScoringConfig config) : config_(std::move(config)) {
  const Status valid = config_.validate();
  if (!valid.is_ok()) {
    throw std::invalid_argument("invalid ScoringConfig: " + valid.to_string());
  }
  entropy_members_ = config_.entropy.active_members();
  entropy::BackendOptions options;
  options.daa_window_bytes = config_.entropy.daa_window_bytes;
  for (const EnsembleMember& member : entropy_members_) {
    entropy_backends_.push_back(entropy::make_backend(member.backend, options));
    entropy_weight_total_ += member.weight;
  }
  register_metrics();
}

void AnalysisEngine::register_metrics() {
  // Names, units and help strings here are the schema of record; the
  // docs-check tool cross-checks docs/OBSERVABILITY.md against this list.
  m_ops_observed_ = &metrics_.counter(
      "ops_observed_total",
      "Filtered operations observed under a protected root", "operations");
  m_ops_denied_ = &metrics_.counter(
      "ops_denied_total",
      "Operations denied because the issuing process was suspended",
      "operations");
  m_suspensions_ = &metrics_.counter(
      "suspensions_total", "Detection verdicts (processes newly suspended)",
      "processes");
  m_resumes_ = &metrics_.counter(
      "resumes_total", "User resume decisions applied to suspended processes",
      "processes");
  m_baselines_ = &metrics_.counter(
      "baselines_captured_total", "Pre-modification file baselines captured",
      "files");
  m_digests_ = &metrics_.counter(
      "similarity_digests_total",
      "Similarity digests obtained (computed, or served by the shared cache)",
      "digests");
  m_degraded_ = &metrics_.counter(
      "degraded_measurements_total",
      "Measurements skipped because an input was unavailable (unreadable "
      "content or an undigestible version); the indicator stays silent",
      "measurements");
  static constexpr Indicator kAll[] = {
      Indicator::entropy_delta,  Indicator::type_change,
      Indicator::similarity_drop, Indicator::deletion,
      Indicator::funneling,       Indicator::union_indication,
      Indicator::burst_rate,
  };
  for (Indicator ind : kAll) {
    const std::string label(indicator_name(ind));
    const auto idx = static_cast<std::size_t>(ind);
    m_indicator_events_[idx] = &metrics_.counter(
        "indicator_events_total." + label,
        "Score events attributed to the " + label + " indicator", "events");
    m_indicator_points_[idx] = &metrics_.counter(
        "points_assessed_total." + label,
        "Reputation points assessed by the " + label + " indicator", "points");
  }
  // Per-backend entropy vote counters are registered for every backend
  // the project knows (not just the configured members): docs_check
  // requires a default engine to register the complete schema, and a
  // constant shape keeps snapshots comparable across configs.
  for (entropy::BackendKind kind : entropy::all_backend_kinds()) {
    const std::string label(entropy::backend_name(kind));
    m_backend_events_[static_cast<std::size_t>(kind)] = &metrics_.counter(
        "entropy_backend_events_total." + label,
        "Entropy score events where the " + label + " backend's delta vote "
        "fired", "events");
  }
  const std::vector<double> buckets = obs::MetricsRegistry::latency_buckets_us();
  h_sdhash_ = &metrics_.histogram(
      "stage_latency_us.sdhash_digest",
      "Wall time obtaining one similarity digest", "microseconds", buckets);
  h_entropy_ = &metrics_.histogram(
      "stage_latency_us.entropy",
      "Wall time folding one buffer into an entropy mean", "microseconds",
      buckets);
  h_magic_ = &metrics_.histogram(
      "stage_latency_us.magic_sniff",
      "Wall time identifying one buffer's file type", "microseconds", buckets);
  h_dispatch_ = &metrics_.histogram(
      "stage_latency_us.filter_dispatch",
      "Wall time of one whole engine pre/post filter callback", "microseconds",
      buckets);
  h_close_measure_ = &metrics_.histogram(
      "stage_latency_us.close_measure",
      "Wall time of one measured close (content re-read, re-digest, "
      "indicator comparison)", "microseconds", buckets);
  g_processes_ = &metrics_.gauge(
      "processes_tracked", "Scoreboard entries at the last snapshot",
      "processes");
  g_files_ = &metrics_.gauge(
      "files_tracked", "Files with a captured baseline at the last snapshot",
      "files");
  g_cache_hits_ = &metrics_.gauge(
      "digest_cache_hits", "Shared digest-cache hits (process-wide cache)",
      "lookups");
  g_cache_misses_ = &metrics_.gauge(
      "digest_cache_misses", "Shared digest-cache misses (process-wide cache)",
      "lookups");
  g_cache_entries_ = &metrics_.gauge(
      "digest_cache_entries", "Digests resident in the shared cache",
      "digests");
  g_cache_evictions_ = &metrics_.gauge(
      "digest_cache_evictions", "Digests evicted from the shared cache",
      "digests");
  g_pool_acquires_ = &metrics_.gauge(
      "buffer_pool_acquires", "Scratch-buffer acquisitions (process-wide pool)",
      "buffers");
  g_pool_hits_ = &metrics_.gauge(
      "buffer_pool_hits",
      "Scratch-buffer acquisitions served from a per-thread freelist",
      "buffers");
  g_pool_bytes_retained_ = &metrics_.gauge(
      "buffer_pool_bytes_retained",
      "Scratch capacity currently parked on per-thread freelists", "bytes");
}

void AnalysisEngine::set_alert_callback(std::function<void(const Alert&)> callback) {
  alert_callback_ = std::move(callback);
}

void AnalysisEngine::on_attach(vfs::FileSystem& fs) {
  fs_ = &fs;
  tracer_ = fs.span_tracer();
}

bool AnalysisEngine::under_root(std::string_view path) const {
  if (vfs::path_is_under(path, config_.protected_root)) return true;
  for (const std::string& root : config_.additional_roots) {
    if (vfs::path_is_under(path, root)) return true;
  }
  return false;
}

vfs::ProcessId AnalysisEngine::scoreboard_key(vfs::ProcessId pid) const {
  // Family scoring: all descendants share one reputation entry, so a
  // sample cannot dilute its score across spawned workers and a
  // suspension pauses the whole tree.
  if (config_.enable_family_scoring && fs_ != nullptr) {
    return fs_->process_family_root(pid);
  }
  return pid;
}

AnalysisEngine::LockedProcess AnalysisEngine::lock_state_for(
    const vfs::OperationEvent& event) {
  LockedProcess locked;
  locked.key = scoreboard_key(event.pid);
  ScoreboardShard& shard = shard_for_key(locked.key);
  locked.lock = std::unique_lock<ScoreboardMutex>(shard.mu);
  auto [it, inserted] = shard.states.try_emplace(locked.key);
  if (inserted) {
    it->second.name = event.process_name;
    it->second.threshold = config_.score_threshold;
    it->second.forensic = obs::TimelineRing(
        config_.record_timeline ? config_.timeline_capacity : 0);
    it->second.read_means.resize(entropy_members_.size());
    it->second.write_means.resize(entropy_members_.size());
  }
  locked.proc = &it->second;
  return locked;
}

bool AnalysisEngine::is_suspended(vfs::ProcessId pid) const {
  const vfs::ProcessId key = scoreboard_key(pid);
  ScoreboardShard& shard = shard_for_key(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.states.find(key);
  return it != shard.states.end() && it->second.suspended;
}

int AnalysisEngine::score(vfs::ProcessId pid) const {
  const vfs::ProcessId key = scoreboard_key(pid);
  ScoreboardShard& shard = shard_for_key(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.states.find(key);
  return it == shard.states.end() ? 0 : it->second.score;
}

ProcessReport AnalysisEngine::process_report(vfs::ProcessId pid) const {
  const vfs::ProcessId key = scoreboard_key(pid);
  ScoreboardShard& shard = shard_for_key(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.states.find(key);
  if (it == shard.states.end()) {
    ProcessReport report;
    report.pid = pid;
    report.threshold = config_.score_threshold;
    return report;
  }
  const ProcessState& s = it->second;
  ProcessReport report;
  report.pid = pid;
  report.name = s.name;
  report.score = s.score;
  report.threshold = s.threshold;
  report.suspended = s.suspended;
  report.union_triggered = s.union_triggered;
  report.union_count = s.union_count;
  report.entropy_events = s.entropy_events;
  report.type_change_events = s.type_change_events;
  report.similarity_drop_events = s.similarity_drop_events;
  report.deletion_events = s.deletion_events;
  report.funneling_events = s.funneling_events;
  report.rate_events = s.rate_events;
  if (!s.read_means.empty()) report.read_entropy_mean = s.read_means[0].mean();
  if (!s.write_means.empty()) report.write_entropy_mean = s.write_means[0].mean();
  report.read_extensions = s.read_extensions;
  report.write_extensions = s.write_extensions;
  report.timeline = s.timeline;
  report.forensic = make_forensic(key, s);
  return report;
}

obs::ForensicTimeline AnalysisEngine::make_forensic(vfs::ProcessId key,
                                                    const ProcessState& proc) const {
  obs::ForensicTimeline timeline;
  timeline.pid = key;
  timeline.process_name = proc.name;
  timeline.suspended = proc.suspended;
  timeline.final_score = proc.score;
  timeline.threshold = proc.threshold;
  timeline.events_recorded = proc.forensic.total_recorded();
  timeline.events_dropped = proc.forensic.dropped();
  timeline.events.assign(proc.forensic.events().begin(),
                         proc.forensic.events().end());
  return timeline;
}

obs::ForensicTimeline AnalysisEngine::explain(vfs::ProcessId pid) const {
  const vfs::ProcessId key = scoreboard_key(pid);
  ScoreboardShard& shard = shard_for_key(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.states.find(key);
  if (it == shard.states.end()) {
    obs::ForensicTimeline timeline;
    timeline.pid = key;
    timeline.threshold = config_.score_threshold;
    return timeline;
  }
  return make_forensic(key, it->second);
}

void AnalysisEngine::refresh_gauges(std::size_t tracked_processes) const {
  g_processes_->set(static_cast<double>(tracked_processes));
  std::size_t files = 0;
  for (const FileShard& shard : file_shards_) {
    std::lock_guard lock(shard.mu);
    files += shard.files.size();
  }
  g_files_->set(static_cast<double>(files));
  if (config_.share_digest_cache) {
    const simhash::DigestCacheStats stats = simhash::DigestCache::global().stats();
    g_cache_hits_->set(static_cast<double>(stats.hits));
    g_cache_misses_->set(static_cast<double>(stats.misses));
    g_cache_entries_->set(static_cast<double>(stats.entries));
    g_cache_evictions_->set(static_cast<double>(stats.evictions));
  }
  const BufferPoolStats pool = buffer_pool_stats();
  g_pool_acquires_->set(static_cast<double>(pool.acquires));
  g_pool_hits_->set(static_cast<double>(pool.hits));
  g_pool_bytes_retained_->set(static_cast<double>(pool.bytes_retained));
}

obs::MetricsSnapshot AnalysisEngine::metrics_snapshot() const {
  std::size_t processes = 0;
  for (const ScoreboardShard& shard : scoreboard_shards_) {
    std::lock_guard lock(shard.mu);
    processes += shard.states.size();
  }
  refresh_gauges(processes);
  return metrics_.snapshot();
}

EngineSnapshot AnalysisEngine::snapshot() const {
  EngineSnapshot snap;
  snap.default_threshold = config_.score_threshold;

  // Stop the world: take every scoreboard shard in index order (the
  // only place more than one scoreboard lock is ever held — see the
  // lock-order contract in DESIGN.md §9).
  std::array<std::unique_lock<ScoreboardMutex>, kScoreboardShards> locks;
  for (std::size_t i = 0; i < kScoreboardShards; ++i) {
    locks[i] = std::unique_lock<ScoreboardMutex>(scoreboard_shards_[i].mu);
  }
  snap.observed_ops = op_seq_.load(std::memory_order_relaxed);
  for (const ScoreboardShard& shard : scoreboard_shards_) {
    for (const auto& [key, s] : shard.states) {
      ProcessReport report;
      report.pid = key;
      report.name = s.name;
      report.score = s.score;
      report.threshold = s.threshold;
      report.suspended = s.suspended;
      report.union_triggered = s.union_triggered;
      report.union_count = s.union_count;
      report.entropy_events = s.entropy_events;
      report.type_change_events = s.type_change_events;
      report.similarity_drop_events = s.similarity_drop_events;
      report.deletion_events = s.deletion_events;
      report.funneling_events = s.funneling_events;
      report.rate_events = s.rate_events;
      if (!s.read_means.empty()) {
        report.read_entropy_mean = s.read_means[0].mean();
      }
      if (!s.write_means.empty()) {
        report.write_entropy_mean = s.write_means[0].mean();
      }
      report.read_extensions = s.read_extensions;
      report.write_extensions = s.write_extensions;
      report.timeline = s.timeline;
      report.forensic = make_forensic(key, s);
      snap.processes.push_back(std::move(report));
    }
  }
  for (std::size_t i = kScoreboardShards; i > 0; --i) locks[i - 1].unlock();

  std::sort(snap.processes.begin(), snap.processes.end(),
            [](const ProcessReport& a, const ProcessReport& b) { return a.pid < b.pid; });
  {
    std::lock_guard lock(latency_mu_);
    snap.latency = latency_;
  }
  refresh_gauges(snap.processes.size());
  snap.metrics = metrics_.snapshot();
  return snap;
}

LatencyStats AnalysisEngine::latency_stats() const {
  std::lock_guard lock(latency_mu_);
  return latency_;
}

void AnalysisEngine::resume_process(vfs::ProcessId pid) {
  const vfs::ProcessId key = scoreboard_key(pid);
  ScoreboardShard& shard = shard_for_key(key);
  std::lock_guard lock(shard.mu);
  auto it = shard.states.find(key);
  if (it == shard.states.end()) return;
  ProcessState& s = it->second;
  const int score_before = s.score;
  s.suspended = false;
  s.score = 0;
  s.threshold = config_.score_threshold;
  s.saw_entropy = s.saw_type_change = s.saw_similarity_drop = false;
  s.union_triggered = false;
  m_resumes_->add();
  obs::TimelineEvent event;
  event.op_seq = op_seq_.load(std::memory_order_relaxed);
  event.kind = obs::TimelineEventKind::resume;
  event.score_before = score_before;
  event.score_after = 0;
  event.detail = s.threshold;
  event.note = "user resumed the process; reputation reset";
  s.forensic.push(std::move(event));
}

// ----------------------------------------------------------------------
// Scoring plumbing (callers hold the process's scoreboard shard lock)
// ----------------------------------------------------------------------

void AnalysisEngine::add_points(ProcessState& proc, vfs::ProcessId pid,
                                Indicator indicator, int points,
                                const std::string& path, double detail,
                                std::string note, std::string backend) {
  const int score_before = proc.score;
  proc.score += points;
  // The score-update span's payload is its args (the event itself), not
  // its duration; every value is deterministic.
  obs::ScopedSpan span(obs::span_name::kScoreUpdate);
  if (span.active()) {
    span.arg("indicator", indicator_name(indicator));
    span.arg("points", static_cast<double>(points));
    span.arg("score_after", static_cast<double>(proc.score));
  }
  const auto idx = static_cast<std::size_t>(indicator);
  m_indicator_events_[idx]->add();
  m_indicator_points_[idx]->add(static_cast<std::uint64_t>(std::max(points, 0)));
  if (config_.record_timeline) {
    const std::uint64_t op_seq = op_seq_.load(std::memory_order_relaxed);
    proc.timeline.push_back(
        ScoreEvent{op_seq, indicator, points, path, std::move(backend)});
    obs::TimelineEvent event;
    event.op_seq = op_seq;
    event.kind = timeline_kind(indicator);
    event.points = points;
    event.score_before = score_before;
    event.score_after = proc.score;
    event.path = path;
    event.detail = detail;
    event.note = std::move(note);
    proc.forensic.push(std::move(event));
  }
  (void)pid;
}

void AnalysisEngine::check_union(ProcessState& proc, vfs::ProcessId pid,
                                 const std::string& path) {
  if (!config_.enable_union) return;
  if (proc.union_triggered) return;
  if (proc.saw_entropy && proc.saw_type_change && proc.saw_similarity_drop) {
    proc.union_triggered = true;
    add_points(proc, pid, Indicator::union_indication, config_.union_bonus, path,
               /*detail=*/config_.union_threshold,
               "all three primary indicators have fired; threshold lowered");
    proc.threshold = std::min(proc.threshold, config_.union_threshold);
    maybe_detect(proc, pid, /*via_union=*/true);
  }
}

void AnalysisEngine::maybe_detect(ProcessState& proc, vfs::ProcessId pid,
                                  bool via_union) {
  if (proc.suspended || proc.score < proc.threshold) return;
  proc.suspended = true;
  m_suspensions_->add();
  obs::ScopedSpan span(obs::span_name::kVerdict);
  if (span.active()) {
    span.arg("score", static_cast<double>(proc.score));
    span.arg("threshold", static_cast<double>(proc.threshold));
    span.arg("via_union", via_union ? "true" : "false");
  }
  if (tracer_ != nullptr) {
    // Keep-all from here on: the suspended process's denial tail is the
    // part of the story a sampled trace must never drop.
    tracer_->force_pid(pid);
  }
  {
    // Terminal verdict event: every explainable timeline ends with one.
    obs::TimelineEvent event;
    event.op_seq = op_seq_.load(std::memory_order_relaxed);
    event.kind = obs::TimelineEventKind::suspension;
    event.score_before = proc.score;
    event.score_after = proc.score;
    event.detail = proc.threshold;
    event.note = via_union ? "score crossed the union-lowered threshold"
                           : "score crossed the detection threshold";
    proc.forensic.push(std::move(event));
  }
  Alert alert;
  alert.pid = pid;
  alert.process_name = proc.name;
  alert.score = proc.score;
  alert.threshold = proc.threshold;
  alert.via_union = via_union;
  alert.op_seq = op_seq_.load(std::memory_order_relaxed);
  if (t_alert_sink != nullptr) {
    // Normal path: deliver after the enclosing pre/post callback has
    // released its locks.
    t_alert_sink->push_back(std::move(alert));
  } else if (alert_callback_) {
    alert_callback_(alert);
  }
}

void AnalysisEngine::capture_baseline(vfs::FileId id,
                                      const std::shared_ptr<const Bytes>& content) {
  if (id == vfs::kNoFile) return;
  if (content == nullptr) {
    // The file exists but its content could not be read back (e.g. the
    // volume is misbehaving): degraded — no pre-image this round, but
    // the engine stays alive and may capture one on a later operation.
    m_degraded_->add();
    return;
  }
  FileShard& shard = shard_for_file(id);
  std::lock_guard lock(shard.mu);
  auto [it, inserted] = shard.files.try_emplace(id);
  if (!inserted && it->second.baseline != nullptr) return;  // already tracked
  it->second.baseline = content;
  it->second.baseline_type = sniff_type(ByteView(*content));
  it->second.baseline_digest.reset();
  it->second.digest_attempted = false;
  m_baselines_->add();
}

magic::TypeId AnalysisEngine::sniff_type(ByteView data) const {
  obs::ScopedSpan span(obs::span_name::kMagicSniff);
  obs::ScopedTimer timer(h_magic_);
  const magic::TypeId type = magic::identify(data);
  if (span.active()) span.arg("type", magic::type_name(type));
  return type;
}

void AnalysisEngine::forget_file(vfs::FileId id) {
  if (id == vfs::kNoFile) return;
  FileShard& shard = shard_for_file(id);
  std::lock_guard lock(shard.mu);
  shard.files.erase(id);
}

bool AnalysisEngine::mark_pending_check(vfs::FileId id) {
  if (id == vfs::kNoFile) return false;
  FileShard& shard = shard_for_file(id);
  std::lock_guard lock(shard.mu);
  auto it = shard.files.find(id);
  if (it == shard.files.end() || it->second.baseline == nullptr) return false;
  it->second.pending_check = true;
  return true;
}

std::optional<simhash::SimilarityDigest> AnalysisEngine::baseline_digest_for(
    ByteView data) const {
  // Both baseline and post-modification digests flow through here.
  // Corpus baselines recur across trials (the zoo reuses one corpus for
  // hundreds of runs) and modified content recurs within runs (autosave
  // rotations, identically keyed re-encryption); the shared cache
  // computes each distinct content's digest once, process-wide.
  obs::ScopedSpan span(obs::span_name::kSdhashDigest);
  if (span.active()) span.arg("bytes", static_cast<double>(data.size()));
  obs::ScopedTimer timer(h_sdhash_);
  m_digests_->add();
  if (config_.share_digest_cache) {
    return simhash::DigestCache::global().get_or_compute(data);
  }
  return simhash::SimilarityDigest::compute(data);
}

void AnalysisEngine::evaluate_modification(
    ProcessState& proc, vfs::ProcessId pid, vfs::FileId id,
    const std::string& path, const std::shared_ptr<const Bytes>& content) {
  if (id == vfs::kNoFile) return;
  if (content == nullptr) {
    // Post-modification content unreadable: the type/similarity checks
    // cannot run. Skip them (degraded), keep the baseline for the next
    // attempt rather than crashing or comparing against garbage.
    m_degraded_->add();
    return;
  }
  FileShard& shard = shard_for_file(id);
  std::lock_guard file_lock(shard.mu);
  auto it = shard.files.find(id);
  if (it == shard.files.end() || it->second.baseline == nullptr) return;
  FileState& file = it->second;
  if (file.baseline == content) {
    // Content untouched (e.g. moved out of and back into the protected
    // tree without modification): no transformation to judge.
    file.pending_check = false;
    return;
  }

  const magic::TypeId type_now = sniff_type(ByteView(*content));
  bool fired_type = false;
  bool fired_similarity = false;
  bool similarity_available = false;
  std::optional<simhash::SimilarityDigest> new_digest;
  bool new_digest_computed = false;

  if (config_.enable_similarity) {
    if (!file.digest_attempted) {
      file.baseline_digest = baseline_digest_for(ByteView(*file.baseline));
      file.digest_attempted = true;
      // Undigestible baseline (sub-512-byte files yield no sdhash):
      // similarity is silent for this file until the baseline changes.
      if (!file.baseline_digest.has_value()) m_degraded_->add();
    }
    if (file.baseline_digest.has_value()) {
      // Through the shared cache like the baseline digest: repeated
      // content (autosave rotations, re-encryption of one corpus across
      // trials) then costs one SHA-256 key instead of a full rolling
      // feature scan. The cache is content-addressed, so a hit can
      // never be stale (tests/chaos_test.cpp pins truncate-then-rewrite).
      new_digest = baseline_digest_for(ByteView(*content));
      new_digest_computed = true;
      // Both versions must be digestible; sdhash yields no score for
      // sub-512-byte files, leaving this indicator silent (§V-C).
      if (!new_digest.has_value()) m_degraded_->add();
      if (new_digest.has_value()) {
        similarity_available = true;
        int similarity = 0;
        {
          obs::ScopedSpan compare_span(obs::span_name::kSdhashCompare);
          similarity = file.baseline_digest->compare(*new_digest);
          if (compare_span.active()) {
            compare_span.arg("score", static_cast<double>(similarity));
          }
        }
        if (similarity <= config_.similarity_drop_max) {
          fired_similarity = true;
          proc.saw_similarity_drop = true;
          ++proc.similarity_drop_events;
          add_points(proc, pid, Indicator::similarity_drop,
                     config_.points_similarity_drop, path,
                     /*detail=*/similarity,
                     "post-modification sdhash score vs. baseline");
        }
      }
    }
  }

  if (config_.enable_type_change && type_now != file.baseline_type) {
    fired_type = true;
    proc.saw_type_change = true;
    ++proc.type_change_events;
    int points = config_.points_type_change;
    std::string note = std::string(magic::type_name(file.baseline_type)) +
                       " -> " + std::string(magic::type_name(type_now));
    if (config_.enable_dynamic_scoring && config_.enable_similarity &&
        !similarity_available) {
      // §V-C dynamic scoring: the similarity indicator cannot weigh in
      // on this file (too small to digest), so the one that can counts
      // for more.
      points = static_cast<int>(points * config_.dynamic_unavailable_boost);
      note += " (boosted: similarity unavailable)";
    }
    add_points(proc, pid, Indicator::type_change, points, path, /*detail=*/0.0,
               std::move(note));
  }

  // Funneling bookkeeping: the process has produced a file of this type.
  proc.write_types.insert(type_now);
  const std::string ext = vfs::path_extension(path);
  if (!ext.empty()) proc.write_extensions.insert(ext);

  // The new content becomes the baseline for the file's next change
  // ("measuring the user's documents before and after each change").
  file.baseline = content;
  file.baseline_type = type_now;
  if (new_digest_computed && new_digest.has_value()) {
    // The digest of the content that just became the baseline was
    // computed three lines ago for the similarity comparison. Dropping
    // it here was the close-path outlier: the *next* measured close of
    // this file re-digested the identical bytes from scratch, roughly
    // doubling (on cache hit, ~tripling) the cost of every close after
    // the first. Keep it — same value the reset path would recompute.
    file.baseline_digest = std::move(new_digest);
    file.digest_attempted = true;
  } else {
    file.baseline_digest.reset();
    file.digest_attempted = false;
  }
  file.pending_check = false;

  if (fired_type && fired_similarity && proc.saw_entropy) {
    ++proc.union_count;
  }
  check_union(proc, pid, path);
  maybe_detect(proc, pid, /*via_union=*/false);
}

// ----------------------------------------------------------------------
// Filter callbacks
// ----------------------------------------------------------------------

// cryptodrop:hot
vfs::Verdict AnalysisEngine::pre_operation(const vfs::OperationEvent& event) {
  AlertScope alerts(alert_callback_);
  // A suspended process's disk accesses stay paused until the user
  // resumes it. Closing handles is still permitted (not a disk access).
  if (event.op != vfs::OpType::close && is_suspended(event.pid)) {
    m_ops_denied_->add();
    return vfs::Verdict::deny;
  }

  const bool src_protected = under_root(event.path);
  const bool dst_protected =
      event.op == vfs::OpType::rename && under_root(event.dest_path);
  if (!src_protected && !dst_protected) return vfs::Verdict::allow;

  ScopedLatency timer(latency_, latency_mu_, event.op, h_dispatch_);
  op_seq_.fetch_add(1, std::memory_order_relaxed);
  m_ops_observed_->add();
  switch (event.op) {
    case vfs::OpType::open:
      handle_open_pre(event);
      break;
    case vfs::OpType::truncate:
      handle_truncate_pre(event);
      break;
    case vfs::OpType::rename:
      handle_rename_pre(event);
      break;
    default:
      // Writes capture no pre-image (open already did) and are scored
      // exclusively in the post callback, once the bytes actually land.
      break;
  }

  // Points assessed during this pre callback may have crossed the
  // threshold; if so, this very operation is the first one paused.
  if (event.op != vfs::OpType::close && is_suspended(event.pid)) {
    m_ops_denied_->add();
    return vfs::Verdict::deny;
  }
  return vfs::Verdict::allow;
}

// cryptodrop:hot
void AnalysisEngine::post_operation(const vfs::OperationEvent& event,
                                    const Status& outcome) {
  if (!outcome.is_ok()) return;

  const bool src_protected = under_root(event.path);
  const bool dst_protected =
      event.op == vfs::OpType::rename && under_root(event.dest_path);
  if (!src_protected && !dst_protected) return;

  AlertScope alerts(alert_callback_);
  ScopedLatency timer(latency_, latency_mu_, event.op, h_dispatch_);
  switch (event.op) {
    case vfs::OpType::read:
      handle_read_post(event);
      break;
    case vfs::OpType::write:
      handle_write_post(event);
      break;
    case vfs::OpType::truncate:
      handle_truncate_post(event);
      break;
    case vfs::OpType::close:
      handle_close_post(event);
      break;
    case vfs::OpType::remove:
      handle_remove_post(event);
      break;
    case vfs::OpType::rename:
      handle_rename_post(event);
      break;
    default:
      break;
  }
}

void AnalysisEngine::handle_open_pre(const vfs::OperationEvent& event) {
  if ((event.open_mode & vfs::kWrite) == 0) return;
  if (event.file_id == vfs::kNoFile) return;  // creation: no pre-image
  // Snapshot the pre-image before truncation or the first write can
  // destroy it. Copy-on-write makes this a pointer grab.
  assert(fs_ != nullptr);
  capture_baseline(event.file_id, fs_->read_unfiltered(event.path));
}

int AnalysisEngine::scaled_entropy_points(std::size_t op_bytes, double delta) const {
  const std::size_t full = std::max<std::size_t>(config_.entropy.full_points_bytes, 1);
  double scale = 1.0;
  if (op_bytes < full) {
    scale = static_cast<double>(op_bytes) / static_cast<double>(full);
  }
  if (config_.entropy.full_points_delta > 0.0 &&
      delta < config_.entropy.full_points_delta) {
    scale *= delta / config_.entropy.full_points_delta;
  }
  return std::max(1, static_cast<int>(config_.entropy.points_write * scale));
}

void AnalysisEngine::fold_read_entropy(ProcessState& proc, ByteView data) {
  obs::ScopedSpan span(obs::span_name::kEntropy);
  if (span.active()) span.arg("bytes", static_cast<double>(data.size()));
  obs::ScopedTimer timer(h_entropy_);
  for (std::size_t i = 0; i < entropy_backends_.size(); ++i) {
    proc.read_means[i].add(entropy_backends_[i]->score(data), data.size());
  }
}

/// Folds write-side content into the process's entropy state and scores
/// the delta check — shared by write ops and by content arriving via an
/// inbound rename (the only write-equivalent a Class B sample exhibits
/// inside the protected tree).
void AnalysisEngine::score_write_entropy(ProcessState& proc, vfs::ProcessId pid,
                                         ByteView data, const std::string& path) {
  if (!config_.entropy.enabled) return;
  {
    obs::ScopedSpan span(obs::span_name::kEntropy);
    if (span.active()) span.arg("bytes", static_cast<double>(data.size()));
    obs::ScopedTimer timer(h_entropy_);
    // Each member's statistic is computed exactly once per operation and
    // serves both the mean fold and the delta vote below.
    for (std::size_t i = 0; i < entropy_backends_.size(); ++i) {
      proc.write_means[i].add(entropy_backends_[i]->score(data), data.size());
    }
  }
  // Below the size cutoff the write still weighs into the means (above)
  // but earns no points: the size-scaled points floor at 1, so without
  // a cutoff a stream of tiny high-entropy writes — compressed
  // thumbnails, WAL pages — would creep toward the threshold a point
  // at a time.
  if (data.size() < config_.entropy.min_score_bytes) return;

  // Delta vote: each member whose own write-mean − read-mean delta
  // crosses the threshold votes with its weight. With a single member
  // (the default) this reduces to the paper's plain delta check.
  double voted_weight = 0.0;
  double delta_weighted = 0.0;
  // Fixed-size voter list: config validation rejects duplicate members,
  // so there are at most kBackendCount voters — no per-op heap vector.
  std::array<std::size_t, entropy::kBackendCount> voters_idx{};
  std::size_t voter_count = 0;
  for (std::size_t i = 0; i < entropy_members_.size(); ++i) {
    if (proc.read_means[i].empty() || proc.write_means[i].empty()) continue;
    const double delta = proc.write_means[i].mean() - proc.read_means[i].mean();
    if (delta < config_.entropy.delta_threshold) continue;
    voted_weight += entropy_members_[i].weight;
    delta_weighted += entropy_members_[i].weight * delta;
    voters_idx[voter_count++] = i;
  }
  if (voter_count == 0) return;
  const double quorum = entropy_members_.size() == 1
                            ? 0.0
                            : config_.entropy.ensemble.min_vote_weight *
                                  entropy_weight_total_ - 1e-12;
  if (voted_weight < quorum) return;
  const double delta = delta_weighted / voted_weight;
  std::string voters;
  for (std::size_t v = 0; v < voter_count; ++v) {
    const std::size_t i = voters_idx[v];
    m_backend_events_[static_cast<std::size_t>(entropy_members_[i].backend)]->add();
    if (!voters.empty()) voters += ',';
    voters += entropy_backends_[i]->name();
  }
  proc.saw_entropy = true;
  ++proc.entropy_events;
  add_points(proc, pid, Indicator::entropy_delta,
             scaled_entropy_points(data.size(), delta), path, /*detail=*/delta,
             "write-mean minus read-mean entropy", std::move(voters));
  check_union(proc, pid, path);
  maybe_detect(proc, pid, /*via_union=*/false);
}

void AnalysisEngine::note_modification(ProcessState& proc, vfs::ProcessId pid,
                                       std::uint64_t timestamp, vfs::FileId id,
                                       const std::string& path) {
  if (!config_.enable_rate_indicator || id == vfs::kNoFile) return;
  // Expire window entries.
  const std::uint64_t horizon =
      timestamp > config_.rate_window_micros ? timestamp - config_.rate_window_micros : 0;
  while (!proc.recent_mods.empty() && proc.recent_mods.front().first < horizon) {
    auto it = proc.window_file_counts.find(proc.recent_mods.front().second);
    if (it != proc.window_file_counts.end() && --it->second == 0) {
      proc.window_file_counts.erase(it);
    }
    proc.recent_mods.pop_front();
  }
  const bool new_file_in_window = !proc.window_file_counts.contains(id);
  proc.recent_mods.emplace_back(timestamp, id);
  ++proc.window_file_counts[id];
  // Score only when a *new* distinct file joins an already-bursting
  // window, so chunked writes to one file never inflate the count.
  if (new_file_in_window &&
      proc.window_file_counts.size() >= config_.rate_min_files) {
    ++proc.rate_events;
    add_points(proc, pid, Indicator::burst_rate, config_.points_rate, path,
               /*detail=*/static_cast<double>(proc.window_file_counts.size()),
               "distinct files modified inside the rate window");
    maybe_detect(proc, pid, /*via_union=*/false);
  }
}

void AnalysisEngine::handle_write_post(const vfs::OperationEvent& event) {
  // Scoring runs in the post callback so a write that failed below the
  // engine (denied, faulted) assesses nothing: post_operation drops
  // non-ok outcomes before dispatching here. For short writes,
  // event.data is the surviving prefix — the bytes that actually landed
  // — not the caller's full request (event.length).
  LockedProcess locked = lock_state_for(event);
  if (locked.proc->suspended) return;
  score_write_entropy(*locked.proc, event.pid, event.data, event.path);
  if (locked.proc->suspended) return;  // this write crossed the threshold
  note_modification(*locked.proc, event.pid, event.timestamp, event.file_id,
                    event.path);
  locked.lock.unlock();

  // Defer type/similarity comparison to close, when the content is whole.
  (void)mark_pending_check(event.file_id);
}

void AnalysisEngine::handle_truncate_pre(const vfs::OperationEvent& event) {
  if (event.file_id == vfs::kNoFile) return;
  // A truncate destroys content just like an overwrite (truncate-to-zero
  // is a deletion in all but name): snapshot the pre-image before it is
  // cut down, exactly as a write-mode open does.
  assert(fs_ != nullptr);
  capture_baseline(event.file_id, fs_->read_unfiltered(event.path));
}

void AnalysisEngine::handle_truncate_post(const vfs::OperationEvent& event) {
  LockedProcess locked = lock_state_for(event);
  if (locked.proc->suspended) return;
  note_modification(*locked.proc, event.pid, event.timestamp, event.file_id,
                    event.path);
  locked.lock.unlock();

  // No bytes to fold into the entropy mean, but the mutation must still
  // be judged: compare type/similarity against the pre-image at close.
  (void)mark_pending_check(event.file_id);
}

void AnalysisEngine::handle_read_post(const vfs::OperationEvent& event) {
  LockedProcess locked = lock_state_for(event);
  ProcessState& proc = *locked.proc;
  if (config_.entropy.enabled) {
    fold_read_entropy(proc, event.data);
  }
  if (event.offset == 0 && !event.data.empty()) {
    proc.read_types.insert(sniff_type(event.data));
    const std::string ext = vfs::path_extension(event.path);
    if (!ext.empty()) proc.read_extensions.insert(ext);
  }

  if (config_.enable_funneling && !proc.funneling_fired &&
      proc.read_types.size() >= config_.funnel_min_read_types &&
      !proc.write_types.empty() &&
      proc.read_types.size() >=
          proc.write_types.size() + config_.funnel_type_gap) {
    proc.funneling_fired = true;
    ++proc.funneling_events;
    add_points(proc, event.pid, Indicator::funneling, config_.points_funneling,
               event.path,
               /*detail=*/static_cast<double>(proc.read_types.size()),
               "distinct types read vs. " +
                   std::to_string(proc.write_types.size()) + " written");
    maybe_detect(proc, event.pid, /*via_union=*/false);
  }
}

void AnalysisEngine::handle_close_post(const vfs::OperationEvent& event) {
  if (!event.wrote) return;
  assert(fs_ != nullptr);
  // The measured close is the engine's most expensive single step
  // (re-read + re-digest + compare); its own span and stage histogram
  // keep it visible in trace-report so a regression of the
  // digest-retention fix above cannot hide inside the close mean.
  obs::ScopedSpan span(obs::span_name::kCloseMeasure);
  if (span.active()) span.arg("bytes", static_cast<double>(event.wrote_bytes));
  obs::ScopedTimer timer(h_close_measure_);
  const auto content = fs_->read_unfiltered(event.path);

  bool tracked_pending = false;
  if (event.file_id != vfs::kNoFile) {
    FileShard& shard = shard_for_file(event.file_id);
    std::lock_guard lock(shard.mu);
    auto it = shard.files.find(event.file_id);
    tracked_pending = it != shard.files.end() &&
                      it->second.baseline != nullptr && it->second.pending_check;
  }

  LockedProcess locked = lock_state_for(event);
  if (locked.proc->suspended) return;  // verdict delivered; the permitted
                                       // close of a suspended process is
                                       // not measured further
  if (tracked_pending) {
    evaluate_modification(*locked.proc, event.pid, event.file_id, event.path,
                          content);
    return;
  }

  // Newly created file: no pre-image to compare, but it still counts as
  // written output for funneling, and becomes tracked from here on.
  if (content != nullptr) {
    const magic::TypeId type_now = sniff_type(ByteView(*content));
    locked.proc->write_types.insert(type_now);
    const std::string ext = vfs::path_extension(event.path);
    if (!ext.empty()) locked.proc->write_extensions.insert(ext);
    locked.lock.unlock();
    capture_baseline(event.file_id, content);
  } else {
    // The handle wrote, yet the content cannot be read back: the close
    // measurement is lost, but never fatal.
    m_degraded_->add();
  }
}

void AnalysisEngine::handle_remove_post(const vfs::OperationEvent& event) {
  {
    LockedProcess locked = lock_state_for(event);
    ProcessState& proc = *locked.proc;
    note_modification(proc, event.pid, event.timestamp, event.file_id, event.path);
    if (config_.enable_deletion) {
      ++proc.deletion_events;
      add_points(proc, event.pid, Indicator::deletion, config_.points_deletion,
                 event.path, /*detail=*/0.0,
                 "protected file removed");
      maybe_detect(proc, event.pid, /*via_union=*/false);
    }
  }
  forget_file(event.file_id);
}

void AnalysisEngine::handle_rename_pre(const vfs::OperationEvent& event) {
  assert(fs_ != nullptr);
  // Track the source's content as it moves (Class B: "the state of the
  // file must be carefully tracked each time a file is moved").
  if (under_root(event.path)) {
    capture_baseline(event.file_id, fs_->read_unfiltered(event.path));
  }
  // A replacement destroys the destination's content: snapshot it so the
  // incoming content can be judged against it (Class C move-over).
  if (event.dest_file_id != vfs::kNoFile && under_root(event.dest_path)) {
    capture_baseline(event.dest_file_id, fs_->read_unfiltered(event.dest_path));
  }
}

void AnalysisEngine::handle_rename_post(const vfs::OperationEvent& event) {
  assert(fs_ != nullptr);
  const bool src_protected = under_root(event.path);
  const bool dst_protected = under_root(event.dest_path);
  const auto content = fs_->read_unfiltered(event.dest_path);

  LockedProcess locked = lock_state_for(event);
  ProcessState& proc = *locked.proc;

  if (dst_protected && event.dest_file_id != vfs::kNoFile) {
    // Replacement: the incoming file (event.file_id) now sits where the
    // old file (dest_file_id) was. Judge the new content against the
    // *replaced* file's pre-image — this is the linkage that catches the
    // 41/63 Class C samples that move ciphertext over the original.
    evaluate_modification(proc, event.pid, event.dest_file_id, event.dest_path,
                          content);
    locked.lock.unlock();
    // The replaced file's identity is gone; the survivor keeps tracking
    // under its own id with its current content as baseline.
    forget_file(event.dest_file_id);
    forget_file(event.file_id);
    capture_baseline(event.file_id, content);
    return;
  }

  if (dst_protected && !src_protected) {
    // A file re-entering the protected tree (Class B return trip). Its
    // content arriving counts as data written into the protected area:
    // fold it into the write-entropy mean, then compare against the
    // tracked pre-departure state.
    if (content != nullptr && !content->empty()) {
      score_write_entropy(proc, event.pid, ByteView(*content), event.dest_path);
    }
    note_modification(proc, event.pid, event.timestamp, event.file_id,
                      event.dest_path);
    evaluate_modification(proc, event.pid, event.file_id, event.dest_path, content);
    maybe_detect(proc, event.pid, /*via_union=*/false);
    return;
  }

  if (src_protected && !dst_protected) {
    // Departure from the protected tree: the content leaving is the
    // read-side counterpart of the inbound fold above (a Class B sample
    // "reads" the user's data by carrying it out). Baseline was captured
    // in the pre callback; evaluation happens on return.
    if (config_.entropy.enabled) {
      const auto departing = fs_->read_unfiltered(event.dest_path);
      if (departing != nullptr && !departing->empty()) {
        fold_read_entropy(proc, ByteView(*departing));
      }
    }
    locked.lock.unlock();
    (void)mark_pending_check(event.file_id);
    return;
  }

  // Move within the protected tree without replacement: content is
  // untouched; evaluate only if a write already flagged it.
  bool pending = false;
  if (event.file_id != vfs::kNoFile) {
    FileShard& shard = shard_for_file(event.file_id);
    std::lock_guard file_lock(shard.mu);
    auto it = shard.files.find(event.file_id);
    pending = it != shard.files.end() && it->second.pending_check;
  }
  if (pending) {
    evaluate_modification(proc, event.pid, event.file_id, event.dest_path, content);
  }
}

}  // namespace cryptodrop::core
