#include "core/config.hpp"

namespace cryptodrop::core {

namespace {

Status invalid(std::string message) {
  return Status(Errc::invalid_argument, std::move(message));
}

}  // namespace

std::vector<EnsembleMember> EntropyConfig::active_members() const {
  if (!ensemble.members.empty()) return ensemble.members;
  return {EnsembleMember{backend, 1.0}};
}

Status ScoringConfig::validate() const {
  if (protected_root.empty()) {
    return invalid("protected_root must not be empty");
  }
  for (const std::string& root : additional_roots) {
    if (root.empty()) {
      return invalid("additional_roots entries must not be empty");
    }
  }

  if (entropy.points_write < 0) return invalid("entropy.points_write < 0");
  if (points_type_change < 0) return invalid("points_type_change < 0");
  if (points_similarity_drop < 0) return invalid("points_similarity_drop < 0");
  if (points_deletion < 0) return invalid("points_deletion < 0");
  if (points_funneling < 0) return invalid("points_funneling < 0");
  if (points_rate < 0) return invalid("points_rate < 0");
  if (union_bonus < 0) return invalid("union_bonus < 0");

  if (score_threshold < 1) {
    return invalid("score_threshold must be >= 1 (every process starts at 0)");
  }
  if (enable_union) {
    if (union_threshold < 1) {
      return invalid("union_threshold must be >= 1");
    }
    if (union_threshold > score_threshold) {
      return invalid(
          "union_threshold exceeds score_threshold; union indication is "
          "documented to *lower* a process's detection threshold");
    }
  }

  if (entropy.delta_threshold < 0.0) {
    return invalid("entropy.delta_threshold < 0");
  }
  if (entropy.full_points_bytes == 0) {
    return invalid("entropy.full_points_bytes must be >= 1");
  }
  if (entropy.full_points_delta < 0.0) {
    return invalid("entropy.full_points_delta < 0");
  }
  if (entropy.min_score_bytes > entropy.full_points_bytes) {
    return invalid(
        "entropy.min_score_bytes exceeds entropy.full_points_bytes; writes "
        "large enough for full points would be exempt from scoring");
  }
  if (entropy.daa_window_bytes == 0) {
    return invalid("entropy.daa_window_bytes must be >= 1");
  }
  if (!entropy.ensemble.members.empty()) {
    if (entropy.ensemble.min_vote_weight <= 0.0 ||
        entropy.ensemble.min_vote_weight > 1.0) {
      return invalid("ensemble.min_vote_weight must be in (0, 1]");
    }
    bool seen[entropy::kBackendCount] = {};
    for (const EnsembleMember& member : entropy.ensemble.members) {
      if (member.weight <= 0.0) {
        return invalid("ensemble member weights must be > 0");
      }
      const auto idx = static_cast<std::size_t>(member.backend);
      if (idx >= entropy::kBackendCount) {
        return invalid("ensemble member names an unknown backend");
      }
      if (seen[idx]) {
        return invalid(
            "ensemble lists backend `" +
            std::string(entropy::backend_name(member.backend)) +
            "` twice; each backend keeps one pair of running means and "
            "may vote at most once per operation");
      }
      seen[idx] = true;
    }
  }
  if (similarity_drop_max < 0 || similarity_drop_max > 100) {
    return invalid("similarity_drop_max must be within the 0..100 score range");
  }
  if (dynamic_unavailable_boost < 0.0) {
    return invalid("dynamic_unavailable_boost < 0");
  }

  if (record_timeline && timeline_capacity == 0) {
    return invalid(
        "timeline_capacity must be >= 1 while record_timeline is on "
        "(set record_timeline = false to disable timelines instead)");
  }

  if (funnel_min_read_types == 0) {
    return invalid("funnel_min_read_types must be >= 1");
  }
  if (enable_rate_indicator) {
    if (rate_window_micros == 0) {
      return invalid("rate_window_micros must be a non-zero window");
    }
    if (rate_min_files == 0) {
      return invalid("rate_min_files must be >= 1");
    }
  }

  return Status::ok();
}

}  // namespace cryptodrop::core
