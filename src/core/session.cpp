#include "core/session.hpp"

namespace cryptodrop::core {

MonitorSession::MonitorSession(const vfs::FileSystem& base, ScoringConfig config)
    : fs_(base.clone()),
      engine_(std::make_unique<AnalysisEngine>(std::move(config))) {
  fs_.attach_filter(engine_.get());
}

MonitorSession::MonitorSession(ScoringConfig config)
    : engine_(std::make_unique<AnalysisEngine>(std::move(config))) {
  fs_.attach_filter(engine_.get());
}

MonitorSession::MonitorSession(const vfs::FileSystem& base,
                               ScoringConfig config,
                               const obs::TraceOptions& trace)
    : fs_(base.clone()),
      engine_(std::make_unique<AnalysisEngine>(std::move(config))) {
  // Tracer before engine: the engine caches fs().span_tracer() in
  // on_attach, so attachment order is load-bearing here.
  if (trace.enabled && obs::kMetricsEnabled) {
    tracer_ = std::make_unique<obs::SpanTracer>(trace);
    fs_.set_span_tracer(tracer_.get());
  }
  fs_.attach_filter(engine_.get());
}

MonitorSession::MonitorSession(ScoringConfig config,
                               const obs::TraceOptions& trace)
    : engine_(std::make_unique<AnalysisEngine>(std::move(config))) {
  if (trace.enabled && obs::kMetricsEnabled) {
    tracer_ = std::make_unique<obs::SpanTracer>(trace);
    fs_.set_span_tracer(tracer_.get());
  }
  fs_.attach_filter(engine_.get());
}

MonitorSession::~MonitorSession() {
  if (engine_ != nullptr) {
    fs_.detach_filter(engine_.get());
  }
}

}  // namespace cryptodrop::core
