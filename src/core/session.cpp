#include "core/session.hpp"

namespace cryptodrop::core {

MonitorSession::MonitorSession(const vfs::FileSystem& base, ScoringConfig config)
    : fs_(base.clone()),
      engine_(std::make_unique<AnalysisEngine>(std::move(config))) {
  fs_.attach_filter(engine_.get());
}

MonitorSession::MonitorSession(ScoringConfig config)
    : engine_(std::make_unique<AnalysisEngine>(std::move(config))) {
  fs_.attach_filter(engine_.get());
}

MonitorSession::~MonitorSession() {
  if (engine_ != nullptr) {
    fs_.detach_filter(engine_.get());
  }
}

}  // namespace cryptodrop::core
