// MonitorSession — one monitored volume, RAII-style.
//
// The library's primitive objects (FileSystem, AnalysisEngine) compose
// manually: clone a volume, construct an engine, attach, remember to
// detach before either dies. Every call site in the harness, benches,
// CLI and examples repeated that dance. A session bundles it:
//
//   core::MonitorSession session(base_fs, config);   // clone + attach
//   vfs::ProcessId pid = session.spawn("sample.exe");
//   ... drive operations through session.fs() ...
//   core::EngineSnapshot snap = session.snapshot();  // consistent view
//
// The engine is heap-allocated so the session is movable, and detached
// on destruction, so neither order of death dangles. A session is the
// unit of parallelism in the experiment runner: each trial owns one, and
// sessions never share mutable state (file content is shared
// copy-on-write, which is immutable).
#pragma once

#include <memory>
#include <string>

#include "core/engine.hpp"
#include "obs/span.hpp"
#include "vfs/filesystem.hpp"

namespace cryptodrop::core {

/// One monitored volume with its engine attached, RAII-style (see the
/// file comment). Movable, not copyable; detaches on destruction. A
/// session is single-owner: drive operations and queries from one thread,
/// or rely on the engine's own thread-safety for concurrent queries.
class MonitorSession {
 public:
  /// A session over a pristine clone of `base` (the VM-snapshot-revert
  /// analogue: every trial starts from the same bytes). Throws
  /// std::invalid_argument when the config does not validate.
  MonitorSession(const vfs::FileSystem& base, ScoringConfig config);

  /// A session over a fresh empty volume.
  explicit MonitorSession(ScoringConfig config);

  /// Traced variants: when `trace.enabled`, the session owns an
  /// obs::SpanTracer wired into the volume *before* the engine attaches,
  /// so every operation's dispatch→filter→indicator chain is recorded
  /// (docs/OBSERVABILITY.md "Span tracing").
  MonitorSession(const vfs::FileSystem& base, ScoringConfig config,
                 const obs::TraceOptions& trace);
  /// Traced session over a fresh empty volume.
  MonitorSession(ScoringConfig config, const obs::TraceOptions& trace);

  MonitorSession(MonitorSession&&) = default;
  MonitorSession& operator=(MonitorSession&&) = default;
  MonitorSession(const MonitorSession&) = delete;
  MonitorSession& operator=(const MonitorSession&) = delete;

  ~MonitorSession();

  /// The session's private volume (drive operations through this).
  [[nodiscard]] vfs::FileSystem& fs() { return fs_; }
  /// Const view of the session's volume.
  [[nodiscard]] const vfs::FileSystem& fs() const { return fs_; }
  /// The attached engine (valid for the session's lifetime).
  [[nodiscard]] AnalysisEngine& engine() { return *engine_; }
  /// Const view of the attached engine.
  [[nodiscard]] const AnalysisEngine& engine() const { return *engine_; }

  /// Registers a process on the session's volume.
  vfs::ProcessId spawn(std::string name, vfs::ProcessId parent = 0) {
    return fs_.register_process(std::move(name), parent);
  }

  /// One consistent view of everything the engine has measured.
  [[nodiscard]] EngineSnapshot snapshot() const { return engine_->snapshot(); }

  /// "Why was pid X suspended?" — the process's forensic timeline
  /// (forwards to AnalysisEngine::explain; locks one scoreboard shard).
  [[nodiscard]] obs::ForensicTimeline explain(vfs::ProcessId pid) const {
    return engine_->explain(pid);
  }

  /// Current value of every engine metric, gauges refreshed (forwards to
  /// AnalysisEngine::metrics_snapshot). Cheaper than snapshot() when the
  /// process reports are not needed.
  [[nodiscard]] obs::MetricsSnapshot metrics() const {
    return engine_->metrics_snapshot();
  }

  /// Whether this session records spans (constructed with enabled
  /// TraceOptions, on a metrics-enabled build).
  [[nodiscard]] bool tracing() const { return tracer_ != nullptr; }

  /// Everything the tracer retained so far (empty when not tracing).
  /// Export with obs::to_trace_json / harness::trace_report.
  [[nodiscard]] obs::SpanSnapshot trace_snapshot() const {
    return tracer_ != nullptr ? tracer_->snapshot() : obs::SpanSnapshot{};
  }

 private:
  vfs::FileSystem fs_;
  std::unique_ptr<obs::SpanTracer> tracer_;  ///< Null when not tracing.
  std::unique_ptr<AnalysisEngine> engine_;
};

}  // namespace cryptodrop::core
