// Tunable scoring parameters of the CryptoDrop analysis engine.
//
// The paper discloses the structure of the scoring system (per-indicator
// reputation points, a non-union detection threshold of 200, and union
// indication that "dramatically increases the current score ... and
// lowers that process's detection threshold") but not the exact point
// values; the defaults here were calibrated so that the experiment suite
// reproduces the paper's shape: overall median ~10 files lost, Class B
// (smallest-files-first) losing the most, Class C union-evaders caught by
// entropy+deletion points at single-digit medians, exactly one benign
// false positive (the archiver) at threshold 200.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "entropy/backend.hpp"

namespace cryptodrop::core {

/// One voting member of an entropy ensemble: a backend and its vote
/// weight (relative; weights need not sum to 1).
struct EnsembleMember {
  entropy::BackendKind backend = entropy::BackendKind::shannon;
  double weight = 1.0;
};

/// Multi-backend voting (DESIGN.md §14): every member keeps its own
/// read/write weighted means; on each scoreable write, members whose
/// own delta crosses the threshold vote with their weight, and the
/// indicator fires when the voting weight reaches `min_vote_weight` of
/// the total. An empty member list means single-backend mode
/// (EntropyConfig::backend alone).
struct EnsembleConfig {
  /// Voting members; empty disables ensemble mode. Duplicate backends
  /// are rejected by validate().
  std::vector<EnsembleMember> members;
  /// Fraction of total member weight that must vote for the indicator
  /// to fire, in (0, 1]. 0.5 is simple weighted-majority.
  double min_vote_weight = 0.5;
};

/// Every entropy-indicator tunable, nested under ScoringConfig::entropy
/// (paper §III-C, §IV-C.1; backends per DESIGN.md §14). Validated as
/// part of ScoringConfig::validate().
struct EntropyConfig {
  /// Master switch (ablation studies set it false).
  bool enabled = true;

  /// Which statistic scores each operation in single-backend mode (the
  /// default, shannon, reproduces the paper bit-for-bit). Ignored when
  /// `ensemble.members` is non-empty.
  entropy::BackendKind backend = entropy::BackendKind::shannon;

  /// Multi-backend voting; empty members = single-backend mode.
  EnsembleConfig ensemble;

  /// Suspicion trigger on the weighted-mean delta: Pwrite - Pread >= this
  /// (per backend; in ensemble mode each member checks its own delta).
  double delta_threshold = 0.1;
  /// Points assessed per atomic write operation whose delta vote fires.
  int points_write = 12;
  /// Entropy points scale linearly with operation size up to this many
  /// bytes (then cap at points_write). This extends the paper's
  /// weighting rationale — "low-entropy and small read/write operations
  /// do not over-influence the mean" — to the points themselves, so a
  /// stream of tiny suspicious writes cannot outscore a bulk encryptor.
  std::size_t full_points_bytes = 4096;
  /// Entropy points also scale with the delta's magnitude up to this
  /// value: a sample encrypting already-compressed documents shows a
  /// barely-over-threshold delta early on (the paper's observed
  /// "delay... for samples which attack high entropy files first") and
  /// earns proportionally fewer points until it reaches plainer files.
  double full_points_delta = 0.5;
  /// Writes smaller than this never earn entropy points (the delta check
  /// is skipped entirely; the write still feeds the entropy means). The
  /// size-scaled points floor at 1, so without a cutoff thousands of
  /// tiny benign high-entropy writes (compressed thumbnails, sqlite WAL
  /// pages) each score a point and creep toward the threshold. Must be
  /// <= full_points_bytes. The default of 1 skips only zero-byte
  /// writes, which carry no evidence of encryption at all.
  std::size_t min_score_bytes = 1;

  /// DAA head/tail window size in bytes (arXiv 2303.17351); only the
  /// daa backend reads it.
  std::size_t daa_window_bytes = 2048;

  /// The members actually scoring: the ensemble when configured, else
  /// the single `backend` at weight 1. Never empty.
  [[nodiscard]] std::vector<EnsembleMember> active_members() const;
};

/// Every tunable of the analysis engine, with paper-calibrated defaults.
/// Validate with validate(); AnalysisEngine's constructor rejects an
/// invalid config. Plain value type — copy freely.
struct ScoringConfig {
  /// Only operations on files under this root are observed ("CryptoDrop
  /// does not inspect files outside of the user's documents directory").
  std::string protected_root = "users/victim/documents";
  /// Extra protected directories (Desktop, Pictures, network shares...)
  /// monitored with the same indicators and scoreboard.
  std::vector<std::string> additional_roots;

  // --- primary indicator: entropy (paper §III-C, §IV-C.1) -------------
  /// Every entropy tunable, including backend selection and ensemble
  /// voting, lives in this nested block (DESIGN.md §14 has the
  /// old-field → new-field migration table).
  EntropyConfig entropy;

  // --- primary indicator: file type change (§III-A) --------------------
  /// Points when the magic-identified type of a tracked file differs
  /// before vs. after modification.
  int points_type_change = 6;

  // --- primary indicator: similarity loss (§III-B) ---------------------
  /// A post-modification sdhash score at or below this counts as "no
  /// match" — ciphertext vs. plaintext scores 0; benign edits retain
  /// shared features and score well above it.
  int similarity_drop_max = 2;
  int points_similarity_drop = 10;

  // --- secondary indicator: deletion (§III-D) ---------------------------
  int points_deletion = 14;

  // --- secondary indicator: file type funneling (§III-D) ----------------
  /// Triggered (once per process) when it has read at least
  /// `funnel_min_read_types` distinct types and read-minus-written type
  /// count reaches `funnel_type_gap`.
  std::size_t funnel_min_read_types = 5;
  std::size_t funnel_type_gap = 4;
  int points_funneling = 25;

  // --- thresholds and union indication (§IV-A/B) -------------------------
  /// Non-union detection threshold (the paper's experiments use 200).
  int score_threshold = 200;
  /// First time all three primary indicators have fired for one process:
  /// the score jumps and the process's threshold drops.
  int union_bonus = 40;
  int union_threshold = 170;
  /// Master switch for union indication (ablation studies set it false).
  bool enable_union = true;

  /// Score and suspend whole process families (paper §IV: CryptoDrop
  /// "suspends the suspicious process (or family of processes)").
  /// Counters the evasion of spreading the attack across spawned worker
  /// processes so no single pid accumulates enough points.
  bool enable_family_scoring = true;

  // --- dynamic scoring (paper §V-C future work) --------------------------
  /// "Once identified, CryptoDrop could adjust the number of reputation
  /// points assessed up or down for individual indicators, leading to
  /// faster detection even when union indication is not possible."
  /// When enabled, a modification whose similarity indicator is
  /// *unavailable* (file too small for sdhash) has its type-change
  /// points multiplied by `dynamic_unavailable_boost` — exactly the
  /// sub-512-byte CTB-Locker gap. Off by default, as in the paper.
  bool enable_dynamic_scoring = false;
  double dynamic_unavailable_boost = 2.5;

  // --- burst-rate indicator (paper §V-F future work) ----------------------
  /// "Research into time window parameterization may lead to another
  /// primary indicator in future versions of CryptoDrop." When enabled,
  /// a process that modifies at least `rate_min_files` distinct
  /// protected files within `rate_window_micros` of virtual time earns
  /// `points_rate` for each further file it touches while the burst
  /// lasts. Off by default (as in the paper, which also warns that a
  /// sample can slow its attack to slip under any window).
  bool enable_rate_indicator = false;
  std::uint64_t rate_window_micros = 10'000'000;  // 10 s
  std::size_t rate_min_files = 15;
  int points_rate = 4;

  // --- per-indicator ablation switches (§V-B.2 analysis) -----------------
  // (The entropy switch is EntropyConfig::enabled above.)
  bool enable_type_change = true;
  bool enable_similarity = true;
  bool enable_deletion = true;
  bool enable_funneling = true;

  /// Keep per-process score-event timelines: the legacy ScoreEvent
  /// vector (unbounded; Figure-6-style threshold sweeps) and the bounded
  /// forensic ring behind AnalysisEngine::explain() — see
  /// docs/OBSERVABILITY.md.
  bool record_timeline = true;
  /// Capacity of each process's forensic timeline ring (oldest events
  /// are evicted beyond this). Must be >= 1 while record_timeline is on.
  std::size_t timeline_capacity = 128;

  /// Serve baseline similarity digests from the process-wide cache keyed
  /// by content hash. The experiment zoo reuses one corpus across
  /// hundreds of trials; copy-on-write means every trial's pristine
  /// baselines are byte-identical, so each distinct content is digested
  /// once instead of once per trial.
  bool share_digest_cache = true;

  /// Checks the configuration for values the scoring model cannot
  /// meaningfully run with (negative points, a union threshold above the
  /// base threshold, an empty protected root, zero-size windows).
  /// Everything constructing an engine — the engine constructor itself,
  /// CLI flag parsing, the experiment harness — calls this so a bad
  /// sweep fails fast with a message instead of producing junk curves.
  [[nodiscard]] Status validate() const;
};

}  // namespace cryptodrop::core
