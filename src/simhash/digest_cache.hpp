// Process-wide cache of similarity digests keyed by content hash.
//
// Digesting a file is the engine's most expensive measurement (rolling-
// hash feature selection over the whole content). The experiment zoo
// drives hundreds of trials over clones of one corpus, and the VFS's
// copy-on-write content sharing means every trial's pristine baselines
// are the *same bytes* — so the digest of each distinct content needs to
// be computed exactly once, process-wide.
//
// Keying by SHA-256 of the content (not by pointer identity) also
// collapses duplicates that are equal but separately allocated, e.g. a
// corpus rebuilt from the same seed in another FileSystem.
//
// The cache is sharded (16 ways, by the first key byte) so concurrent
// trials do not serialize on one mutex, and bounded per shard with LRU
// eviction. Negative results — content too small or too featureless to
// digest — are cached too; they recur just as often and are cheap.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/ranked_mutex.hpp"
#include "crypto/sha256.hpp"
#include "simhash/similarity.hpp"

namespace cryptodrop::simhash {

/// Aggregated counters across all shards (see stats()).
struct DigestCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

/// The sharded, LRU-bounded digest cache described above.
class DigestCache {
 public:
  /// Total entries across all shards (rounded up to a per-shard bound).
  explicit DigestCache(std::size_t capacity = kDefaultCapacity);

  DigestCache(const DigestCache&) = delete;
  DigestCache& operator=(const DigestCache&) = delete;

  /// Returns the cached digest of content hashing to `data`'s SHA-256,
  /// computing and inserting it on miss. A nullopt digest (content not
  /// digestible) is a valid cached value.
  std::optional<SimilarityDigest> get_or_compute(ByteView data);

  /// Drops every entry (stats are kept).
  void clear();

  /// Snapshot of the hit/miss/eviction counters.
  [[nodiscard]] DigestCacheStats stats() const;

  /// The cache shared by every engine with `share_digest_cache` set.
  static DigestCache& global();

  static constexpr std::size_t kDefaultCapacity = 8192;

 private:
  static constexpr std::size_t kShards = 16;

  struct KeyHash {
    std::size_t operator()(const crypto::Sha256Digest& key) const {
      // The key is itself a cryptographic hash; its first bytes are
      // already uniformly distributed.
      std::size_t out;
      static_assert(sizeof(out) <= sizeof(crypto::Sha256Digest));
      __builtin_memcpy(&out, key.data(), sizeof(out));
      return out;
    }
  };

  struct Shard {
    /// Rank 30: acquired under an engine file shard on digest misses.
    mutable common::RankedMutex<common::lockrank::kDigestCache> mu;
    /// Most-recently-used entries at the front.
    std::list<std::pair<crypto::Sha256Digest, std::optional<SimilarityDigest>>> lru;
    std::unordered_map<crypto::Sha256Digest, decltype(lru)::iterator, KeyHash> index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  std::size_t per_shard_capacity_;
  std::array<Shard, kShards> shards_;
};

}  // namespace cryptodrop::simhash
