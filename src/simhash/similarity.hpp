// Similarity-preserving digest — the repo's analogue of sdhash (Roussev,
// "Data Fingerprinting with Similarity Digests"), which the paper uses as
// its Similarity Measurement indicator (§III-B).
//
// Contract reproduced from the paper's usage:
//  * comparing a file to itself (or a near-copy) scores ~100;
//  * comparing plaintext to its ciphertext scores ~0 ("statistically
//    comparable to two blobs of random data");
//  * files smaller than kMinInputSize (512 bytes) yield *no* digest —
//    the paper's §V-C CTB-Locker analysis hinges on this limitation.
//
// Mechanism (simplified sdhash): content-defined selection of 64-byte
// features (rolling-hash trigger), each feature inserted into a sequence
// of 2048-bit bloom filters (capped features per filter); similarity is
// the normalized excess bit-overlap between filter sets over the overlap
// expected from unrelated random features.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"

namespace cryptodrop::simhash {

/// 512: below this sdhash cannot select enough statistically significant
/// features to build a digest.
inline constexpr std::size_t kMinInputSize = 512;

/// Window size of one selected feature.
inline constexpr std::size_t kFeatureSize = 64;

/// Bits per bloom filter.
inline constexpr std::size_t kFilterBits = 2048;

/// Features folded into one filter before a new one is started.
inline constexpr std::size_t kFeaturesPerFilter = 160;

/// The sdhash-style similarity fingerprint: a sequence of bloom
/// filters over statistically improbable features.
class SimilarityDigest {
 public:
  /// Builds a digest, or nullopt when `data` is too small or too
  /// featureless to fingerprint. Batched form: trigger scan, selectable
  /// screen, 4-lane feature hashing, then in-order bloom insertion —
  /// bit-identical to compute_reference() (asserted by the golden-parity
  /// suite), just faster.
  static std::optional<SimilarityDigest> compute(ByteView data);

  /// Straight-line single-pass form of compute(), kept as the golden
  /// reference the parity tests compare the batched kernels against.
  /// Never called on the hot path.
  static std::optional<SimilarityDigest> compute_reference(ByteView data);

  /// Exact equality: same features, same filter boundaries, same bits.
  /// This is the parity suite's definition of "bit-identical".
  [[nodiscard]] bool operator==(const SimilarityDigest& other) const;

  /// Similarity confidence 0..100. Symmetric. 100 = homologous,
  /// 0 = statistically unrelated.
  [[nodiscard]] int compare(const SimilarityDigest& other) const;

  /// Number of bloom filters in the digest (grows with input size).
  [[nodiscard]] std::size_t filter_count() const { return filters_.size(); }

  /// Total features selected from the input.
  [[nodiscard]] std::size_t feature_count() const { return feature_count_; }

 private:
  struct Filter {
    std::array<std::uint64_t, kFilterBits / 64> bits{};
    std::uint32_t features = 0;
    [[nodiscard]] std::uint32_t popcount() const;
  };

  static int compare_filters(const Filter& a, const Filter& b);

  /// Folds one feature hash into the current filter, rolling over to a
  /// fresh filter at kFeaturesPerFilter (shared by both compute forms so
  /// rollover boundaries cannot drift).
  void insert_feature(std::uint64_t h);

  std::vector<Filter> filters_;
  std::size_t feature_count_ = 0;
};

/// One-shot comparison. Returns nullopt when either input cannot be
/// digested (the caller — the analysis engine — treats that as
/// "similarity indicator unavailable", not as a match or mismatch).
std::optional<int> similarity_score(ByteView a, ByteView b);

}  // namespace cryptodrop::simhash
