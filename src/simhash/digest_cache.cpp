#include "simhash/digest_cache.hpp"

#include <algorithm>

namespace cryptodrop::simhash {

DigestCache::DigestCache(std::size_t capacity)
    : per_shard_capacity_(std::max<std::size_t>(1, (capacity + kShards - 1) / kShards)) {}

// cryptodrop:hot
std::optional<SimilarityDigest> DigestCache::get_or_compute(ByteView data) {
  const crypto::Sha256Digest key = crypto::sha256(data);
  Shard& shard = shards_[key[0] % kShards];

  {
    std::lock_guard lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->second;
    }
    ++shard.misses;
  }

  // Compute outside the lock: digests of large files are the expensive
  // part, and two threads racing on the same content just do the work
  // twice — both arrive at the identical deterministic digest.
  std::optional<SimilarityDigest> digest = SimilarityDigest::compute(data);

  std::lock_guard lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Lost the race; the existing entry is equivalent.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
  }
  shard.lru.emplace_front(key, digest);
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return digest;
}

void DigestCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

DigestCacheStats DigestCache::stats() const {
  DigestCacheStats out;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.evictions += shard.evictions;
    out.entries += shard.lru.size();
  }
  return out;
}

DigestCache& DigestCache::global() {
  static DigestCache cache;
  return cache;
}

}  // namespace cryptodrop::simhash
