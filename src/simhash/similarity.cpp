#include "simhash/similarity.hpp"

#include <algorithm>
#include <bit>

#include "common/buffer_pool.hpp"
#include "common/kernels.hpp"

namespace cryptodrop::simhash {

namespace {

std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Rejects degenerate windows (long runs, tiny alphabets) that are common
/// to unrelated files and would inflate similarity — sdhash does the same
/// via its entropy-based precedence ranks.
constexpr int kMinDistinctBytes = 8;

constexpr std::size_t kBloomHashes = 5;

/// Random substitution table for the rolling (buzhash) window hash,
/// derived deterministically so digests are stable across runs.
const std::array<std::uint64_t, 256>& buz_table() {
  static const std::array<std::uint64_t, 256> table = [] {
    std::array<std::uint64_t, 256> t{};
    std::uint64_t state = 0x5eed5eed5eed5eedULL;
    for (auto& v : t) v = mix(state += 0x9e3779b97f4a7c15ULL);
    return t;
  }();
  return table;
}

inline std::uint64_t rotl64(std::uint64_t x, int k) {
  // Masked form: total for any k, including multiples of 64 (a plain
  // `x >> (64 - k)` is UB at k = 0). Compiles to a single rotate.
  return (x << (k & 63)) | (x >> (-k & 63));
}

/// Content-defined trigger evaluated at *every* byte position via a
/// rolling hash, so the feature set is invariant under byte insertions
/// and shifts (sdhash's precedence-rank selection has the same
/// property). ~1 position in 64 triggers, i.e. roughly one feature per
/// kFeatureSize bytes.
constexpr std::uint64_t kSelectMask = 0x3f;

/// Primes the rolling hash with the window starting at data[0].
std::uint64_t prime_rolling(ByteView data) {
  const auto& tab = buz_table();
  std::uint64_t rolling = 0;
  for (std::size_t k = 0; k < kFeatureSize; ++k) {
    rolling ^= rotl64(tab[data[k]], static_cast<int>((kFeatureSize - 1 - k) % 64));
  }
  return rolling;
}

}  // namespace

std::uint32_t SimilarityDigest::Filter::popcount() const {
  return kernels::and_popcount(bits.data(), bits.data(), bits.size());
}

void SimilarityDigest::insert_feature(std::uint64_t h) {
  Filter* filter = &filters_.back();
  if (filter->features >= kFeaturesPerFilter) {
    filters_.emplace_back();
    filter = &filters_.back();
  }
  std::uint64_t g = h;
  for (std::size_t k = 0; k < kBloomHashes; ++k) {
    g = mix(g + k);
    const std::size_t bit = static_cast<std::size_t>(g % kFilterBits);
    filter->bits[bit / 64] |= 1ULL << (bit % 64);
  }
  ++filter->features;
  ++feature_count_;
}

// cryptodrop:hot
std::optional<SimilarityDigest> SimilarityDigest::compute(ByteView data) {
  if (data.size() < kMinInputSize) return std::nullopt;

  SimilarityDigest digest;
  digest.filters_.emplace_back();

  const auto& tab = buz_table();
  const std::uint8_t* bytes = data.data();
  std::uint64_t rolling = prime_rolling(data);

  // Pass 1 — trigger scan. The recurrence is loop-carried (each rolling
  // value feeds the next) so it cannot be widened; what *can* be removed
  // is everything else: the per-position bounds test is hoisted out of
  // the loop (advancing is always safe before the final position) and
  // trigger positions are only recorded, not processed, so the scan body
  // stays branch-light and the expensive per-trigger work runs batched
  // in passes 2–4 below.
  Scratch<std::uint32_t> triggers(data.size() / 48 + 8);
  const std::size_t last_pos = data.size() - kFeatureSize;
  std::size_t pos = 0;
  for (; pos < last_pos; ++pos) {
    const std::uint64_t h_select = rolling;
    rolling = rotl64(rolling, 1) ^ tab[bytes[pos]] ^ tab[bytes[pos + kFeatureSize]];
    if ((h_select & kSelectMask) == 0) {
      triggers->push_back(static_cast<std::uint32_t>(pos));
    }
  }
  if ((rolling & kSelectMask) == 0) {
    triggers->push_back(static_cast<std::uint32_t>(pos));
  }

  // Pass 2 — selectability screen, compacted in place. The early-exit
  // kernel answers "has >= 8 distinct bytes" in a handful of iterations
  // for real content instead of always walking all 64.
  std::size_t kept = 0;
  for (const std::uint32_t t : *triggers) {
    if (kernels::has_min_distinct(bytes + t, kFeatureSize, kMinDistinctBytes)) {
      (*triggers)[kept++] = t;
    }
  }
  triggers->resize(kept);

  // Pass 3 — feature hashing in 4-wide ILP lanes over the surviving
  // windows (the FNV chain is serial per window; four chains hide the
  // multiply latency).
  Scratch<std::uint64_t> hashes(kept);
  hashes->resize(kept);
  std::size_t i = 0;
  for (; i + 4 <= kept; i += 4) {
    kernels::fnv1a64_x4(bytes + (*triggers)[i], bytes + (*triggers)[i + 1],
                        bytes + (*triggers)[i + 2], bytes + (*triggers)[i + 3],
                        kFeatureSize, hashes->data() + i);
  }
  for (; i < kept; ++i) {
    (*hashes)[i] = kernels::fnv1a64(bytes + (*triggers)[i], kFeatureSize);
  }

  // Pass 4 — bloom insertion in original scan order, so filter rollover
  // boundaries (and therefore the digest) are identical to the scalar
  // single-pass form.
  for (const std::uint64_t h : *hashes) {
    digest.insert_feature(h);
  }

  // Too few features to be statistically meaningful (e.g. a file of one
  // repeated byte): no digest, same as sdhash on degenerate input.
  if (digest.feature_count_ < 6) return std::nullopt;
  return digest;
}

std::optional<SimilarityDigest> SimilarityDigest::compute_reference(
    ByteView data) {
  if (data.size() < kMinInputSize) return std::nullopt;

  SimilarityDigest digest;
  digest.filters_.emplace_back();

  const auto& tab = buz_table();
  std::uint64_t rolling = prime_rolling(data);

  for (std::size_t pos = 0; pos + kFeatureSize <= data.size(); ++pos) {
    const std::uint64_t h_select = rolling;
    // Advance the window before any `continue` below.
    if (pos + kFeatureSize < data.size()) {
      rolling = rotl64(rolling, 1) ^ tab[data[pos]] ^ tab[data[pos + kFeatureSize]];
    }
    if ((h_select & kSelectMask) != 0) continue;
    const std::uint8_t* window = data.data() + pos;
    if (kernels::distinct_count_reference(window, kFeatureSize) < kMinDistinctBytes) {
      continue;
    }
    digest.insert_feature(kernels::fnv1a64(window, kFeatureSize));
  }

  if (digest.feature_count_ < 6) return std::nullopt;
  return digest;
}

bool SimilarityDigest::operator==(const SimilarityDigest& other) const {
  if (feature_count_ != other.feature_count_) return false;
  if (filters_.size() != other.filters_.size()) return false;
  for (std::size_t i = 0; i < filters_.size(); ++i) {
    if (filters_[i].features != other.filters_[i].features) return false;
    if (filters_[i].bits != other.filters_[i].bits) return false;
  }
  return true;
}

int SimilarityDigest::compare_filters(const Filter& a, const Filter& b) {
  const std::uint32_t pa = a.popcount();
  const std::uint32_t pb = b.popcount();
  if (pa == 0 || pb == 0) return 0;

  const std::uint32_t overlap =
      kernels::and_popcount(a.bits.data(), b.bits.data(), a.bits.size());

  // Expected overlap between two *unrelated* filters with pa and pb set
  // bits: pa*pb/m. Score the excess over that base rate against the best
  // possible overlap, min(pa, pb). The slack (10%) absorbs sampling
  // variance so random data reliably scores 0 (sdhash applies an
  // equivalent cutoff).
  const double m = static_cast<double>(kFilterBits);
  const double expected = static_cast<double>(pa) * static_cast<double>(pb) / m;
  const double max_overlap = static_cast<double>(std::min(pa, pb));
  // Proportional slack absorbs variance on full filters; the absolute
  // term keeps sparsely-populated (trailing) filters from scoring on a
  // handful of coincidental bits.
  const double cutoff = expected + 0.10 * max_overlap + 6.0;
  if (static_cast<double>(overlap) <= cutoff) return 0;
  const double score =
      100.0 * (static_cast<double>(overlap) - cutoff) / (max_overlap - cutoff);
  return static_cast<int>(std::clamp(score, 0.0, 100.0) + 0.5);
}

int SimilarityDigest::compare(const SimilarityDigest& other) const {
  const auto& shorter = filters_.size() <= other.filters_.size() ? filters_ : other.filters_;
  const auto& longer = filters_.size() <= other.filters_.size() ? other.filters_ : filters_;

  // sdhash semantics: every filter of the shorter digest is matched
  // against its best counterpart in the longer one; the score is the
  // feature-count-weighted mean of those best matches (a trailing filter
  // holding a handful of features must not outvote full ones).
  double total = 0.0;
  double weight = 0.0;
  for (const Filter& f : shorter) {
    int best = 0;
    for (const Filter& g : longer) {
      best = std::max(best, compare_filters(f, g));
    }
    total += static_cast<double>(best) * static_cast<double>(f.features);
    weight += static_cast<double>(f.features);
  }
  if (weight <= 0.0) return 0;
  return static_cast<int>(total / weight + 0.5);
}

std::optional<int> similarity_score(ByteView a, ByteView b) {
  const auto da = SimilarityDigest::compute(a);
  if (!da) return std::nullopt;
  const auto db = SimilarityDigest::compute(b);
  if (!db) return std::nullopt;
  return da->compare(*db);
}

}  // namespace cryptodrop::simhash
