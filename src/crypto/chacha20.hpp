// ChaCha20 stream cipher (RFC 8439 core).
//
// Used two ways in this repo: as the "strong cipher" of most simulated
// ransomware families (its output is indistinguishable from random, which
// is exactly the property CryptoDrop's similarity and entropy indicators
// key on), and as a fast keystream source for synthesizing the compressed
// high-entropy segments of corpus files.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace cryptodrop::crypto {

/// ChaCha20 stream cipher (RFC 8439), encrypt == decrypt.
class ChaCha20 {
 public:
  /// `key` uses up to 32 bytes (zero-padded), `nonce` up to 12.
  ChaCha20(ByteView key, ByteView nonce, std::uint32_t counter = 0);

  /// XORs the keystream into `data` (encrypt == decrypt).
  void xor_in_place(Bytes& data);

  /// Returns `data` XOR keystream.
  Bytes transform(ByteView data);

  /// Next `n` raw keystream bytes.
  Bytes keystream(std::size_t n);

 private:
  void next_block();

  std::uint32_t state_[16];
  std::uint8_t block_[64];
  std::size_t block_pos_;
};

/// One-shot convenience wrapper.
Bytes chacha20_encrypt(ByteView key, ByteView nonce, ByteView plaintext);

}  // namespace cryptodrop::crypto
