#include "crypto/sha256.hpp"

#include <atomic>
#include <cstring>

#include "common/hex.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define CRYPTODROP_SHA_NI_BUILD 1
#include <immintrin.h>
#endif

namespace cryptodrop::crypto {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline std::uint32_t rotr(std::uint32_t x, int k) {
  return (x >> k) | (x << (32 - k));
}

/// Portable FIPS 180-4 compression, one block at a time.
void process_block_scalar(std::uint32_t h_[8], const std::uint8_t* block) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  std::uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t temp1 = h + s1 + ch + kK[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t temp2 = s0 + maj;
    h = g; g = f; f = e; e = d + temp1;
    d = c; c = b; b = a; a = temp1 + temp2;
  }
  h_[0] += a; h_[1] += b; h_[2] += c; h_[3] += d;
  h_[4] += e; h_[5] += f; h_[6] += g; h_[7] += h;
}

#ifdef CRYPTODROP_SHA_NI_BUILD

/// SHA-NI compression: the message schedule and two rounds per
/// instruction via sha256msg1/msg2/rnds2, many blocks per call. State is
/// carried in the ABEF/CDGH register split the instructions expect.
/// FIPS 180-4 in hardware — digests are identical to the scalar path by
/// specification (and by the parity suite).
__attribute__((target("sha,ssse3,sse4.1"))) void process_blocks_sha_ni(
    std::uint32_t h_[8], const std::uint8_t* blocks, std::size_t count) {
  // Big-endian dword loads: shuffle each 16-byte lane's bytes into place.
  const __m128i mask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h_[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&h_[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  state1 = _mm_shuffle_epi32(state1, 0x1B);
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);        // CDGH

  for (std::size_t blk = 0; blk < count; ++blk) {
    const std::uint8_t* block = blocks + blk * 64;
    const __m128i save0 = state0;
    const __m128i save1 = state1;
    __m128i msg[4];
    // 16 groups of 4 rounds. Groups 0-3 load message words; later groups
    // run on schedule vectors extended one group ahead: during group g,
    // (a) group g+1's vector is completed — msg2 of its msg1 partial
    // plus the W[t-7] window, both of which need group g-1's vector
    // still *raw* — and only then (b) the msg1 partial for group g+3 is
    // folded into group g-1's vector. Ordering (a) before (b) inside
    // one iteration is what keeps the raw/partial lifetimes disjoint.
    for (int g = 0; g < 16; ++g) {
      if (g < 4) {
        msg[g & 3] = _mm_shuffle_epi8(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16 * g)),
            mask);
      }
      const __m128i wk = _mm_add_epi32(
          msg[g & 3],
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(kK + 4 * g)));
      state1 = _mm_sha256rnds2_epu32(state1, state0, wk);
      state0 =
          _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(wk, 0x0E));
      if (g >= 3 && g < 15) {
        const __m128i w7 = _mm_alignr_epi8(msg[g & 3], msg[(g - 1) & 3], 4);
        msg[(g + 1) & 3] = _mm_sha256msg2_epu32(
            _mm_add_epi32(msg[(g + 1) & 3], w7), msg[g & 3]);
      }
      if (g >= 1 && g < 13) {
        msg[(g - 1) & 3] =
            _mm_sha256msg1_epu32(msg[(g - 1) & 3], msg[g & 3]);
      }
    }
    state0 = _mm_add_epi32(state0, save0);
    state1 = _mm_add_epi32(state1, save1);
  }

  tmp = _mm_shuffle_epi32(state0, 0x1B);               // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);            // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);         // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);            // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&h_[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&h_[4]), state1);
}

bool sha_ni_supported() {
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("ssse3") &&
         __builtin_cpu_supports("sse4.1");
}

#else

bool sha_ni_supported() { return false; }

#endif  // CRYPTODROP_SHA_NI_BUILD

std::atomic<bool> g_force_scalar{false};

bool use_sha_ni() {
  static const bool supported = sha_ni_supported();
  return supported && !g_force_scalar.load(std::memory_order_relaxed);
}

}  // namespace

Sha256::Sha256() : buffer_len_(0), total_len_(0) {
  h_[0] = 0x6a09e667; h_[1] = 0xbb67ae85; h_[2] = 0x3c6ef372; h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f; h_[5] = 0x9b05688c; h_[6] = 0x1f83d9ab; h_[7] = 0x5be0cd19;
}

void Sha256::process_blocks(const std::uint8_t* blocks, std::size_t count) {
  if (count == 0) return;
#ifdef CRYPTODROP_SHA_NI_BUILD
  if (use_sha_ni()) {
    process_blocks_sha_ni(h_, blocks, count);
    return;
  }
#endif
  for (std::size_t i = 0; i < count; ++i) {
    process_block_scalar(h_, blocks + i * 64);
  }
}

void Sha256::update(ByteView data) {
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      process_blocks(buffer_, 1);
      buffer_len_ = 0;
    }
  }
  // Bulk region in one call: the SHA-NI path keeps its state in
  // registers across all of these blocks instead of reloading per block.
  const std::size_t bulk = (data.size() - offset) / 64;
  process_blocks(data.data() + offset, bulk);
  offset += bulk * 64;
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Sha256Digest Sha256::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(ByteView(&pad_byte, 1));
  static constexpr std::uint8_t kZero[64] = {};
  while (buffer_len_ != 56) {
    const std::size_t need = buffer_len_ < 56 ? 56 - buffer_len_ : 64 - buffer_len_ + 56;
    const std::size_t take = std::min<std::size_t>(need, 64);
    // update() counts these padding bytes in total_len_, but bit_len was
    // already captured, so the digest is unaffected.
    update(ByteView(kZero, take));
  }
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(ByteView(len_bytes, 8));
  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(h_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return digest;
}

Sha256Digest sha256(ByteView data) {
  Sha256 hasher;
  hasher.update(data);
  return hasher.finish();
}

std::string sha256_hex(ByteView data) {
  const Sha256Digest d = sha256(data);
  return hex_encode(ByteView(d.data(), d.size()));
}

std::string_view sha256_backend_name() {
  return use_sha_ni() ? "sha_ni" : "scalar";
}

bool sha256_force_scalar(bool force) {
  return g_force_scalar.exchange(force, std::memory_order_relaxed);
}

}  // namespace cryptodrop::crypto
