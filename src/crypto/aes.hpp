// AES-128 block cipher with CTR-mode streaming (FIPS 197 / SP 800-38A).
//
// Several simulated ransomware families use AES-CTR instead of ChaCha20;
// from CryptoDrop's point of view both produce uniformly-random-looking
// ciphertext, but implementing the real algorithm keeps the simulation
// honest (the paper notes many variants "implement their own versions of
// these algorithms", so detecting library calls is insufficient).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace cryptodrop::crypto {

/// The raw AES-128 block cipher (encryption direction only).
class Aes128 {
 public:
  /// `key` uses up to 16 bytes (zero-padded).
  explicit Aes128(ByteView key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(std::uint8_t block[16]) const;

 private:
  std::array<std::uint8_t, 176> round_keys_;  // 11 round keys x 16 bytes
};

/// AES-128 in counter mode: encrypt == decrypt.
class Aes128Ctr {
 public:
  /// `nonce` uses up to 12 bytes; the low 4 bytes of the counter block are
  /// a big-endian block counter.
  Aes128Ctr(ByteView key, ByteView nonce);

  /// XORs the keystream into `data`, continuing from the last call.
  void xor_in_place(Bytes& data);
  /// Returns `data` XORed with the keystream (copying transform).
  Bytes transform(ByteView data);

 private:
  void next_block();

  Aes128 cipher_;
  std::uint8_t counter_block_[16];
  std::uint8_t keystream_[16];
  std::size_t pos_;
};

}  // namespace cryptodrop::crypto
