// SHA-256 (FIPS 180-4).
//
// The paper verifies its document corpus by SHA-256 hash after each run to
// count files lost; the harness does the same against the corpus manifest.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace cryptodrop::crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Streaming hasher: update() any number of times, then finish().
class Sha256 {
 public:
  /// Fresh hash state.
  Sha256();

  /// Absorbs a chunk.
  void update(ByteView data);
  /// Finalizes and returns the digest. The object must not be reused after.
  Sha256Digest finish();

 private:
  void process_blocks(const std::uint8_t* blocks, std::size_t count);

  std::uint32_t h_[8];
  std::uint8_t buffer_[64];
  std::size_t buffer_len_;
  std::uint64_t total_len_;
};

/// One-shot digest.
Sha256Digest sha256(ByteView data);

/// Lower-case hex of the one-shot digest.
std::string sha256_hex(ByteView data);

/// Name of the active block-compression path: "sha_ni" when the CPU's
/// SHA extensions were detected at startup (x86-64 only), else
/// "scalar". Both paths are FIPS 180-4 — identical digests by
/// definition; the golden-parity suite asserts it anyway.
std::string_view sha256_backend_name();

/// Test/bench hook: when true, forces the portable scalar compression
/// even on SHA-NI hardware (the parity suite uses this to compare both
/// paths in one process). Returns the previous setting.
bool sha256_force_scalar(bool force);

}  // namespace cryptodrop::crypto
