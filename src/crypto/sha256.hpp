// SHA-256 (FIPS 180-4).
//
// The paper verifies its document corpus by SHA-256 hash after each run to
// count files lost; the harness does the same against the corpus manifest.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace cryptodrop::crypto {

using Sha256Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  void update(ByteView data);
  /// Finalizes and returns the digest. The object must not be reused after.
  Sha256Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[8];
  std::uint8_t buffer_[64];
  std::size_t buffer_len_;
  std::uint64_t total_len_;
};

/// One-shot digest.
Sha256Digest sha256(ByteView data);

/// Lower-case hex of the one-shot digest.
std::string sha256_hex(ByteView data);

}  // namespace cryptodrop::crypto
