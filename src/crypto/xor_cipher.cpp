#include "crypto/xor_cipher.hpp"

namespace cryptodrop::crypto {

Bytes xor_encrypt(ByteView key, ByteView data) {
  Bytes out(data.begin(), data.end());
  if (key.empty()) return out;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] ^= key[i % key.size()];
  }
  return out;
}

}  // namespace cryptodrop::crypto
