// Repeating-key XOR "cipher".
//
// The Xorist ransomware family (Table I: 51 samples, median 3 files lost)
// uses trivially weak encryption. Its output is *not* uniformly random —
// plaintext structure leaks through — which exercises CryptoDrop's
// indicators differently from the strong-cipher families: the similarity
// indicator still collapses (bytes change everywhere) while the entropy
// delta is smaller than for ChaCha20/AES output.
#pragma once

#include "common/bytes.hpp"

namespace cryptodrop::crypto {

/// XORs `data` with `key` repeated cyclically. Empty key is an error
/// (treated as identity).
Bytes xor_encrypt(ByteView key, ByteView data);

}  // namespace cryptodrop::crypto
