#include "crypto/chacha20.hpp"

#include <cstring>

namespace cryptodrop::crypto {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

inline std::uint32_t load32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void store32(std::uint8_t* p, std::uint32_t x) {
  p[0] = static_cast<std::uint8_t>(x);
  p[1] = static_cast<std::uint8_t>(x >> 8);
  p[2] = static_cast<std::uint8_t>(x >> 16);
  p[3] = static_cast<std::uint8_t>(x >> 24);
}

}  // namespace

ChaCha20::ChaCha20(ByteView key, ByteView nonce, std::uint32_t counter) {
  // RFC 8439 state layout: constants | key | counter | nonce.
  static constexpr char kSigma[] = "expand 32-byte k";
  for (int i = 0; i < 4; ++i) {
    state_[i] = load32(reinterpret_cast<const std::uint8_t*>(kSigma) + 4 * i);
  }
  std::uint8_t key_bytes[32] = {};
  std::memcpy(key_bytes, key.data(), std::min<std::size_t>(key.size(), 32));
  for (int i = 0; i < 8; ++i) state_[4 + i] = load32(key_bytes + 4 * i);
  state_[12] = counter;
  std::uint8_t nonce_bytes[12] = {};
  std::memcpy(nonce_bytes, nonce.data(), std::min<std::size_t>(nonce.size(), 12));
  for (int i = 0; i < 3; ++i) state_[13 + i] = load32(nonce_bytes + 4 * i);
  block_pos_ = 64;  // force a fresh block on first use
}

void ChaCha20::next_block() {
  std::uint32_t x[16];
  std::memcpy(x, state_, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store32(block_ + 4 * i, x[i] + state_[i]);
  }
  ++state_[12];
  block_pos_ = 0;
}

void ChaCha20::xor_in_place(Bytes& data) {
  for (auto& byte : data) {
    if (block_pos_ == 64) next_block();
    byte ^= block_[block_pos_++];
  }
}

Bytes ChaCha20::transform(ByteView data) {
  Bytes out(data.begin(), data.end());
  xor_in_place(out);
  return out;
}

Bytes ChaCha20::keystream(std::size_t n) {
  Bytes out(n, 0);
  xor_in_place(out);
  return out;
}

Bytes chacha20_encrypt(ByteView key, ByteView nonce, ByteView plaintext) {
  ChaCha20 cipher(key, nonce);
  return cipher.transform(plaintext);
}

}  // namespace cryptodrop::crypto
