#include "magic/magic.hpp"

#include <algorithm>
#include <array>
#include <string_view>

#include "entropy/entropy.hpp"

namespace cryptodrop::magic {

namespace {

/// Looks for `needle` anywhere in the first `window` bytes — used to peek
/// inside ZIP containers for the OOXML/ODF member names, the same trick
/// file(1) uses to distinguish .docx from plain .zip.
bool contains_early(ByteView data, std::string_view needle, std::size_t window) {
  const std::size_t limit = std::min(window, data.size());
  if (needle.size() > limit) return false;
  std::string_view haystack(reinterpret_cast<const char*>(data.data()), limit);
  return haystack.find(needle) != std::string_view::npos;
}

bool match_at(ByteView data, std::size_t offset, std::string_view sig) {
  if (data.size() < offset + sig.size()) return false;
  for (std::size_t i = 0; i < sig.size(); ++i) {
    if (data[offset + i] != static_cast<std::uint8_t>(sig[i])) return false;
  }
  return true;
}

bool looks_like_text(ByteView data, bool* is_utf8) {
  // Sample up to 4 KiB: printable ASCII, common whitespace, and valid
  // UTF-8 multibyte sequences qualify; NUL or dense control bytes do not.
  const std::size_t limit = std::min<std::size_t>(data.size(), 4096);
  std::size_t i = 0;
  std::size_t suspicious = 0;
  bool saw_multibyte = false;
  while (i < limit) {
    const std::uint8_t b = data[i];
    if (b == 0) return false;
    if (b == '\t' || b == '\n' || b == '\r' || (b >= 0x20 && b < 0x7f)) {
      ++i;
      continue;
    }
    if (b >= 0xc2 && b <= 0xf4) {
      // Possible UTF-8 lead byte; count continuation bytes.
      const int cont = b >= 0xf0 ? 3 : (b >= 0xe0 ? 2 : 1);
      bool ok = i + static_cast<std::size_t>(cont) < limit + 1;
      for (int k = 1; ok && k <= cont; ++k) {
        if (i + static_cast<std::size_t>(k) >= data.size() ||
            (data[i + static_cast<std::size_t>(k)] & 0xc0) != 0x80) {
          ok = false;
        }
      }
      if (ok) {
        saw_multibyte = true;
        i += static_cast<std::size_t>(cont) + 1;
        continue;
      }
    }
    ++suspicious;
    ++i;
    if (suspicious * 50 > limit) return false;  // >2% junk: not text
  }
  if (is_utf8 != nullptr) *is_utf8 = saw_multibyte;
  return true;
}

}  // namespace

std::string_view type_name(TypeId id) {
  switch (id) {
    case TypeId::empty: return "empty";
    case TypeId::ascii_text: return "ASCII text";
    case TypeId::utf8_text: return "UTF-8 Unicode text";
    case TypeId::html: return "HTML document";
    case TypeId::xml: return "XML document";
    case TypeId::rtf: return "Rich Text Format";
    case TypeId::pdf: return "PDF document";
    case TypeId::postscript: return "PostScript document";
    case TypeId::ms_word_2007: return "Microsoft Word 2007+";
    case TypeId::ms_excel_2007: return "Microsoft Excel 2007+";
    case TypeId::ms_powerpoint_2007: return "Microsoft PowerPoint 2007+";
    case TypeId::opendocument_text: return "OpenDocument Text";
    case TypeId::ole_compound: return "Composite Document File V2";
    case TypeId::zip_archive: return "Zip archive data";
    case TypeId::gzip: return "gzip compressed data";
    case TypeId::sevenzip: return "7-zip archive data";
    case TypeId::jpeg: return "JPEG image data";
    case TypeId::png: return "PNG image data";
    case TypeId::gif: return "GIF image data";
    case TypeId::bmp: return "PC bitmap";
    case TypeId::mp3: return "MPEG ADTS, layer III (MP3)";
    case TypeId::wav: return "RIFF WAVE audio";
    case TypeId::flac: return "FLAC audio";
    case TypeId::ogg: return "Ogg data";
    case TypeId::m4a: return "ISO Media, MPEG-4 audio";
    case TypeId::sqlite: return "SQLite 3.x database";
    case TypeId::pe_executable: return "PE32 executable";
    case TypeId::high_entropy_data: return "data (high entropy)";
    case TypeId::unknown_data: return "data";
  }
  return "data";
}

bool is_high_entropy_type(TypeId id) {
  switch (id) {
    case TypeId::pdf:
    case TypeId::ms_word_2007:
    case TypeId::ms_excel_2007:
    case TypeId::ms_powerpoint_2007:
    case TypeId::opendocument_text:
    case TypeId::zip_archive:
    case TypeId::gzip:
    case TypeId::sevenzip:
    case TypeId::jpeg:
    case TypeId::png:
    case TypeId::mp3:
    case TypeId::flac:
    case TypeId::ogg:
    case TypeId::m4a:
    case TypeId::high_entropy_data:
      return true;
    default:
      return false;
  }
}

TypeId identify(ByteView data) {
  if (data.empty()) return TypeId::empty;

  // ZIP container family: disambiguate by early member names.
  if (match_at(data, 0, "PK\x03\x04")) {
    if (contains_early(data, "word/", 512)) return TypeId::ms_word_2007;
    if (contains_early(data, "xl/", 512)) return TypeId::ms_excel_2007;
    if (contains_early(data, "ppt/", 512)) return TypeId::ms_powerpoint_2007;
    if (contains_early(data, "opendocument", 512)) return TypeId::opendocument_text;
    return TypeId::zip_archive;
  }

  if (match_at(data, 0, "%PDF-")) return TypeId::pdf;
  if (match_at(data, 0, "%!PS")) return TypeId::postscript;
  if (match_at(data, 0, "{\\rtf")) return TypeId::rtf;
  if (match_at(data, 0, "\xd0\xcf\x11\xe0\xa1\xb1\x1a\xe1")) return TypeId::ole_compound;
  if (match_at(data, 0, "\x1f\x8b")) return TypeId::gzip;
  if (match_at(data, 0, "7z\xbc\xaf\x27\x1c")) return TypeId::sevenzip;
  if (match_at(data, 0, "\xff\xd8\xff")) return TypeId::jpeg;
  if (match_at(data, 0, "\x89PNG\r\n\x1a\n")) return TypeId::png;
  if (match_at(data, 0, "GIF8")) return TypeId::gif;
  if (match_at(data, 0, "BM") && data.size() > 14) return TypeId::bmp;
  if (match_at(data, 0, "ID3")) return TypeId::mp3;
  if (data.size() >= 2 && data[0] == 0xff && (data[1] & 0xe0) == 0xe0) return TypeId::mp3;
  if (match_at(data, 0, "RIFF") && match_at(data, 8, "WAVE")) return TypeId::wav;
  if (match_at(data, 0, "fLaC")) return TypeId::flac;
  if (match_at(data, 0, "OggS")) return TypeId::ogg;
  if (match_at(data, 4, "ftypM4A")) return TypeId::m4a;
  if (match_at(data, 0, "SQLite format 3")) return TypeId::sqlite;
  if (match_at(data, 0, "MZ")) return TypeId::pe_executable;

  // Markup before the generic text check.
  if (contains_early(data, "<!DOCTYPE html", 256) || contains_early(data, "<html", 256)) {
    return TypeId::html;
  }
  if (match_at(data, 0, "<?xml")) return TypeId::xml;

  bool is_utf8 = false;
  if (looks_like_text(data, &is_utf8)) {
    return is_utf8 ? TypeId::utf8_text : TypeId::ascii_text;
  }

  // Ciphertext / unrecognized compressed payloads land here.
  const std::size_t sample = std::min<std::size_t>(data.size(), 8192);
  if (entropy::shannon(data.first(sample)) >= 7.2) return TypeId::high_entropy_data;
  return TypeId::unknown_data;
}

}  // namespace cryptodrop::magic
