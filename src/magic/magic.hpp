// File-type identification by content ("magic numbers"), the analogue of
// the `file(1)` utility the paper uses for its File Type Changes indicator
// (§III-A).
//
// Identification looks only at bytes, never the file name: ransomware
// routinely renames files, and the indicator must see through that. The
// signature set covers every type the corpus generator emits plus generic
// fallbacks (text, data, high-entropy data).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace cryptodrop::magic {

/// Identified content types. `unknown_data` is the catch-all for binary
/// content with no signature; `high_entropy_data` is what ciphertext and
/// compressed archives look like (entropy >= 7.2 bits/byte).
enum class TypeId : std::uint8_t {
  empty,
  ascii_text,
  utf8_text,
  html,
  xml,
  rtf,
  pdf,
  postscript,
  ms_word_2007,    // .docx (OOXML)
  ms_excel_2007,   // .xlsx
  ms_powerpoint_2007,  // .pptx
  opendocument_text,   // .odt
  ole_compound,    // legacy .doc/.xls/.ppt container
  zip_archive,
  gzip,
  sevenzip,
  jpeg,
  png,
  gif,
  bmp,
  mp3,
  wav,
  flac,
  ogg,
  m4a,
  sqlite,
  pe_executable,
  high_entropy_data,
  unknown_data,
};

/// Human-readable description, in the style of file(1) output
/// (e.g. "Microsoft Word 2007+", "data").
std::string_view type_name(TypeId id);

/// True for types whose payload is already compressed/encrypted and thus
/// close to maximal entropy even before ransomware touches it (the paper
/// notes .pdf/.docx/.pptx "exhibit far less entropy increase when
/// encrypted").
bool is_high_entropy_type(TypeId id);

/// Identifies `data` by signatures, falling back to text/entropy
/// heuristics. Deterministic and side-effect free.
TypeId identify(ByteView data);

}  // namespace cryptodrop::magic
