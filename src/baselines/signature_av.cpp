#include "baselines/signature_av.hpp"

#include "common/rng.hpp"

namespace cryptodrop::baselines {

std::uint64_t sample_fingerprint(const sim::SampleSpec& spec) {
  // Family identity + variant seed: the same binary always hashes the
  // same; any repack (new seed) hashes differently.
  std::uint64_t h = seed_from_string(spec.family);
  std::uint64_t state = h ^ spec.seed;
  return splitmix64(state);
}

std::uint64_t morphed_fingerprint(const sim::SampleSpec& spec) {
  std::uint64_t state = sample_fingerprint(spec) ^ 0x0123456789abcdefULL;
  return splitmix64(state);
}

void SignatureAv::add_signature(std::uint64_t fingerprint) {
  db_.insert(fingerprint);
}

void SignatureAv::learn_from(const std::vector<sim::SampleSpec>& specs,
                             double fraction, std::uint64_t seed) {
  Rng rng(seed);
  for (const sim::SampleSpec& spec : specs) {
    if (rng.chance(fraction)) add_signature(sample_fingerprint(spec));
  }
}

bool SignatureAv::blocks(std::uint64_t fingerprint) const {
  return db_.contains(fingerprint);
}

bool SignatureAv::blocks(const sim::SampleSpec& spec) const {
  return blocks(sample_fingerprint(spec));
}

}  // namespace cryptodrop::baselines
