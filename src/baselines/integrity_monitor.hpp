// Tripwire-style file integrity monitor — the Related-Work baseline the
// paper contrasts itself against (§II):
//
//   "file integrity monitors such as Tripwire alert the administrator
//    when system-critical files are modified. These monitors are based
//    on simple hash comparisons and fail to distinguish between
//    legitimate file accesses and malicious modifications. ... this type
//    of integrity monitoring is likely to be noisy and frustrate the
//    user."
//
// Implemented as a filesystem filter over the same protected root the
// CryptoDrop engine watches: it snapshots SHA-256 of every protected
// file on attach and raises one alert per file whose content diverges
// from (or disappears relative to) the baseline. bench_baselines runs it
// against both the malware campaign (where it "detects" instantly) and
// the benign suite (where it drowns the user in alerts) to make the
// paper's argument quantitative.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/filter.hpp"

namespace cryptodrop::baselines {

/// One divergence from the baseline, attributed to the process that
/// caused it.
struct IntegrityAlert {
  std::string path;
  vfs::ProcessId pid = 0;
  std::string process_name;
  /// How the file diverged from its baselined hash.
  enum class Kind : std::uint8_t { modified, deleted, replaced, added } kind{};
};

/// The Tripwire stand-in: hash-compare every protected file against an
/// attach-time baseline and alert on any divergence.
class IntegrityMonitor : public vfs::Filter {
 public:
  /// Monitor configuration.
  struct Options {
    std::string protected_root = "users/victim/documents";
    /// Suspend the offending process on its first alert (what an
    /// operator would have to configure to get CryptoDrop-like data
    /// protection out of Tripwire — and what makes it unusable, since
    /// every legitimate save is also an alert).
    bool suspend_on_alert = false;
  };

  /// Alerts are raised lazily from operation callbacks after attach.
  explicit IntegrityMonitor(Options options);

  // --- vfs::Filter -----------------------------------------------------
  void on_attach(vfs::FileSystem& fs) override;
  /// Denies operations from suspended processes (suspend_on_alert).
  vfs::Verdict pre_operation(const vfs::OperationEvent& event) override;
  /// Hash-checks the touched file after writes, renames and removes.
  void post_operation(const vfs::OperationEvent& event, const Status& outcome) override;
  /// Stable name used in spans and test output.
  [[nodiscard]] std::string_view filter_name() const override {
    return "integrity_monitor";
  }

  /// Re-baselines every protected file (the administrator "accepting"
  /// the current state, as after a Tripwire database update).
  void rebaseline();

  /// Injects a precomputed baseline (path -> SHA-256). Callers running
  /// many monitors over clones of one volume hash it once and share.
  void set_baseline(std::map<std::string, crypto::Sha256Digest> baseline) {
    baseline_ = std::move(baseline);
    baseline_injected_ = true;
  }

  /// Computes the baseline map for a volume without attaching.
  static std::map<std::string, crypto::Sha256Digest> compute_baseline(
      const vfs::FileSystem& fs, const std::string& protected_root);

  /// Every alert raised since attach, in order.
  [[nodiscard]] const std::vector<IntegrityAlert>& alerts() const { return alerts_; }
  /// Shorthand for alerts().size().
  [[nodiscard]] std::size_t alert_count() const { return alerts_.size(); }
  /// True when suspend_on_alert has tripped for this process.
  [[nodiscard]] bool is_suspended(vfs::ProcessId pid) const;

 private:
  void check_file(const vfs::OperationEvent& event, const std::string& path);
  void raise_alert(const vfs::OperationEvent& event, const std::string& path,
                   IntegrityAlert::Kind kind);

  Options options_;
  vfs::FileSystem* fs_ = nullptr;
  std::map<std::string, crypto::Sha256Digest> baseline_;
  bool baseline_injected_ = false;
  std::vector<IntegrityAlert> alerts_;
  std::map<vfs::ProcessId, bool> suspended_;
};

}  // namespace cryptodrop::baselines
