#include "baselines/integrity_monitor.hpp"

#include "vfs/path.hpp"

namespace cryptodrop::baselines {

IntegrityMonitor::IntegrityMonitor(Options options) : options_(std::move(options)) {}

void IntegrityMonitor::on_attach(vfs::FileSystem& fs) {
  fs_ = &fs;
  if (!baseline_injected_) rebaseline();
}

std::map<std::string, crypto::Sha256Digest> IntegrityMonitor::compute_baseline(
    const vfs::FileSystem& fs, const std::string& protected_root) {
  std::map<std::string, crypto::Sha256Digest> out;
  for (const std::string& path : fs.list_files_recursive(protected_root)) {
    if (auto data = fs.read_unfiltered(path)) {
      out[path] = crypto::sha256(ByteView(*data));
    }
  }
  return out;
}

void IntegrityMonitor::rebaseline() {
  baseline_ = compute_baseline(*fs_, options_.protected_root);
}

bool IntegrityMonitor::is_suspended(vfs::ProcessId pid) const {
  auto it = suspended_.find(pid);
  return it != suspended_.end() && it->second;
}

vfs::Verdict IntegrityMonitor::pre_operation(const vfs::OperationEvent& event) {
  if (options_.suspend_on_alert && event.op != vfs::OpType::close &&
      is_suspended(event.pid)) {
    return vfs::Verdict::deny;
  }
  return vfs::Verdict::allow;
}

void IntegrityMonitor::raise_alert(const vfs::OperationEvent& event,
                                   const std::string& path,
                                   IntegrityAlert::Kind kind) {
  alerts_.push_back(IntegrityAlert{path, event.pid, event.process_name, kind});
  if (options_.suspend_on_alert) suspended_[event.pid] = true;
}

void IntegrityMonitor::check_file(const vfs::OperationEvent& event,
                                  const std::string& path) {
  auto it = baseline_.find(path);
  const auto data = fs_->read_unfiltered(path);
  if (data == nullptr) return;
  if (it == baseline_.end()) {
    // Tripwire reports additions too; from now on the file is tracked.
    raise_alert(event, path, IntegrityAlert::Kind::added);
    baseline_[path] = crypto::sha256(ByteView(*data));
    return;
  }
  if (crypto::sha256(ByteView(*data)) != it->second) {
    raise_alert(event, path, IntegrityAlert::Kind::modified);
    // One alert per divergence: accept the new content so a second save
    // of the same file alerts again (Tripwire reports per scan; per
    // change is the event-driven equivalent).
    it->second = crypto::sha256(ByteView(*data));
  }
}

void IntegrityMonitor::post_operation(const vfs::OperationEvent& event,
                                      const Status& outcome) {
  if (!outcome.is_ok() || fs_ == nullptr) return;
  switch (event.op) {
    case vfs::OpType::close:
      if (event.wrote && vfs::path_is_under(event.path, options_.protected_root)) {
        check_file(event, event.path);
      }
      break;
    case vfs::OpType::remove:
      if (baseline_.contains(event.path)) {
        raise_alert(event, event.path, IntegrityAlert::Kind::deleted);
        baseline_.erase(event.path);
      }
      break;
    case vfs::OpType::rename: {
      // Source disappearing counts as a delete of a baselined path; the
      // content may live on under the destination name.
      auto src = baseline_.find(event.path);
      if (src != baseline_.end()) {
        const auto digest = src->second;
        baseline_.erase(src);
        if (vfs::path_is_under(event.dest_path, options_.protected_root)) {
          // Track it under the new name; replacing different content is
          // a modification alert.
          auto dst = baseline_.find(event.dest_path);
          if (dst != baseline_.end() && dst->second != digest) {
            raise_alert(event, event.dest_path, IntegrityAlert::Kind::replaced);
          }
          baseline_[event.dest_path] = digest;
        } else {
          raise_alert(event, event.path, IntegrityAlert::Kind::deleted);
        }
      } else if (baseline_.contains(event.dest_path)) {
        // Unknown content moved over a baselined file.
        raise_alert(event, event.dest_path, IntegrityAlert::Kind::replaced);
        if (auto data = fs_->read_unfiltered(event.dest_path)) {
          baseline_[event.dest_path] = crypto::sha256(ByteView(*data));
        }
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace cryptodrop::baselines
