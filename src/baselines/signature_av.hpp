// Signature-based anti-virus — the other Related-Work baseline (§II):
//
//   "Signature matching ... analyzes programs based on known malware
//    characteristics and flags those that match previously observed
//    intrusions. However, malware that has not been previously observed
//    is difficult to identify ... evading signature detection is
//    possible with relative ease."
//
// The paper demonstrates the weakness concretely: adding a single
// character to a PoshCoder sample made two of the six detecting AV
// products lose it (§V-E). Modeled here at the level the argument
// needs: every simulated sample has a stable "binary fingerprint"
// derived from its family and variant lineage; the AV ships a signature
// database built from previously-observed binaries and scans a sample
// *before execution* (the inspection point CryptoDrop deliberately does
// not rely on). A variant whose fingerprint is not in the database runs
// unopposed — and then encrypts everything, because nothing watches the
// data.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>

#include "sim/ransomware/families.hpp"

namespace cryptodrop::baselines {

/// Stable binary fingerprint of one sample. Variants of a family differ:
/// the fingerprint mixes the family name with the sample's variant seed
/// (repacking/morphing = a new seed = a new binary the AV has not seen).
std::uint64_t sample_fingerprint(const sim::SampleSpec& spec);

/// Fingerprint of the same sample after a trivial one-character morph
/// (the paper's §V-E experiment). Never equals sample_fingerprint(spec).
std::uint64_t morphed_fingerprint(const sim::SampleSpec& spec);

/// The signature-database AV stand-in: blocks known binaries at load
/// time, never watches data.
class SignatureAv {
 public:
  /// Adds one known-bad fingerprint to the database.
  void add_signature(std::uint64_t fingerprint);
  /// Convenience: learn the exact binaries of `fraction` of `specs`
  /// (deterministic in `seed`) — "the vendors have seen this share of
  /// the in-the-wild samples before".
  void learn_from(const std::vector<sim::SampleSpec>& specs, double fraction,
                  std::uint64_t seed);

  /// Pre-execution scan: true when the binary matches a known signature
  /// and the AV blocks it (zero files lost); false = the sample runs.
  [[nodiscard]] bool blocks(std::uint64_t fingerprint) const;
  /// Same scan, fingerprinting the spec first.
  [[nodiscard]] bool blocks(const sim::SampleSpec& spec) const;

  /// Known-bad fingerprints in the database.
  [[nodiscard]] std::size_t signature_count() const { return db_.size(); }

 private:
  std::unordered_set<std::uint64_t> db_;
};

}  // namespace cryptodrop::baselines
