// Robustness study: detector performance under an increasingly hostile
// substrate. Sweeps FaultPlan::uniform rates over the Table-I campaign
// and the benign suite, reporting TPR, median files lost, benign false
// positives and the injected-fault mix per rate. The paper's kernel
// driver lives below exactly this kind of noise (sharing violations,
// short writes, racing filters); the detector's numbers should bend,
// not break.
#include "bench_common.hpp"

#include "common/stats.hpp"
#include "harness/chaos.hpp"
#include "sim/benign/benign.hpp"

using namespace cryptodrop;

namespace {

constexpr double kRates[] = {0.0, 0.05, 0.10, 0.20};
constexpr std::uint64_t kFaultSeed = 2016;

std::uint64_t faults_of(const obs::MetricsSnapshot& snap, const char* suffix) {
  const obs::CounterSnapshot* c =
      snap.counter(std::string("faults_injected_total.") + suffix);
  return c == nullptr ? 0 : c->value;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = benchutil::parse_scale(argc, argv);
  const harness::Environment env = benchutil::build_environment(scale);
  const auto specs = benchutil::campaign_specs(scale);
  const auto workloads = sim::all_benign_workloads();
  const core::ScoringConfig config;

  harness::TextTable table({"Fault rate", "TPR", "Gave up", "Median FL",
                            "Benign FP", "io_error", "denied", "short",
                            "delayed"});
  for (const double rate : kRates) {
    harness::FaultCampaignOptions options;
    options.plan = vfs::FaultPlan::uniform(rate, kFaultSeed);

    std::fprintf(stderr, "[bench] fault rate %s: %zu samples + %zu benign...\n",
                 harness::fmt_percent(rate, 0).c_str(), specs.size(),
                 workloads.size());
    // rate 0 exercises the same chaos code path, just with no faults —
    // its row doubles as the fault-free baseline.
    const auto results = harness::run_campaign_faulted(
        env, specs, config, options, benchutil::runner_options(scale));
    const auto benign = harness::run_benign_suite_faulted(
        env, workloads, config, 9, options, benchutil::runner_options(scale));
    benchutil::maybe_write_metrics(scale, results);
    benchutil::maybe_write_trace(scale, results);

    std::size_t detected = 0;
    std::size_t gave_up = 0;  // undetected, but halted by substrate faults
    for (const auto& r : results) {
      detected += r.detected ? 1 : 0;
      gave_up += (!r.detected && !r.sample.ran_to_completion) ? 1 : 0;
    }
    std::size_t false_positives = 0;
    for (const auto& b : benign) {
      false_positives += (b.detected && !b.expected_false_positive) ? 1 : 0;
    }
    obs::MetricsSnapshot merged = harness::merged_metrics(results);
    merged.merge(harness::merged_metrics(benign));

    table.add_row(
        {harness::fmt_percent(rate, 0),
         harness::fmt_percent(static_cast<double>(detected) /
                              static_cast<double>(results.size())),
         std::to_string(gave_up),
         harness::fmt_double(median(files_lost_values(results)), 1),
         std::to_string(false_positives),
         std::to_string(faults_of(merged, "io_error")),
         std::to_string(faults_of(merged, "access_denied")),
         std::to_string(faults_of(merged, "short_write")),
         std::to_string(faults_of(merged, "delay_post"))});
  }

  std::printf("== Detection under injected faults (chaos sweep) ==\n\n");
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nTPR should hold at (or within one sample of) 100%% through the 10%%\n"
      "rate; any misses should sit in the Gave-up column — samples the faulted\n"
      "substrate halted before they did enough damage to be scored. Denials\n"
      "run at a quarter of the listed rate (see FaultPlan::uniform).\n"
      "Deterministic in (corpus seed, campaign seed, fault seed) at any\n"
      "--jobs count.\n");
  return 0;
}
