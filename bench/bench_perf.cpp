// §V-H reproduction: per-operation overhead of the CryptoDrop engine,
// measured with google-benchmark.
//
// Paper reference (unoptimized research prototype): open/read < 1 ms,
// close +1.58 ms, write +9 ms, rename +16 ms — write and rename are the
// most expensive because that is where measurement happens. Our absolute
// numbers are micro-seconds (in-memory FS, no disk), but the *ordering*
// should match: rename/close-after-write carry the measurement cost.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "vfs/filesystem.hpp"

using namespace cryptodrop;

namespace {

constexpr const char* kRoot = "users/victim/documents";

struct PerfFixture {
  vfs::FileSystem fs;
  std::unique_ptr<core::AnalysisEngine> engine;
  vfs::ProcessId pid = 0;
  Rng rng{99};

  explicit PerfFixture(bool with_engine) {
    // A modest protected tree with realistic content.
    for (int i = 0; i < 64; ++i) {
      const std::string path =
          std::string(kRoot) + "/dir" + std::to_string(i % 8) + "/doc" +
          std::to_string(i) + ".txt";
      Bytes content = to_bytes(synth_prose(rng, 64 * 1024));
      (void)fs.put_file_raw(path, std::move(content));
    }
    if (with_engine) {
      core::ScoringConfig config;
      config.score_threshold = 1 << 30;  // measure, never suspend
      config.union_threshold = 1 << 30;
      engine = std::make_unique<core::AnalysisEngine>(config);
      fs.attach_filter(engine.get());
    }
    pid = fs.register_process("bench");
  }

  std::string doc(int i) {
    return std::string(kRoot) + "/dir" + std::to_string(i % 8) + "/doc" +
           std::to_string(i % 64) + ".txt";
  }
};

void BM_OpenClose(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    auto h = fx.fs.open(fx.pid, fx.doc(i++), vfs::kRead);
    benchmark::DoNotOptimize(h);
    (void)fx.fs.close(fx.pid, h.value());
  }
}
BENCHMARK(BM_OpenClose)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Read64K(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    auto h = fx.fs.open(fx.pid, fx.doc(i++), vfs::kRead);
    auto data = fx.fs.read(fx.pid, h.value(), 64 * 1024);
    benchmark::DoNotOptimize(data);
    (void)fx.fs.close(fx.pid, h.value());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_Read64K)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Write64K(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  const Bytes payload = fx.rng.bytes(64 * 1024);
  int i = 0;
  for (auto _ : state) {
    auto h = fx.fs.open(fx.pid, fx.doc(i++), vfs::kRead | vfs::kWrite);
    (void)fx.fs.write(fx.pid, h.value(), ByteView(payload));
    (void)fx.fs.close(fx.pid, h.value());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_Write64K)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_WriteCloseMeasured(benchmark::State& state) {
  // The expensive path the paper calls out: a modified file's close is
  // where type + similarity measurement runs.
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    const std::string path = fx.doc(i++);
    auto h = fx.fs.open(fx.pid, path, vfs::kRead | vfs::kWrite);
    Bytes fresh = to_bytes(synth_prose(fx.rng, 64 * 1024));
    (void)fx.fs.write(fx.pid, h.value(), ByteView(fresh));
    (void)fx.fs.close(fx.pid, h.value());
  }
}
BENCHMARK(BM_WriteCloseMeasured)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Rename(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  std::string current = fx.doc(0);
  for (auto _ : state) {
    const std::string next =
        std::string(kRoot) + "/renamed_" + std::to_string(i++ % 2) + ".txt";
    (void)fx.fs.rename(fx.pid, current, next);
    current = next;
  }
}
BENCHMARK(BM_Rename)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_RenameReplace(benchmark::State& state) {
  // Rename-over-existing: the engine must snapshot + compare pre-images
  // (the paper's most expensive operation at 16 ms).
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string src = std::string(kRoot) + "/incoming.tmp";
    (void)fx.fs.write_file(fx.pid, src, fx.rng.bytes(64 * 1024));
    const std::string dst = fx.doc(i++);
    state.ResumeTiming();
    (void)fx.fs.rename(fx.pid, src, dst);
  }
}
BENCHMARK(BM_RenameReplace)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Remove(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string path = std::string(kRoot) + "/victim" + std::to_string(i++) + ".txt";
    (void)fx.fs.put_file_raw(path, to_bytes("to be deleted"));
    state.ResumeTiming();
    (void)fx.fs.remove(fx.pid, path);
  }
}
BENCHMARK(BM_Remove)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_UnmonitoredDirectoryOps(benchmark::State& state) {
  // §V-H: "CryptoDrop does not inspect files outside of the user's
  // documents directory" — engine on/off must be indistinguishable here.
  PerfFixture fx(state.range(0) != 0);
  const Bytes payload = fx.rng.bytes(16 * 1024);
  int i = 0;
  for (auto _ : state) {
    const std::string path = "programdata/cache/blob" + std::to_string(i++ % 16);
    (void)fx.fs.write_file(fx.pid, path, ByteView(payload));
    auto data = fx.fs.read_file(fx.pid, path);
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_UnmonitoredDirectoryOps)->Arg(0)->Arg(1)->ArgNames({"engine"});

/// The paper's own methodology ("we traced our code while performing
/// modifications to protected files"): run a realistic mixed workload
/// and print the engine's internal per-callback cost per op type.
void print_engine_internal_latency() {
  PerfFixture fx(/*with_engine=*/true);
  Rng rng(7);
  // A mixed workload: reads, in-place rewrites, renames, deletes.
  for (int round = 0; round < 48; ++round) {
    const std::string path = fx.doc(round);
    (void)fx.fs.read_file(fx.pid, path);
    auto h = fx.fs.open(fx.pid, path, vfs::kRead | vfs::kWrite);
    if (h) {
      Bytes fresh = to_bytes(synth_prose(rng, 64 * 1024));
      (void)fx.fs.write(fx.pid, h.value(), ByteView(fresh));
      (void)fx.fs.close(fx.pid, h.value());
    }
    if (round % 4 == 0) {
      (void)fx.fs.rename(fx.pid, path,
                         std::string(kRoot) + "/renamed" + std::to_string(round));
    }
    if (round % 8 == 0) {
      const std::string victim = std::string(kRoot) + "/tmp" + std::to_string(round);
      (void)fx.fs.put_file_raw(victim, to_bytes("bye"));
      (void)fx.fs.remove(fx.pid, victim);
    }
  }
  const core::LatencyStats& stats = fx.engine->latency_stats();
  std::printf("\n== engine-internal measurement cost per op (paper §V-H style) ==\n");
  std::printf("%-10s %10s %14s %14s\n", "op", "count", "mean (us)", "max (us)");
  const struct {
    const char* name;
    vfs::OpType op;
  } kRows[] = {
      {"open", vfs::OpType::open},     {"read", vfs::OpType::read},
      {"write", vfs::OpType::write},   {"close", vfs::OpType::close},
      {"rename", vfs::OpType::rename}, {"remove", vfs::OpType::remove},
  };
  for (const auto& row : kRows) {
    const auto& bucket = stats.for_op(row.op);
    std::printf("%-10s %10llu %14.1f %14.1f\n", row.name,
                static_cast<unsigned long long>(bucket.count), bucket.mean_micros(),
                static_cast<double>(bucket.max_ns) / 1000.0);
  }
  std::printf("[paper's unoptimized prototype: open/read < 1 ms, close +1.58 ms,\n"
              " write +9 ms, rename +16 ms — write/rename/close carry the\n"
              " measurement, opens and reads are nearly free]\n");

  // The same cost, stage by stage, from the observability layer: which
  // part of the measurement (digest, entropy, type sniff) the per-op
  // latency above is actually spent in.
  const obs::MetricsSnapshot metrics = fx.engine->metrics_snapshot();
  std::printf("\n== stage latency (obs histograms) ==\n");
  std::printf("%-34s %10s %14s\n", "stage", "samples", "mean (us)");
  for (const obs::HistogramSnapshot& h : metrics.histograms) {
    std::printf("%-34s %10llu %14.2f\n", h.name.c_str(),
                static_cast<unsigned long long>(h.count), h.mean());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_engine_internal_latency();
  return 0;
}
