// §V-H reproduction: per-operation overhead of the CryptoDrop engine,
// measured with google-benchmark.
//
// Paper reference (unoptimized research prototype): open/read < 1 ms,
// close +1.58 ms, write +9 ms, rename +16 ms — write and rename are the
// most expensive because that is where measurement happens. Our absolute
// numbers are micro-seconds (in-memory FS, no disk), but the *ordering*
// should match: rename/close-after-write carry the measurement cost.
// With --perf-out PATH the non-google-benchmark sections (engine
// per-op latency, stage self-times, tracing overhead, per-backend
// scoring cost) are also written as JSON — the format checked in as
// BENCH_PERF.json, the repo's perf baseline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <optional>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "entropy/backend.hpp"
#include "entropy/entropy.hpp"
#include "obs/span.hpp"
#include "vfs/filesystem.hpp"

using namespace cryptodrop;

namespace {

constexpr const char* kRoot = "users/victim/documents";

struct PerfFixture {
  vfs::FileSystem fs;
  std::unique_ptr<core::AnalysisEngine> engine;
  vfs::ProcessId pid = 0;
  Rng rng{99};

  explicit PerfFixture(bool with_engine, obs::SpanTracer* tracer = nullptr) {
    // A modest protected tree with realistic content.
    for (int i = 0; i < 64; ++i) {
      const std::string path =
          std::string(kRoot) + "/dir" + std::to_string(i % 8) + "/doc" +
          std::to_string(i) + ".txt";
      Bytes content = to_bytes(synth_prose(rng, 64 * 1024));
      (void)fs.put_file_raw(path, std::move(content));
    }
    // Tracer before the engine attaches (the engine caches it on attach).
    if (tracer != nullptr) fs.set_span_tracer(tracer);
    if (with_engine) {
      core::ScoringConfig config;
      config.score_threshold = 1 << 30;  // measure, never suspend
      config.union_threshold = 1 << 30;
      engine = std::make_unique<core::AnalysisEngine>(config);
      fs.attach_filter(engine.get());
    }
    pid = fs.register_process("bench");
  }

  std::string doc(int i) {
    return std::string(kRoot) + "/dir" + std::to_string(i % 8) + "/doc" +
           std::to_string(i % 64) + ".txt";
  }
};

void BM_OpenClose(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    auto h = fx.fs.open(fx.pid, fx.doc(i++), vfs::kRead);
    benchmark::DoNotOptimize(h);
    (void)fx.fs.close(fx.pid, h.value());
  }
}
BENCHMARK(BM_OpenClose)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Read64K(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    auto h = fx.fs.open(fx.pid, fx.doc(i++), vfs::kRead);
    auto data = fx.fs.read(fx.pid, h.value(), 64 * 1024);
    benchmark::DoNotOptimize(data);
    (void)fx.fs.close(fx.pid, h.value());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_Read64K)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Write64K(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  const Bytes payload = fx.rng.bytes(64 * 1024);
  int i = 0;
  for (auto _ : state) {
    auto h = fx.fs.open(fx.pid, fx.doc(i++), vfs::kRead | vfs::kWrite);
    (void)fx.fs.write(fx.pid, h.value(), ByteView(payload));
    (void)fx.fs.close(fx.pid, h.value());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_Write64K)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_WriteCloseMeasured(benchmark::State& state) {
  // The expensive path the paper calls out: a modified file's close is
  // where type + similarity measurement runs.
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    const std::string path = fx.doc(i++);
    auto h = fx.fs.open(fx.pid, path, vfs::kRead | vfs::kWrite);
    Bytes fresh = to_bytes(synth_prose(fx.rng, 64 * 1024));
    (void)fx.fs.write(fx.pid, h.value(), ByteView(fresh));
    (void)fx.fs.close(fx.pid, h.value());
  }
}
BENCHMARK(BM_WriteCloseMeasured)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Rename(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  std::string current = fx.doc(0);
  for (auto _ : state) {
    const std::string next =
        std::string(kRoot) + "/renamed_" + std::to_string(i++ % 2) + ".txt";
    (void)fx.fs.rename(fx.pid, current, next);
    current = next;
  }
}
BENCHMARK(BM_Rename)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_RenameReplace(benchmark::State& state) {
  // Rename-over-existing: the engine must snapshot + compare pre-images
  // (the paper's most expensive operation at 16 ms).
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string src = std::string(kRoot) + "/incoming.tmp";
    (void)fx.fs.write_file(fx.pid, src, fx.rng.bytes(64 * 1024));
    const std::string dst = fx.doc(i++);
    state.ResumeTiming();
    (void)fx.fs.rename(fx.pid, src, dst);
  }
}
BENCHMARK(BM_RenameReplace)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Remove(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string path = std::string(kRoot) + "/victim" + std::to_string(i++) + ".txt";
    (void)fx.fs.put_file_raw(path, to_bytes("to be deleted"));
    state.ResumeTiming();
    (void)fx.fs.remove(fx.pid, path);
  }
}
BENCHMARK(BM_Remove)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_UnmonitoredDirectoryOps(benchmark::State& state) {
  // §V-H: "CryptoDrop does not inspect files outside of the user's
  // documents directory" — engine on/off must be indistinguishable here.
  PerfFixture fx(state.range(0) != 0);
  const Bytes payload = fx.rng.bytes(16 * 1024);
  int i = 0;
  for (auto _ : state) {
    const std::string path = "programdata/cache/blob" + std::to_string(i++ % 16);
    (void)fx.fs.write_file(fx.pid, path, ByteView(payload));
    auto data = fx.fs.read_file(fx.pid, path);
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_UnmonitoredDirectoryOps)->Arg(0)->Arg(1)->ArgNames({"engine"});

/// The paper's own methodology ("we traced our code while performing
/// modifications to protected files"): run a realistic mixed workload
/// and print the engine's internal per-callback cost per op type.
/// Returns the same numbers as JSON for --perf-out.
Json print_engine_internal_latency() {
  PerfFixture fx(/*with_engine=*/true);
  Rng rng(7);
  // A mixed workload: reads, in-place rewrites, renames, deletes.
  for (int round = 0; round < 48; ++round) {
    const std::string path = fx.doc(round);
    (void)fx.fs.read_file(fx.pid, path);
    auto h = fx.fs.open(fx.pid, path, vfs::kRead | vfs::kWrite);
    if (h) {
      Bytes fresh = to_bytes(synth_prose(rng, 64 * 1024));
      (void)fx.fs.write(fx.pid, h.value(), ByteView(fresh));
      (void)fx.fs.close(fx.pid, h.value());
    }
    if (round % 4 == 0) {
      (void)fx.fs.rename(fx.pid, path,
                         std::string(kRoot) + "/renamed" + std::to_string(round));
    }
    if (round % 8 == 0) {
      const std::string victim = std::string(kRoot) + "/tmp" + std::to_string(round);
      (void)fx.fs.put_file_raw(victim, to_bytes("bye"));
      (void)fx.fs.remove(fx.pid, victim);
    }
  }
  const core::LatencyStats& stats = fx.engine->latency_stats();
  std::printf("\n== engine-internal measurement cost per op (paper §V-H style) ==\n");
  std::printf("%-10s %10s %14s %14s\n", "op", "count", "mean (us)", "max (us)");
  const struct {
    const char* name;
    vfs::OpType op;
  } kRows[] = {
      {"open", vfs::OpType::open},     {"read", vfs::OpType::read},
      {"write", vfs::OpType::write},   {"close", vfs::OpType::close},
      {"rename", vfs::OpType::rename}, {"remove", vfs::OpType::remove},
  };
  Json ops = Json::object();
  for (const auto& row : kRows) {
    const auto& bucket = stats.for_op(row.op);
    std::printf("%-10s %10llu %14.1f %14.1f\n", row.name,
                static_cast<unsigned long long>(bucket.count), bucket.mean_micros(),
                static_cast<double>(bucket.max_ns) / 1000.0);
    Json op = Json::object();
    op.set("count", bucket.count);
    op.set("mean_us", bucket.mean_micros());
    op.set("max_us", static_cast<double>(bucket.max_ns) / 1000.0);
    ops.set(row.name, std::move(op));
  }
  std::printf("[paper's unoptimized prototype: open/read < 1 ms, close +1.58 ms,\n"
              " write +9 ms, rename +16 ms — write/rename/close carry the\n"
              " measurement, opens and reads are nearly free]\n");

  // The same cost, stage by stage, from the observability layer: which
  // part of the measurement (digest, entropy, type sniff) the per-op
  // latency above is actually spent in.
  const obs::MetricsSnapshot metrics = fx.engine->metrics_snapshot();
  std::printf("\n== stage latency (obs histograms) ==\n");
  std::printf("%-34s %10s %14s\n", "stage", "samples", "mean (us)");
  Json stages = Json::object();
  for (const obs::HistogramSnapshot& h : metrics.histograms) {
    std::printf("%-34s %10llu %14.2f\n", h.name.c_str(),
                static_cast<unsigned long long>(h.count), h.mean());
    Json stage = Json::object();
    stage.set("samples", h.count);
    stage.set("mean_us", h.mean());
    stages.set(h.name, std::move(stage));
  }
  Json out = Json::object();
  out.set("per_op", std::move(ops));
  out.set("stage_self_time", std::move(stages));
  return out;
}

/// Per-backend scoring cost over a fixed 64 KiB buffer, plus the direct
/// `entropy::shannon` call the engine made before the Backend interface
/// existed. Guardrail: the shannon backend (the default config's hot
/// path) must stay within 5% of the direct call — the interface may not
/// tax the path every deployment runs. Returns nullopt on violation.
std::optional<Json> run_backend_scoring_costs() {
  constexpr std::size_t kBufBytes = 64 * 1024;
  constexpr int kCalls = 64;
  constexpr int kReps = 9;  // best-of, same policy as the tracing gate
  Rng rng(41);
  const Bytes prose = to_bytes(synth_prose(rng, kBufBytes));
  const Bytes random = rng.bytes(kBufBytes);

  // Best-of-reps nanoseconds for one pass over both buffers.
  const auto time_ns = [&](auto&& fn) {
    double best = 1e18;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto begin = std::chrono::steady_clock::now();
      for (int i = 0; i < kCalls; ++i) {
        benchmark::DoNotOptimize(fn(ByteView(prose)));
        benchmark::DoNotOptimize(fn(ByteView(random)));
      }
      const auto end = std::chrono::steady_clock::now();
      best = std::min(
          best, std::chrono::duration<double, std::nano>(end - begin).count() /
                    (2.0 * kCalls));
    }
    return best;
  };

  std::printf("\n== entropy-backend scoring cost (64 KiB buffer) ==\n");
  std::printf("%-22s %14s\n", "backend", "ns / call");
  const double direct_ns =
      time_ns([](ByteView data) { return entropy::shannon(data); });
  std::printf("%-22s %14.0f\n", "(direct shannon)", direct_ns);

  Json costs = Json::object();
  costs.set("direct_shannon_ns", direct_ns);
  double shannon_backend_ns = 0.0;
  for (entropy::BackendKind kind : entropy::all_backend_kinds()) {
    const auto backend = entropy::make_backend(kind);
    const double ns =
        time_ns([&](ByteView data) { return backend->score(data); });
    std::printf("%-22s %14.0f\n", std::string(backend->name()).c_str(), ns);
    costs.set(std::string(backend->name()) + "_ns", ns);
    if (kind == entropy::BackendKind::shannon) shannon_backend_ns = ns;
  }

  const double overhead_pct =
      direct_ns > 0.0 ? 100.0 * (shannon_backend_ns - direct_ns) / direct_ns
                      : 0.0;
  costs.set("shannon_interface_overhead_pct", overhead_pct);
  std::printf("shannon via Backend interface: %+.1f%% vs direct call\n",
              overhead_pct);
  if (overhead_pct >= 5.0) {
    std::fprintf(stderr,
                 "FAIL: the Backend interface costs %.1f%% on the default "
                 "shannon path (budget: <5%% over the direct call)\n",
                 overhead_pct);
    return std::nullopt;
  }
  return costs;
}

/// Tracing-overhead guardrail: the same data-carrying workload (the
/// write+measured-close path, where every engine stage span opens) timed
/// with the tracer off, sampled at the bench default (1-in-16), and
/// keeping everything. Sampled tracing is the always-on configuration we
/// recommend, so it must stay under 5% over the untraced baseline —
/// returns nullopt (and bench_perf exits nonzero) when it doesn't,
/// otherwise the batch timings plus the untraced write+close throughput.
std::optional<Json> run_tracing_overhead_guardrail() {
  constexpr int kOpsPerRep = 192;
  constexpr int kReps = 7;  // best-of: the quietest rep, per config

  const auto run_batch = [&](obs::SpanTracer* tracer) {
    double best_us = 1e18;
    for (int rep = 0; rep < kReps; ++rep) {
      PerfFixture fx(/*with_engine=*/true, tracer);
      // Payloads generated outside the timed region, identically seeded
      // for every config and rep.
      Rng payload_rng(17);
      std::vector<Bytes> payloads;
      payloads.reserve(kOpsPerRep);
      for (int i = 0; i < kOpsPerRep; ++i) {
        payloads.push_back(to_bytes(synth_prose(payload_rng, 64 * 1024)));
      }
      const auto begin = std::chrono::steady_clock::now();
      for (int i = 0; i < kOpsPerRep; ++i) {
        auto h = fx.fs.open(fx.pid, fx.doc(i), vfs::kRead | vfs::kWrite);
        (void)fx.fs.write(fx.pid, h.value(), ByteView(payloads[static_cast<std::size_t>(i)]));
        (void)fx.fs.close(fx.pid, h.value());
      }
      const auto end = std::chrono::steady_clock::now();
      const double us =
          std::chrono::duration<double, std::micro>(end - begin).count();
      best_us = std::min(best_us, us);
    }
    return best_us;
  };

  obs::TraceOptions sampled_options;
  sampled_options.enabled = true;
  sampled_options.sample_every = 16;  // the bench default
  obs::TraceOptions full_options;
  full_options.enabled = true;
  full_options.sample_every = 1;

  const double off_us = run_batch(nullptr);
  obs::SpanTracer sampled_tracer(sampled_options);
  const double sampled_us = run_batch(&sampled_tracer);
  obs::SpanTracer full_tracer(full_options);
  const double full_us = run_batch(&full_tracer);

  const auto overhead = [&](double us) {
    return off_us > 0.0 ? 100.0 * (us - off_us) / off_us : 0.0;
  };
  std::printf("\n== span-tracing overhead (%d write+close ops, best of %d) ==\n",
              kOpsPerRep, kReps);
  std::printf("%-22s %14s %10s\n", "config", "batch (us)", "overhead");
  std::printf("%-22s %14.1f %10s\n", "tracer off", off_us, "-");
  std::printf("%-22s %14.1f %+9.1f%%\n", "sampled (1-in-16)", sampled_us,
              overhead(sampled_us));
  std::printf("%-22s %14.1f %+9.1f%%\n", "full (every op)", full_us,
              overhead(full_us));

  if (obs::kMetricsEnabled && overhead(sampled_us) >= 5.0) {
    std::fprintf(stderr,
                 "FAIL: sampled span tracing costs %.1f%% (budget: <5%% over "
                 "the untraced baseline)\n",
                 overhead(sampled_us));
    return std::nullopt;
  }
  std::printf("sampled tracing within the <5%% budget\n");
  Json out = Json::object();
  out.set("write_close_ops_per_sec",
          off_us > 0.0 ? 1e6 * kOpsPerRep / off_us : 0.0);
  out.set("tracer_off_batch_us", off_us);
  out.set("sampled_batch_us", sampled_us);
  out.set("full_batch_us", full_us);
  out.set("sampled_overhead_pct", overhead(sampled_us));
  out.set("full_overhead_pct", overhead(full_us));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --perf-out before google-benchmark sees (and rejects) it.
  std::string perf_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-out") == 0 && i + 1 < argc) {
      perf_out = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  Json engine_latency = print_engine_internal_latency();
  const std::optional<Json> backend_costs = run_backend_scoring_costs();
  const std::optional<Json> tracing = run_tracing_overhead_guardrail();
  if (!backend_costs.has_value() || !tracing.has_value()) return 1;

  if (!perf_out.empty()) {
    Json doc = Json::object();
    doc.set("schema_version", 1);
    doc.set("generated_by", "bench_perf --perf-out");
    doc.set("note",
            "single-machine baseline; compare ratios and orderings, not "
            "absolute wall times, across hosts");
    doc.set("engine_internal", std::move(engine_latency));
    doc.set("throughput_and_tracing", *tracing);
    doc.set("entropy_backend_scoring", *backend_costs);
    std::FILE* f = std::fopen(perf_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", perf_out.c_str());
      return 1;
    }
    const std::string text = doc.to_pretty_string();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("perf summary written to %s\n", perf_out.c_str());
  }
  return 0;
}
