// §V-H reproduction: per-operation overhead of the CryptoDrop engine,
// measured with google-benchmark.
//
// Paper reference (unoptimized research prototype): open/read < 1 ms,
// close +1.58 ms, write +9 ms, rename +16 ms — write and rename are the
// most expensive because that is where measurement happens. Our absolute
// numbers are micro-seconds (in-memory FS, no disk), but the *ordering*
// should match: rename/close-after-write carry the measurement cost.
// With --perf-out PATH the non-google-benchmark sections (engine
// per-op latency, stage self-times, tracing overhead, per-backend
// scoring cost) are also written as JSON — the format checked in as
// BENCH_PERF.json, the repo's perf baseline.
#include <benchmark/benchmark.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "crypto/sha256.hpp"
#include "daemon/daemon.hpp"
#include "daemon/server.hpp"
#include "entropy/backend.hpp"
#include "entropy/entropy.hpp"
#include "obs/span.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/trace.hpp"

using namespace cryptodrop;

namespace {

constexpr const char* kRoot = "users/victim/documents";

struct PerfFixture {
  vfs::FileSystem fs;
  std::unique_ptr<core::AnalysisEngine> engine;
  vfs::ProcessId pid = 0;
  Rng rng{99};

  explicit PerfFixture(bool with_engine, obs::SpanTracer* tracer = nullptr) {
    // A modest protected tree with realistic content.
    for (int i = 0; i < 64; ++i) {
      const std::string path =
          std::string(kRoot) + "/dir" + std::to_string(i % 8) + "/doc" +
          std::to_string(i) + ".txt";
      Bytes content = to_bytes(synth_prose(rng, 64 * 1024));
      (void)fs.put_file_raw(path, std::move(content));
    }
    // Tracer before the engine attaches (the engine caches it on attach).
    if (tracer != nullptr) fs.set_span_tracer(tracer);
    if (with_engine) {
      core::ScoringConfig config;
      config.score_threshold = 1 << 30;  // measure, never suspend
      config.union_threshold = 1 << 30;
      engine = std::make_unique<core::AnalysisEngine>(config);
      fs.attach_filter(engine.get());
    }
    pid = fs.register_process("bench");
  }

  std::string doc(int i) {
    return std::string(kRoot) + "/dir" + std::to_string(i % 8) + "/doc" +
           std::to_string(i % 64) + ".txt";
  }
};

void BM_OpenClose(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    auto h = fx.fs.open(fx.pid, fx.doc(i++), vfs::kRead);
    benchmark::DoNotOptimize(h);
    (void)fx.fs.close(fx.pid, h.value());
  }
}
BENCHMARK(BM_OpenClose)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Read64K(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    auto h = fx.fs.open(fx.pid, fx.doc(i++), vfs::kRead);
    auto data = fx.fs.read(fx.pid, h.value(), 64 * 1024);
    benchmark::DoNotOptimize(data);
    (void)fx.fs.close(fx.pid, h.value());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_Read64K)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Write64K(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  const Bytes payload = fx.rng.bytes(64 * 1024);
  int i = 0;
  for (auto _ : state) {
    auto h = fx.fs.open(fx.pid, fx.doc(i++), vfs::kRead | vfs::kWrite);
    (void)fx.fs.write(fx.pid, h.value(), ByteView(payload));
    (void)fx.fs.close(fx.pid, h.value());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_Write64K)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_WriteCloseMeasured(benchmark::State& state) {
  // The expensive path the paper calls out: a modified file's close is
  // where type + similarity measurement runs.
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    const std::string path = fx.doc(i++);
    auto h = fx.fs.open(fx.pid, path, vfs::kRead | vfs::kWrite);
    Bytes fresh = to_bytes(synth_prose(fx.rng, 64 * 1024));
    (void)fx.fs.write(fx.pid, h.value(), ByteView(fresh));
    (void)fx.fs.close(fx.pid, h.value());
  }
}
BENCHMARK(BM_WriteCloseMeasured)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Rename(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  std::string current = fx.doc(0);
  for (auto _ : state) {
    const std::string next =
        std::string(kRoot) + "/renamed_" + std::to_string(i++ % 2) + ".txt";
    (void)fx.fs.rename(fx.pid, current, next);
    current = next;
  }
}
BENCHMARK(BM_Rename)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_RenameReplace(benchmark::State& state) {
  // Rename-over-existing: the engine must snapshot + compare pre-images
  // (the paper's most expensive operation at 16 ms).
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string src = std::string(kRoot) + "/incoming.tmp";
    (void)fx.fs.write_file(fx.pid, src, fx.rng.bytes(64 * 1024));
    const std::string dst = fx.doc(i++);
    state.ResumeTiming();
    (void)fx.fs.rename(fx.pid, src, dst);
  }
}
BENCHMARK(BM_RenameReplace)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Remove(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string path = std::string(kRoot) + "/victim" + std::to_string(i++) + ".txt";
    (void)fx.fs.put_file_raw(path, to_bytes("to be deleted"));
    state.ResumeTiming();
    (void)fx.fs.remove(fx.pid, path);
  }
}
BENCHMARK(BM_Remove)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_UnmonitoredDirectoryOps(benchmark::State& state) {
  // §V-H: "CryptoDrop does not inspect files outside of the user's
  // documents directory" — engine on/off must be indistinguishable here.
  PerfFixture fx(state.range(0) != 0);
  const Bytes payload = fx.rng.bytes(16 * 1024);
  int i = 0;
  for (auto _ : state) {
    const std::string path = "programdata/cache/blob" + std::to_string(i++ % 16);
    (void)fx.fs.write_file(fx.pid, path, ByteView(payload));
    auto data = fx.fs.read_file(fx.pid, path);
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_UnmonitoredDirectoryOps)->Arg(0)->Arg(1)->ArgNames({"engine"});

/// The paper's own methodology ("we traced our code while performing
/// modifications to protected files"): run a realistic mixed workload
/// and print the engine's internal per-callback cost per op type.
/// Returns the same numbers as JSON for --perf-out, or nullopt when the
/// close-path gate (close mean within 3x of write mean) is violated —
/// the regression that motivated digest retention + cache routing.
std::optional<Json> print_engine_internal_latency() {
  PerfFixture fx(/*with_engine=*/true);
  Rng rng(7);
  // A mixed workload with *repeated* modification: 8 hot documents each
  // saved 8 times, alternating between two buffer states (the autosave /
  // undo-toggle pattern real editors produce — and the pattern the
  // paper's per-file baseline machinery is exercised hardest by). Reads
  // outnumber writes 2:1; renames and deletes ride along. Before the
  // digest-retention fix, every one of these closes recomputed the
  // baseline digest from scratch, which is exactly what the close-path
  // outlier in the perf baseline was.
  constexpr int kRounds = 64;
  constexpr int kHotDocs = 8;
  std::vector<std::array<Bytes, 2>> versions(kHotDocs);
  for (int f = 0; f < kHotDocs; ++f) {
    versions[static_cast<std::size_t>(f)][0] = to_bytes(synth_prose(rng, 64 * 1024));
    // The "edited" state: same document with a rewritten middle section.
    Bytes edited = versions[static_cast<std::size_t>(f)][0];
    const Bytes patch = to_bytes(synth_prose(rng, 8 * 1024));
    std::copy(patch.begin(), patch.end(), edited.begin() + 16 * 1024);
    versions[static_cast<std::size_t>(f)][1] = std::move(edited);
  }
  for (int round = 0; round < kRounds; ++round) {
    const int hot = round % kHotDocs;
    const std::string path = fx.doc(hot);
    (void)fx.fs.read_file(fx.pid, path);
    (void)fx.fs.read_file(fx.pid, fx.doc(16 + (round * 7 + 3) % 32));
    auto h = fx.fs.open(fx.pid, path, vfs::kRead | vfs::kWrite);
    if (h) {
      const Bytes& fresh =
          versions[static_cast<std::size_t>(hot)][(round / kHotDocs) % 2];
      (void)fx.fs.write(fx.pid, h.value(), ByteView(fresh));
      (void)fx.fs.close(fx.pid, h.value());
    }
    if (round % 8 == 0) {
      (void)fx.fs.rename(fx.pid, fx.doc(48 + round / 8),
                         std::string(kRoot) + "/renamed" + std::to_string(round));
    }
    if (round % 16 == 0) {
      const std::string victim = std::string(kRoot) + "/tmp" + std::to_string(round);
      (void)fx.fs.put_file_raw(victim, to_bytes("bye"));
      (void)fx.fs.remove(fx.pid, victim);
    }
  }
  const core::LatencyStats& stats = fx.engine->latency_stats();
  std::printf("\n== engine-internal measurement cost per op (paper §V-H style) ==\n");
  std::printf("%-10s %10s %14s %14s\n", "op", "count", "mean (us)", "max (us)");
  const struct {
    const char* name;
    vfs::OpType op;
  } kRows[] = {
      {"open", vfs::OpType::open},     {"read", vfs::OpType::read},
      {"write", vfs::OpType::write},   {"close", vfs::OpType::close},
      {"rename", vfs::OpType::rename}, {"remove", vfs::OpType::remove},
  };
  Json ops = Json::object();
  for (const auto& row : kRows) {
    const auto& bucket = stats.for_op(row.op);
    std::printf("%-10s %10llu %14.1f %14.1f\n", row.name,
                static_cast<unsigned long long>(bucket.count), bucket.mean_micros(),
                static_cast<double>(bucket.max_ns) / 1000.0);
    Json op = Json::object();
    op.set("count", bucket.count);
    op.set("mean_us", bucket.mean_micros());
    op.set("max_us", static_cast<double>(bucket.max_ns) / 1000.0);
    ops.set(row.name, std::move(op));
  }
  std::printf("[paper's unoptimized prototype: open/read < 1 ms, close +1.58 ms,\n"
              " write +9 ms, rename +16 ms — write/rename/close carry the\n"
              " measurement, opens and reads are nearly free]\n");

  // The same cost, stage by stage, from the observability layer: which
  // part of the measurement (digest, entropy, type sniff) the per-op
  // latency above is actually spent in.
  const obs::MetricsSnapshot metrics = fx.engine->metrics_snapshot();
  std::printf("\n== stage latency (obs histograms) ==\n");
  std::printf("%-34s %10s %14s\n", "stage", "samples", "mean (us)");
  Json stages = Json::object();
  for (const obs::HistogramSnapshot& h : metrics.histograms) {
    std::printf("%-34s %10llu %14.2f\n", h.name.c_str(),
                static_cast<unsigned long long>(h.count), h.mean());
    Json stage = Json::object();
    stage.set("samples", h.count);
    stage.set("mean_us", h.mean());
    stages.set(h.name, std::move(stage));
  }
  // The repaired close-path ratio, pinned. Close is where the engine
  // re-measures a modified file; with digest retention + the shared
  // digest cache it must sit within 3x of the write mean (the perf
  // baseline shipped with a 12x outlier: 192.5us close vs 15.9us write).
  const double write_mean = stats.for_op(vfs::OpType::write).mean_micros();
  const double close_mean = stats.for_op(vfs::OpType::close).mean_micros();
  const double ratio = write_mean > 0.0 ? close_mean / write_mean : 0.0;
  std::printf("close/write mean ratio: %.2f (budget: <= 3.0)\n", ratio);

  Json out = Json::object();
  out.set("per_op", std::move(ops));
  out.set("stage_self_time", std::move(stages));
  out.set("close_to_write_ratio", ratio);
  if (ratio > 3.0) {
    std::fprintf(stderr,
                 "FAIL: close mean %.1fus is %.2fx the write mean %.1fus "
                 "(budget: within 3x) — the close-path digest work is "
                 "being recomputed\n",
                 close_mean, ratio, write_mean);
    return std::nullopt;
  }
  return out;
}

/// Daemon ingestion throughput under contention: 8 tenants submitting a
/// recorded open/write/close workload from 8 producer threads at worker
/// counts 1 and 8 (the --jobs axis). Reports end-to-end ops/sec (submit
/// through drained execution) and the batched-drain amortisation
/// (ops per queue-lock acquisition).
///
/// Guardrail: an 8-worker run with one live `watch` subscriber streaming
/// frames over a real AF_UNIX server must stay within 5% of the plain
/// 8-worker throughput — the telemetry plane may observe the hot path,
/// never tax it. One retry (best ratio kept) absorbs scheduler noise.
/// Returns nullopt on violation.
std::optional<Json> run_daemon_ingestion() {
  constexpr int kTenants = 8;
  constexpr std::size_t kSlice = 32;  // ops per submit() call

  // A small protected base volume every tenant clones.
  vfs::FileSystem base;
  Rng rng(55);
  for (int i = 0; i < 16; ++i) {
    (void)base.put_file_raw(
        std::string(kRoot) + "/doc" + std::to_string(i) + ".txt",
        to_bytes(synth_prose(rng, 16 * 1024)));
  }

  // Record one writer's workload against a clone of the base.
  vfs::FileSystem recorded_fs = base.clone();
  vfs::TraceRecorder recorder(/*capture_content=*/true);
  recorded_fs.attach_filter(&recorder);
  const vfs::ProcessId writer = recorded_fs.register_process("writer");
  Rng workload(56);
  for (int round = 0; round < 96; ++round) {
    const std::string path =
        std::string(kRoot) + "/doc" + std::to_string(round % 16) + ".txt";
    auto h = recorded_fs.open(writer, path, vfs::kRead | vfs::kWrite);
    if (h) {
      const Bytes fresh = to_bytes(synth_prose(workload, 16 * 1024));
      (void)recorded_fs.write(writer, h.value(), ByteView(fresh));
      (void)recorded_fs.close(writer, h.value());
    }
  }
  const std::vector<vfs::TraceEntry>& entries = recorder.entries();

  std::printf("\n== daemon ingestion under contention (%d tenants, %zu ops each) ==\n",
              kTenants, entries.size());
  std::printf("%-12s %14s %14s %14s\n", "workers", "ops/sec", "batches",
              "ops/batch");

  struct IngestionRun {
    double ops_per_sec = 0.0;
    double batches = 0.0;
    double ops_per_batch = 0.0;
  };
  /// One full ingestion pass. With `with_watch` a SocketServer fronts
  /// the same daemon and a subscriber thread drains the `watch` stream
  /// for the whole run (frames counted, never inspected).
  const auto measure = [&](std::size_t workers,
                           bool with_watch) -> std::optional<IngestionRun> {
    daemon::DaemonOptions options;
    options.workers = workers;
    options.queue_capacity = 1 << 16;  // hold the full burst; measure
                                       // throughput, not shedding
    options.default_config.score_threshold = 1 << 30;  // measure, never
    options.default_config.union_threshold = 1 << 30;  // suspend
    daemon::Daemon daemon(base, options);
    std::unique_ptr<daemon::SocketServer> server;
    std::thread subscriber;
    std::atomic<std::uint64_t> frames{0};
    if (with_watch) {
      const std::string path =
          "/tmp/cryptodrop_bench_watch_" + std::to_string(::getpid()) +
          ".sock";
      daemon::ServerOptions server_options;
      server_options.frame_interval_ms = 20;
      server = std::make_unique<daemon::SocketServer>(daemon, path,
                                                      server_options);
      if (!server->start().is_ok()) {
        std::fprintf(stderr, "watch server failed to start\n");
        return std::nullopt;
      }
      subscriber = std::thread([path, &frames] {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) return;
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
          ::close(fd);
          return;
        }
        const char request[] = "{\"type\":\"watch\",\"cursor\":0}\n";
        if (::write(fd, request, sizeof(request) - 1) <= 0) {
          ::close(fd);
          return;
        }
        char chunk[4096];
        for (ssize_t n = ::read(fd, chunk, sizeof(chunk)); n > 0;
             n = ::read(fd, chunk, sizeof(chunk))) {
          for (ssize_t i = 0; i < n; ++i) {
            if (chunk[i] == '\n') frames.fetch_add(1);
          }
        }
        ::close(fd);
      });
    }
    std::vector<std::string> tenants;
    for (int t = 0; t < kTenants; ++t) {
      tenants.push_back("tenant" + std::to_string(t));
      if (!daemon.attach(tenants.back()).is_ok() ||
          !daemon.spawn(tenants.back(), writer, "writer", 0).is_ok()) {
        std::fprintf(stderr, "daemon setup failed\n");
        daemon.shutdown(/*drain_first=*/false);
        if (subscriber.joinable()) subscriber.join();
        return std::nullopt;
      }
    }
    const auto begin = std::chrono::steady_clock::now();
    std::vector<std::thread> producers;
    for (const std::string& tenant : tenants) {
      producers.emplace_back([&, tenant] {
        for (std::size_t off = 0; off < entries.size(); off += kSlice) {
          const std::size_t take = std::min(kSlice, entries.size() - off);
          std::vector<vfs::TraceEntry> slice(entries.begin() + static_cast<std::ptrdiff_t>(off),
                                             entries.begin() + static_cast<std::ptrdiff_t>(off + take));
          (void)daemon.submit(tenant, std::move(slice));
        }
      });
    }
    for (std::thread& t : producers) t.join();
    daemon.drain();
    const auto end = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(end - begin).count();
    const double total_ops =
        static_cast<double>(entries.size()) * static_cast<double>(kTenants);
    IngestionRun run;
    run.ops_per_sec = secs > 0.0 ? total_ops / secs : 0.0;
    for (const obs::CounterSnapshot& c : daemon.metrics().counters) {
      if (c.name == "daemon_batches_drained_total") {
        run.batches = static_cast<double>(c.value);
      }
    }
    daemon.shutdown(/*drain_first=*/true);
    if (server != nullptr) {
      server->stop();  // Serve loop already exiting (daemon is down).
      subscriber.join();
      if (frames.load() == 0) {
        std::fprintf(stderr,
                     "FAIL: the watch subscriber received no frames — the "
                     "overhead run measured nothing\n");
        return std::nullopt;
      }
    }
    run.ops_per_batch = run.batches > 0.0 ? total_ops / run.batches : 0.0;
    return run;
  };

  Json out = Json::object();
  double base_8 = 0.0;
  for (std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    const std::optional<IngestionRun> run = measure(workers, /*with_watch=*/false);
    if (!run.has_value()) return std::nullopt;
    std::printf("%-12zu %14.0f %14.0f %14.1f\n", workers, run->ops_per_sec,
                run->batches, run->ops_per_batch);
    if (workers == 8) base_8 = run->ops_per_sec;
    const std::string prefix = "workers_" + std::to_string(workers);
    out.set(prefix + "_ops_per_sec", run->ops_per_sec);
    out.set(prefix + "_batches_drained", run->batches);
    out.set(prefix + "_ops_per_batch", run->ops_per_batch);
  }

  // The watch-overhead gate: 8 workers + 1 streaming subscriber, best
  // of two attempts against the plain 8-worker baseline.
  IngestionRun best;
  double best_ratio = 0.0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const std::optional<IngestionRun> run = measure(8, /*with_watch=*/true);
    if (!run.has_value()) return std::nullopt;
    const double ratio = base_8 > 0.0 ? run->ops_per_sec / base_8 : 0.0;
    if (ratio > best_ratio) {
      best_ratio = ratio;
      best = *run;
    }
    if (best_ratio >= 0.95) break;
  }
  const double overhead_pct = (1.0 - best_ratio) * 100.0;
  std::printf("%-12s %14.0f %14.0f %14.1f   (overhead %.1f%%)\n", "8+watch",
              best.ops_per_sec, best.batches, best.ops_per_batch,
              overhead_pct);
  out.set("workers_8_watch_ops_per_sec", best.ops_per_sec);
  out.set("watch_overhead_pct", overhead_pct);
  if (best_ratio < 0.95) {
    std::fprintf(stderr,
                 "FAIL: one watch subscriber costs %.1f%% of 8-worker "
                 "ingestion throughput (budget: 5%%) — the telemetry plane "
                 "is taxing the hot path\n",
                 overhead_pct);
    return std::nullopt;
  }
  return out;
}

/// Per-backend scoring cost over a fixed 64 KiB buffer, plus the direct
/// `entropy::shannon` call the engine made before the Backend interface
/// existed. Guardrail: the shannon backend (the default config's hot
/// path) must stay within 5% of the direct call — the interface may not
/// tax the path every deployment runs. Returns nullopt on violation.
std::optional<Json> run_backend_scoring_costs() {
  constexpr std::size_t kBufBytes = 64 * 1024;
  constexpr int kCalls = 64;
  constexpr int kReps = 9;  // best-of, same policy as the tracing gate
  Rng rng(41);
  const Bytes prose = to_bytes(synth_prose(rng, kBufBytes));
  const Bytes random = rng.bytes(kBufBytes);

  // Best-of-reps nanoseconds for one pass over both buffers.
  const auto time_ns = [&](auto&& fn) {
    double best = 1e18;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto begin = std::chrono::steady_clock::now();
      for (int i = 0; i < kCalls; ++i) {
        benchmark::DoNotOptimize(fn(ByteView(prose)));
        benchmark::DoNotOptimize(fn(ByteView(random)));
      }
      const auto end = std::chrono::steady_clock::now();
      best = std::min(
          best, std::chrono::duration<double, std::nano>(end - begin).count() /
                    (2.0 * kCalls));
    }
    return best;
  };

  std::printf("\n== entropy-backend scoring cost (64 KiB buffer) ==\n");
  std::printf("%-22s %14s\n", "backend", "ns / call");
  const double direct_ns =
      time_ns([](ByteView data) { return entropy::shannon(data); });
  std::printf("%-22s %14.0f\n", "(direct shannon)", direct_ns);

  Json costs = Json::object();
  costs.set("direct_shannon_ns", direct_ns);
  double shannon_backend_ns = 0.0;
  for (entropy::BackendKind kind : entropy::all_backend_kinds()) {
    const auto backend = entropy::make_backend(kind);
    const double ns =
        time_ns([&](ByteView data) { return backend->score(data); });
    std::printf("%-22s %14.0f\n", std::string(backend->name()).c_str(), ns);
    costs.set(std::string(backend->name()) + "_ns", ns);
    if (kind == entropy::BackendKind::shannon) shannon_backend_ns = ns;
  }

  const double overhead_pct =
      direct_ns > 0.0 ? 100.0 * (shannon_backend_ns - direct_ns) / direct_ns
                      : 0.0;
  costs.set("shannon_interface_overhead_pct", overhead_pct);
  std::printf("shannon via Backend interface: %+.1f%% vs direct call\n",
              overhead_pct);
  if (overhead_pct >= 5.0) {
    std::fprintf(stderr,
                 "FAIL: the Backend interface costs %.1f%% on the default "
                 "shannon path (budget: <5%% over the direct call)\n",
                 overhead_pct);
    return std::nullopt;
  }
  return costs;
}

/// Tracing-overhead guardrail: the same data-carrying workload (the
/// write+measured-close path, where every engine stage span opens) timed
/// with the tracer off, sampled at the bench default (1-in-16), and
/// keeping everything. Sampled tracing is the always-on configuration we
/// recommend, so it must stay under 5% over the untraced baseline —
/// returns nullopt (and bench_perf exits nonzero) when it doesn't,
/// otherwise the batch timings plus the untraced write+close throughput.
std::optional<Json> run_tracing_overhead_guardrail() {
  constexpr int kOpsPerRep = 192;
  constexpr int kReps = 7;  // best-of: the quietest rep, per config

  const auto run_batch = [&](obs::SpanTracer* tracer) {
    double best_us = 1e18;
    for (int rep = 0; rep < kReps; ++rep) {
      PerfFixture fx(/*with_engine=*/true, tracer);
      // Payloads generated outside the timed region, identically seeded
      // for every config and rep.
      Rng payload_rng(17);
      std::vector<Bytes> payloads;
      payloads.reserve(kOpsPerRep);
      for (int i = 0; i < kOpsPerRep; ++i) {
        payloads.push_back(to_bytes(synth_prose(payload_rng, 64 * 1024)));
      }
      const auto begin = std::chrono::steady_clock::now();
      for (int i = 0; i < kOpsPerRep; ++i) {
        auto h = fx.fs.open(fx.pid, fx.doc(i), vfs::kRead | vfs::kWrite);
        (void)fx.fs.write(fx.pid, h.value(), ByteView(payloads[static_cast<std::size_t>(i)]));
        (void)fx.fs.close(fx.pid, h.value());
      }
      const auto end = std::chrono::steady_clock::now();
      const double us =
          std::chrono::duration<double, std::micro>(end - begin).count();
      best_us = std::min(best_us, us);
    }
    return best_us;
  };

  obs::TraceOptions sampled_options;
  sampled_options.enabled = true;
  sampled_options.sample_every = 16;  // the bench default
  obs::TraceOptions full_options;
  full_options.enabled = true;
  full_options.sample_every = 1;

  const double off_us = run_batch(nullptr);
  obs::SpanTracer sampled_tracer(sampled_options);
  const double sampled_us = run_batch(&sampled_tracer);
  obs::SpanTracer full_tracer(full_options);
  const double full_us = run_batch(&full_tracer);

  const auto overhead = [&](double us) {
    return off_us > 0.0 ? 100.0 * (us - off_us) / off_us : 0.0;
  };
  std::printf("\n== span-tracing overhead (%d write+close ops, best of %d) ==\n",
              kOpsPerRep, kReps);
  std::printf("%-22s %14s %10s\n", "config", "batch (us)", "overhead");
  std::printf("%-22s %14.1f %10s\n", "tracer off", off_us, "-");
  std::printf("%-22s %14.1f %+9.1f%%\n", "sampled (1-in-16)", sampled_us,
              overhead(sampled_us));
  std::printf("%-22s %14.1f %+9.1f%%\n", "full (every op)", full_us,
              overhead(full_us));

  if (obs::kMetricsEnabled && overhead(sampled_us) >= 5.0) {
    std::fprintf(stderr,
                 "FAIL: sampled span tracing costs %.1f%% (budget: <5%% over "
                 "the untraced baseline)\n",
                 overhead(sampled_us));
    return std::nullopt;
  }
  std::printf("sampled tracing within the <5%% budget\n");
  Json out = Json::object();
  out.set("write_close_ops_per_sec",
          off_us > 0.0 ? 1e6 * kOpsPerRep / off_us : 0.0);
  out.set("tracer_off_batch_us", off_us);
  out.set("sampled_batch_us", sampled_us);
  out.set("full_batch_us", full_us);
  out.set("sampled_overhead_pct", overhead(sampled_us));
  out.set("full_overhead_pct", overhead(full_us));
  return out;
}

/// Schema check for the --perf-out document: every consumer-visible key
/// must exist with the right shape *before* the file ships (the CI
/// bench-perf-smoke job runs with --perf-out and trusts this). Returns
/// false (after printing what is missing) on any violation.
bool validate_perf_schema(const Json& doc) {
  bool ok = true;
  const auto require = [&](const Json* node, const char* what,
                           bool (Json::*pred)() const) {
    if (node == nullptr || !(node->*pred)()) {
      std::fprintf(stderr, "perf schema: missing or mistyped `%s`\n", what);
      ok = false;
    }
  };
  require(doc.find("schema_version"), "schema_version", &Json::is_number);
  require(doc.find("simd_backend"), "simd_backend", &Json::is_string);
  require(doc.find("sha256_backend"), "sha256_backend", &Json::is_string);
  const Json* engine = doc.find("engine_internal");
  require(engine, "engine_internal", &Json::is_object);
  if (engine != nullptr) {
    const Json* per_op = engine->find("per_op");
    require(per_op, "engine_internal.per_op", &Json::is_object);
    if (per_op != nullptr) {
      for (const char* op : {"open", "read", "write", "close", "rename", "remove"}) {
        const Json* row = per_op->find(op);
        require(row, op, &Json::is_object);
        if (row != nullptr) {
          require(row->find("mean_us"), "per_op mean_us", &Json::is_number);
          require(row->find("count"), "per_op count", &Json::is_number);
        }
      }
    }
    require(engine->find("stage_self_time"), "engine_internal.stage_self_time",
            &Json::is_object);
    require(engine->find("close_to_write_ratio"), "close_to_write_ratio",
            &Json::is_number);
  }
  const Json* tracing = doc.find("throughput_and_tracing");
  require(tracing, "throughput_and_tracing", &Json::is_object);
  if (tracing != nullptr) {
    require(tracing->find("write_close_ops_per_sec"), "write_close_ops_per_sec",
            &Json::is_number);
    require(tracing->find("sampled_overhead_pct"), "sampled_overhead_pct",
            &Json::is_number);
  }
  const Json* backends = doc.find("entropy_backend_scoring");
  require(backends, "entropy_backend_scoring", &Json::is_object);
  if (backends != nullptr) {
    require(backends->find("shannon_interface_overhead_pct"),
            "shannon_interface_overhead_pct", &Json::is_number);
  }
  const Json* ingestion = doc.find("daemon_ingestion");
  require(ingestion, "daemon_ingestion", &Json::is_object);
  if (ingestion != nullptr) {
    for (const char* key : {"workers_1_ops_per_sec", "workers_8_ops_per_sec",
                            "workers_8_ops_per_batch",
                            "workers_8_watch_ops_per_sec",
                            "watch_overhead_pct"}) {
      require(ingestion->find(key), key, &Json::is_number);
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --perf-out before google-benchmark sees (and rejects) it.
  std::string perf_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--perf-out") == 0 && i + 1 < argc) {
      perf_out = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::printf("kernel dispatch: simd=%s sha256=%s\n",
              simd_backend_name(),
              std::string(crypto::sha256_backend_name()).c_str());
  std::optional<Json> engine_latency = print_engine_internal_latency();
  std::optional<Json> ingestion = run_daemon_ingestion();
  const std::optional<Json> backend_costs = run_backend_scoring_costs();
  const std::optional<Json> tracing = run_tracing_overhead_guardrail();
  if (!engine_latency.has_value() || !ingestion.has_value() ||
      !backend_costs.has_value() || !tracing.has_value()) {
    return 1;
  }

  if (!perf_out.empty()) {
    Json doc = Json::object();
    doc.set("schema_version", 2);
    doc.set("generated_by", "bench_perf --perf-out");
    doc.set("note",
            "single-machine baseline; compare ratios and orderings, not "
            "absolute wall times, across hosts");
    doc.set("simd_backend", simd_backend_name());
    doc.set("sha256_backend", crypto::sha256_backend_name());
    doc.set("engine_internal", std::move(*engine_latency));
    doc.set("daemon_ingestion", std::move(*ingestion));
    doc.set("throughput_and_tracing", *tracing);
    doc.set("entropy_backend_scoring", *backend_costs);
    if (!validate_perf_schema(doc)) return 1;
    std::FILE* f = std::fopen(perf_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", perf_out.c_str());
      return 1;
    }
    const std::string text = doc.to_pretty_string();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("perf summary written to %s (schema validated)\n",
                perf_out.c_str());
  }
  return 0;
}
