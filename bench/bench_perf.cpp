// §V-H reproduction: per-operation overhead of the CryptoDrop engine,
// measured with google-benchmark.
//
// Paper reference (unoptimized research prototype): open/read < 1 ms,
// close +1.58 ms, write +9 ms, rename +16 ms — write and rename are the
// most expensive because that is where measurement happens. Our absolute
// numbers are micro-seconds (in-memory FS, no disk), but the *ordering*
// should match: rename/close-after-write carry the measurement cost.
#include <benchmark/benchmark.h>

#include <chrono>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "obs/span.hpp"
#include "vfs/filesystem.hpp"

using namespace cryptodrop;

namespace {

constexpr const char* kRoot = "users/victim/documents";

struct PerfFixture {
  vfs::FileSystem fs;
  std::unique_ptr<core::AnalysisEngine> engine;
  vfs::ProcessId pid = 0;
  Rng rng{99};

  explicit PerfFixture(bool with_engine, obs::SpanTracer* tracer = nullptr) {
    // A modest protected tree with realistic content.
    for (int i = 0; i < 64; ++i) {
      const std::string path =
          std::string(kRoot) + "/dir" + std::to_string(i % 8) + "/doc" +
          std::to_string(i) + ".txt";
      Bytes content = to_bytes(synth_prose(rng, 64 * 1024));
      (void)fs.put_file_raw(path, std::move(content));
    }
    // Tracer before the engine attaches (the engine caches it on attach).
    if (tracer != nullptr) fs.set_span_tracer(tracer);
    if (with_engine) {
      core::ScoringConfig config;
      config.score_threshold = 1 << 30;  // measure, never suspend
      config.union_threshold = 1 << 30;
      engine = std::make_unique<core::AnalysisEngine>(config);
      fs.attach_filter(engine.get());
    }
    pid = fs.register_process("bench");
  }

  std::string doc(int i) {
    return std::string(kRoot) + "/dir" + std::to_string(i % 8) + "/doc" +
           std::to_string(i % 64) + ".txt";
  }
};

void BM_OpenClose(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    auto h = fx.fs.open(fx.pid, fx.doc(i++), vfs::kRead);
    benchmark::DoNotOptimize(h);
    (void)fx.fs.close(fx.pid, h.value());
  }
}
BENCHMARK(BM_OpenClose)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Read64K(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    auto h = fx.fs.open(fx.pid, fx.doc(i++), vfs::kRead);
    auto data = fx.fs.read(fx.pid, h.value(), 64 * 1024);
    benchmark::DoNotOptimize(data);
    (void)fx.fs.close(fx.pid, h.value());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_Read64K)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Write64K(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  const Bytes payload = fx.rng.bytes(64 * 1024);
  int i = 0;
  for (auto _ : state) {
    auto h = fx.fs.open(fx.pid, fx.doc(i++), vfs::kRead | vfs::kWrite);
    (void)fx.fs.write(fx.pid, h.value(), ByteView(payload));
    (void)fx.fs.close(fx.pid, h.value());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 1024);
}
BENCHMARK(BM_Write64K)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_WriteCloseMeasured(benchmark::State& state) {
  // The expensive path the paper calls out: a modified file's close is
  // where type + similarity measurement runs.
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    const std::string path = fx.doc(i++);
    auto h = fx.fs.open(fx.pid, path, vfs::kRead | vfs::kWrite);
    Bytes fresh = to_bytes(synth_prose(fx.rng, 64 * 1024));
    (void)fx.fs.write(fx.pid, h.value(), ByteView(fresh));
    (void)fx.fs.close(fx.pid, h.value());
  }
}
BENCHMARK(BM_WriteCloseMeasured)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Rename(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  std::string current = fx.doc(0);
  for (auto _ : state) {
    const std::string next =
        std::string(kRoot) + "/renamed_" + std::to_string(i++ % 2) + ".txt";
    (void)fx.fs.rename(fx.pid, current, next);
    current = next;
  }
}
BENCHMARK(BM_Rename)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_RenameReplace(benchmark::State& state) {
  // Rename-over-existing: the engine must snapshot + compare pre-images
  // (the paper's most expensive operation at 16 ms).
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string src = std::string(kRoot) + "/incoming.tmp";
    (void)fx.fs.write_file(fx.pid, src, fx.rng.bytes(64 * 1024));
    const std::string dst = fx.doc(i++);
    state.ResumeTiming();
    (void)fx.fs.rename(fx.pid, src, dst);
  }
}
BENCHMARK(BM_RenameReplace)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_Remove(benchmark::State& state) {
  PerfFixture fx(state.range(0) != 0);
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string path = std::string(kRoot) + "/victim" + std::to_string(i++) + ".txt";
    (void)fx.fs.put_file_raw(path, to_bytes("to be deleted"));
    state.ResumeTiming();
    (void)fx.fs.remove(fx.pid, path);
  }
}
BENCHMARK(BM_Remove)->Arg(0)->Arg(1)->ArgNames({"engine"});

void BM_UnmonitoredDirectoryOps(benchmark::State& state) {
  // §V-H: "CryptoDrop does not inspect files outside of the user's
  // documents directory" — engine on/off must be indistinguishable here.
  PerfFixture fx(state.range(0) != 0);
  const Bytes payload = fx.rng.bytes(16 * 1024);
  int i = 0;
  for (auto _ : state) {
    const std::string path = "programdata/cache/blob" + std::to_string(i++ % 16);
    (void)fx.fs.write_file(fx.pid, path, ByteView(payload));
    auto data = fx.fs.read_file(fx.pid, path);
    benchmark::DoNotOptimize(data);
  }
}
BENCHMARK(BM_UnmonitoredDirectoryOps)->Arg(0)->Arg(1)->ArgNames({"engine"});

/// The paper's own methodology ("we traced our code while performing
/// modifications to protected files"): run a realistic mixed workload
/// and print the engine's internal per-callback cost per op type.
void print_engine_internal_latency() {
  PerfFixture fx(/*with_engine=*/true);
  Rng rng(7);
  // A mixed workload: reads, in-place rewrites, renames, deletes.
  for (int round = 0; round < 48; ++round) {
    const std::string path = fx.doc(round);
    (void)fx.fs.read_file(fx.pid, path);
    auto h = fx.fs.open(fx.pid, path, vfs::kRead | vfs::kWrite);
    if (h) {
      Bytes fresh = to_bytes(synth_prose(rng, 64 * 1024));
      (void)fx.fs.write(fx.pid, h.value(), ByteView(fresh));
      (void)fx.fs.close(fx.pid, h.value());
    }
    if (round % 4 == 0) {
      (void)fx.fs.rename(fx.pid, path,
                         std::string(kRoot) + "/renamed" + std::to_string(round));
    }
    if (round % 8 == 0) {
      const std::string victim = std::string(kRoot) + "/tmp" + std::to_string(round);
      (void)fx.fs.put_file_raw(victim, to_bytes("bye"));
      (void)fx.fs.remove(fx.pid, victim);
    }
  }
  const core::LatencyStats& stats = fx.engine->latency_stats();
  std::printf("\n== engine-internal measurement cost per op (paper §V-H style) ==\n");
  std::printf("%-10s %10s %14s %14s\n", "op", "count", "mean (us)", "max (us)");
  const struct {
    const char* name;
    vfs::OpType op;
  } kRows[] = {
      {"open", vfs::OpType::open},     {"read", vfs::OpType::read},
      {"write", vfs::OpType::write},   {"close", vfs::OpType::close},
      {"rename", vfs::OpType::rename}, {"remove", vfs::OpType::remove},
  };
  for (const auto& row : kRows) {
    const auto& bucket = stats.for_op(row.op);
    std::printf("%-10s %10llu %14.1f %14.1f\n", row.name,
                static_cast<unsigned long long>(bucket.count), bucket.mean_micros(),
                static_cast<double>(bucket.max_ns) / 1000.0);
  }
  std::printf("[paper's unoptimized prototype: open/read < 1 ms, close +1.58 ms,\n"
              " write +9 ms, rename +16 ms — write/rename/close carry the\n"
              " measurement, opens and reads are nearly free]\n");

  // The same cost, stage by stage, from the observability layer: which
  // part of the measurement (digest, entropy, type sniff) the per-op
  // latency above is actually spent in.
  const obs::MetricsSnapshot metrics = fx.engine->metrics_snapshot();
  std::printf("\n== stage latency (obs histograms) ==\n");
  std::printf("%-34s %10s %14s\n", "stage", "samples", "mean (us)");
  for (const obs::HistogramSnapshot& h : metrics.histograms) {
    std::printf("%-34s %10llu %14.2f\n", h.name.c_str(),
                static_cast<unsigned long long>(h.count), h.mean());
  }
}

/// Tracing-overhead guardrail: the same data-carrying workload (the
/// write+measured-close path, where every engine stage span opens) timed
/// with the tracer off, sampled at the bench default (1-in-16), and
/// keeping everything. Sampled tracing is the always-on configuration we
/// recommend, so it must stay under 5% over the untraced baseline —
/// returns false (and bench_perf exits nonzero) when it doesn't.
bool run_tracing_overhead_guardrail() {
  constexpr int kOpsPerRep = 192;
  constexpr int kReps = 7;  // best-of: the quietest rep, per config

  const auto run_batch = [&](obs::SpanTracer* tracer) {
    double best_us = 1e18;
    for (int rep = 0; rep < kReps; ++rep) {
      PerfFixture fx(/*with_engine=*/true, tracer);
      // Payloads generated outside the timed region, identically seeded
      // for every config and rep.
      Rng payload_rng(17);
      std::vector<Bytes> payloads;
      payloads.reserve(kOpsPerRep);
      for (int i = 0; i < kOpsPerRep; ++i) {
        payloads.push_back(to_bytes(synth_prose(payload_rng, 64 * 1024)));
      }
      const auto begin = std::chrono::steady_clock::now();
      for (int i = 0; i < kOpsPerRep; ++i) {
        auto h = fx.fs.open(fx.pid, fx.doc(i), vfs::kRead | vfs::kWrite);
        (void)fx.fs.write(fx.pid, h.value(), ByteView(payloads[static_cast<std::size_t>(i)]));
        (void)fx.fs.close(fx.pid, h.value());
      }
      const auto end = std::chrono::steady_clock::now();
      const double us =
          std::chrono::duration<double, std::micro>(end - begin).count();
      best_us = std::min(best_us, us);
    }
    return best_us;
  };

  obs::TraceOptions sampled_options;
  sampled_options.enabled = true;
  sampled_options.sample_every = 16;  // the bench default
  obs::TraceOptions full_options;
  full_options.enabled = true;
  full_options.sample_every = 1;

  const double off_us = run_batch(nullptr);
  obs::SpanTracer sampled_tracer(sampled_options);
  const double sampled_us = run_batch(&sampled_tracer);
  obs::SpanTracer full_tracer(full_options);
  const double full_us = run_batch(&full_tracer);

  const auto overhead = [&](double us) {
    return off_us > 0.0 ? 100.0 * (us - off_us) / off_us : 0.0;
  };
  std::printf("\n== span-tracing overhead (%d write+close ops, best of %d) ==\n",
              kOpsPerRep, kReps);
  std::printf("%-22s %14s %10s\n", "config", "batch (us)", "overhead");
  std::printf("%-22s %14.1f %10s\n", "tracer off", off_us, "-");
  std::printf("%-22s %14.1f %+9.1f%%\n", "sampled (1-in-16)", sampled_us,
              overhead(sampled_us));
  std::printf("%-22s %14.1f %+9.1f%%\n", "full (every op)", full_us,
              overhead(full_us));

  if (obs::kMetricsEnabled && overhead(sampled_us) >= 5.0) {
    std::fprintf(stderr,
                 "FAIL: sampled span tracing costs %.1f%% (budget: <5%% over "
                 "the untraced baseline)\n",
                 overhead(sampled_us));
    return false;
  }
  std::printf("sampled tracing within the <5%% budget\n");
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_engine_internal_latency();
  return run_tracing_overhead_guardrail() ? 0 : 1;
}
