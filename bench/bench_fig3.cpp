// Figure 3 reproduction: cumulative percentage of samples detected at
// each files-lost count.
//
// Paper reference: median 10 files lost; all 492 samples detected with
// 33 or fewer files lost; some samples detected at 0 files lost.
#include "bench_common.hpp"

#include "common/stats.hpp"

using namespace cryptodrop;

int main(int argc, char** argv) {
  const auto scale = benchutil::parse_scale(argc, argv);
  const harness::Environment env = benchutil::build_environment(scale);
  const auto results = benchutil::run_standard_campaign(env, scale);

  const std::vector<double> losses = harness::files_lost_values(results);
  const auto curve = cumulative_fraction(losses);

  std::printf("== Figure 3: cumulative %% of samples detected vs files lost ==\n\n");
  std::printf("%-12s %-10s %s\n", "files lost", "cum. %", "");
  for (const auto& [value, fraction] : curve) {
    std::printf("%-12.0f %-10s %s\n", value,
                harness::fmt_percent(fraction, 1).c_str(),
                text_bar(fraction, 50).c_str());
  }

  std::vector<double> sorted = losses;
  std::printf("\nmedian: %s   [paper: 10]\n", harness::fmt_double(median(sorted), 1).c_str());
  std::printf("min: %.0f   [paper: 0]\n", percentile(losses, 0));
  std::printf("max: %.0f   [paper: 33]\n", percentile(losses, 100));
  std::printf("p90: %.0f\n", percentile(losses, 90));
  return 0;
}
