// §V-C reproduction: the CTB-Locker small-file experiment.
//
// Paper reference: a CTB-Locker sample lost 29 files against the full
// corpus; 26 of the lost files were < 512 bytes (sdhash cannot score
// them, so union detection was impossible until past that threshold).
// Re-running with all sub-512-byte files removed dropped the loss to 7.
// This bench also sweeps the entropy-delta threshold (the paper's 0.1)
// to show the design point.
#include "bench_common.hpp"

#include "common/stats.hpp"
#include "vfs/path.hpp"

using namespace cryptodrop;

namespace {

harness::RansomwareRunResult run_ctb(const harness::Environment& env,
                                     std::uint64_t seed,
                                     const core::ScoringConfig& config = {}) {
  sim::SampleSpec spec;
  spec.family = "CTB-Locker";
  spec.behavior = sim::BehaviorClass::B;
  spec.profile = sim::family_profile("CTB-Locker", sim::BehaviorClass::B);
  spec.seed = seed;
  return harness::run_ransomware_sample(env, spec, config);
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = benchutil::parse_scale(argc, argv);
  const harness::Environment env = benchutil::build_environment(scale);

  corpus::CorpusSpec filtered_spec;
  filtered_spec.total_files = scale.corpus_files;
  filtered_spec.total_dirs = scale.corpus_dirs;
  filtered_spec.min_file_size = 512;
  filtered_spec.compute_hashes = false;
  std::fprintf(stderr, "[bench] building filtered corpus (no files < 512 B)...\n");
  const harness::Environment env_filtered =
      harness::make_environment(filtered_spec, scale.corpus_seed);

  std::printf("== §V-C: CTB-Locker vs small files ==\n\n");

  std::vector<double> with_small, without_small;
  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    const auto a = run_ctb(env, seed);
    const auto b = run_ctb(env_filtered, seed);
    with_small.push_back(static_cast<double>(a.files_lost));
    without_small.push_back(static_cast<double>(b.files_lost));

    if (seed == 1) {
      // Detail for the first sample: how many lost files were tiny?
      std::size_t tiny_lost = 0;
      vfs::FileSystem fs = env.base_fs.clone();
      core::AnalysisEngine engine{core::ScoringConfig{}};
      fs.attach_filter(&engine);
      const vfs::ProcessId pid = fs.register_process("ctb");
      sim::RansomwareSample sample(sim::family_profile("CTB-Locker", sim::BehaviorClass::B), seed);
      (void)sample.run(fs, pid, env.corpus.root);
      for (std::size_t idx : corpus::lost_file_indices(fs, env.corpus)) {
        if (env.corpus.manifest[idx].size < 512) ++tiny_lost;
      }
      fs.detach_filter(&engine);
      std::printf("sample #1: files lost %zu, of which < 512 B: %zu   [paper: 29, of which 26]\n\n",
                  static_cast<std::size_t>(a.files_lost), tiny_lost);
    }
  }

  harness::TextTable table({"Corpus", "Median files lost (9 samples)"});
  table.add_row({"full (with sub-512B files)", harness::fmt_double(median(with_small), 1)});
  table.add_row({"filtered (>= 512B only)", harness::fmt_double(median(without_small), 1)});
  std::printf("%s\n", table.to_string().c_str());
  std::printf("[paper: 29 -> 7 for the re-run sample]\n\n");

  // Companion sweep: the entropy-delta threshold design point (§IV-C.1).
  std::printf("entropy-delta threshold sweep (TeslaCrypt sample, full corpus):\n");
  std::printf("%-12s %-12s %s\n", "threshold", "files lost", "entropy events");
  for (double threshold : {0.02, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    core::ScoringConfig config;
    config.entropy.delta_threshold = threshold;
    sim::SampleSpec tesla;
    tesla.family = "TeslaCrypt";
    tesla.behavior = sim::BehaviorClass::A;
    tesla.profile = sim::family_profile("TeslaCrypt", sim::BehaviorClass::A);
    tesla.seed = 7;
    const auto r = harness::run_ransomware_sample(env, tesla, config);
    std::printf("%-12.2f %-12zu %llu%s\n", threshold, r.files_lost,
                static_cast<unsigned long long>(r.report.entropy_events),
                threshold == 0.1 ? "   <- paper's threshold" : "");
  }
  return 0;
}
