// §V-F time-window study: the paper's proposed fourth indicator.
//
// "Monitoring any time window presents an evasion opportunity to
// ransomware as it can change its rate of attack to overcome the window.
// However, research into time window parameterization may lead to
// another primary indicator in future versions of CryptoDrop."
//
// This bench parameterizes exactly that: a sweep over window length and
// burst threshold, measuring (a) how much faster a bulk encryptor is
// stopped, (b) whether the paced benign suite stays clean, and (c) what
// a rate-limited attacker gives up by slowing down.
#include "bench_common.hpp"

#include "common/stats.hpp"

using namespace cryptodrop;

namespace {

sim::SampleSpec bulk_sample(std::uint64_t seed) {
  sim::SampleSpec spec;
  spec.family = "CTB-Locker";
  spec.behavior = sim::BehaviorClass::B;
  spec.profile = sim::family_profile("CTB-Locker", sim::BehaviorClass::B);
  spec.seed = seed;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = benchutil::parse_scale(argc, argv);
  const harness::Environment env = benchutil::build_environment(scale);

  // --- (a) parameter sweep vs a bulk encryptor -------------------------
  std::printf("== time-window parameterization (CTB-Locker, median of 5 seeds) ==\n\n");
  harness::TextTable sweep({"Window", "Min files", "Median files lost",
                            "vs stock"});
  std::vector<double> stock_losses;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    stock_losses.push_back(static_cast<double>(
        harness::run_ransomware_sample(env, bulk_sample(seed), core::ScoringConfig{})
            .files_lost));
  }
  const double stock_median = median(stock_losses);
  sweep.add_row({"(disabled)", "-", harness::fmt_double(stock_median, 1), "-"});

  for (std::uint64_t window_s : {5, 10, 30}) {
    for (std::size_t min_files : {10, 20, 40}) {
      core::ScoringConfig config;
      config.enable_rate_indicator = true;
      config.rate_window_micros = window_s * 1'000'000;
      config.rate_min_files = min_files;
      std::vector<double> losses;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        losses.push_back(static_cast<double>(
            harness::run_ransomware_sample(env, bulk_sample(seed), config).files_lost));
      }
      const double med = median(losses);
      sweep.add_row({std::to_string(window_s) + " s", std::to_string(min_files),
                     harness::fmt_double(med, 1),
                     harness::fmt_percent(med / stock_median, 0)});
    }
  }
  std::printf("%s\n", sweep.to_string().c_str());

  // --- (b) the paced benign suite must stay clean ------------------------
  core::ScoringConfig strict;
  strict.enable_rate_indicator = true;
  strict.rate_window_micros = 10'000'000;
  strict.rate_min_files = 10;
  std::size_t extra_fps = 0;
  std::string flagged;
  std::size_t rate_event_apps = 0;
  for (const sim::BenignWorkload& workload : sim::all_benign_workloads()) {
    std::fprintf(stderr, "[bench] benign vs rate indicator: %s\n", workload.name.c_str());
    const auto r = harness::run_benign_workload(env, workload, strict, 33);
    if (r.detected && !r.expected_false_positive) {
      ++extra_fps;
      flagged += r.app + "; ";
    }
    if (r.report.rate_events > 0) ++rate_event_apps;
  }
  std::printf("benign suite at window=10s/min=10: additional FPs beyond 7-zip: %zu (%s)\n"
              "apps with any rate events: %zu of 30.\n"
              "Human-paced apps stay under the window; bulk batch tools (mogrify over\n"
              "a thousand images) do not — the false-positive cost the paper predicted\n"
              "when it deferred this indicator to future work.\n\n",
              extra_fps, flagged.empty() ? "none" : flagged.c_str(), rate_event_apps);

  // --- (c) the slow-attacker evasion and its cost ------------------------
  std::printf("== slow-attacker evasion (CTB-Locker-style, rate indicator on) ==\n\n");
  harness::TextTable slow({"Attack pace", "Rate events", "Detected",
                           "Files lost", "Time to stop (virtual)"});
  for (std::uint64_t pause_ms : {0, 500, 3000, 10000}) {
    sim::SampleSpec spec = bulk_sample(99);
    spec.profile.evasion.think_micros_per_file = pause_ms * 1000;

    // Run on a clone so we can read the clock afterwards.
    vfs::FileSystem fs = env.base_fs.clone();
    core::AnalysisEngine engine(strict);
    fs.attach_filter(&engine);
    const vfs::ProcessId pid = fs.register_process("evader");
    sim::RansomwareSample sample(spec.profile, spec.seed);
    const sim::SampleRun run = sample.run(fs, pid, env.corpus.root);
    const auto report = engine.process_report(pid);
    const std::size_t lost = corpus::count_files_lost(fs, env.corpus);
    const double seconds = static_cast<double>(fs.now_micros()) / 1e6;
    slow.add_row({pause_ms == 0 ? "flat out" : std::to_string(pause_ms) + " ms/file",
                  std::to_string(report.rate_events),
                  report.suspended ? "yes" : (run.ran_to_completion ? "NO" : "partial"),
                  std::to_string(lost),
                  harness::fmt_double(seconds, 1) + " s"});
    fs.detach_filter(&engine);
  }
  std::printf("%s\n", slow.to_string().c_str());
  std::printf("reading: slowing down silences the rate indicator but the primary\n"
              "indicators still stop the sample — the attacker only stretched its own\n"
              "timeline (every second of delay is a second for the user to notice).\n");
  return 0;
}
