// Microbenchmarks for the measurement substrates the engine calls on the
// hot path: Shannon entropy, magic identification, the similarity
// digest, and the crypto primitives. These are the knobs behind §V-H's
// per-operation overhead — if one regresses, bench_perf's write/close
// numbers move with it.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "crypto/aes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "entropy/entropy.hpp"
#include "magic/magic.hpp"
#include "simhash/similarity.hpp"

using namespace cryptodrop;

namespace {

Bytes prose_bytes(std::size_t n) {
  Rng rng(1);
  return to_bytes(synth_prose(rng, n));
}

Bytes random_bytes(std::size_t n) {
  Rng rng(2);
  return rng.bytes(n);
}

void BM_ShannonEntropy(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(entropy::shannon(ByteView(data)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ShannonEntropy)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_MagicIdentify(benchmark::State& state) {
  const Bytes data = prose_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(magic::identify(ByteView(data)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MagicIdentify)->Arg(4 << 10)->Arg(64 << 10);

void BM_SimilarityDigest(benchmark::State& state) {
  const Bytes data = prose_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simhash::SimilarityDigest::compute(ByteView(data)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimilarityDigest)->Arg(4 << 10)->Arg(64 << 10)->Arg(1 << 20);

void BM_SimilarityCompare(benchmark::State& state) {
  const Bytes a = prose_bytes(static_cast<std::size_t>(state.range(0)));
  Bytes b = a;
  b[b.size() / 2] ^= 1;
  const auto da = simhash::SimilarityDigest::compute(ByteView(a));
  const auto db = simhash::SimilarityDigest::compute(ByteView(b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(da->compare(*db));
  }
}
BENCHMARK(BM_SimilarityCompare)->Arg(64 << 10)->Arg(1 << 20);

void BM_Sha256(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(ByteView(data)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64 << 10)->Arg(1 << 20);

void BM_ChaCha20(benchmark::State& state) {
  const Bytes key = random_bytes(32);
  const Bytes nonce = random_bytes(12);
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::ChaCha20 cipher(key, nonce);
    benchmark::DoNotOptimize(cipher.transform(ByteView(data)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64 << 10)->Arg(1 << 20);

void BM_Aes128Ctr(benchmark::State& state) {
  const Bytes key = random_bytes(16);
  const Bytes nonce = random_bytes(12);
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    crypto::Aes128Ctr cipher(key, nonce);
    benchmark::DoNotOptimize(cipher.transform(ByteView(data)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Aes128Ctr)->Arg(64 << 10);

void BM_WeightedMeanUpdate(benchmark::State& state) {
  entropy::WeightedEntropyMean mean;
  double e = 0.0;
  for (auto _ : state) {
    mean.add(e, 4096);
    e = e < 8.0 ? e + 0.001 : 0.0;
    benchmark::DoNotOptimize(mean.mean());
  }
}
BENCHMARK(BM_WeightedMeanUpdate);

}  // namespace

BENCHMARK_MAIN();
