// Ablation study (DESIGN.md §5): the paper argues each indicator is
// insufficient in isolation and that union indication is what makes
// detection fast with low false positives. This bench measures, over a
// sampled campaign:
//   1. full engine (baseline),
//   2. union disabled,
//   3. each indicator disabled in turn,
//   4. each indicator ALONE (the §III "insufficient in isolation" claim).
#include "bench_common.hpp"

#include "common/stats.hpp"
#include "entropy/backend.hpp"

using namespace cryptodrop;

namespace {

struct AblationResult {
  std::string name;
  double detection_rate;
  double median_loss;
};

AblationResult run_config(const harness::Environment& env,
                          const benchutil::BenchScale& scale,
                          const std::string& name, const core::ScoringConfig& config) {
  std::fprintf(stderr, "[bench] ablation: %s\n", name.c_str());
  const auto results = benchutil::run_standard_campaign(env, scale, config);
  std::size_t detected = 0;
  std::vector<double> losses;
  for (const auto& r : results) {
    detected += r.detected ? 1 : 0;
    losses.push_back(static_cast<double>(r.files_lost));
  }
  return {name,
          static_cast<double>(detected) / static_cast<double>(results.size()),
          median(losses)};
}

}  // namespace

int main(int argc, char** argv) {
  auto scale = benchutil::parse_scale(argc, argv);
  // Nine configurations — default to a sampled campaign to keep the
  // total run time comparable to the other benches.
  if (scale.max_samples > 120) scale.max_samples = 120;
  const harness::Environment env = benchutil::build_environment(scale);

  std::vector<AblationResult> rows;
  rows.push_back(run_config(env, scale, "full engine", core::ScoringConfig{}));

  {
    core::ScoringConfig c;
    c.enable_union = false;
    rows.push_back(run_config(env, scale, "no union indication", c));
  }
  {
    core::ScoringConfig c;
    c.entropy.enabled = false;
    rows.push_back(run_config(env, scale, "no entropy indicator", c));
  }
  {
    core::ScoringConfig c;
    c.enable_type_change = false;
    rows.push_back(run_config(env, scale, "no type-change indicator", c));
  }
  {
    core::ScoringConfig c;
    c.enable_similarity = false;
    rows.push_back(run_config(env, scale, "no similarity indicator", c));
  }
  {
    core::ScoringConfig c;
    c.enable_deletion = false;
    c.enable_funneling = false;
    rows.push_back(run_config(env, scale, "no secondary indicators", c));
  }
  // Isolation runs: only one indicator active (union impossible).
  auto only = [](bool entropy, bool type, bool sim) {
    core::ScoringConfig c;
    c.entropy.enabled = entropy;
    c.enable_type_change = type;
    c.enable_similarity = sim;
    c.enable_deletion = false;
    c.enable_funneling = false;
    c.enable_union = false;
    return c;
  };
  rows.push_back(run_config(env, scale, "entropy ONLY", only(true, false, false)));
  rows.push_back(run_config(env, scale, "type-change ONLY", only(false, true, false)));
  rows.push_back(run_config(env, scale, "similarity ONLY", only(false, false, true)));
  // Entropy-backend substitution: the full engine with the entropy
  // indicator scored by each alternative backend (DESIGN.md §14), plus
  // the equal-weight four-way ensemble. Detection-rate/loss deltas here
  // isolate what the backend choice buys on top of the indicator mix;
  // bench_roc reports the score-ranking (AUC) side of the same story.
  for (entropy::BackendKind kind : entropy::all_backend_kinds()) {
    if (kind == entropy::BackendKind::shannon) continue;  // == full engine
    core::ScoringConfig c;
    c.entropy.backend = kind;
    rows.push_back(run_config(
        env, scale, "entropy backend: " + std::string(entropy::backend_name(kind)), c));
  }
  {
    core::ScoringConfig c;
    for (entropy::BackendKind kind : entropy::all_backend_kinds()) {
      c.entropy.ensemble.members.push_back(core::EnsembleMember{kind, 1.0});
    }
    rows.push_back(run_config(env, scale, "entropy backend: 4-way ensemble", c));
  }

  std::printf("== Ablation: indicator contributions ==\n\n");
  harness::TextTable table({"Configuration", "Detection rate", "Median files lost"});
  for (const AblationResult& row : rows) {
    table.add_row({row.name, harness::fmt_percent(row.detection_rate, 1),
                   harness::fmt_double(row.median_loss, 1)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected shape: full engine fastest; removing union slows detection;\n"
              "single indicators detect less reliably and/or far slower (§III, §V-B.2).\n");
  return 0;
}
