// Indicator-evasion study (paper §III-F).
//
// The paper argues that evading the union of the three primary
// indicators "requires significant effort" and "very difficult
// engineering trade-offs". This bench makes the argument quantitative:
// each evasion technique is a TeslaCrypt-style Class A attacker with one
// (or several) §III-F countermeasures, and the columns show what the
// stealth actually buys — against how much of the victim's data the
// attacker can still deny.
//
// Also covers the process-splitting evasion and the engine's answer to
// it, family-level scoring ("suspends the suspicious process (or family
// of processes)").
#include "bench_common.hpp"

using namespace cryptodrop;

namespace {

struct EvasionRow {
  std::string name;
  harness::RansomwareRunResult result;
};

sim::SampleSpec base_sample(std::uint64_t seed) {
  sim::SampleSpec spec;
  spec.family = "Evader";
  spec.behavior = sim::BehaviorClass::A;
  spec.profile = sim::family_profile("TeslaCrypt", sim::BehaviorClass::A);
  spec.profile.family = "Evader";
  spec.profile.target_extensions.clear();  // attack everything
  spec.seed = seed;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  auto scale = benchutil::parse_scale(argc, argv);
  const harness::Environment env = benchutil::build_environment(scale);

  struct Config {
    const char* name;
    std::function<void(sim::RansomwareProfile&)> apply;
  };
  const std::vector<Config> configs = {
      {"baseline (no evasion)", [](sim::RansomwareProfile&) {}},
      {"preserve 4K header", [](sim::RansomwareProfile& p) {
         p.evasion.preserve_header_bytes = 4096;
       }},
      {"preserve 16K header", [](sim::RansomwareProfile& p) {
         p.evasion.preserve_header_bytes = 16 * 1024;
       }},
      {"partial encrypt (keep 25%)", [](sim::RansomwareProfile& p) {
         p.evasion.preserve_fraction = 0.25;
       }},
      {"partial encrypt (keep 60%)", [](sim::RansomwareProfile& p) {
         p.evasion.preserve_fraction = 0.60;
       }},
      {"low-entropy pad 64K/file", [](sim::RansomwareProfile& p) {
         p.evasion.pad_low_entropy_bytes = 64 * 1024;
       }},
      {"2 decoy writes/file", [](sim::RansomwareProfile& p) {
         p.evasion.decoy_writes_per_file = 2;
         p.evasion.decoy_bytes = 128 * 1024;
       }},
      {"header+pad+decoys", [](sim::RansomwareProfile& p) {
         p.evasion.preserve_header_bytes = 16 * 1024;
         p.evasion.pad_low_entropy_bytes = 64 * 1024;
         p.evasion.decoy_writes_per_file = 2;
         p.evasion.decoy_bytes = 128 * 1024;
       }},
      {"kitchen sink (+keep 50%)", [](sim::RansomwareProfile& p) {
         p.evasion.preserve_header_bytes = 16 * 1024;
         p.evasion.preserve_fraction = 0.5;
         p.evasion.pad_low_entropy_bytes = 64 * 1024;
         p.evasion.decoy_writes_per_file = 2;
         p.evasion.decoy_bytes = 128 * 1024;
       }},
  };

  std::printf("== §III-F: indicator evasion vs what the attacker gets ==\n\n");
  harness::TextTable table({"Technique", "Detected", "Files lost",
                            "Files attacked", "Data destroyed", "Entropy",
                            "Type", "Sim", "Union"});
  for (const Config& config : configs) {
    std::fprintf(stderr, "[bench] evasion: %s\n", config.name);
    sim::SampleSpec spec = base_sample(1337);
    config.apply(spec.profile);
    const auto r = harness::run_ransomware_sample(env, spec, core::ScoringConfig{});
    const double destroyed =
        r.sample.bytes_touched == 0
            ? 0.0
            : static_cast<double>(r.sample.bytes_destroyed) /
                  static_cast<double>(r.sample.bytes_touched);
    table.add_row({config.name, r.detected ? "yes" : "NO",
                   std::to_string(r.files_lost),
                   std::to_string(r.sample.files_attacked),
                   harness::fmt_percent(destroyed, 1),
                   std::to_string(r.report.entropy_events),
                   std::to_string(r.report.type_change_events),
                   std::to_string(r.report.similarity_drop_events),
                   r.union_triggered ? "yes" : "no"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("reading: stealth is bought with recoverable data — the paper's\n"
              "\"difficult engineering trade-offs\" (a 'NO' row only matters if\n"
              "'Data destroyed' stays near 100%%).\n\n");

  // --- process-splitting evasion vs family scoring -----------------------
  std::printf("== process-splitting evasion vs family-level scoring ==\n\n");
  harness::TextTable split({"Workers", "Family scoring", "Detected",
                            "Files lost"});
  for (std::size_t workers : {std::size_t{0}, std::size_t{4}, std::size_t{16}}) {
    for (bool family : {true, false}) {
      sim::SampleSpec spec = base_sample(4242);
      spec.profile.worker_processes = workers;
      core::ScoringConfig config;
      config.enable_family_scoring = family;
      const auto r = harness::run_ransomware_sample(env, spec, config);
      split.add_row({std::to_string(workers), family ? "on" : "OFF",
                     r.detected ? "yes" : "NO", std::to_string(r.files_lost)});
    }
  }
  std::printf("%s\n", split.to_string().c_str());
  std::printf("expected: with family scoring, worker count is irrelevant; without\n"
              "it, every extra worker multiplies the files lost before all pids\n"
              "are individually flagged.\n");
  return 0;
}
