// Threshold-selection study: the trade-off behind the paper's choice of
// a non-union threshold of 200.
//
// §IV-B: "This scoring mechanism allows us to keep our scoring
// thresholds low without incurring significant false positives." This
// bench sweeps the non-union threshold and reports both sides of the
// trade: median files lost across a sampled malware campaign (lower
// threshold = earlier detection) and the number of benign-suite
// applications whose final score would cross it (lower threshold = more
// false positives). The paper's 200 should sit in the knee: minimal
// loss growth, exactly one (expected) false positive.
#include "bench_common.hpp"

#include "common/stats.hpp"

using namespace cryptodrop;

int main(int argc, char** argv) {
  auto scale = benchutil::parse_scale(argc, argv);
  if (scale.max_samples > 80) scale.max_samples = 80;
  const harness::Environment env = benchutil::build_environment(scale);
  const auto specs = benchutil::campaign_specs(scale);

  // Benign final scores, measured once without suspension.
  core::ScoringConfig unbounded;
  unbounded.score_threshold = 1 << 30;
  unbounded.union_threshold = 1 << 30;
  std::fprintf(stderr, "[bench] benign suite on %zu workers...\n",
               harness::effective_jobs(scale.jobs));
  std::vector<std::pair<std::string, int>> benign_scores;
  for (const auto& r : harness::run_benign_suite_parallel(
           env, sim::all_benign_workloads(), unbounded, /*seed=*/9,
           benchutil::runner_options(scale))) {
    benign_scores.emplace_back(r.app, r.final_score);
  }

  std::printf("== non-union threshold sweep (%zu samples, 30 benign apps) ==\n\n",
              specs.size());
  harness::TextTable table({"Threshold", "Detection", "Median files lost",
                            "Benign FPs", "Flagged apps"});
  for (int threshold : {25, 50, 100, 150, 200, 300, 400, 600}) {
    core::ScoringConfig config;
    config.score_threshold = threshold;
    config.union_threshold = std::min(config.union_threshold, threshold);
    std::size_t detected = 0;
    std::vector<double> losses;
    const auto results = harness::run_campaign_parallel(
        env, specs, config, benchutil::runner_options(scale));
    benchutil::maybe_write_metrics(scale, results);  // one sidecar per threshold
    benchutil::maybe_write_trace(scale, results);
    for (const auto& r : results) {
      detected += r.detected ? 1 : 0;
      losses.push_back(static_cast<double>(r.files_lost));
    }
    int fps = 0;
    std::string flagged;
    for (const auto& [app, score] : benign_scores) {
      if (score >= threshold) {
        ++fps;
        flagged += app + "; ";
      }
    }
    table.add_row({std::to_string(threshold) +
                       (threshold == 200 ? " (paper)" : ""),
                   harness::fmt_percent(static_cast<double>(detected) /
                                        static_cast<double>(specs.size()), 0),
                   harness::fmt_double(median(losses), 1), std::to_string(fps),
                   flagged});
    std::fprintf(stderr, "[bench] threshold %d done\n", threshold);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected knee: loss grows slowly with the threshold (union\n"
              "indication dominates detection speed) while benign FPs drop to\n"
              "exactly one — the archiver — by 250-300.\n");
  return 0;
}
