// Threshold-selection and entropy-backend ROC study.
//
// Part 1 (§IV-B): "This scoring mechanism allows us to keep our scoring
// thresholds low without incurring significant false positives." Sweeps
// the non-union threshold and reports both sides of the trade: median
// files lost across a sampled malware campaign (lower threshold =
// earlier detection) and the number of benign-suite applications whose
// final score would cross it.
//
// Part 2 (DESIGN.md §14): one run emits a per-backend ROC table — every
// entropy backend (shannon, chi_square, serial_correlation, daa, plus
// an equal-weight ensemble of all four) scored against the full family
// zoo and the 30-app benign suite with suspension disabled, so each
// trial's final score ranks it. TPR/FPR come from sweeping a threshold
// over those scores; AUC is the threshold-free Mann-Whitney statistic
// P(malicious score > benign score). The second AUC column restricts
// the benign side to the compressed-corpus writers (apps whose
// shannon-measured write mean is >= 6 bits/byte — archivers, browsers
// downloading media, image editors), the population arXiv 2210.13376
// says plain Shannon entropy confuses with ciphertext.
//
// Extra flags on top of bench_common:
//   --quick            tiny corpus/sample sanity mode (the per-backend
//                      ctest entries run this; exit 1 = backend broken)
//   --entropy-backend  restrict part 2 to one backend
#include "bench_common.hpp"

#include <algorithm>
#include <cstring>

#include "common/stats.hpp"
#include "entropy/backend.hpp"

using namespace cryptodrop;

namespace {

/// One backend configuration under study: a label and the entropy block
/// it runs with.
struct BackendRun {
  std::string label;
  core::EntropyConfig entropy;
};

/// Mann-Whitney AUC: P(pos > neg) with ties counted half. The ROC-curve
/// area without choosing thresholds; 0.5 = the scores do not separate
/// the classes at all.
double mann_whitney_auc(const std::vector<int>& pos, const std::vector<int>& neg) {
  if (pos.empty() || neg.empty()) return 0.5;
  double acc = 0.0;
  for (int p : pos) {
    for (int n : neg) {
      if (p > n) {
        acc += 1.0;
      } else if (p == n) {
        acc += 0.5;
      }
    }
  }
  return acc / (static_cast<double>(pos.size()) * static_cast<double>(neg.size()));
}

double rate_at_least(const std::vector<int>& scores, int threshold) {
  if (scores.empty()) return 0.0;
  std::size_t n = 0;
  for (int s : scores) n += s >= threshold ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(scores.size());
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the flags bench_common does not know before scale parsing
  // (its parser would read "--quick" as a positional corpus size).
  bool quick = false;
  std::string only_backend;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--entropy-backend") == 0 && i + 1 < argc) {
      only_backend = argv[++i];
    } else {
      rest.push_back(argv[i]);
    }
  }
  auto scale = benchutil::parse_scale(static_cast<int>(rest.size()), rest.data());
  if (quick) {
    scale.corpus_files = std::min<std::size_t>(scale.corpus_files, 500);
    scale.max_samples = std::min<std::size_t>(scale.max_samples, 16);
  }
  if (scale.max_samples > 80) scale.max_samples = 80;
  const harness::Environment env = benchutil::build_environment(scale);
  const auto specs = benchutil::campaign_specs(scale);

  // The backends under study, shannon first (its benign run defines the
  // compressed-writer subset used by every row's second AUC column).
  std::vector<BackendRun> runs;
  for (entropy::BackendKind kind : entropy::all_backend_kinds()) {
    BackendRun run;
    run.label = std::string(entropy::backend_name(kind));
    run.entropy.backend = kind;
    runs.push_back(std::move(run));
  }
  {
    BackendRun run;
    run.label = "ensemble";
    for (entropy::BackendKind kind : entropy::all_backend_kinds()) {
      run.entropy.ensemble.members.push_back(core::EnsembleMember{kind, 1.0});
    }
    runs.push_back(std::move(run));
  }
  if (!only_backend.empty()) {
    std::erase_if(runs, [&](const BackendRun& r) { return r.label != only_backend; });
    if (runs.empty()) {
      std::fprintf(stderr, "unknown --entropy-backend `%s`\n", only_backend.c_str());
      return 2;
    }
  }

  // --- part 2 data: unbounded-score runs per backend --------------------
  // Suspension off: every trial runs to completion and its final score
  // ranks it, which is what a score-based ROC needs.
  struct RunData {
    std::vector<int> malicious;
    std::vector<int> benign;
    std::vector<int> benign_compressed;
    std::size_t detected_at_paper = 0;  // separate run at threshold 200
  };
  std::vector<RunData> data(runs.size());
  std::vector<std::string> compressed_apps;  // shannon-defined subset
  std::vector<std::pair<std::string, int>> shannon_benign_scores;

  for (std::size_t i = 0; i < runs.size(); ++i) {
    core::ScoringConfig unbounded;
    unbounded.score_threshold = 1 << 30;
    unbounded.union_threshold = 1 << 30;
    unbounded.entropy = runs[i].entropy;
    std::fprintf(stderr, "[bench] backend %s: campaign (%zu samples)...\n",
                 runs[i].label.c_str(), specs.size());
    const auto campaign = harness::run_campaign_parallel(
        env, specs, unbounded, benchutil::runner_options(scale));
    for (const auto& r : campaign) data[i].malicious.push_back(r.final_score);

    std::fprintf(stderr, "[bench] backend %s: benign suite...\n",
                 runs[i].label.c_str());
    const auto benign = harness::run_benign_suite_parallel(
        env, sim::all_benign_workloads(), unbounded, /*seed=*/9,
        benchutil::runner_options(scale));
    if (runs[i].label == "shannon") {
      for (const auto& r : benign) {
        shannon_benign_scores.emplace_back(r.app, r.final_score);
        if (r.report.write_entropy_mean >= 6.0) compressed_apps.push_back(r.app);
      }
    }
    for (const auto& r : benign) {
      data[i].benign.push_back(r.final_score);
      if (std::find(compressed_apps.begin(), compressed_apps.end(), r.app) !=
          compressed_apps.end()) {
        data[i].benign_compressed.push_back(r.final_score);
      }
    }

    // Detection rate with suspension live at the paper's threshold.
    core::ScoringConfig paper;
    paper.entropy = runs[i].entropy;
    std::fprintf(stderr, "[bench] backend %s: paper-threshold campaign...\n",
                 runs[i].label.c_str());
    const auto live = harness::run_campaign_parallel(
        env, specs, paper, benchutil::runner_options(scale));
    for (const auto& r : live) data[i].detected_at_paper += r.detected ? 1 : 0;
  }

  // --- part 2 report ----------------------------------------------------
  std::printf("== per-backend ROC vs the family zoo (%zu samples, %zu benign apps) ==\n",
              specs.size(), data[0].benign.size());
  std::printf("compressed-writer benign subset (shannon write mean >= 6): ");
  for (const auto& app : compressed_apps) std::printf("%s; ", app.c_str());
  std::printf("\n\n");

  harness::TextTable summary({"Backend", "AUC (all benign)",
                              "AUC (compressed benign)", "TPR@200 (live)",
                              "Benign FPs@200"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    int fps = 0;
    for (int s : data[i].benign) fps += s >= 200 ? 1 : 0;
    // The compressed column needs shannon's benign run to define the
    // subset; with --entropy-backend it may be absent.
    const std::string compressed_auc =
        data[i].benign_compressed.empty()
            ? "n/a"
            : harness::fmt_double(
                  mann_whitney_auc(data[i].malicious, data[i].benign_compressed), 4);
    summary.add_row(
        {runs[i].label,
         harness::fmt_double(mann_whitney_auc(data[i].malicious, data[i].benign), 4),
         compressed_auc,
         harness::fmt_percent(static_cast<double>(data[i].detected_at_paper) /
                                  static_cast<double>(specs.size()), 0),
         std::to_string(fps)});
  }
  std::printf("%s\n", summary.to_string().c_str());

  std::vector<std::string> roc_headers = {"Threshold"};
  for (const auto& run : runs) roc_headers.push_back(run.label + " TPR/FPR");
  harness::TextTable roc(roc_headers);
  for (int threshold : {25, 50, 100, 150, 200, 300, 400, 600}) {
    std::vector<std::string> row = {std::to_string(threshold) +
                                    (threshold == 200 ? " (paper)" : "")};
    for (std::size_t i = 0; i < runs.size(); ++i) {
      row.push_back(
          harness::fmt_percent(rate_at_least(data[i].malicious, threshold), 0) +
          "/" +
          harness::fmt_percent(rate_at_least(data[i].benign, threshold), 0));
    }
    roc.add_row(row);
  }
  std::printf("%s\n", roc.to_string().c_str());

  // --- quick mode: sanity gate for the per-backend ctest entries --------
  if (quick) {
    int failures = 0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const double auc = mann_whitney_auc(data[i].malicious, data[i].benign);
      if (auc < 0.55) {
        std::fprintf(stderr,
                     "[bench] FAIL %s: AUC %.3f < 0.55 — the backend no longer "
                     "separates the zoo from the benign suite\n",
                     runs[i].label.c_str(), auc);
        ++failures;
      }
      if (data[i].detected_at_paper == 0) {
        std::fprintf(stderr,
                     "[bench] FAIL %s: zero detections at the paper threshold\n",
                     runs[i].label.c_str());
        ++failures;
      }
    }
    if (failures != 0) return 1;
    std::printf("quick sanity: every backend separates and detects\n");
    return 0;
  }

  // --- part 1: the original threshold sweep (default shannon config) ----
  std::printf("== non-union threshold sweep (%zu samples, %zu benign apps) ==\n\n",
              specs.size(), shannon_benign_scores.size());
  harness::TextTable table({"Threshold", "Detection", "Median files lost",
                            "Benign FPs", "Flagged apps"});
  for (int threshold : {25, 50, 100, 150, 200, 300, 400, 600}) {
    core::ScoringConfig config;
    config.score_threshold = threshold;
    config.union_threshold = std::min(config.union_threshold, threshold);
    std::size_t detected = 0;
    std::vector<double> losses;
    const auto results = harness::run_campaign_parallel(
        env, specs, config, benchutil::runner_options(scale));
    benchutil::maybe_write_metrics(scale, results);  // one sidecar per threshold
    benchutil::maybe_write_trace(scale, results);
    for (const auto& r : results) {
      detected += r.detected ? 1 : 0;
      losses.push_back(static_cast<double>(r.files_lost));
    }
    int fps = 0;
    std::string flagged;
    for (const auto& [app, score] : shannon_benign_scores) {
      if (score >= threshold) {
        ++fps;
        flagged += app + "; ";
      }
    }
    table.add_row({std::to_string(threshold) +
                       (threshold == 200 ? " (paper)" : ""),
                   harness::fmt_percent(static_cast<double>(detected) /
                                        static_cast<double>(specs.size()), 0),
                   harness::fmt_double(median(losses), 1), std::to_string(fps),
                   flagged});
    std::fprintf(stderr, "[bench] threshold %d done\n", threshold);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected knee: loss grows slowly with the threshold (union\n"
              "indication dominates detection speed) while benign FPs drop to\n"
              "exactly one — the archiver — by 250-300.\n");
  return 0;
}
