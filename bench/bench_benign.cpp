// §V-F reproduction: the thirty-application benign suite.
//
// Paper reference: exactly one false positive (7-zip, archiving the
// documents tree — "normal, expected, desirable"), and no benign
// application exhibits all three primary indicators (no union).
#include "bench_common.hpp"

using namespace cryptodrop;

int main(int argc, char** argv) {
  const auto scale = benchutil::parse_scale(argc, argv);
  const harness::Environment env = benchutil::build_environment(scale);

  std::printf("== §V-F: thirty benign applications at threshold %d ==\n\n",
              core::ScoringConfig{}.score_threshold);
  harness::TextTable table({"Application", "Score", "Entropy", "Type", "Sim",
                            "Del", "Funnel", "Union", "Detected"});
  std::size_t false_positives = 0;
  std::size_t union_count = 0;
  std::vector<harness::BenignRunResult> results;
  for (const sim::BenignWorkload& workload : sim::all_benign_workloads()) {
    std::fprintf(stderr, "[bench] %s...\n", workload.name.c_str());
    const auto r = harness::run_benign_workload_filtered(
        env, workload, core::ScoringConfig{}, 9, nullptr,
        benchutil::trace_options(scale));
    if (r.detected) ++false_positives;
    if (r.union_triggered) ++union_count;
    results.push_back(r);
    table.add_row({r.app, std::to_string(r.final_score),
                   std::to_string(r.report.entropy_events),
                   std::to_string(r.report.type_change_events),
                   std::to_string(r.report.similarity_drop_events),
                   std::to_string(r.report.deletion_events),
                   std::to_string(r.report.funneling_events),
                   r.union_triggered ? "YES" : "no",
                   r.detected ? (r.expected_false_positive ? "yes (expected)" : "YES")
                              : "no"});
  }
  benchutil::maybe_write_metrics(scale, results);
  benchutil::maybe_write_trace(scale, results);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("false positives: %zu   [paper: 1 (7-zip)]\n", false_positives);
  std::printf("benign apps triggering union: %zu   [paper: 0]\n", union_count);
  return (false_positives == 1 && union_count == 0) ? 0 : 1;
}
