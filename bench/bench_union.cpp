// §V-B.2 reproduction: union indication effectiveness.
//
// Paper reference: 457/492 samples (93%) show at least one union
// occurrence; of 63 Class C samples, 41 move ciphertext over the
// original (linkable -> union) and 22 evade union but are detected via
// entropy writes + deletions with a median loss of 6; 13 Class A samples
// are detected before their similarity indicator ever fires.
#include "bench_common.hpp"

#include "common/stats.hpp"

using namespace cryptodrop;

int main(int argc, char** argv) {
  const auto scale = benchutil::parse_scale(argc, argv);
  const harness::Environment env = benchutil::build_environment(scale);
  const auto results = benchutil::run_standard_campaign(env, scale);

  std::size_t with_union = 0;
  std::vector<double> union_losses, non_union_losses;
  std::size_t class_c_total = 0, class_c_union = 0;
  std::vector<double> class_c_evader_losses;
  std::size_t detected_without_similarity = 0;

  for (const auto& r : results) {
    if (r.union_triggered) {
      ++with_union;
      union_losses.push_back(static_cast<double>(r.files_lost));
    } else {
      non_union_losses.push_back(static_cast<double>(r.files_lost));
    }
    if (r.behavior == sim::BehaviorClass::C) {
      ++class_c_total;
      if (r.union_triggered) {
        ++class_c_union;
      } else {
        class_c_evader_losses.push_back(static_cast<double>(r.files_lost));
      }
    }
    if (r.detected && r.report.similarity_drop_events == 0) {
      ++detected_without_similarity;
    }
  }

  std::printf("== Union indication effectiveness (paper §V-B.2) ==\n\n");
  std::printf("samples with >=1 union indication: %zu / %zu (%s)   [paper: 457/492 = 93%%]\n",
              with_union, results.size(),
              harness::fmt_percent(static_cast<double>(with_union) /
                                   static_cast<double>(results.size()))
                  .c_str());
  if (!union_losses.empty()) {
    std::printf("median files lost, union samples:     %s\n",
                harness::fmt_double(median(union_losses), 1).c_str());
  }
  if (!non_union_losses.empty()) {
    std::printf("median files lost, non-union samples: %s\n",
                harness::fmt_double(median(non_union_losses), 1).c_str());
  }

  std::printf("\nClass C split:\n");
  std::printf("  total Class C samples: %zu   [paper: 63]\n", class_c_total);
  std::printf("  union via move-over-original linkage: %zu   [paper: 41]\n", class_c_union);
  std::printf("  union evaders (delete originals): %zu   [paper: 22]\n",
              class_c_total - class_c_union);
  if (!class_c_evader_losses.empty()) {
    std::printf("  evader median files lost: %s   [paper: 6]\n",
                harness::fmt_double(median(class_c_evader_losses), 1).c_str());
  }
  std::printf("\nsamples detected with zero similarity-indicator events: %zu   [paper: 13+22]\n",
              detected_without_similarity);
  return 0;
}
