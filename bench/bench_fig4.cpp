// Figure 4 reproduction: directory-tree access footprints of TeslaCrypt
// (depth-first), CTB-Locker (size-ascending), and GPcode (root-down)
// before detection.
//
// The paper renders radial trees with touched directories shaded; this
// bench prints, per sample, the touched directory count, the depth
// profile of touched directories, and an indented tree with '*' marking
// directories where the sample read or wrote a file before CryptoDrop
// stopped it. The three samples' traversal shapes should be visibly
// different (deep pockets vs. scattered-by-size vs. top-down).
#include "bench_common.hpp"

#include <map>

#include "vfs/path.hpp"

using namespace cryptodrop;

namespace {

void print_tree(const vfs::FileSystem& fs, const std::string& root,
                const std::set<std::string>& touched, const std::string& dir,
                int depth, int max_depth) {
  if (depth > max_depth) return;
  const std::string label = dir == root ? "(documents root)"
                                        : std::string(vfs::path_filename(dir));
  std::printf("  %*s%s %s\n", depth * 2, "", touched.contains(dir) ? "*" : "-",
              label.c_str());
  for (const vfs::DirEntry& entry : fs.list(dir)) {
    if (!entry.is_directory) continue;
    print_tree(fs, root, touched, vfs::path_join(dir, entry.name), depth + 1,
               max_depth);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto scale = benchutil::parse_scale(argc, argv);
  // Figure 4 runs exactly three samples; corpus scale still configurable.
  const harness::Environment env = benchutil::build_environment(scale);

  struct Subject {
    const char* family;
    sim::BehaviorClass behavior;
    const char* paper_shape;
  };
  const Subject subjects[] = {
      {"TeslaCrypt", sim::BehaviorClass::A,
       "depth-first: contiguous deep pocket of the tree"},
      {"CTB-Locker", sim::BehaviorClass::B,
       "size-ascending .txt/.md: scattered across the whole tree"},
      {"GPcode", sim::BehaviorClass::C,
       "root-down: shallow directories first"},
  };

  std::vector<sim::SampleSpec> specs;
  for (const Subject& subject : subjects) {
    sim::SampleSpec spec;
    spec.family = subject.family;
    spec.behavior = subject.behavior;
    spec.profile = sim::family_profile(subject.family, subject.behavior);
    spec.profile.behavior = subject.behavior;
    spec.seed = 404;
    specs.push_back(std::move(spec));
  }
  const auto results = harness::run_campaign_parallel(
      env, specs, core::ScoringConfig{}, benchutil::runner_options(scale));
  benchutil::maybe_write_metrics(scale, results);
  benchutil::maybe_write_trace(scale, results);

  std::printf("== Figure 4: directory footprint before detection ==\n");
  for (std::size_t i = 0; i < std::size(subjects); ++i) {
    const Subject& subject = subjects[i];
    const harness::RansomwareRunResult& r = results[i];

    const std::size_t total_dirs = env.base_fs.list_dirs_recursive(env.corpus.root).size() + 1;
    std::printf("\n-- %s (Class %s) --\n", subject.family,
                std::string(sim::behavior_class_name(subject.behavior)).c_str());
    std::printf("paper shape: %s\n", subject.paper_shape);
    std::printf("detected: %s | files lost: %zu | directories touched: %zu of %zu\n",
                r.detected ? "yes" : "NO", r.files_lost,
                r.directories_touched.size(), total_dirs);

    // Depth histogram of touched directories.
    std::map<std::size_t, std::size_t> by_depth;
    const std::size_t root_depth = vfs::path_depth(env.corpus.root);
    for (const std::string& dir : r.directories_touched) {
      ++by_depth[vfs::path_depth(dir) - root_depth];
    }
    std::printf("touched-directory depth profile (0 = documents root):\n");
    for (const auto& [depth, count] : by_depth) {
      std::printf("  depth %zu: %zu %s\n", depth, count,
                  std::string(count, '#').c_str());
    }
    std::printf("tree (first 3 levels, * = touched):\n");
    print_tree(env.base_fs, env.corpus.root, r.directories_touched,
               env.corpus.root, 0, 3);
  }
  return 0;
}
