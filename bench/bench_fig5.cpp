// Figure 5 reproduction: frequency of file extensions accessed by the
// campaign's samples before detection (each sample counts an extension
// at most once).
//
// Paper reference: productivity formats dominate (.pdf, .odt, .docx,
// .pptx at the head), media and archives trail.
#include "bench_common.hpp"

#include "common/stats.hpp"

using namespace cryptodrop;

int main(int argc, char** argv) {
  const auto scale = benchutil::parse_scale(argc, argv);
  const harness::Environment env = benchutil::build_environment(scale);
  const auto results = benchutil::run_standard_campaign(env, scale);

  const auto freq = harness::extension_frequency(results);
  const double n = static_cast<double>(results.size());

  std::printf("== Figure 5: file extensions accessed before detection ==\n");
  std::printf("(%% of %zu samples that touched at least one file of each type)\n\n",
              results.size());
  for (const auto& [ext, count] : freq) {
    const double fraction = static_cast<double>(count) / n;
    std::printf("  .%-6s %6s  %s\n", ext.c_str(),
                harness::fmt_percent(fraction, 1).c_str(),
                text_bar(fraction, 50).c_str());
  }

  // The paper's headline: the top formats are productivity documents.
  std::printf("\ntop-4 formats: ");
  for (std::size_t i = 0; i < std::min<std::size_t>(4, freq.size()); ++i) {
    std::printf(".%s ", freq[i].first.c_str());
  }
  std::printf("  [paper: .pdf .odt .docx .pptx]\n");
  return 0;
}
