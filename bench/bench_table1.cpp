// Table I reproduction: per-family sample counts by behavior class and
// median files lost, over the 492-sample campaign against the
// 5,099-file corpus.
//
// Paper reference (Table I): overall median 10 files lost (0.2%),
// CTB-Locker slowest (29), Xorist/CryptoTorLocker2015 fastest (3),
// Class B highest losses, 100% detection.
#include "bench_common.hpp"

#include "common/stats.hpp"

using namespace cryptodrop;

int main(int argc, char** argv) {
  const auto scale = benchutil::parse_scale(argc, argv);
  const harness::Environment env = benchutil::build_environment(scale);
  const auto results = benchutil::run_standard_campaign(env, scale);

  std::size_t detected = 0;
  std::vector<double> all_losses;
  for (const auto& r : results) {
    if (r.detected) ++detected;
    all_losses.push_back(static_cast<double>(r.files_lost));
  }

  std::printf("== Table I: ransomware sample breakdown and files lost ==\n");
  std::printf("corpus: %zu files | samples: %zu | detected: %zu (%s)\n\n",
              env.corpus.file_count(), results.size(), detected,
              harness::fmt_percent(static_cast<double>(detected) /
                                   static_cast<double>(results.size()))
                  .c_str());

  harness::TextTable table({"Family", "# Class A", "# Class B", "# Class C",
                            "Total", "% of set", "Median FL"});
  const auto rows = harness::aggregate_table1(results);
  for (const auto& row : rows) {
    auto cell = [](std::size_t n) { return n == 0 ? std::string("-") : std::to_string(n); };
    table.add_row({row.family, cell(row.class_a), cell(row.class_b),
                   cell(row.class_c), std::to_string(row.total),
                   harness::fmt_percent(static_cast<double>(row.total) /
                                        static_cast<double>(results.size())),
                   harness::fmt_double(row.median_files_lost, 1)});
  }
  std::printf("%s", table.to_string().c_str());

  const double overall_median = median(all_losses);
  std::printf("\noverall median files lost: %s of %zu (%s)   [paper: 10 of 5,099 (0.2%%)]\n",
              harness::fmt_double(overall_median, 1).c_str(), env.corpus.file_count(),
              harness::fmt_percent(overall_median /
                                   static_cast<double>(env.corpus.file_count()))
                  .c_str());
  std::printf("detection rate: %s   [paper: 100%%]\n",
              harness::fmt_percent(static_cast<double>(detected) /
                                   static_cast<double>(results.size()))
                  .c_str());
  return detected == results.size() ? 0 : 1;
}
