// Shared plumbing for the bench binaries: standard environment, the
// Table-I campaign, and scale controls.
//
// Every bench accepts:
//   argv[1] — corpus file count   (default 5099, the paper's corpus)
//   argv[2] — max samples to run  (default 492, the full Table-I set;
//             subsampling keeps per-family proportions)
//   --jobs N — worker threads for the trial pool (default: one per
//             hardware thread; also CRYPTODROP_JOBS=N). Results are
//             bit-identical at any job count.
//   --metrics-out FILE — write the campaign's instrumentation sidecar
//             (merged engine metrics + per-run forensic timelines, see
//             docs/OBSERVABILITY.md) as JSON; also
//             CRYPTODROP_METRICS_OUT=FILE. Benches that run several
//             campaigns number the second and later files FILE.2, ...
//   --trace-out FILE — enable span tracing and write each campaign's
//             merged Chrome trace-event JSON (Perfetto-loadable; feed to
//             `cryptodrop trace-report`); also CRYPTODROP_TRACE_OUT=FILE,
//             numbered FILE.2, ... like the metrics sidecar.
//   --trace-sample N — keep 1-in-N operations (default 16 for benches:
//             full traces of a 492-sample campaign are huge); also
//             CRYPTODROP_TRACE_SAMPLE=N.
// or the environment variable CRYPTODROP_FAST=1 for a quick smoke run.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

namespace cryptodrop::benchutil {

struct BenchScale {
  std::size_t corpus_files = 5099;
  std::size_t corpus_dirs = 511;
  std::size_t max_samples = 492;
  std::uint64_t corpus_seed = 20160627;  // ICDCS 2016 week
  std::uint64_t campaign_seed = 1;
  std::size_t jobs = 0;  // 0 → one worker per hardware thread
  std::string metrics_out;  // empty → no instrumentation sidecar
  std::string trace_out;    // empty → no span tracing
  std::size_t trace_sample = 16;  // bench default: sampled tracing
};

inline BenchScale parse_scale(int argc, char** argv) {
  BenchScale scale;
  if (std::getenv("CRYPTODROP_FAST") != nullptr) {
    scale.corpus_files = 800;
    scale.corpus_dirs = 80;
    scale.max_samples = 60;
  }
  if (const char* jobs_env = std::getenv("CRYPTODROP_JOBS")) {
    scale.jobs = std::strtoul(jobs_env, nullptr, 10);
  }
  if (const char* metrics_env = std::getenv("CRYPTODROP_METRICS_OUT")) {
    scale.metrics_out = metrics_env;
  }
  if (const char* trace_env = std::getenv("CRYPTODROP_TRACE_OUT")) {
    scale.trace_out = trace_env;
  }
  if (const char* sample_env = std::getenv("CRYPTODROP_TRACE_SAMPLE")) {
    scale.trace_sample = std::strtoul(sample_env, nullptr, 10);
  }
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      scale.jobs = std::strtoul(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      scale.metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      scale.trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-sample") == 0 && i + 1 < argc) {
      scale.trace_sample = std::strtoul(argv[++i], nullptr, 10);
    } else if (positional == 0) {
      scale.corpus_files = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    } else if (positional == 1) {
      scale.max_samples = std::strtoul(argv[i], nullptr, 10);
      ++positional;
    }
  }
  if (scale.corpus_files != 5099) {
    scale.corpus_dirs = std::max<std::size_t>(scale.corpus_files / 10, 16);
  }
  return scale;
}

/// Span-tracing knobs from the scale flags: on exactly when --trace-out
/// named a destination.
inline obs::TraceOptions trace_options(const BenchScale& scale) {
  obs::TraceOptions trace;
  trace.enabled = !scale.trace_out.empty();
  trace.sample_every = std::max<std::size_t>(scale.trace_sample, 1);
  return trace;
}

inline harness::RunnerOptions runner_options(const BenchScale& scale) {
  harness::RunnerOptions options;
  options.jobs = scale.jobs;
  options.trace = trace_options(scale);
  options.progress = [](std::size_t done, std::size_t total) {
    if (done % 100 == 0 || done == total) {
      std::fprintf(stderr, "[bench]   %zu/%zu\n", done, total);
    }
  };
  return options;
}

inline harness::Environment build_environment(const BenchScale& scale) {
  corpus::CorpusSpec spec;
  spec.total_files = scale.corpus_files;
  spec.total_dirs = scale.corpus_dirs;
  spec.compute_hashes = false;  // loss accounting uses COW identity
  std::fprintf(stderr, "[bench] building corpus: %zu files, %zu dirs...\n",
               spec.total_files, spec.total_dirs);
  return harness::make_environment(spec, scale.corpus_seed);
}

/// The Table-I sample set, subsampled evenly (preserving family order and
/// therefore per-family proportions) when max_samples < 492.
inline std::vector<sim::SampleSpec> campaign_specs(const BenchScale& scale) {
  std::vector<sim::SampleSpec> all = sim::table1_samples(scale.campaign_seed);
  if (scale.max_samples >= all.size()) return all;
  std::vector<sim::SampleSpec> picked;
  picked.reserve(scale.max_samples);
  const double stride = static_cast<double>(all.size()) /
                        static_cast<double>(scale.max_samples);
  for (std::size_t i = 0; i < scale.max_samples; ++i) {
    picked.push_back(all[static_cast<std::size_t>(static_cast<double>(i) * stride)]);
  }
  return picked;
}

/// Writes one campaign's instrumentation sidecar when --metrics-out was
/// given. A bench running several campaigns gets one file per call: the
/// second and later writes go to FILE.2, FILE.3, ...
template <typename Result>
void maybe_write_metrics(const BenchScale& scale,
                         const std::vector<Result>& results) {
  if (scale.metrics_out.empty()) return;
  static std::size_t campaign_index = 0;
  std::string path = scale.metrics_out;
  if (++campaign_index > 1) {
    path += '.';
    path += std::to_string(campaign_index);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write metrics file %s\n", path.c_str());
    return;
  }
  const std::string text =
      harness::metrics_report(results).to_pretty_string();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "[bench] metrics written to %s\n", path.c_str());
}

/// Writes one campaign's span-trace sidecar when --trace-out was given,
/// numbered FILE.2, FILE.3, ... like the metrics sidecar.
template <typename Result>
void maybe_write_trace(const BenchScale& scale,
                       const std::vector<Result>& results) {
  if (scale.trace_out.empty()) return;
  static std::size_t campaign_index = 0;
  std::string path = scale.trace_out;
  if (++campaign_index > 1) {
    path += '.';
    path += std::to_string(campaign_index);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write trace file %s\n", path.c_str());
    return;
  }
  const std::string text = harness::trace_report(results).to_pretty_string();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "[bench] trace written to %s\n", path.c_str());
}

inline std::vector<harness::RansomwareRunResult> run_standard_campaign(
    const harness::Environment& env, const BenchScale& scale,
    const core::ScoringConfig& config = {}) {
  const auto specs = campaign_specs(scale);
  std::fprintf(stderr, "[bench] running %zu samples on %zu workers...\n",
               specs.size(), harness::effective_jobs(scale.jobs));
  auto results =
      harness::run_campaign_parallel(env, specs, config, runner_options(scale));
  maybe_write_metrics(scale, results);
  maybe_write_trace(scale, results);
  return results;
}

}  // namespace cryptodrop::benchutil
