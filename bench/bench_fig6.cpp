// Figure 6 reproduction: false positives vs. non-union detection
// threshold for the five analyzed benign applications.
//
// Paper reference: final scores Adobe Lightroom 107, ImageMagick 0,
// iTunes 16, Microsoft Word 0, Microsoft Excel 150; at the experiments'
// threshold of 200 none of the five is a false positive.
#include "bench_common.hpp"

using namespace cryptodrop;

int main(int argc, char** argv) {
  const auto scale = benchutil::parse_scale(argc, argv);
  const harness::Environment env = benchutil::build_environment(scale);

  // Run each app without suspension (huge threshold) to get its full
  // score trajectory; sweep thresholds analytically afterwards (scores
  // only increase, so FP at threshold t <=> final score >= t).
  core::ScoringConfig unbounded;
  unbounded.score_threshold = 1 << 30;
  unbounded.union_threshold = 1 << 30;

  struct AppScore {
    std::string name;
    int score;
    int paper_score;
  };
  const std::map<std::string, int> paper_scores = {
      {"Adobe Lightroom", 107}, {"ImageMagick", 0}, {"iTunes", 16},
      {"Microsoft Word", 0},    {"Microsoft Excel", 150},
  };

  std::vector<AppScore> apps;
  std::fprintf(stderr, "[bench] running %zu apps on %zu workers...\n",
               sim::figure6_workloads().size(),
               harness::effective_jobs(scale.jobs));
  const auto results = harness::run_benign_suite_parallel(
      env, sim::figure6_workloads(), unbounded, /*seed=*/9,
      benchutil::runner_options(scale));
  benchutil::maybe_write_metrics(scale, results);
  benchutil::maybe_write_trace(scale, results);
  for (const auto& r : results) {
    apps.push_back({r.app, r.final_score, paper_scores.at(r.app)});
  }

  std::printf("== Figure 6: false positives vs non-union threshold ==\n\n");
  harness::TextTable scores({"Application", "Final score", "Paper score"});
  for (const AppScore& app : apps) {
    scores.add_row({app.name, std::to_string(app.score), std::to_string(app.paper_score)});
  }
  std::printf("%s\n", scores.to_string().c_str());

  std::printf("%-10s %-16s %s\n", "threshold", "false positives", "flagged apps");
  for (int threshold : {10, 25, 50, 75, 100, 125, 150, 175, 200, 250, 300, 400}) {
    int fps = 0;
    std::string flagged;
    for (const AppScore& app : apps) {
      if (app.score >= threshold) {
        ++fps;
        flagged += app.name + "; ";
      }
    }
    std::printf("%-10d %-16d %s%s\n", threshold, fps,
                threshold == 200 ? "<- experiment threshold  " : "",
                flagged.c_str());
  }
  std::printf("\n[paper: 0 false positives among these five at threshold 200]\n");

  int fps_at_200 = 0;
  for (const AppScore& app : apps) fps_at_200 += app.score >= 200 ? 1 : 0;
  return fps_at_200 == 0 ? 0 : 1;
}
