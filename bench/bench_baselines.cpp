// Baseline comparison (paper §II Related Work, §V-E):
//
//   1. Signature AV inspects *programs*: perfect against binaries it has
//      seen, useless against a repacked variant — and a missed sample
//      costs the entire corpus, because nothing watches the data.
//      (§V-E: a one-character change to PoshCoder dropped it from 2 of
//      the 6 AV products that had detected it.)
//   2. Tripwire-style integrity monitoring watches the data but cannot
//      tell legitimate change from malicious change: it "detects"
//      everything, including every benign save ("noisy and frustrate
//      the user").
//   3. CryptoDrop sits between them: data-centric like Tripwire,
//      behavioral enough to leave benign software alone.
#include "bench_common.hpp"

#include "baselines/integrity_monitor.hpp"
#include "baselines/signature_av.hpp"
#include "common/stats.hpp"

using namespace cryptodrop;

int main(int argc, char** argv) {
  auto scale = benchutil::parse_scale(argc, argv);
  if (scale.max_samples > 200) scale.max_samples = 200;  // 3 systems x campaign
  const harness::Environment env = benchutil::build_environment(scale);
  const auto specs = benchutil::campaign_specs(scale);

  // --- 1. signature AV at several database-coverage levels ----------------
  std::printf("== signature AV vs repacked variants ==\n\n");
  harness::TextTable av_table({"Signature coverage", "Samples blocked",
                               "Samples that run", "Mean files lost/sample"});
  // An unopposed sample loses the victim every file its profile targets
  // (computed from the manifest; only read-only originals survive Class A
  // in-place writes and Class C disposal).
  auto unopposed = [&](const sim::SampleSpec& spec) {
    const auto& exts = spec.profile.target_extensions;
    double lost = 0;
    for (const corpus::ManifestEntry& entry : env.corpus.manifest) {
      if (!exts.empty()) {
        const std::string ext = vfs::path_extension(entry.path);
        if (std::find(exts.begin(), exts.end(), ext) == exts.end()) continue;
      }
      const bool survives_read_only =
          entry.read_only && spec.behavior != sim::BehaviorClass::B;
      if (!survives_read_only) lost += 1.0;
    }
    return lost;
  };

  for (double coverage : {0.50, 0.90, 0.99}) {
    baselines::SignatureAv av;
    av.learn_from(specs, coverage, /*seed=*/7);
    std::size_t blocked = 0;
    double total_lost = 0.0;
    for (const sim::SampleSpec& spec : specs) {
      if (av.blocks(spec)) {
        ++blocked;  // pre-execution kill: zero files lost
        continue;
      }
      total_lost += unopposed(spec);  // nothing watches the data
    }
    av_table.add_row({harness::fmt_percent(coverage, 0), std::to_string(blocked),
                      std::to_string(specs.size() - blocked),
                      harness::fmt_double(total_lost / static_cast<double>(specs.size()), 1)});
  }
  std::printf("%s\n", av_table.to_string().c_str());

  // The §V-E morph experiment: 100% coverage, then a 1-character repack.
  baselines::SignatureAv perfect;
  perfect.learn_from(specs, 1.0, 7);
  std::size_t caught_original = 0, caught_morphed = 0;
  for (const sim::SampleSpec& spec : specs) {
    caught_original += perfect.blocks(baselines::sample_fingerprint(spec)) ? 1 : 0;
    caught_morphed += perfect.blocks(baselines::morphed_fingerprint(spec)) ? 1 : 0;
  }
  std::printf("perfect database: %zu/%zu originals blocked; after a one-character\n"
              "morph of each binary: %zu/%zu blocked   [paper §V-E: trivial morphs\n"
              "shed detections]\n\n",
              caught_original, specs.size(), caught_morphed, specs.size());

  // --- 2. Tripwire-style integrity monitor -------------------------------
  std::printf("== Tripwire-style integrity monitor ==\n\n");
  // Hash the pristine corpus once; every monitor instance shares it.
  const auto shared_baseline = baselines::IntegrityMonitor::compute_baseline(
      env.base_fs, env.corpus.root);
  // Malware side: alert-on-first-modification stops samples instantly...
  std::vector<double> tripwire_losses;
  for (std::size_t i = 0; i < std::min<std::size_t>(specs.size(), 40); ++i) {
    vfs::FileSystem fs = env.base_fs.clone();
    baselines::IntegrityMonitor::Options options;
    options.suspend_on_alert = true;
    baselines::IntegrityMonitor monitor(options);
    monitor.set_baseline(shared_baseline);
    fs.attach_filter(&monitor);
    const vfs::ProcessId pid = fs.register_process(specs[i].family);
    sim::RansomwareSample sample(specs[i].profile, specs[i].seed);
    (void)sample.run(fs, pid, env.corpus.root);
    tripwire_losses.push_back(static_cast<double>(corpus::count_files_lost(fs, env.corpus)));
    fs.detach_filter(&monitor);
  }
  std::printf("suspend-on-first-alert vs malware: median files lost %s (CryptoDrop-\n"
              "class protection — change detection is easy)\n",
              harness::fmt_double(median(tripwire_losses), 1).c_str());

  // ...but the benign suite shows why nobody runs it that way:
  std::size_t benign_alerts = 0;
  std::size_t benign_apps_flagged = 0;
  for (const sim::BenignWorkload& workload : sim::all_benign_workloads()) {
    vfs::FileSystem fs = env.base_fs.clone();
    baselines::IntegrityMonitor monitor({});
    monitor.set_baseline(shared_baseline);
    fs.attach_filter(&monitor);
    const vfs::ProcessId pid = fs.register_process(workload.name);
    sim::WorkloadContext ctx{fs, pid, env.corpus.root, Rng(3)};
    workload.run(ctx);
    benign_alerts += monitor.alert_count();
    if (monitor.alert_count() > 0) ++benign_apps_flagged;
    fs.detach_filter(&monitor);
  }
  std::printf("benign suite: %zu alerts across %zu of 30 applications\n"
              "   [CryptoDrop on the same suite: 1 detection (7-zip)]\n\n",
              benign_alerts, benign_apps_flagged);

  // --- 3. CryptoDrop on the identical campaign ---------------------------
  std::printf("== CryptoDrop on the same campaign ==\n\n");
  const auto results = harness::run_campaign(env, specs, core::ScoringConfig{});
  std::size_t detected = 0;
  std::vector<double> losses;
  for (const auto& r : results) {
    detected += r.detected ? 1 : 0;
    losses.push_back(static_cast<double>(r.files_lost));
  }
  std::printf("detection: %zu/%zu (%s), median files lost %s, benign FPs: 1\n",
              detected, results.size(),
              harness::fmt_percent(static_cast<double>(detected) /
                                   static_cast<double>(results.size()))
                  .c_str(),
              harness::fmt_double(median(losses), 1).c_str());
  std::printf("\nsummary: signature AV = perfect hindsight, total loss on anything\n"
              "new; Tripwire = perfect change detection, unusable alert volume;\n"
              "CryptoDrop = behavioral data monitoring with both numbers small.\n");
  return 0;
}
