
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/builder.cpp" "src/corpus/CMakeFiles/cryptodrop_corpus.dir/builder.cpp.o" "gcc" "src/corpus/CMakeFiles/cryptodrop_corpus.dir/builder.cpp.o.d"
  "/root/repo/src/corpus/generators.cpp" "src/corpus/CMakeFiles/cryptodrop_corpus.dir/generators.cpp.o" "gcc" "src/corpus/CMakeFiles/cryptodrop_corpus.dir/generators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cryptodrop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cryptodrop_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/cryptodrop_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
