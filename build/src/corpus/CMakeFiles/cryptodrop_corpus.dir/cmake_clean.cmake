file(REMOVE_RECURSE
  "CMakeFiles/cryptodrop_corpus.dir/builder.cpp.o"
  "CMakeFiles/cryptodrop_corpus.dir/builder.cpp.o.d"
  "CMakeFiles/cryptodrop_corpus.dir/generators.cpp.o"
  "CMakeFiles/cryptodrop_corpus.dir/generators.cpp.o.d"
  "libcryptodrop_corpus.a"
  "libcryptodrop_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptodrop_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
