file(REMOVE_RECURSE
  "libcryptodrop_corpus.a"
)
