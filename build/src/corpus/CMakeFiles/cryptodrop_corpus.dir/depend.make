# Empty dependencies file for cryptodrop_corpus.
# This may be replaced when dependencies are built.
