file(REMOVE_RECURSE
  "libcryptodrop_harness.a"
)
