# Empty compiler generated dependencies file for cryptodrop_harness.
# This may be replaced when dependencies are built.
