file(REMOVE_RECURSE
  "CMakeFiles/cryptodrop_harness.dir/experiment.cpp.o"
  "CMakeFiles/cryptodrop_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/cryptodrop_harness.dir/report.cpp.o"
  "CMakeFiles/cryptodrop_harness.dir/report.cpp.o.d"
  "CMakeFiles/cryptodrop_harness.dir/table.cpp.o"
  "CMakeFiles/cryptodrop_harness.dir/table.cpp.o.d"
  "libcryptodrop_harness.a"
  "libcryptodrop_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptodrop_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
