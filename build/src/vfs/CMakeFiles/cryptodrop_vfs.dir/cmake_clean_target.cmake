file(REMOVE_RECURSE
  "libcryptodrop_vfs.a"
)
