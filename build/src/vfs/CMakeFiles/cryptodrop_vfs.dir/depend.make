# Empty dependencies file for cryptodrop_vfs.
# This may be replaced when dependencies are built.
