file(REMOVE_RECURSE
  "CMakeFiles/cryptodrop_vfs.dir/filesystem.cpp.o"
  "CMakeFiles/cryptodrop_vfs.dir/filesystem.cpp.o.d"
  "CMakeFiles/cryptodrop_vfs.dir/path.cpp.o"
  "CMakeFiles/cryptodrop_vfs.dir/path.cpp.o.d"
  "CMakeFiles/cryptodrop_vfs.dir/recording_filter.cpp.o"
  "CMakeFiles/cryptodrop_vfs.dir/recording_filter.cpp.o.d"
  "CMakeFiles/cryptodrop_vfs.dir/trace.cpp.o"
  "CMakeFiles/cryptodrop_vfs.dir/trace.cpp.o.d"
  "libcryptodrop_vfs.a"
  "libcryptodrop_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptodrop_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
