
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/integrity_monitor.cpp" "src/baselines/CMakeFiles/cryptodrop_baselines.dir/integrity_monitor.cpp.o" "gcc" "src/baselines/CMakeFiles/cryptodrop_baselines.dir/integrity_monitor.cpp.o.d"
  "/root/repo/src/baselines/signature_av.cpp" "src/baselines/CMakeFiles/cryptodrop_baselines.dir/signature_av.cpp.o" "gcc" "src/baselines/CMakeFiles/cryptodrop_baselines.dir/signature_av.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cryptodrop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cryptodrop_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cryptodrop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/cryptodrop_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/cryptodrop_corpus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
