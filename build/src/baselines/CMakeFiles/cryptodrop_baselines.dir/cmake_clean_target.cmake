file(REMOVE_RECURSE
  "libcryptodrop_baselines.a"
)
