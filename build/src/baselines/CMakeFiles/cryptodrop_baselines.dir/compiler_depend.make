# Empty compiler generated dependencies file for cryptodrop_baselines.
# This may be replaced when dependencies are built.
