file(REMOVE_RECURSE
  "CMakeFiles/cryptodrop_baselines.dir/integrity_monitor.cpp.o"
  "CMakeFiles/cryptodrop_baselines.dir/integrity_monitor.cpp.o.d"
  "CMakeFiles/cryptodrop_baselines.dir/signature_av.cpp.o"
  "CMakeFiles/cryptodrop_baselines.dir/signature_av.cpp.o.d"
  "libcryptodrop_baselines.a"
  "libcryptodrop_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptodrop_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
