# Empty compiler generated dependencies file for cryptodrop_sim.
# This may be replaced when dependencies are built.
