file(REMOVE_RECURSE
  "CMakeFiles/cryptodrop_sim.dir/benign/benign.cpp.o"
  "CMakeFiles/cryptodrop_sim.dir/benign/benign.cpp.o.d"
  "CMakeFiles/cryptodrop_sim.dir/ransomware/families.cpp.o"
  "CMakeFiles/cryptodrop_sim.dir/ransomware/families.cpp.o.d"
  "CMakeFiles/cryptodrop_sim.dir/ransomware/ransomware.cpp.o"
  "CMakeFiles/cryptodrop_sim.dir/ransomware/ransomware.cpp.o.d"
  "libcryptodrop_sim.a"
  "libcryptodrop_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptodrop_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
