file(REMOVE_RECURSE
  "libcryptodrop_sim.a"
)
