
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/benign/benign.cpp" "src/sim/CMakeFiles/cryptodrop_sim.dir/benign/benign.cpp.o" "gcc" "src/sim/CMakeFiles/cryptodrop_sim.dir/benign/benign.cpp.o.d"
  "/root/repo/src/sim/ransomware/families.cpp" "src/sim/CMakeFiles/cryptodrop_sim.dir/ransomware/families.cpp.o" "gcc" "src/sim/CMakeFiles/cryptodrop_sim.dir/ransomware/families.cpp.o.d"
  "/root/repo/src/sim/ransomware/ransomware.cpp" "src/sim/CMakeFiles/cryptodrop_sim.dir/ransomware/ransomware.cpp.o" "gcc" "src/sim/CMakeFiles/cryptodrop_sim.dir/ransomware/ransomware.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cryptodrop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cryptodrop_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/cryptodrop_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/cryptodrop_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
