# Empty compiler generated dependencies file for cryptodrop_core.
# This may be replaced when dependencies are built.
