
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/cryptodrop_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/cryptodrop_core.dir/engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cryptodrop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/entropy/CMakeFiles/cryptodrop_entropy.dir/DependInfo.cmake"
  "/root/repo/build/src/magic/CMakeFiles/cryptodrop_magic.dir/DependInfo.cmake"
  "/root/repo/build/src/simhash/CMakeFiles/cryptodrop_simhash.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/cryptodrop_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
