file(REMOVE_RECURSE
  "libcryptodrop_core.a"
)
