file(REMOVE_RECURSE
  "CMakeFiles/cryptodrop_core.dir/engine.cpp.o"
  "CMakeFiles/cryptodrop_core.dir/engine.cpp.o.d"
  "libcryptodrop_core.a"
  "libcryptodrop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptodrop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
