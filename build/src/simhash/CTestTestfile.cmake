# CMake generated Testfile for 
# Source directory: /root/repo/src/simhash
# Build directory: /root/repo/build/src/simhash
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
