file(REMOVE_RECURSE
  "CMakeFiles/cryptodrop_simhash.dir/similarity.cpp.o"
  "CMakeFiles/cryptodrop_simhash.dir/similarity.cpp.o.d"
  "libcryptodrop_simhash.a"
  "libcryptodrop_simhash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptodrop_simhash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
