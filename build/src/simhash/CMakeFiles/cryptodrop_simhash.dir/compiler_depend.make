# Empty compiler generated dependencies file for cryptodrop_simhash.
# This may be replaced when dependencies are built.
