file(REMOVE_RECURSE
  "libcryptodrop_simhash.a"
)
