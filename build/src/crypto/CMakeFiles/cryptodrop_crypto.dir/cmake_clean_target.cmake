file(REMOVE_RECURSE
  "libcryptodrop_crypto.a"
)
