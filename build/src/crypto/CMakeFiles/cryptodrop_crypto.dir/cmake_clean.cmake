file(REMOVE_RECURSE
  "CMakeFiles/cryptodrop_crypto.dir/aes.cpp.o"
  "CMakeFiles/cryptodrop_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/cryptodrop_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/cryptodrop_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/cryptodrop_crypto.dir/sha256.cpp.o"
  "CMakeFiles/cryptodrop_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/cryptodrop_crypto.dir/xor_cipher.cpp.o"
  "CMakeFiles/cryptodrop_crypto.dir/xor_cipher.cpp.o.d"
  "libcryptodrop_crypto.a"
  "libcryptodrop_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptodrop_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
