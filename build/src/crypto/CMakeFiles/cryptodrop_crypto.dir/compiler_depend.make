# Empty compiler generated dependencies file for cryptodrop_crypto.
# This may be replaced when dependencies are built.
