file(REMOVE_RECURSE
  "CMakeFiles/cryptodrop_entropy.dir/entropy.cpp.o"
  "CMakeFiles/cryptodrop_entropy.dir/entropy.cpp.o.d"
  "libcryptodrop_entropy.a"
  "libcryptodrop_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptodrop_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
