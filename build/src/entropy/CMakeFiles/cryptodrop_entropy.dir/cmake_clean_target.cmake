file(REMOVE_RECURSE
  "libcryptodrop_entropy.a"
)
