# Empty compiler generated dependencies file for cryptodrop_entropy.
# This may be replaced when dependencies are built.
