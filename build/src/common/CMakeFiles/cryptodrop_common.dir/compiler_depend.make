# Empty compiler generated dependencies file for cryptodrop_common.
# This may be replaced when dependencies are built.
