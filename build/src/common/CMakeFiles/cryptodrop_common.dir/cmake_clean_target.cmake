file(REMOVE_RECURSE
  "libcryptodrop_common.a"
)
