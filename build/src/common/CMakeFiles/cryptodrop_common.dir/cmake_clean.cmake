file(REMOVE_RECURSE
  "CMakeFiles/cryptodrop_common.dir/hex.cpp.o"
  "CMakeFiles/cryptodrop_common.dir/hex.cpp.o.d"
  "CMakeFiles/cryptodrop_common.dir/rng.cpp.o"
  "CMakeFiles/cryptodrop_common.dir/rng.cpp.o.d"
  "CMakeFiles/cryptodrop_common.dir/stats.cpp.o"
  "CMakeFiles/cryptodrop_common.dir/stats.cpp.o.d"
  "CMakeFiles/cryptodrop_common.dir/text.cpp.o"
  "CMakeFiles/cryptodrop_common.dir/text.cpp.o.d"
  "libcryptodrop_common.a"
  "libcryptodrop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptodrop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
