# Empty dependencies file for cryptodrop_magic.
# This may be replaced when dependencies are built.
