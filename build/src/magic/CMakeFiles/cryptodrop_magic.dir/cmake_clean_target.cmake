file(REMOVE_RECURSE
  "libcryptodrop_magic.a"
)
