file(REMOVE_RECURSE
  "CMakeFiles/cryptodrop_magic.dir/magic.cpp.o"
  "CMakeFiles/cryptodrop_magic.dir/magic.cpp.o.d"
  "libcryptodrop_magic.a"
  "libcryptodrop_magic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptodrop_magic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
