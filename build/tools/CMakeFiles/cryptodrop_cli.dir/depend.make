# Empty dependencies file for cryptodrop_cli.
# This may be replaced when dependencies are built.
