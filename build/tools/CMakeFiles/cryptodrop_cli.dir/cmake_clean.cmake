file(REMOVE_RECURSE
  "CMakeFiles/cryptodrop_cli.dir/cryptodrop_cli.cpp.o"
  "CMakeFiles/cryptodrop_cli.dir/cryptodrop_cli.cpp.o.d"
  "cryptodrop"
  "cryptodrop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cryptodrop_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
