# Empty compiler generated dependencies file for benign_apps.
# This may be replaced when dependencies are built.
