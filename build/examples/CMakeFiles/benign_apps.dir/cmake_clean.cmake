file(REMOVE_RECURSE
  "CMakeFiles/benign_apps.dir/benign_apps.cpp.o"
  "CMakeFiles/benign_apps.dir/benign_apps.cpp.o.d"
  "benign_apps"
  "benign_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benign_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
