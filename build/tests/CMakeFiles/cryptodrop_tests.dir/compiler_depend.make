# Empty compiler generated dependencies file for cryptodrop_tests.
# This may be replaced when dependencies are built.
