
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/benign_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/benign_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/benign_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/config_sweep_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/config_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/config_sweep_test.cpp.o.d"
  "/root/repo/tests/corpus_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/corpus_test.cpp.o.d"
  "/root/repo/tests/crypto_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/crypto_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/crypto_test.cpp.o.d"
  "/root/repo/tests/engine_detection_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/engine_detection_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/engine_detection_test.cpp.o.d"
  "/root/repo/tests/engine_edge_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/engine_edge_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/engine_edge_test.cpp.o.d"
  "/root/repo/tests/engine_indicator_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/engine_indicator_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/engine_indicator_test.cpp.o.d"
  "/root/repo/tests/engine_state_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/engine_state_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/engine_state_test.cpp.o.d"
  "/root/repo/tests/entropy_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/entropy_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/entropy_test.cpp.o.d"
  "/root/repo/tests/evasion_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/evasion_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/evasion_test.cpp.o.d"
  "/root/repo/tests/generator_sweep_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/generator_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/generator_sweep_test.cpp.o.d"
  "/root/repo/tests/harness_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/harness_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/harness_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/magic_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/magic_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/magic_test.cpp.o.d"
  "/root/repo/tests/path_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/path_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/path_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/ransomware_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/ransomware_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/ransomware_test.cpp.o.d"
  "/root/repo/tests/rate_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/rate_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/rate_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/simhash_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/simhash_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/simhash_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/vfs_filter_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/vfs_filter_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/vfs_filter_test.cpp.o.d"
  "/root/repo/tests/vfs_test.cpp" "tests/CMakeFiles/cryptodrop_tests.dir/vfs_test.cpp.o" "gcc" "tests/CMakeFiles/cryptodrop_tests.dir/vfs_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/cryptodrop_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/cryptodrop_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cryptodrop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cryptodrop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/cryptodrop_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/cryptodrop_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/simhash/CMakeFiles/cryptodrop_simhash.dir/DependInfo.cmake"
  "/root/repo/build/src/magic/CMakeFiles/cryptodrop_magic.dir/DependInfo.cmake"
  "/root/repo/build/src/entropy/CMakeFiles/cryptodrop_entropy.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cryptodrop_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cryptodrop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
