
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1.cpp" "bench/CMakeFiles/bench_table1.dir/bench_table1.cpp.o" "gcc" "bench/CMakeFiles/bench_table1.dir/bench_table1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/cryptodrop_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/cryptodrop_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cryptodrop_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cryptodrop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/cryptodrop_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/cryptodrop_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/magic/CMakeFiles/cryptodrop_magic.dir/DependInfo.cmake"
  "/root/repo/build/src/entropy/CMakeFiles/cryptodrop_entropy.dir/DependInfo.cmake"
  "/root/repo/build/src/simhash/CMakeFiles/cryptodrop_simhash.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cryptodrop_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cryptodrop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
