file(REMOVE_RECURSE
  "CMakeFiles/bench_evasion.dir/bench_evasion.cpp.o"
  "CMakeFiles/bench_evasion.dir/bench_evasion.cpp.o.d"
  "bench_evasion"
  "bench_evasion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
