file(REMOVE_RECURSE
  "CMakeFiles/bench_smallfiles.dir/bench_smallfiles.cpp.o"
  "CMakeFiles/bench_smallfiles.dir/bench_smallfiles.cpp.o.d"
  "bench_smallfiles"
  "bench_smallfiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smallfiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
