# Empty dependencies file for bench_timewindow.
# This may be replaced when dependencies are built.
