file(REMOVE_RECURSE
  "CMakeFiles/bench_timewindow.dir/bench_timewindow.cpp.o"
  "CMakeFiles/bench_timewindow.dir/bench_timewindow.cpp.o.d"
  "bench_timewindow"
  "bench_timewindow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timewindow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
