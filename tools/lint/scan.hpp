// Shared source/markdown scanning helpers for the project's two
// static gates: tools/docs_check (doc/schema parity) and
// tools/lint/cryptodrop_lint (invariant lint). One parser, two gates —
// a scanning fix lands in both at once (DESIGN.md §13).
//
// Everything here is dependency-free (std only) and operates on
// in-memory line vectors, so tests can feed fixture snippets without
// touching the filesystem.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cryptodrop::lint {

/// True when `s` begins with `prefix`.
bool starts_with(const std::string& s, const char* prefix);

/// `s` with leading/trailing whitespace removed.
std::string trim(const std::string& s);

/// All lines of `path`; exits the process (status 2) when unreadable —
/// gate binaries treat a missing input as a configuration error.
std::vector<std::string> read_lines_or_exit(const std::string& path);

/// Splits an in-memory buffer into lines (no trailing-newline quirk).
std::vector<std::string> split_lines(const std::string& text);

/// Line-by-line comment stripper that carries block-comment state
/// across lines (one instance per file scan). Two output flavors:
/// with string-literal contents blanked (token rules) or kept
/// (name-literal rules).
class CommentStripper {
 public:
  /// `line` with // and /* */ comments removed. When `keep_strings`
  /// is false, string-literal contents are dropped and each literal
  /// collapses to a bare `"` placeholder; when true, literals are
  /// preserved verbatim (including quotes).
  std::string strip(const std::string& line, bool keep_strings);

  /// True while inside an unterminated /* block.
  [[nodiscard]] bool in_block_comment() const { return in_block_comment_; }

 private:
  bool in_block_comment_ = false;
};

/// First-`backticked` tokens of markdown table rows between a
/// begin/end marker pair (the shape of every schema table in
/// docs/OBSERVABILITY.md). Tokens containing spaces are skipped.
std::set<std::string> schema_table_tokens(const std::vector<std::string>& lines,
                                          const char* begin_marker,
                                          const char* end_marker);

/// Replaces a known label suffix with its placeholder, e.g.
/// "indicator_events_total.entropy_delta" ->
/// "indicator_events_total.<indicator>" given {"<indicator>" ->
/// {..., "entropy_delta", ...}}. Names without a matching suffix are
/// returned unchanged.
std::string collapse_family(
    const std::string& name,
    const std::map<std::string, std::vector<std::string>>& placeholder_labels);

/// Extracts `inline constexpr std::string_view kName = "value";`
/// constants from a header (obs/span.hpp's span_name table). Returns
/// constant-name -> value.
std::map<std::string, std::string> extract_string_constants(
    const std::vector<std::string>& lines);

/// Public-header doc-comment scanner (docs_check invariant 3): every
/// public declaration must carry a comment on the preceding line. The
/// scan is a deliberately simple heuristic — it tracks brace depth,
/// public/private sections and statement starts — so keep header
/// formatting conventional.
struct HeaderScanner {
  /// One lexical scope opened by '{': a namespace, a class/struct body
  /// (with its current access level), or anything else (function
  /// bodies, enums, initializers) whose contents are never doc
  /// candidates.
  struct Scope {
    enum Kind { ns, record, other } kind = other;
    bool is_public = true;  ///< Current access level (records only).
  };

  std::vector<Scope> scopes;
  CommentStripper stripper;
  bool prev_line_was_comment = false;
  bool statement_open = false;  ///< Mid-statement (previous code line did not end one).
  std::string statement_text;   ///< Code accumulated since the statement start.
  int failures = 0;

  /// True when a declaration here is part of the public API surface.
  [[nodiscard]] bool in_public_scope() const;

  /// Classifies the scope a '{' opens from the statement that led to it.
  [[nodiscard]] static Scope classify(const std::string& statement);

  /// A statement-start line that opens a public declaration needing a
  /// doc comment: a function (contains '(') or a record definition.
  [[nodiscard]] static bool needs_doc(const std::string& code);

  /// Scans one header's lines, reporting failures to stderr under
  /// `display_name` and counting them in `failures`.
  void scan(const std::string& display_name,
            const std::vector<std::string>& lines);
};

}  // namespace cryptodrop::lint
