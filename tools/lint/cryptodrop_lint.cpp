// cryptodrop_lint — project-invariant static analysis (DESIGN.md §13,
// §17).
//
// Walks src/, tools/, bench/ (line rules) plus tests/ (include graph)
// and enforces, as a tier-1 ctest gate:
//   * determinism  — no ambient randomness or wall-clock reads (rng,
//     wall-clock rules);
//   * lock discipline — RAII-only acquisition, every raw mutex either
//     a RankedMutex or rank-tagged (naked-lock, lock-rank rules);
//   * name registration — metric/span string literals at call sites
//     must be on the obs schema (metric-name, span-name rules);
//   * architecture — include edges respect the tools/lint/layers.txt
//     DAG and stay acyclic (layer-violation, include-cycle rules);
//   * hot-path purity — `// cryptodrop:hot` functions and their
//     resolvable callees never allocate, throw, block or take raw
//     mutexes (hot-alloc, hot-throw, hot-blocking, hot-unranked-lock,
//     hot-annotation rules);
//   * header hygiene — every header compiles standalone (the binary
//     generates one-include TUs; needs --compiler).
//
// Suppressions live in tools/lint/lint_allow.txt; entries that match
// nothing are themselves an error, so the list only ever shrinks —
// the stale diagnostic names the rule and the nearest current match.
//
// --report-json FILE writes the machine-readable run summary (graph
// shape, per-layer fan-in/out, hot-set size, violation counts) so CI
// can archive it and future PRs can gate on architecture drift.
//
// The name tables come from the linked obs library — the same
// functions docs_check cross-checks against the live engine and
// docs/OBSERVABILITY.md — so a name is legal at a call site if and
// only if it is documented and actually registered.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/graph.hpp"
#include "lint/lint_rules.hpp"
#include "lint/scan.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"

namespace fs = std::filesystem;

namespace {

bool has_ext(const fs::path& p, std::initializer_list<const char*> exts) {
  const std::string e = p.extension().string();
  for (const char* want : exts) {
    if (e == want) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: cryptodrop_lint <repo_root> [--compiler <c++>] "
                 "[--report-json <file>]\n");
    return 2;
  }
  const fs::path root = argv[1];
  std::string compiler;
  std::string report_path;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--compiler") compiler = argv[i + 1];
    if (std::string(argv[i]) == "--report-json") report_path = argv[i + 1];
  }

  int failures = 0;

  // -- Name tables: the obs schema this binary is linked against.
  cryptodrop::lint::NameTables tables;
  for (std::string_view name : cryptodrop::obs::known_metric_names()) {
    tables.metric_families.emplace_back(name);
  }
  for (const char* placeholder :
       {"<indicator>", "<fault>", "<entropy_backend>", "<shed_reason>"}) {
    std::vector<std::string> labels;
    for (std::string_view label :
         cryptodrop::obs::known_placeholder_labels(placeholder)) {
      labels.emplace_back(label);
    }
    tables.placeholder_labels[placeholder] = std::move(labels);
  }
  for (std::string_view name : cryptodrop::obs::known_span_names()) {
    tables.span_names.emplace(name);
  }
  tables.span_constants = cryptodrop::lint::extract_string_constants(
      cryptodrop::lint::read_lines_or_exit((root / "src/obs/span.hpp").string()));
  if (tables.span_constants.empty()) {
    std::fprintf(stderr,
                 "lint: no span_name:: constants found in src/obs/span.hpp — "
                 "extractor broken?\n");
    ++failures;
  }
  for (const auto& [constant, value] : tables.span_constants) {
    if (tables.span_names.count(value) == 0) {
      std::fprintf(stderr,
                   "lint: span_name::%s = \"%s\" is not in "
                   "obs::known_span_names()\n",
                   constant.c_str(), value.c_str());
      ++failures;
    }
  }

  // -- Allowlist.
  std::vector<std::string> allow_errors;
  auto allow = cryptodrop::lint::Allowlist::parse(
      cryptodrop::lint::read_lines_or_exit(
          (root / "tools/lint/lint_allow.txt").string()),
      &allow_errors);
  for (const std::string& err : allow_errors) {
    std::fprintf(stderr, "lint: %s\n", err.c_str());
    ++failures;
  }

  // -- Layer spec (the checked-in architecture DAG).
  std::vector<std::string> layer_errors;
  const auto layers = cryptodrop::lint::LayerSpec::parse(
      cryptodrop::lint::read_lines_or_exit(
          (root / "tools/lint/layers.txt").string()),
      &layer_errors);
  for (const std::string& err : layer_errors) {
    std::fprintf(stderr, "lint: %s\n", err.c_str());
    ++failures;
  }

  // -- Source walk. tests/ joins the include-graph pass only: test
  // code may use ambient randomness and clocks, but its include edges
  // are part of the architecture.
  std::vector<fs::path> sources;     // line-rule scope (src, tools, bench)
  std::map<std::string, std::vector<std::string>> graph_files;
  for (const char* dir : {"src", "tools", "bench", "tests"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() ||
          !has_ext(entry.path(), {".cpp", ".cc", ".hpp", ".h"})) {
        continue;
      }
      const std::string rel =
          fs::relative(entry.path(), root).generic_string();
      graph_files[rel] =
          cryptodrop::lint::read_lines_or_exit(entry.path().string());
      if (std::string(dir) != "tests") sources.push_back(entry.path());
    }
  }
  std::sort(sources.begin(), sources.end());

  // -- Gather every violation first (line rules, include graph, hot
  // paths), then apply the allowlist in one place. rule -> files with
  // findings feeds the stale-entry "nearest match" hint.
  std::vector<cryptodrop::lint::Issue> issues;
  for (const fs::path& path : sources) {
    const std::string rel = fs::relative(path, root).generic_string();
    for (auto& issue :
         cryptodrop::lint::lint_source(rel, graph_files.at(rel), tables)) {
      issues.push_back(std::move(issue));
    }
  }

  const auto graph = cryptodrop::lint::IncludeGraph::build(graph_files);
  for (auto& issue : cryptodrop::lint::check_layering(graph, layers)) {
    issues.push_back(std::move(issue));
  }
  for (auto& issue : cryptodrop::lint::check_cycles(graph)) {
    issues.push_back(std::move(issue));
  }

  std::map<std::string, std::vector<std::string>> hot_files;
  for (const auto& [rel, lines] : graph_files) {
    if (cryptodrop::lint::starts_with(rel, "src/")) hot_files[rel] = lines;
  }
  const auto hot = cryptodrop::lint::check_hot_paths(hot_files);
  for (const auto& issue : hot.issues) issues.push_back(issue);

  std::size_t suppressed = 0;
  std::map<std::string, std::set<std::string>> rule_files;
  std::map<std::string, std::size_t> unsuppressed_by_rule;
  for (const auto& issue : issues) {
    rule_files[issue.rule].insert(issue.file);
    if (allow.allows(issue.rule, issue.file)) {
      ++suppressed;
      continue;
    }
    ++unsuppressed_by_rule[issue.rule];
    std::fprintf(stderr, "lint: %s:%zu: [%s] %s\n", issue.file.c_str(),
                 issue.line, issue.rule.c_str(), issue.message.c_str());
    ++failures;
  }

  for (const auto& [rule, path] : allow.unused_entry_keys()) {
    const auto it = rule_files.find(rule);
    std::string hint = "no current findings for this rule";
    if (it != rule_files.end()) {
      const std::vector<std::string> candidates(it->second.begin(),
                                                it->second.end());
      hint = "nearest current match: " +
             cryptodrop::lint::nearest_path(path, candidates);
    }
    std::fprintf(stderr,
                 "lint: stale lint_allow.txt entry for rule `%s` (matched "
                 "nothing): %s — %s\n",
                 rule.c_str(), path.c_str(), hint.c_str());
    ++failures;
  }

  // -- Machine-readable run summary.
  if (!report_path.empty()) {
    cryptodrop::lint::ReportStats stats;
    stats.files_scanned = graph_files.size();
    stats.graph_nodes = graph.nodes.size();
    stats.graph_edges = graph.edges.size();
    stats.layers = cryptodrop::lint::layer_stats(graph, layers);
    stats.hot_annotated = hot.annotated;
    stats.hot_reachable = hot.reachable;
    stats.violations_by_rule = unsuppressed_by_rule;
    stats.suppressions_used = suppressed;
    std::ofstream out(report_path);
    if (!out) {
      std::fprintf(stderr, "lint: cannot write report to %s\n",
                   report_path.c_str());
      ++failures;
    } else {
      out << cryptodrop::lint::render_report_json(stats);
    }
  }

  // -- Header hygiene: each header must compile as the sole include of
  // a fresh TU. Include roots mirror the CMake include dirs (src/ and
  // tools/).
  std::size_t headers_checked = 0;
  if (!compiler.empty()) {
    const fs::path tu = fs::temp_directory_path() / "cryptodrop_lint_tu.cpp";
    for (const fs::path& path : sources) {
      if (!has_ext(path, {".hpp", ".h"})) continue;
      const std::string rel = fs::relative(path, root).generic_string();
      std::string include = rel;
      for (const char* prefix : {"src/", "tools/", "bench/"}) {
        if (cryptodrop::lint::starts_with(include, prefix)) {
          include = include.substr(std::string(prefix).size());
          break;
        }
      }
      {
        std::ofstream out(tu);
        out << "#include \"" << include << "\"\n";
      }
      const std::string cmd = "\"" + compiler + "\" -std=c++20 -fsyntax-only" +
                              " -I \"" + (root / "src").string() + "\"" +
                              " -I \"" + (root / "tools").string() + "\"" +
                              " -I \"" + (root / "bench").string() + "\" \"" +
                              tu.string() + "\"";
      if (std::system(cmd.c_str()) != 0) {
        std::fprintf(stderr,
                     "lint: %s: [header-hygiene] does not compile standalone "
                     "(missing includes?)\n",
                     rel.c_str());
        ++failures;
      }
      ++headers_checked;
    }
    std::error_code ec;
    fs::remove(tu, ec);
  }

  if (failures != 0) {
    std::fprintf(stderr, "cryptodrop_lint: %d failure(s)\n", failures);
    return 1;
  }
  std::printf(
      "cryptodrop_lint: %zu files clean (%zu include edges, %zu hot "
      "functions reachable from %zu annotated, %zu suppression(s) used, "
      "%zu headers standalone)\n",
      graph_files.size(), graph.edges.size(), hot.reachable, hot.annotated,
      suppressed, headers_checked);
  return 0;
}
