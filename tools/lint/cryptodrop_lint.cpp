// cryptodrop_lint — project-invariant static analysis (DESIGN.md §13).
//
// Walks src/, tools/ and bench/ and enforces, as a tier-1 ctest gate:
//   * determinism  — no ambient randomness or wall-clock reads (rng,
//     wall-clock rules);
//   * lock discipline — RAII-only acquisition, every raw mutex either
//     a RankedMutex or rank-tagged (naked-lock, lock-rank rules);
//   * name registration — metric/span string literals at call sites
//     must be on the obs schema (metric-name, span-name rules);
//   * header hygiene — every header compiles standalone (the binary
//     generates one-include TUs; needs --compiler).
//
// Suppressions live in tools/lint/lint_allow.txt; entries that match
// nothing are themselves an error, so the list only ever shrinks.
//
// The name tables come from the linked obs library — the same
// functions docs_check cross-checks against the live engine and
// docs/OBSERVABILITY.md — so a name is legal at a call site if and
// only if it is documented and actually registered.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint_rules.hpp"
#include "lint/scan.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"

namespace fs = std::filesystem;

namespace {

bool has_ext(const fs::path& p, std::initializer_list<const char*> exts) {
  const std::string e = p.extension().string();
  for (const char* want : exts) {
    if (e == want) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: cryptodrop_lint <repo_root> [--compiler <c++>]\n");
    return 2;
  }
  const fs::path root = argv[1];
  std::string compiler;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--compiler") compiler = argv[i + 1];
  }

  int failures = 0;

  // -- Name tables: the obs schema this binary is linked against.
  cryptodrop::lint::NameTables tables;
  for (std::string_view name : cryptodrop::obs::known_metric_names()) {
    tables.metric_families.emplace_back(name);
  }
  for (const char* placeholder :
       {"<indicator>", "<fault>", "<entropy_backend>", "<shed_reason>"}) {
    std::vector<std::string> labels;
    for (std::string_view label :
         cryptodrop::obs::known_placeholder_labels(placeholder)) {
      labels.emplace_back(label);
    }
    tables.placeholder_labels[placeholder] = std::move(labels);
  }
  for (std::string_view name : cryptodrop::obs::known_span_names()) {
    tables.span_names.emplace(name);
  }
  tables.span_constants = cryptodrop::lint::extract_string_constants(
      cryptodrop::lint::read_lines_or_exit((root / "src/obs/span.hpp").string()));
  if (tables.span_constants.empty()) {
    std::fprintf(stderr,
                 "lint: no span_name:: constants found in src/obs/span.hpp — "
                 "extractor broken?\n");
    ++failures;
  }
  for (const auto& [constant, value] : tables.span_constants) {
    if (tables.span_names.count(value) == 0) {
      std::fprintf(stderr,
                   "lint: span_name::%s = \"%s\" is not in "
                   "obs::known_span_names()\n",
                   constant.c_str(), value.c_str());
      ++failures;
    }
  }

  // -- Allowlist.
  std::vector<std::string> allow_errors;
  auto allow = cryptodrop::lint::Allowlist::parse(
      cryptodrop::lint::read_lines_or_exit(
          (root / "tools/lint/lint_allow.txt").string()),
      &allow_errors);
  for (const std::string& err : allow_errors) {
    std::fprintf(stderr, "lint: %s\n", err.c_str());
    ++failures;
  }

  // -- Source walk.
  std::vector<fs::path> sources;
  for (const char* dir : {"src", "tools", "bench"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() &&
          has_ext(entry.path(), {".cpp", ".cc", ".hpp", ".h"})) {
        sources.push_back(entry.path());
      }
    }
  }
  std::sort(sources.begin(), sources.end());

  std::size_t suppressed = 0;
  for (const fs::path& path : sources) {
    const std::string rel = fs::relative(path, root).generic_string();
    const auto lines = cryptodrop::lint::read_lines_or_exit(path.string());
    for (const auto& issue :
         cryptodrop::lint::lint_source(rel, lines, tables)) {
      if (allow.allows(issue.rule, issue.file)) {
        ++suppressed;
        continue;
      }
      std::fprintf(stderr, "lint: %s:%zu: [%s] %s\n", issue.file.c_str(),
                   issue.line, issue.rule.c_str(), issue.message.c_str());
      ++failures;
    }
  }

  for (const std::string& stale : allow.unused_entries()) {
    std::fprintf(stderr,
                 "lint: stale lint_allow.txt entry (matched nothing): %s\n",
                 stale.c_str());
    ++failures;
  }

  // -- Header hygiene: each header must compile as the sole include of
  // a fresh TU. Include roots mirror the CMake include dirs (src/ and
  // tools/).
  std::size_t headers_checked = 0;
  if (!compiler.empty()) {
    const fs::path tu = fs::temp_directory_path() / "cryptodrop_lint_tu.cpp";
    for (const fs::path& path : sources) {
      if (!has_ext(path, {".hpp", ".h"})) continue;
      const std::string rel = fs::relative(path, root).generic_string();
      std::string include = rel;
      for (const char* prefix : {"src/", "tools/", "bench/"}) {
        if (cryptodrop::lint::starts_with(include, prefix)) {
          include = include.substr(std::string(prefix).size());
          break;
        }
      }
      {
        std::ofstream out(tu);
        out << "#include \"" << include << "\"\n";
      }
      const std::string cmd = "\"" + compiler + "\" -std=c++20 -fsyntax-only" +
                              " -I \"" + (root / "src").string() + "\"" +
                              " -I \"" + (root / "tools").string() + "\"" +
                              " -I \"" + (root / "bench").string() + "\" \"" +
                              tu.string() + "\"";
      if (std::system(cmd.c_str()) != 0) {
        std::fprintf(stderr,
                     "lint: %s: [header-hygiene] does not compile standalone "
                     "(missing includes?)\n",
                     rel.c_str());
        ++failures;
      }
      ++headers_checked;
    }
    std::error_code ec;
    fs::remove(tu, ec);
  }

  if (failures != 0) {
    std::fprintf(stderr, "cryptodrop_lint: %d failure(s)\n", failures);
    return 1;
  }
  std::printf(
      "cryptodrop_lint: %zu files clean (%zu suppression(s) used, "
      "%zu headers standalone)\n",
      sources.size(), suppressed, headers_checked);
  return 0;
}
