// cryptodrop_lint rule engine (DESIGN.md §13).
//
// Each rule enforces a project invariant that otherwise lives only in
// convention. Rules operate on in-memory source lines so tests can
// assert each rule fires (and each allowlist entry suppresses) on
// fixture snippets. Rule ids — used in diagnostics and as the first
// token of tools/lint/lint_allow.txt entries:
//
//   rng          banned randomness primitives (std::rand, srand,
//                random_device, mt19937, default_random_engine); all
//                randomness flows through common/rng.
//   wall-clock   banned clock reads (system_clock/steady_clock::now,
//                high_resolution_clock, clock_gettime, gettimeofday,
//                std::time) outside the sanctioned timer helpers.
//   naked-lock   .lock()/.unlock()/.try_lock() called on something
//                that is not an RAII guard object — mutexes are
//                acquired through std::lock_guard / std::unique_lock
//                over a RankedMutex, never by hand.
//   lock-rank    raw std::mutex / std::shared_mutex declaration
//                without a `// lock-rank:` tag — long-lived locks use
//                common::RankedMutex<Rank> (rank carried by the type).
//   metric-name  string literal passed to MetricsRegistry::counter/
//                gauge/histogram that is not a family listed in
//                obs::known_metric_names().
//   span-name    ScopedSpan name (literal or span_name:: constant)
//                not present in obs::known_span_names().
//
// Whole-repo rule families (DESIGN.md §17) — these see more than one
// file at a time:
//
//   layer-violation, include-cycle
//                the include-graph pass (lint/graph.hpp): edges must
//                respect the tools/lint/layers.txt DAG and be acyclic.
//   hot-alloc, hot-throw, hot-blocking, hot-unranked-lock
//                the hot-path purity pass (check_hot_paths): functions
//                annotated `// cryptodrop:hot`, and everything they
//                transitively call that resolves by name inside the
//                scanned set, must not allocate (new/make_unique/
//                container growth), throw, issue blocking syscalls
//                (read/write/open/poll/sleep family as free calls), or
//                name a raw std::mutex / std::shared_mutex.
//   hot-annotation
//                a `// cryptodrop:hot` marker that is not attached to
//                a recognizable function definition — dead annotations
//                are an error, not a silent no-op.
//
// The header-hygiene rule (each public header compiles standalone) is
// driven by the lint binary itself — it needs a compiler — and is not
// part of this line-oriented engine.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace cryptodrop::lint {

/// One rule violation at a source location.
struct Issue {
  std::string file;
  std::size_t line = 0;  ///< 1-based.
  std::string rule;      ///< Rule id (see file comment).
  std::string message;
};

/// The name schemas the metric-name/span-name rules check against.
struct NameTables {
  /// Metric families, placeholders included (obs::known_metric_names).
  std::vector<std::string> metric_families;
  /// Placeholder -> label expansions (obs::known_placeholder_labels).
  std::map<std::string, std::vector<std::string>> placeholder_labels;
  /// Legal span names (obs::known_span_names).
  std::set<std::string> span_names;
  /// span_name:: constant -> value (extract_string_constants over
  /// obs/span.hpp).
  std::map<std::string, std::string> span_constants;

  /// Every concrete metric name the families permit: literal families
  /// verbatim plus placeholder families expanded over their labels
  /// (the family-with-placeholder spelling stays legal too — tooling
  /// refers to families by that name).
  [[nodiscard]] std::set<std::string> expanded_metric_names() const;
};

/// The checked-in suppression list (tools/lint/lint_allow.txt): one
/// `rule path reason...` entry per line, `#` comments and blank lines
/// skipped. Entries are matched per (rule, file) — a path ending in
/// `/` matches every file under that directory — and tracked so the
/// binary can fail on stale entries.
class Allowlist {
 public:
  /// Parses allowlist lines; malformed lines are appended to `errors`.
  static Allowlist parse(const std::vector<std::string>& lines,
                         std::vector<std::string>* errors);

  /// True when (rule, file) is suppressed; marks the entry used.
  bool allows(const std::string& rule, const std::string& file);

  /// Entries never consulted by a run over the whole tree — stale
  /// suppressions that must be pruned (satellite of the lint design:
  /// the allowlist only ever shrinks). Formatted as "rule path".
  [[nodiscard]] std::vector<std::string> unused_entries() const;

  /// The unused entries as (rule, path) pairs, for callers that want
  /// to enrich the stale diagnostic (e.g. with the nearest current
  /// match for the rule).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>>
  unused_entry_keys() const;

 private:
  std::map<std::pair<std::string, std::string>, bool> entries_;
};

/// The candidate closest to `path` by edit distance (ties broken
/// lexicographically), or "" when `candidates` is empty. Used to point
/// a stale allowlist entry at the file its author probably meant.
std::string nearest_path(const std::string& path,
                         const std::vector<std::string>& candidates);

/// Aggregate result of the hot-path purity pass.
struct HotPathReport {
  std::vector<Issue> issues;  ///< hot-* violations, sorted by file/line.
  std::size_t annotated = 0;  ///< Functions carrying `// cryptodrop:hot`.
  std::size_t reachable = 0;  ///< Transitive closure size (roots included).
};

/// Runs the hot-path purity pass over {repo-relative path -> raw
/// lines}. Function definitions are extracted heuristically from
/// comment-stripped text; callees are resolved by unqualified name
/// against every definition in the scanned set (names defined in more
/// than two top-level subsystems are skipped as ambiguous — see
/// DESIGN.md §17 for why that false-negative trade is acceptable).
HotPathReport check_hot_paths(
    const std::map<std::string, std::vector<std::string>>& files);

/// Runs every line-oriented rule over one file's raw lines. `file` is
/// the repo-relative path used in diagnostics (and allowlist matching
/// by the caller — this function reports all violations unsuppressed).
std::vector<Issue> lint_source(const std::string& file,
                               const std::vector<std::string>& lines,
                               const NameTables& tables);

}  // namespace cryptodrop::lint
