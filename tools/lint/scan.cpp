#include "lint/scan.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace cryptodrop::lint {

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> read_lines_or_exit(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "scan: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

std::string CommentStripper::strip(const std::string& line, bool keep_strings) {
  std::string out;
  bool in_string = false;
  bool in_char = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (in_block_comment_) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        in_block_comment_ = false;
        ++i;
      }
      continue;
    }
    if (in_string) {
      if (keep_strings) out += line[i];
      if (line[i] == '\\') {
        if (keep_strings && i + 1 < line.size()) out += line[i + 1];
        ++i;
      } else if (line[i] == '"') {
        in_string = false;
      }
      continue;
    }
    if (in_char) {
      if (keep_strings) out += line[i];
      if (line[i] == '\\') {
        if (keep_strings && i + 1 < line.size()) out += line[i + 1];
        ++i;
      } else if (line[i] == '\'') {
        in_char = false;
      }
      continue;
    }
    if (line[i] == '"') {
      in_string = true;
      out += '"';  // placeholder (and opening quote when kept)
      continue;
    }
    if (line[i] == '\'') {
      in_char = true;
      out += '\'';
      continue;
    }
    if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment_ = true;
      ++i;
      continue;
    }
    out += line[i];
  }
  return out;
}

std::set<std::string> schema_table_tokens(const std::vector<std::string>& lines,
                                          const char* begin_marker,
                                          const char* end_marker) {
  std::set<std::string> names;
  bool in_schema = false;
  for (const std::string& raw : lines) {
    const std::string line = trim(raw);
    if (line.find(begin_marker) != std::string::npos) {
      in_schema = true;
      continue;
    }
    if (line.find(end_marker) != std::string::npos) in_schema = false;
    if (!in_schema || line.empty() || line[0] != '|') continue;
    const std::size_t open = line.find('`');
    if (open == std::string::npos) continue;
    const std::size_t close = line.find('`', open + 1);
    if (close == std::string::npos) continue;
    const std::string token = line.substr(open + 1, close - open - 1);
    if (!token.empty() && token.find(' ') == std::string::npos) {
      names.insert(token);
    }
  }
  return names;
}

std::string collapse_family(
    const std::string& name,
    const std::map<std::string, std::vector<std::string>>& placeholder_labels) {
  const std::size_t dot = name.find('.');
  if (dot == std::string::npos) return name;
  const std::string suffix = name.substr(dot + 1);
  for (const auto& [placeholder, labels] : placeholder_labels) {
    for (const std::string& label : labels) {
      if (suffix == label) return name.substr(0, dot + 1) + placeholder;
    }
  }
  return name;
}

std::map<std::string, std::string> extract_string_constants(
    const std::vector<std::string>& lines) {
  std::map<std::string, std::string> constants;
  for (const std::string& raw : lines) {
    const std::string line = trim(raw);
    // inline constexpr std::string_view kName = "value";
    const std::size_t kw = line.find("constexpr std::string_view ");
    if (kw == std::string::npos) continue;
    std::size_t p = kw + std::string("constexpr std::string_view ").size();
    std::string name;
    while (p < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[p])) || line[p] == '_')) {
      name += line[p++];
    }
    const std::size_t open = line.find('"', p);
    if (open == std::string::npos) continue;
    const std::size_t close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    if (!name.empty()) {
      constants[name] = line.substr(open + 1, close - open - 1);
    }
  }
  return constants;
}

bool HeaderScanner::in_public_scope() const {
  if (scopes.empty()) return false;  // require at least a namespace
  for (const Scope& s : scopes) {
    if (s.kind == Scope::other) return false;
    if (s.kind == Scope::record && !s.is_public) return false;
  }
  return true;
}

HeaderScanner::Scope HeaderScanner::classify(const std::string& statement) {
  const std::string t = trim(statement);
  if (starts_with(t, "namespace") || t.find(" namespace ") != std::string::npos) {
    return Scope{Scope::ns, true};
  }
  if (starts_with(t, "enum")) return Scope{Scope::other, true};
  if (starts_with(t, "struct") || starts_with(t, "class") ||
      starts_with(t, "template")) {
    // Struct members default public, class members private.
    return Scope{Scope::record, t.find("struct") != std::string::npos};
  }
  return Scope{Scope::other, true};
}

bool HeaderScanner::needs_doc(const std::string& code) {
  const std::string t = trim(code);
  if (t.empty() || t[0] == '#' || t[0] == '}' || t[0] == ')' || t[0] == '{' ||
      t[0] == '~') {
    return false;  // continuations, closers, destructors
  }
  if (starts_with(t, "public:") || starts_with(t, "private:") ||
      starts_with(t, "protected:")) {
    return false;
  }
  if (starts_with(t, "namespace") || starts_with(t, "using namespace")) return false;
  if (starts_with(t, "friend") || starts_with(t, "typedef")) return false;
  if (t.find("= default") != std::string::npos ||
      t.find("= delete") != std::string::npos) {
    return false;
  }
  if (starts_with(t, "struct") || starts_with(t, "class") ||
      starts_with(t, "enum")) {
    // Definitions only; `class X;` forward declarations are exempt.
    return t.find('{') != std::string::npos || t.back() != ';';
  }
  return t.find('(') != std::string::npos;
}

void HeaderScanner::scan(const std::string& display_name,
                         const std::vector<std::string>& lines) {
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& raw = lines[n];
    const bool was_in_block = stripper.in_block_comment();
    const std::string code = stripper.strip(raw, /*keep_strings=*/false);
    const std::string tcode = trim(code);
    if (tcode.empty()) {
      // Blank or pure-comment line. Blank lines break a doc block.
      prev_line_was_comment =
          was_in_block || stripper.in_block_comment() || !trim(raw).empty();
      continue;
    }

    if (!statement_open) {
      statement_text.clear();
      if (in_public_scope() && needs_doc(code) && !prev_line_was_comment) {
        std::fprintf(stderr,
                     "docs-check: %s:%zu: public declaration lacks a doc "
                     "comment: %s\n",
                     display_name.c_str(), n + 1,
                     trim(raw).substr(0, 60).c_str());
        ++failures;
      }
    }

    // Walk the code to keep brace depth and statement state current.
    statement_text += ' ';
    for (char c : code) {
      if (c == '{') {
        scopes.push_back(classify(statement_text));
        statement_text.clear();
      } else if (c == '}') {
        if (!scopes.empty()) scopes.pop_back();
        statement_text.clear();
      } else {
        statement_text += c;
      }
    }

    const char last = tcode.back();
    statement_open = !(last == ';' || last == '{' || last == '}' || last == ':');
    if (!statement_open) statement_text.clear();

    // Access specifiers flip the innermost record's visibility.
    if (!scopes.empty() && scopes.back().kind == Scope::record) {
      if (starts_with(tcode, "public:")) scopes.back().is_public = true;
      if (starts_with(tcode, "private:") || starts_with(tcode, "protected:")) {
        scopes.back().is_public = false;
      }
    }
    prev_line_was_comment = false;
  }
  scopes.clear();
  statement_open = false;
  statement_text.clear();
  prev_line_was_comment = false;
  stripper = CommentStripper{};
}

}  // namespace cryptodrop::lint
