// Include-graph extractor and layer-DAG gate (DESIGN.md §17).
//
// Pass 1 of the whole-repo analyzer: parse `#include "..."` edges over
// every scanned file, resolve them to repo-relative nodes, and check
// the result against the checked-in layer order (tools/lint/layers.txt).
// Two rule families come out of it:
//
//   layer-violation  an include edge that goes up the layer DAG, or
//                    sideways between different layers of equal rank —
//                    the offending edge (from -> to, with layer ranks)
//                    is printed.
//   include-cycle    a file-level include cycle; the full cycle path is
//                    printed. Cycles are reported against their
//                    lexicographically smallest member so allowlist
//                    entries are stable.
//
// Everything operates on in-memory {path -> lines} maps so fixture
// tests can exercise both rules without touching the filesystem.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/lint_rules.hpp"

namespace cryptodrop::lint {

/// The parsed layer order from tools/lint/layers.txt: one
/// `rank name prefix [prefix...]` entry per line, `#` comments and
/// blank lines skipped. A file belongs to the layer whose prefix
/// matches it (longest prefix wins); an edge from layer A to layer B
/// is legal iff A == B or rank(B) < rank(A).
struct LayerSpec {
  /// One named layer: a rank and the path prefixes it owns.
  struct Layer {
    int rank = 0;
    std::string name;
    std::vector<std::string> prefixes;
  };

  std::vector<Layer> layers;

  /// Parses layers.txt lines; malformed lines are appended to `errors`.
  static LayerSpec parse(const std::vector<std::string>& lines,
                         std::vector<std::string>* errors);

  /// The layer owning `path` (longest matching prefix), or nullptr
  /// when no layer claims it (such files are exempt from the gate).
  [[nodiscard]] const Layer* layer_of(const std::string& path) const;
};

/// One resolved include edge, with the 1-based line of the #include.
struct IncludeEdge {
  std::string from;
  std::string to;
  std::size_t line = 0;
};

/// Per-layer aggregate for the report: file count and cross-layer
/// fan-in/fan-out edge counts.
struct LayerStat {
  std::string name;
  int rank = 0;
  std::size_t files = 0;
  std::size_t fan_in = 0;   ///< Edges arriving from other layers.
  std::size_t fan_out = 0;  ///< Edges leaving to other layers.
};

/// The repo include graph over a fixed file set. Only edges whose
/// target resolves to a file in the set are kept — system headers and
/// generated files fall out naturally.
struct IncludeGraph {
  std::vector<std::string> nodes;   ///< Sorted repo-relative paths.
  std::vector<IncludeEdge> edges;   ///< Sorted by (from, line).

  /// Builds the graph from {repo-relative path -> raw lines}. An
  /// include target is resolved first against the including file's
  /// directory, then against the repo roots (src/, tools/, bench/,
  /// tests/) and the repo root itself.
  static IncludeGraph build(
      const std::map<std::string, std::vector<std::string>>& files);
};

/// Checks every edge against the layer order (rule `layer-violation`).
std::vector<Issue> check_layering(const IncludeGraph& graph,
                                  const LayerSpec& spec);

/// Finds file-level include cycles via DFS (rule `include-cycle`).
std::vector<Issue> check_cycles(const IncludeGraph& graph);

/// Per-layer fan-in/fan-out aggregates for --report-json, in layers.txt
/// order.
std::vector<LayerStat> layer_stats(const IncludeGraph& graph,
                                   const LayerSpec& spec);

/// Everything --report-json emits: graph shape, per-layer fan-in/out,
/// hot-set size, violation counts. Schema (version 1):
///
///   { "schema_version": 1,
///     "files_scanned": N,
///     "include_graph": { "nodes": N, "edges": N,
///       "layers": [ {"name": s, "rank": n, "files": n,
///                    "fan_in": n, "fan_out": n}, ... ] },
///     "hot_paths": { "annotated": N, "reachable": N },
///     "violations": { "total": N, "by_rule": { rule: N, ... } },
///     "suppressions_used": N }
struct ReportStats {
  std::size_t files_scanned = 0;
  std::size_t graph_nodes = 0;
  std::size_t graph_edges = 0;
  std::vector<LayerStat> layers;
  std::size_t hot_annotated = 0;
  std::size_t hot_reachable = 0;
  std::map<std::string, std::size_t> violations_by_rule;  ///< Unsuppressed.
  std::size_t suppressions_used = 0;
};

/// Renders ReportStats as the version-1 JSON document above (stable
/// key order, no trailing whitespace) — the shape the golden schema
/// test in tests/lint_test.cpp pins.
std::string render_report_json(const ReportStats& stats);

}  // namespace cryptodrop::lint
