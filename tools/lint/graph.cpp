#include "lint/graph.hpp"

#include <algorithm>
#include <filesystem>
#include <set>
#include <sstream>
#include <tuple>

#include "lint/scan.hpp"

namespace cryptodrop::lint {

namespace {

/// Longest-prefix layer match: `prefix` owns `path` when path == prefix
/// or path starts with prefix + '/'.
bool prefix_owns(const std::string& prefix, const std::string& path) {
  if (path.size() < prefix.size()) return false;
  if (path.compare(0, prefix.size(), prefix) != 0) return false;
  return path.size() == prefix.size() || path[prefix.size()] == '/';
}

/// The quoted target of an `#include "..."` line, or "" when the line
/// is not a quoted include (angle includes are system headers).
std::string include_target(const std::string& raw) {
  const std::string line = trim(raw);
  if (line.empty() || line[0] != '#') return "";
  std::size_t i = 1;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (line.compare(i, 7, "include") != 0) return "";
  i += 7;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i >= line.size() || line[i] != '"') return "";
  const std::size_t close = line.find('"', i + 1);
  if (close == std::string::npos) return "";
  return line.substr(i + 1, close - i - 1);
}

std::string normalized(const std::string& path) {
  return std::filesystem::path(path).lexically_normal().generic_string();
}

}  // namespace

LayerSpec LayerSpec::parse(const std::vector<std::string>& lines,
                           std::vector<std::string>* errors) {
  LayerSpec spec;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string line = trim(lines[n]);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    Layer layer;
    std::string prefix;
    if (!(in >> layer.rank >> layer.name)) {
      if (errors != nullptr) {
        errors->push_back("layers.txt:" + std::to_string(n + 1) +
                          ": want `rank name prefix...`, got: " + line);
      }
      continue;
    }
    while (in >> prefix) layer.prefixes.push_back(prefix);
    if (layer.prefixes.empty()) {
      if (errors != nullptr) {
        errors->push_back("layers.txt:" + std::to_string(n + 1) +
                          ": layer `" + layer.name + "` has no path prefix");
      }
      continue;
    }
    spec.layers.push_back(std::move(layer));
  }
  return spec;
}

const LayerSpec::Layer* LayerSpec::layer_of(const std::string& path) const {
  const Layer* best = nullptr;
  std::size_t best_len = 0;
  for (const Layer& layer : layers) {
    for (const std::string& prefix : layer.prefixes) {
      if (prefix_owns(prefix, path) && prefix.size() >= best_len) {
        best = &layer;
        best_len = prefix.size();
      }
    }
  }
  return best;
}

IncludeGraph IncludeGraph::build(
    const std::map<std::string, std::vector<std::string>>& files) {
  IncludeGraph graph;
  for (const auto& [path, lines] : files) graph.nodes.push_back(path);

  for (const auto& [path, lines] : files) {
    const std::string dir = std::filesystem::path(path).parent_path().generic_string();
    for (std::size_t n = 0; n < lines.size(); ++n) {
      const std::string target = include_target(lines[n]);
      if (target.empty()) continue;
      // Resolution order mirrors the build's include dirs: the including
      // file's own directory first, then the repo include roots.
      std::vector<std::string> candidates;
      if (!dir.empty()) candidates.push_back(normalized(dir + "/" + target));
      for (const char* root : {"src/", "tools/", "bench/", "tests/", ""}) {
        candidates.push_back(normalized(root + target));
      }
      for (const std::string& candidate : candidates) {
        if (files.count(candidate) == 0) continue;
        graph.edges.push_back(IncludeEdge{path, candidate, n + 1});
        break;
      }
    }
  }
  std::sort(graph.edges.begin(), graph.edges.end(),
            [](const IncludeEdge& a, const IncludeEdge& b) {
              return std::tie(a.from, a.line) < std::tie(b.from, b.line);
            });
  return graph;
}

std::vector<Issue> check_layering(const IncludeGraph& graph,
                                  const LayerSpec& spec) {
  std::vector<Issue> issues;
  for (const IncludeEdge& edge : graph.edges) {
    const LayerSpec::Layer* from = spec.layer_of(edge.from);
    const LayerSpec::Layer* to = spec.layer_of(edge.to);
    if (from == nullptr || to == nullptr) continue;  // unlayered: exempt
    if (from->name == to->name) continue;            // intra-layer: fine
    if (to->rank < from->rank) continue;             // downward: fine
    const char* direction =
        to->rank > from->rank ? "goes up the layer DAG"
                              : "crosses between equal-rank layers";
    issues.push_back(Issue{
        edge.from, edge.line, "layer-violation",
        "edge " + edge.from + " -> " + edge.to + " " + direction +
            ": layer `" + from->name + "` (rank " +
            std::to_string(from->rank) + ") must not include layer `" +
            to->name + "` (rank " + std::to_string(to->rank) +
            ") — see tools/lint/layers.txt"});
  }
  return issues;
}

std::vector<Issue> check_cycles(const IncludeGraph& graph) {
  // Iterative DFS with white/grey/black coloring; a grey hit closes a
  // cycle, reported once against its smallest member.
  std::map<std::string, std::vector<const IncludeEdge*>> adj;
  for (const IncludeEdge& edge : graph.edges) {
    adj[edge.from].push_back(&edge);
  }
  enum class Color { white, grey, black };
  std::map<std::string, Color> color;
  for (const std::string& node : graph.nodes) color[node] = Color::white;

  std::vector<Issue> issues;
  std::set<std::string> reported_cycles;

  struct Frame {
    std::string node;
    std::size_t next = 0;
  };
  for (const std::string& start : graph.nodes) {
    if (color[start] != Color::white) continue;
    std::vector<Frame> stack{Frame{start, 0}};
    color[start] = Color::grey;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto it = adj.find(frame.node);
      const std::size_t degree = it == adj.end() ? 0 : it->second.size();
      if (frame.next >= degree) {
        color[frame.node] = Color::black;
        stack.pop_back();
        continue;
      }
      const IncludeEdge* edge = it->second[frame.next++];
      const Color target = color[edge->to];
      if (target == Color::black) continue;
      if (target == Color::white) {
        color[edge->to] = Color::grey;
        stack.push_back(Frame{edge->to, 0});
        continue;
      }
      // Grey: edge->to is on the stack — extract the cycle.
      std::vector<std::string> cycle;
      std::size_t first = 0;
      for (std::size_t i = 0; i < stack.size(); ++i) {
        if (stack[i].node == edge->to) first = i;
      }
      for (std::size_t i = first; i < stack.size(); ++i) {
        cycle.push_back(stack[i].node);
      }
      const std::string anchor = *std::min_element(cycle.begin(), cycle.end());
      std::string path;
      for (const std::string& node : cycle) path += node + " -> ";
      path += edge->to;
      if (reported_cycles.insert(path).second) {
        issues.push_back(Issue{anchor, edge->line, "include-cycle",
                               "include cycle: " + path});
      }
    }
  }
  return issues;
}

std::vector<LayerStat> layer_stats(const IncludeGraph& graph,
                                   const LayerSpec& spec) {
  std::vector<LayerStat> stats;
  std::map<std::string, std::size_t> index;
  for (const LayerSpec::Layer& layer : spec.layers) {
    index[layer.name] = stats.size();
    stats.push_back(LayerStat{layer.name, layer.rank, 0, 0, 0});
  }
  for (const std::string& node : graph.nodes) {
    const LayerSpec::Layer* layer = spec.layer_of(node);
    if (layer != nullptr) ++stats[index[layer->name]].files;
  }
  for (const IncludeEdge& edge : graph.edges) {
    const LayerSpec::Layer* from = spec.layer_of(edge.from);
    const LayerSpec::Layer* to = spec.layer_of(edge.to);
    if (from == nullptr || to == nullptr || from->name == to->name) continue;
    ++stats[index[from->name]].fan_out;
    ++stats[index[to->name]].fan_in;
  }
  return stats;
}

std::string render_report_json(const ReportStats& stats) {
  // Hand-rolled on purpose: lintscan stays dependency-free (std only),
  // and every emitted string is a rule id or layer name — identifier
  // characters, nothing to escape.
  std::string out;
  out += "{\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"files_scanned\": " + std::to_string(stats.files_scanned) + ",\n";
  out += "  \"include_graph\": {\n";
  out += "    \"nodes\": " + std::to_string(stats.graph_nodes) + ",\n";
  out += "    \"edges\": " + std::to_string(stats.graph_edges) + ",\n";
  out += "    \"layers\": [";
  for (std::size_t i = 0; i < stats.layers.size(); ++i) {
    const LayerStat& layer = stats.layers[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"name\": \"" + layer.name +
           "\", \"rank\": " + std::to_string(layer.rank) +
           ", \"files\": " + std::to_string(layer.files) +
           ", \"fan_in\": " + std::to_string(layer.fan_in) +
           ", \"fan_out\": " + std::to_string(layer.fan_out) + "}";
  }
  out += stats.layers.empty() ? "]\n" : "\n    ]\n";
  out += "  },\n";
  out += "  \"hot_paths\": {\n";
  out += "    \"annotated\": " + std::to_string(stats.hot_annotated) + ",\n";
  out += "    \"reachable\": " + std::to_string(stats.hot_reachable) + "\n";
  out += "  },\n";
  std::size_t total = 0;
  for (const auto& [rule, count] : stats.violations_by_rule) total += count;
  out += "  \"violations\": {\n";
  out += "    \"total\": " + std::to_string(total) + ",\n";
  out += "    \"by_rule\": {";
  bool first = true;
  for (const auto& [rule, count] : stats.violations_by_rule) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "      \"" + rule + "\": " + std::to_string(count);
  }
  out += stats.violations_by_rule.empty() ? "}\n" : "\n    }\n";
  out += "  },\n";
  out += "  \"suppressions_used\": " + std::to_string(stats.suppressions_used) +
         "\n";
  out += "}\n";
  return out;
}

}  // namespace cryptodrop::lint
