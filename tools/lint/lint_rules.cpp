#include "lint/lint_rules.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <tuple>

#include "lint/scan.hpp"

namespace cryptodrop::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// A whole file's comment-stripped text in one buffer, with an
/// offset -> line-number index, so multi-line constructs (registration
/// calls split across lines) scan as one stream.
struct JoinedSource {
  std::string text;
  std::vector<std::size_t> line_starts;

  /// 1-based line containing `offset`.
  [[nodiscard]] std::size_t line_of(std::size_t offset) const {
    const auto it =
        std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<std::size_t>(it - line_starts.begin());
  }
};

JoinedSource join_stripped(const std::vector<std::string>& lines,
                           bool keep_strings) {
  CommentStripper stripper;
  JoinedSource out;
  for (const std::string& line : lines) {
    out.line_starts.push_back(out.text.size());
    out.text += stripper.strip(line, keep_strings);
    out.text += '\n';
  }
  return out;
}

/// True when the character before `pos` (if any) cannot extend an
/// identifier leftward — i.e. `pos` starts a fresh token.
bool boundary_before(const std::string& text, std::size_t pos) {
  return pos == 0 || !ident_char(text[pos - 1]);
}

void find_banned_tokens(const std::string& file, const JoinedSource& src,
                        const std::vector<std::string>& tokens,
                        const std::string& rule, const std::string& hint,
                        std::vector<Issue>* issues) {
  for (const std::string& token : tokens) {
    std::size_t pos = 0;
    while ((pos = src.text.find(token, pos)) != std::string::npos) {
      if (boundary_before(src.text, pos)) {
        issues->push_back(Issue{file, src.line_of(pos), rule,
                                "`" + token + "` is banned: " + hint});
      }
      pos += token.size();
    }
  }
}

/// Walks left from `pos` (just before a ".lock()"-style match) over one
/// optional [..] subscript and one identifier; returns that identifier
/// (the receiver's last path segment), or "" when unrecognizable.
std::string receiver_before(const std::string& text, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && (text[i - 1] == ' ' || text[i - 1] == '\t')) --i;
  if (i > 0 && text[i - 1] == ']') {
    int depth = 0;
    while (i > 0) {
      --i;
      if (text[i] == ']') ++depth;
      if (text[i] == '[') {
        if (--depth == 0) break;
      }
    }
  }
  std::size_t end = i;
  while (i > 0 && ident_char(text[i - 1])) --i;
  return text.substr(i, end - i);
}

bool guardish(const std::string& ident) {
  std::string lower;
  for (char c : ident) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lower.find("lock") != std::string::npos ||
         lower.find("guard") != std::string::npos;
}

void check_naked_locks(const std::string& file, const JoinedSource& src,
                       std::vector<Issue>* issues) {
  static const char* kMethods[] = {
      "lock()",        "unlock()",        "try_lock()",
      "lock_shared()", "unlock_shared()", "try_lock_shared()",
  };
  for (const char* method : kMethods) {
    const std::string dotted = "." + std::string(method);
    const std::string arrowed = "->" + std::string(method);
    for (const std::string& pattern : {dotted, arrowed}) {
      std::size_t pos = 0;
      while ((pos = src.text.find(pattern, pos)) != std::string::npos) {
        const std::string receiver = receiver_before(src.text, pos);
        if (!guardish(receiver)) {
          issues->push_back(Issue{
              file, src.line_of(pos), "naked-lock",
              "`" + receiver + pattern +
                  "`: acquire mutexes through an RAII guard "
                  "(std::lock_guard / std::unique_lock over a RankedMutex), "
                  "never by hand"});
        }
        pos += pattern.size();
      }
    }
  }
}

void check_lock_rank_tags(const std::string& file,
                          const std::vector<std::string>& raw_lines,
                          std::vector<Issue>* issues) {
  CommentStripper stripper;
  for (std::size_t n = 0; n < raw_lines.size(); ++n) {
    const std::string code = stripper.strip(raw_lines[n], /*keep_strings=*/false);
    for (const char* type : {"std::shared_mutex", "std::mutex"}) {
      std::size_t pos = code.find(type);
      if (pos == std::string::npos) continue;
      if (!boundary_before(code, pos)) continue;
      std::size_t after = pos + std::string(type).size();
      // "std::mutex" is a prefix of "std::shared_mutex"? No — but it is
      // a prefix of "std::mutex"-like tokens; require a non-identifier
      // follow-up, then a declarator (an identifier), to call it a
      // declaration. References, pointers and template arguments are
      // not lock objects.
      while (after < code.size() && (code[after] == ' ' || code[after] == '\t')) {
        ++after;
      }
      if (after >= code.size() || !ident_char(code[after]) ||
          std::isdigit(static_cast<unsigned char>(code[after]))) {
        continue;
      }
      const bool tagged =
          raw_lines[n].find("lock-rank:") != std::string::npos ||
          (n > 0 && raw_lines[n - 1].find("lock-rank:") != std::string::npos);
      if (!tagged) {
        issues->push_back(Issue{
            file, n + 1, "lock-rank",
            std::string("`") + type +
                "` declared without a `// lock-rank: N` tag — use "
                "common::RankedMutex<Rank> (the rank lives in the type) or "
                "document the rank in the tag"});
      }
      break;  // one diagnostic per line is enough
    }
  }
}

/// Parses one string-literal sequence starting at `pos` (which must
/// point at an opening quote in keep-strings text): handles escapes
/// and adjacent-literal concatenation across whitespace/newlines.
/// Returns the concatenated value and leaves `pos` after the final
/// closing quote.
std::string read_literal(const std::string& text, std::size_t* pos) {
  std::string value;
  while (*pos < text.size() && text[*pos] == '"') {
    ++*pos;  // opening quote
    while (*pos < text.size() && text[*pos] != '"') {
      if (text[*pos] == '\\' && *pos + 1 < text.size()) ++*pos;
      value += text[*pos];
      ++*pos;
    }
    if (*pos < text.size()) ++*pos;  // closing quote
    std::size_t peek = *pos;
    while (peek < text.size() &&
           (text[peek] == ' ' || text[peek] == '\t' || text[peek] == '\n')) {
      ++peek;
    }
    if (peek < text.size() && text[peek] == '"') {
      *pos = peek;  // adjacent literal: keep concatenating
    } else {
      break;
    }
  }
  return value;
}

void check_metric_names(const std::string& file, const JoinedSource& src,
                        const NameTables& tables,
                        const std::set<std::string>& expanded,
                        std::vector<Issue>* issues) {
  for (const char* method : {"counter(", "gauge(", "histogram("}) {
    const std::string token = method;
    std::size_t pos = 0;
    while ((pos = src.text.find(token, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += token.size();
      // Only registry/snapshot member calls: require `.name(` / `->name(`.
      if (at == 0 || (src.text[at - 1] != '.' && src.text[at - 1] != '>')) {
        continue;
      }
      std::size_t p = at + token.size();
      while (p < src.text.size() &&
             (src.text[p] == ' ' || src.text[p] == '\t' || src.text[p] == '\n')) {
        ++p;
      }
      if (p >= src.text.size() || src.text[p] != '"') continue;  // non-literal
      const std::string name = read_literal(src.text, &p);
      while (p < src.text.size() &&
             (src.text[p] == ' ' || src.text[p] == '\t' || src.text[p] == '\n')) {
        ++p;
      }
      const bool dynamic_suffix = p < src.text.size() && src.text[p] == '+';
      if (dynamic_suffix) {
        // "family." + computed label: legal only when a placeholder
        // family with exactly this prefix is on the schema.
        bool known = false;
        for (const std::string& family : tables.metric_families) {
          if (family.size() > name.size() &&
              family.compare(0, name.size(), name) == 0 &&
              family[name.size()] == '<' && family.back() == '>') {
            known = true;
            break;
          }
        }
        if (!known) {
          issues->push_back(Issue{
              file, src.line_of(at), "metric-name",
              "metric family `" + name +
                  "` + dynamic suffix is not a placeholder family in "
                  "obs::known_metric_names()"});
        }
      } else if (expanded.count(name) == 0) {
        issues->push_back(Issue{
            file, src.line_of(at), "metric-name",
            "metric `" + name +
                "` is not in obs::known_metric_names() — register the "
                "name in src/obs/names.cpp (and docs/OBSERVABILITY.md) "
                "first"});
      }
    }
  }
}

void check_span_names(const std::string& file, const JoinedSource& src,
                      const NameTables& tables, std::vector<Issue>* issues) {
  const std::string token = "ScopedSpan";
  std::size_t pos = 0;
  while ((pos = src.text.find(token, pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += token.size();
    if (!boundary_before(src.text, at)) continue;
    std::size_t p = at + token.size();
    while (p < src.text.size() && (src.text[p] == ' ' || src.text[p] == '\t')) {
      ++p;
    }
    // Optional variable name (a construction like `ScopedSpan span(...)`).
    while (p < src.text.size() && ident_char(src.text[p])) ++p;
    while (p < src.text.size() && (src.text[p] == ' ' || src.text[p] == '\t')) {
      ++p;
    }
    if (p >= src.text.size() || src.text[p] != '(') continue;
    ++p;

    // Shallow arg split at depth 1; literals already stripped of
    // nothing (keep-strings text), so skip their contents.
    std::vector<std::string> args(1);
    int depth = 1;
    while (p < src.text.size() && depth > 0) {
      const char c = src.text[p];
      if (c == '"') {
        std::string lit = read_literal(src.text, &p);
        args.back() += '"' + lit + '"';
        continue;
      }
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (depth == 0) break;
      if (c == ',' && depth == 1) {
        args.emplace_back();
      } else {
        args.back() += c;
      }
      ++p;
    }

    // The span name is the first literal or span_name:: constant among
    // the first two args (root spans put the tracer first).
    for (std::size_t a = 0; a < args.size() && a < 2; ++a) {
      const std::string arg = trim(args[a]);
      if (!arg.empty() && arg[0] == '"') {
        const std::string name = arg.substr(1, arg.size() - 2);
        if (tables.span_names.count(name) == 0) {
          issues->push_back(Issue{
              file, src.line_of(at), "span-name",
              "span `" + name +
                  "` is not in obs::known_span_names() — add a span_name:: "
                  "constant (and the OBSERVABILITY.md row) first"});
        }
        break;
      }
      const std::size_t q = arg.find("span_name::");
      if (q != std::string::npos) {
        const std::string constant = arg.substr(q + std::string("span_name::").size());
        if (tables.span_constants.count(constant) == 0) {
          issues->push_back(Issue{
              file, src.line_of(at), "span-name",
              "span constant `span_name::" + constant +
                  "` is not declared in obs/span.hpp"});
        }
        break;
      }
    }
  }
}

// --- hot-path purity pass (DESIGN.md §17) -------------------------------
//
// A deliberately small "call-graph-lite": function definitions are
// recognized by token shape in comment-stripped text, callees by
// unqualified name. Good enough for a gate — misses are false
// negatives (documented), never false positives on clean code.

/// C++ keywords (and keyword-shaped tokens) that look like `name(`
/// but are neither definitions nor calls worth resolving.
bool keywordish(const std::string& name) {
  static const std::set<std::string> kKeywords = {
      "if",       "for",      "while",    "switch",     "catch",
      "return",   "sizeof",   "alignof",  "alignas",    "decltype",
      "noexcept", "new",      "delete",   "throw",      "else",
      "do",       "case",     "default",  "template",   "typename",
      "using",    "namespace", "const",   "constexpr",  "static",
      "operator", "defined",  "assert",   "static_assert",
      "co_await", "co_return", "co_yield", "requires",  "explicit",
  };
  return kKeywords.count(name) != 0;
}

/// Joined stripped text with preprocessor lines blanked — directives
/// (`#if`, `#include`, ...) are not statements and confuse the
/// definition scanner.
JoinedSource join_for_parsing(const std::vector<std::string>& lines) {
  CommentStripper stripper;
  JoinedSource out;
  for (const std::string& line : lines) {
    out.line_starts.push_back(out.text.size());
    std::string code = stripper.strip(line, /*keep_strings=*/false);
    const std::string lead = trim(code);
    if (!lead.empty() && lead[0] == '#') code.clear();
    out.text += code;
    out.text += '\n';
  }
  return out;
}

/// Offset of the bracket matching the opener at `open`, or npos.
std::size_t match_bracket(const std::string& t, std::size_t open, char open_c,
                          char close_c) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i] == open_c) ++depth;
    if (t[i] == close_c && --depth == 0) return i;
  }
  return std::string::npos;
}

bool ws(char c) { return c == ' ' || c == '\t' || c == '\n'; }

/// One function definition recognized in a file's parsed text.
struct FunctionDef {
  std::string file;
  std::string name;           ///< Unqualified (last :: segment).
  std::size_t name_line = 0;  ///< 1-based line of the name token.
  std::size_t body_begin = 0; ///< Offset of the body '{'.
  std::size_t body_end = 0;   ///< Offset of the matching '}'.
};

/// Consumes a constructor init list starting after the ':' at `*p`;
/// returns true (with `*p` at the body '{') when a body follows.
bool consume_ctor_init_list(const std::string& t, std::size_t* p) {
  while (*p < t.size()) {
    while (*p < t.size() && ws(t[*p])) ++*p;
    std::size_t id = *p;
    while (*p < t.size() && (ident_char(t[*p]) || t[*p] == ':')) ++*p;
    const bool had_member = *p > id;
    while (*p < t.size() && ws(t[*p])) ++*p;
    if (*p >= t.size()) return false;
    if (t[*p] == '(' || (t[*p] == '{' && had_member)) {
      const char open = t[*p];
      const std::size_t close =
          match_bracket(t, *p, open, open == '(' ? ')' : '}');
      if (close == std::string::npos) return false;
      *p = close + 1;
    } else if (t[*p] == '{') {
      return true;  // body (no member before the brace)
    } else {
      return false;
    }
    while (*p < t.size() && ws(t[*p])) ++*p;
    if (*p < t.size() && t[*p] == ',') {
      ++*p;
      continue;
    }
    while (*p < t.size() && ws(t[*p])) ++*p;
    return *p < t.size() && t[*p] == '{';
  }
  return false;
}

/// Extracts function definitions from one file's parsed text: an
/// identifier, its parameter list, an optional qualifier tail
/// (const/noexcept/override/final, trailing return, ctor init list),
/// then a brace-matched body. Lambdas and operators are deliberately
/// invisible (no identifier before the '(').
void extract_defs(const std::string& file, const JoinedSource& src,
                  std::vector<FunctionDef>* defs) {
  const std::string& t = src.text;
  for (std::size_t pos = t.find('('); pos != std::string::npos;
       pos = t.find('(', pos + 1)) {
    std::size_t end = pos;
    while (end > 0 && (t[end - 1] == ' ' || t[end - 1] == '\t')) --end;
    std::size_t begin = end;
    while (begin > 0 && ident_char(t[begin - 1])) --begin;
    if (begin == end) continue;  // lambda, operator, cast — no name
    const std::string name = t.substr(begin, end - begin);
    if (keywordish(name)) continue;
    if (std::isdigit(static_cast<unsigned char>(t[begin]))) continue;
    // `x.f(...)` / `x->f(...)` are calls, never definitions.
    if (begin > 0 && t[begin - 1] == '.') continue;
    if (begin > 1 && t[begin - 1] == '>' && t[begin - 2] == '-') continue;

    const std::size_t close = match_bracket(t, pos, '(', ')');
    if (close == std::string::npos) continue;
    std::size_t p = close + 1;
    bool is_def = false;
    while (p < t.size()) {
      while (p < t.size() && ws(t[p])) ++p;
      if (p >= t.size()) break;
      const char c = t[p];
      if (c == '{') {
        is_def = true;
        break;
      }
      if (c == ':') {
        is_def = consume_ctor_init_list(t, &(++p));
        break;
      }
      if (c == '-' && p + 1 < t.size() && t[p + 1] == '>') {
        // Trailing return type: scan to the body '{' (or ';') at
        // bracket depth zero.
        p += 2;
        int depth = 0;
        while (p < t.size()) {
          const char c2 = t[p];
          if (c2 == '(' || c2 == '[') ++depth;
          if (c2 == ')' || c2 == ']') --depth;
          if (depth == 0 && (c2 == '{' || c2 == ';')) break;
          ++p;
        }
        continue;
      }
      if (ident_char(c)) {
        std::size_t q = p;
        while (q < t.size() && ident_char(t[q])) ++q;
        const std::string word = t.substr(p, q - p);
        if (word == "const" || word == "noexcept" || word == "override" ||
            word == "final" || word == "mutable") {
          p = q;
          if (word == "noexcept") {
            while (p < t.size() && ws(t[p])) ++p;
            if (p < t.size() && t[p] == '(') {
              const std::size_t nc = match_bracket(t, p, '(', ')');
              if (nc == std::string::npos) break;
              p = nc + 1;
            }
          }
          continue;
        }
      }
      break;  // ';', '=', ',', unknown token: a declaration or expression
    }
    if (!is_def) continue;
    const std::size_t body_close = match_bracket(t, p, '{', '}');
    if (body_close == std::string::npos) continue;
    defs->push_back(
        FunctionDef{file, name, src.line_of(begin), p, body_close});
  }
}

/// Unqualified callee names mentioned as `name(` inside [begin, end).
/// Only free-style calls are collected: a method call's receiver type
/// is invisible to a lexical scanner, so resolving `s.append(...)` by
/// bare name would wire std::string::append to any repo function that
/// happens to be called `append`. Interface boundaries the closure
/// must cross by dispatch (entropy backends, digest cache, queue,
/// pool) carry their own `// cryptodrop:hot` markers on the callee
/// side instead — see DESIGN.md §17.
std::set<std::string> collect_callees(const std::string& t, std::size_t begin,
                                      std::size_t end) {
  std::set<std::string> names;
  for (std::size_t pos = t.find('(', begin);
       pos != std::string::npos && pos < end; pos = t.find('(', pos + 1)) {
    std::size_t e = pos;
    while (e > begin && (t[e - 1] == ' ' || t[e - 1] == '\t')) --e;
    std::size_t b = e;
    while (b > begin && ident_char(t[b - 1])) --b;
    if (b == e) continue;
    const std::string name = t.substr(b, e - b);
    if (keywordish(name)) continue;
    if (std::isdigit(static_cast<unsigned char>(t[b]))) continue;
    if (b > begin && t[b - 1] == '.') continue;  // method call
    if (b > begin + 1 && t[b - 1] == '>' && t[b - 2] == '-') continue;
    // Qualified calls: walk the `a::b::name` chain to its root and
    // skip the standard library (std::to_string is not the repo's
    // to_string).
    std::size_t q = b;
    std::string root = name;
    while (q > begin + 1 && t[q - 1] == ':' && t[q - 2] == ':') {
      q -= 2;
      const std::size_t seg_end = q;
      while (q > begin && ident_char(t[q - 1])) --q;
      if (q == seg_end) break;
      root = t.substr(q, seg_end - q);
    }
    if (root == "std") continue;
    names.insert(name);
  }
  return names;
}

/// The first two path components ("src/core" for src/core/engine.cpp):
/// the granularity of the callee-ambiguity cap.
std::string top_dirs(const std::string& path) {
  std::size_t slash = path.find('/');
  if (slash == std::string::npos) return path;
  slash = path.find('/', slash + 1);
  return slash == std::string::npos ? path : path.substr(0, slash);
}

/// Walks the dotted/arrowed receiver chain left of a growth call and
/// reports whether any segment names a pooled buffer (pool / scratch /
/// shelf) — `shelf.free.push_back(...)` is the sanctioned freelist
/// idiom, not a hot-path allocation.
bool poolish_receiver(const std::string& t, std::size_t pos) {
  std::size_t i = pos;
  while (true) {
    if (i >= 1 && t[i - 1] == '.') {
      --i;
    } else if (i >= 2 && t[i - 1] == '>' && t[i - 2] == '-') {
      i -= 2;
    } else {
      return false;
    }
    // Skip one trailing call/subscript group: `buf()[k].push_back`.
    while (i > 0 && (t[i - 1] == ')' || t[i - 1] == ']')) {
      const char close = t[i - 1];
      const char open = close == ')' ? '(' : '[';
      int depth = 0;
      while (i > 0) {
        --i;
        if (t[i] == close) ++depth;
        if (t[i] == open && --depth == 0) break;
      }
    }
    std::size_t e = i;
    while (i > 0 && ident_char(t[i - 1])) --i;
    std::string seg;
    for (std::size_t k = i; k < e; ++k) {
      seg += static_cast<char>(
          std::tolower(static_cast<unsigned char>(t[k])));
    }
    if (seg.find("pool") != std::string::npos ||
        seg.find("scratch") != std::string::npos ||
        seg.find("shelf") != std::string::npos) {
      return true;
    }
    if (i == e) return false;  // chain start was not an identifier
  }
}

/// True when the token at [pos, pos+len) stands alone as an identifier.
bool word_at(const std::string& t, std::size_t pos, std::size_t len) {
  if (!boundary_before(t, pos)) return false;
  return pos + len >= t.size() || !ident_char(t[pos + len]);
}

/// Scans one hot-closure function body for banned constructs.
void scan_hot_body(const FunctionDef& def, const JoinedSource& src,
                   const std::string& chain, std::vector<Issue>* issues) {
  const std::string& t = src.text;
  const auto flag = [&](std::size_t pos, const std::string& rule,
                        const std::string& what, const std::string& why) {
    issues->push_back(Issue{def.file, src.line_of(pos), rule,
                            "`" + what + "` " + why +
                                " on a cryptodrop:hot path (via " + chain +
                                ")"});
  };

  // Allocation: operator new, smart-pointer factories, raw malloc.
  for (const char* token : {"new", "throw"}) {
    const std::size_t len = std::string(token).size();
    for (std::size_t pos = t.find(token, def.body_begin);
         pos != std::string::npos && pos < def.body_end;
         pos = t.find(token, pos + 1)) {
      if (!word_at(t, pos, len)) continue;
      if (token[0] == 'n') {
        flag(pos, "hot-alloc", token, "allocates");
      } else {
        flag(pos, "hot-throw", token, "unwinds (report errors by value)");
      }
    }
  }
  for (const char* token :
       {"make_unique", "make_shared", "malloc(", "calloc(", "realloc("}) {
    const std::string tok = token;
    const std::size_t name_len =
        tok.back() == '(' ? tok.size() - 1 : tok.size();
    for (std::size_t pos = t.find(tok, def.body_begin);
         pos != std::string::npos && pos < def.body_end;
         pos = t.find(tok, pos + 1)) {
      if (!boundary_before(t, pos)) continue;
      if (tok.back() != '(' && pos + name_len < t.size() &&
          ident_char(t[pos + name_len])) {
        continue;
      }
      flag(pos, "hot-alloc", tok.substr(0, name_len), "allocates");
    }
  }

  // Container growth — exempting the pooled-freelist idiom. reserve()
  // is deliberately absent: pre-sizing is the sanctioned fix.
  for (const char* token : {"push_back", "emplace_back", "push_front",
                            "emplace_front", "emplace(", "resize(",
                            "append("}) {
    const std::string tok = token;
    const std::size_t name_len =
        tok.back() == '(' ? tok.size() - 1 : tok.size();
    for (std::size_t pos = t.find(tok, def.body_begin);
         pos != std::string::npos && pos < def.body_end;
         pos = t.find(tok, pos + 1)) {
      if (!boundary_before(t, pos)) continue;
      if (tok.back() != '(' && pos + name_len < t.size() &&
          ident_char(t[pos + name_len])) {
        continue;
      }
      if (poolish_receiver(t, pos)) continue;
      flag(pos, "hot-alloc", tok.substr(0, name_len), "may grow a container");
    }
  }

  // Blocking syscalls as free calls — `stream.read(...)` is a member
  // of something already vetted; bare `read(...)`/`::read(...)` is the
  // OS. std::this_thread::sleep_* is reached via its `::` spelling.
  for (const char* token :
       {"read(", "write(", "open(", "poll(", "select(", "sleep(",
        "usleep(", "nanosleep(", "sleep_for", "sleep_until", "fopen(",
        "fread(", "fwrite(", "fsync("}) {
    const std::string tok = token;
    const std::size_t name_len =
        tok.back() == '(' ? tok.size() - 1 : tok.size();
    for (std::size_t pos = t.find(tok, def.body_begin);
         pos != std::string::npos && pos < def.body_end;
         pos = t.find(tok, pos + 1)) {
      if (!boundary_before(t, pos)) continue;
      if (tok.back() != '(' && pos + name_len < t.size() &&
          ident_char(t[pos + name_len])) {
        continue;
      }
      if (pos > 0 && t[pos - 1] == '.') continue;
      if (pos > 1 && t[pos - 1] == '>' && t[pos - 2] == '-') continue;
      flag(pos, "hot-blocking", tok.substr(0, name_len), "blocks");
    }
  }

  // Raw mutex types: hot code locks through RankedMutex or not at all.
  for (const char* token : {"std::mutex", "std::shared_mutex"}) {
    const std::string tok = token;
    for (std::size_t pos = t.find(tok, def.body_begin);
         pos != std::string::npos && pos < def.body_end;
         pos = t.find(tok, pos + 1)) {
      if (!boundary_before(t, pos)) continue;
      if (pos + tok.size() < t.size() && ident_char(t[pos + tok.size()])) {
        continue;
      }
      flag(pos, "hot-unranked-lock", tok,
           "is an unranked mutex — use common::RankedMutex");
    }
  }
}

}  // namespace

std::set<std::string> NameTables::expanded_metric_names() const {
  std::set<std::string> out;
  for (const std::string& family : metric_families) {
    out.insert(family);
    const std::size_t open = family.find('<');
    if (open == std::string::npos) continue;
    const std::string prefix = family.substr(0, open);
    const std::string placeholder = family.substr(open);
    const auto it = placeholder_labels.find(placeholder);
    if (it == placeholder_labels.end()) continue;
    for (const std::string& label : it->second) out.insert(prefix + label);
  }
  return out;
}

Allowlist Allowlist::parse(const std::vector<std::string>& lines,
                           std::vector<std::string>* errors) {
  Allowlist allow;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string line = trim(lines[n]);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    std::string rule;
    std::string path;
    std::string reason;
    in >> rule >> path;
    std::getline(in, reason);
    if (rule.empty() || path.empty() || trim(reason).empty()) {
      if (errors != nullptr) {
        errors->push_back("lint_allow.txt:" + std::to_string(n + 1) +
                          ": want `rule path reason...`, got: " + line);
      }
      continue;
    }
    allow.entries_[{rule, path}] = false;
  }
  return allow;
}

bool Allowlist::allows(const std::string& rule, const std::string& file) {
  const auto it = entries_.find({rule, file});
  if (it != entries_.end()) {
    it->second = true;
    return true;
  }
  // Directory entries: a path ending in '/' suppresses the rule for
  // every file under it (one justified entry per subsystem, not per
  // file).
  for (auto& [key, used] : entries_) {
    if (key.first != rule) continue;
    const std::string& prefix = key.second;
    if (prefix.empty() || prefix.back() != '/') continue;
    if (file.compare(0, prefix.size(), prefix) == 0) {
      used = true;
      return true;
    }
  }
  return false;
}

std::vector<std::string> Allowlist::unused_entries() const {
  std::vector<std::string> stale;
  for (const auto& [key, used] : entries_) {
    if (!used) stale.push_back(key.first + " " + key.second);
  }
  return stale;
}

std::vector<std::pair<std::string, std::string>> Allowlist::unused_entry_keys()
    const {
  std::vector<std::pair<std::string, std::string>> stale;
  for (const auto& [key, used] : entries_) {
    if (!used) stale.push_back(key);
  }
  return stale;
}

std::string nearest_path(const std::string& path,
                         const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_cost = std::string::npos;
  for (const std::string& candidate : candidates) {
    // Classic two-row Levenshtein — candidate lists are tiny.
    const std::size_t n = path.size();
    const std::size_t m = candidate.size();
    std::vector<std::size_t> prev(m + 1);
    std::vector<std::size_t> curr(m + 1);
    for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
    for (std::size_t i = 1; i <= n; ++i) {
      curr[0] = i;
      for (std::size_t j = 1; j <= m; ++j) {
        const std::size_t sub =
            prev[j - 1] + (path[i - 1] == candidate[j - 1] ? 0 : 1);
        curr[j] = std::min({prev[j] + 1, curr[j - 1] + 1, sub});
      }
      std::swap(prev, curr);
    }
    const std::size_t cost = prev[m];
    if (cost < best_cost || (cost == best_cost && candidate < best)) {
      best = candidate;
      best_cost = cost;
    }
  }
  return best;
}

HotPathReport check_hot_paths(
    const std::map<std::string, std::vector<std::string>>& files) {
  HotPathReport report;

  // Parse every file once; collect definitions and annotation lines.
  std::map<std::string, JoinedSource> parsed;
  std::vector<FunctionDef> defs;
  std::map<std::string, std::vector<std::size_t>> markers;  // file -> lines
  for (const auto& [file, lines] : files) {
    parsed.emplace(file, join_for_parsing(lines));
    extract_defs(file, parsed.at(file), &defs);
    for (std::size_t n = 0; n < lines.size(); ++n) {
      if (lines[n].find("cryptodrop:hot") != std::string::npos) {
        markers[file].push_back(n + 1);
      }
    }
  }

  // Name -> definitions, for callee resolution.
  std::map<std::string, std::vector<const FunctionDef*>> by_name;
  for (const FunctionDef& def : defs) by_name[def.name].push_back(&def);

  // Bind each marker to the next definition within a few lines —
  // markers sit directly above the signature (which may wrap).
  constexpr std::size_t kMarkerWindow = 8;
  std::vector<const FunctionDef*> roots;
  for (const auto& [file, lines] : markers) {
    for (std::size_t marker_line : lines) {
      const FunctionDef* bound = nullptr;
      for (const FunctionDef& def : defs) {
        if (def.file != file) continue;
        if (def.name_line < marker_line ||
            def.name_line > marker_line + kMarkerWindow) {
          continue;
        }
        if (bound == nullptr || def.name_line < bound->name_line) {
          bound = &def;
        }
      }
      if (bound == nullptr) {
        report.issues.push_back(Issue{
            file, marker_line, "hot-annotation",
            "`// cryptodrop:hot` is not attached to a recognizable "
            "function definition (none starts within " +
                std::to_string(kMarkerWindow) + " lines below the marker)"});
        continue;
      }
      roots.push_back(bound);
    }
  }
  report.annotated = roots.size();

  // BFS through same-repo callees resolvable by name. Names defined in
  // more than two top-level subsystems are too generic to resolve —
  // skipping them trades false negatives for a quiet gate.
  std::set<const FunctionDef*> visited;
  std::vector<std::pair<const FunctionDef*, std::string>> queue;
  for (const FunctionDef* root : roots) {
    if (visited.insert(root).second) queue.emplace_back(root, root->name);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const auto [def, chain] = queue[head];
    scan_hot_body(*def, parsed.at(def->file), chain, &report.issues);
    for (const std::string& callee :
         collect_callees(parsed.at(def->file).text, def->body_begin,
                         def->body_end)) {
      const auto it = by_name.find(callee);
      if (it == by_name.end()) continue;
      std::set<std::string> dirs;
      for (const FunctionDef* target : it->second) {
        dirs.insert(top_dirs(target->file));
      }
      if (dirs.size() > 2) continue;  // ambiguity cap
      for (const FunctionDef* target : it->second) {
        if (visited.insert(target).second) {
          queue.emplace_back(target, chain + " -> " + callee);
        }
      }
    }
  }
  report.reachable = visited.size();

  std::stable_sort(report.issues.begin(), report.issues.end(),
                   [](const Issue& a, const Issue& b) {
                     return std::tie(a.file, a.line) < std::tie(b.file, b.line);
                   });
  return report;
}

std::vector<Issue> lint_source(const std::string& file,
                               const std::vector<std::string>& lines,
                               const NameTables& tables) {
  std::vector<Issue> issues;
  const JoinedSource plain = join_stripped(lines, /*keep_strings=*/false);
  const JoinedSource literal = join_stripped(lines, /*keep_strings=*/true);

  static const std::vector<std::string> kRngTokens = {
      "rand(", "srand", "random_device", "mt19937",
      "default_random_engine", "minstd_rand",
  };
  find_banned_tokens(file, plain, kRngTokens, "rng",
                     "all randomness flows through common/rng (seeded, "
                     "platform-stable)",
                     &issues);

  static const std::vector<std::string> kClockTokens = {
      "system_clock::now", "steady_clock::now", "high_resolution_clock",
      "clock_gettime",     "gettimeofday",      "std::time(",
  };
  find_banned_tokens(file, plain, kClockTokens, "wall-clock",
                     "wall-clock reads live in the sanctioned timer helpers "
                     "(obs::ScopedTimer / SpanTracer) only",
                     &issues);

  check_naked_locks(file, plain, &issues);
  check_lock_rank_tags(file, lines, &issues);
  check_metric_names(file, literal, tables, tables.expanded_metric_names(),
                     &issues);
  check_span_names(file, literal, tables, &issues);

  std::stable_sort(issues.begin(), issues.end(),
                   [](const Issue& a, const Issue& b) { return a.line < b.line; });
  return issues;
}

}  // namespace cryptodrop::lint
