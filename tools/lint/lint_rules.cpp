#include "lint/lint_rules.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "lint/scan.hpp"

namespace cryptodrop::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// A whole file's comment-stripped text in one buffer, with an
/// offset -> line-number index, so multi-line constructs (registration
/// calls split across lines) scan as one stream.
struct JoinedSource {
  std::string text;
  std::vector<std::size_t> line_starts;

  /// 1-based line containing `offset`.
  [[nodiscard]] std::size_t line_of(std::size_t offset) const {
    const auto it =
        std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<std::size_t>(it - line_starts.begin());
  }
};

JoinedSource join_stripped(const std::vector<std::string>& lines,
                           bool keep_strings) {
  CommentStripper stripper;
  JoinedSource out;
  for (const std::string& line : lines) {
    out.line_starts.push_back(out.text.size());
    out.text += stripper.strip(line, keep_strings);
    out.text += '\n';
  }
  return out;
}

/// True when the character before `pos` (if any) cannot extend an
/// identifier leftward — i.e. `pos` starts a fresh token.
bool boundary_before(const std::string& text, std::size_t pos) {
  return pos == 0 || !ident_char(text[pos - 1]);
}

void find_banned_tokens(const std::string& file, const JoinedSource& src,
                        const std::vector<std::string>& tokens,
                        const std::string& rule, const std::string& hint,
                        std::vector<Issue>* issues) {
  for (const std::string& token : tokens) {
    std::size_t pos = 0;
    while ((pos = src.text.find(token, pos)) != std::string::npos) {
      if (boundary_before(src.text, pos)) {
        issues->push_back(Issue{file, src.line_of(pos), rule,
                                "`" + token + "` is banned: " + hint});
      }
      pos += token.size();
    }
  }
}

/// Walks left from `pos` (just before a ".lock()"-style match) over one
/// optional [..] subscript and one identifier; returns that identifier
/// (the receiver's last path segment), or "" when unrecognizable.
std::string receiver_before(const std::string& text, std::size_t pos) {
  std::size_t i = pos;
  while (i > 0 && (text[i - 1] == ' ' || text[i - 1] == '\t')) --i;
  if (i > 0 && text[i - 1] == ']') {
    int depth = 0;
    while (i > 0) {
      --i;
      if (text[i] == ']') ++depth;
      if (text[i] == '[') {
        if (--depth == 0) break;
      }
    }
  }
  std::size_t end = i;
  while (i > 0 && ident_char(text[i - 1])) --i;
  return text.substr(i, end - i);
}

bool guardish(const std::string& ident) {
  std::string lower;
  for (char c : ident) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lower.find("lock") != std::string::npos ||
         lower.find("guard") != std::string::npos;
}

void check_naked_locks(const std::string& file, const JoinedSource& src,
                       std::vector<Issue>* issues) {
  static const char* kMethods[] = {
      "lock()",        "unlock()",        "try_lock()",
      "lock_shared()", "unlock_shared()", "try_lock_shared()",
  };
  for (const char* method : kMethods) {
    const std::string dotted = "." + std::string(method);
    const std::string arrowed = "->" + std::string(method);
    for (const std::string& pattern : {dotted, arrowed}) {
      std::size_t pos = 0;
      while ((pos = src.text.find(pattern, pos)) != std::string::npos) {
        const std::string receiver = receiver_before(src.text, pos);
        if (!guardish(receiver)) {
          issues->push_back(Issue{
              file, src.line_of(pos), "naked-lock",
              "`" + receiver + pattern +
                  "`: acquire mutexes through an RAII guard "
                  "(std::lock_guard / std::unique_lock over a RankedMutex), "
                  "never by hand"});
        }
        pos += pattern.size();
      }
    }
  }
}

void check_lock_rank_tags(const std::string& file,
                          const std::vector<std::string>& raw_lines,
                          std::vector<Issue>* issues) {
  CommentStripper stripper;
  for (std::size_t n = 0; n < raw_lines.size(); ++n) {
    const std::string code = stripper.strip(raw_lines[n], /*keep_strings=*/false);
    for (const char* type : {"std::shared_mutex", "std::mutex"}) {
      std::size_t pos = code.find(type);
      if (pos == std::string::npos) continue;
      if (!boundary_before(code, pos)) continue;
      std::size_t after = pos + std::string(type).size();
      // "std::mutex" is a prefix of "std::shared_mutex"? No — but it is
      // a prefix of "std::mutex"-like tokens; require a non-identifier
      // follow-up, then a declarator (an identifier), to call it a
      // declaration. References, pointers and template arguments are
      // not lock objects.
      while (after < code.size() && (code[after] == ' ' || code[after] == '\t')) {
        ++after;
      }
      if (after >= code.size() || !ident_char(code[after]) ||
          std::isdigit(static_cast<unsigned char>(code[after]))) {
        continue;
      }
      const bool tagged =
          raw_lines[n].find("lock-rank:") != std::string::npos ||
          (n > 0 && raw_lines[n - 1].find("lock-rank:") != std::string::npos);
      if (!tagged) {
        issues->push_back(Issue{
            file, n + 1, "lock-rank",
            std::string("`") + type +
                "` declared without a `// lock-rank: N` tag — use "
                "common::RankedMutex<Rank> (the rank lives in the type) or "
                "document the rank in the tag"});
      }
      break;  // one diagnostic per line is enough
    }
  }
}

/// Parses one string-literal sequence starting at `pos` (which must
/// point at an opening quote in keep-strings text): handles escapes
/// and adjacent-literal concatenation across whitespace/newlines.
/// Returns the concatenated value and leaves `pos` after the final
/// closing quote.
std::string read_literal(const std::string& text, std::size_t* pos) {
  std::string value;
  while (*pos < text.size() && text[*pos] == '"') {
    ++*pos;  // opening quote
    while (*pos < text.size() && text[*pos] != '"') {
      if (text[*pos] == '\\' && *pos + 1 < text.size()) ++*pos;
      value += text[*pos];
      ++*pos;
    }
    if (*pos < text.size()) ++*pos;  // closing quote
    std::size_t peek = *pos;
    while (peek < text.size() &&
           (text[peek] == ' ' || text[peek] == '\t' || text[peek] == '\n')) {
      ++peek;
    }
    if (peek < text.size() && text[peek] == '"') {
      *pos = peek;  // adjacent literal: keep concatenating
    } else {
      break;
    }
  }
  return value;
}

void check_metric_names(const std::string& file, const JoinedSource& src,
                        const NameTables& tables,
                        const std::set<std::string>& expanded,
                        std::vector<Issue>* issues) {
  for (const char* method : {"counter(", "gauge(", "histogram("}) {
    const std::string token = method;
    std::size_t pos = 0;
    while ((pos = src.text.find(token, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += token.size();
      // Only registry/snapshot member calls: require `.name(` / `->name(`.
      if (at == 0 || (src.text[at - 1] != '.' && src.text[at - 1] != '>')) {
        continue;
      }
      std::size_t p = at + token.size();
      while (p < src.text.size() &&
             (src.text[p] == ' ' || src.text[p] == '\t' || src.text[p] == '\n')) {
        ++p;
      }
      if (p >= src.text.size() || src.text[p] != '"') continue;  // non-literal
      const std::string name = read_literal(src.text, &p);
      while (p < src.text.size() &&
             (src.text[p] == ' ' || src.text[p] == '\t' || src.text[p] == '\n')) {
        ++p;
      }
      const bool dynamic_suffix = p < src.text.size() && src.text[p] == '+';
      if (dynamic_suffix) {
        // "family." + computed label: legal only when a placeholder
        // family with exactly this prefix is on the schema.
        bool known = false;
        for (const std::string& family : tables.metric_families) {
          if (family.size() > name.size() &&
              family.compare(0, name.size(), name) == 0 &&
              family[name.size()] == '<' && family.back() == '>') {
            known = true;
            break;
          }
        }
        if (!known) {
          issues->push_back(Issue{
              file, src.line_of(at), "metric-name",
              "metric family `" + name +
                  "` + dynamic suffix is not a placeholder family in "
                  "obs::known_metric_names()"});
        }
      } else if (expanded.count(name) == 0) {
        issues->push_back(Issue{
            file, src.line_of(at), "metric-name",
            "metric `" + name +
                "` is not in obs::known_metric_names() — register the "
                "name in src/obs/names.cpp (and docs/OBSERVABILITY.md) "
                "first"});
      }
    }
  }
}

void check_span_names(const std::string& file, const JoinedSource& src,
                      const NameTables& tables, std::vector<Issue>* issues) {
  const std::string token = "ScopedSpan";
  std::size_t pos = 0;
  while ((pos = src.text.find(token, pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += token.size();
    if (!boundary_before(src.text, at)) continue;
    std::size_t p = at + token.size();
    while (p < src.text.size() && (src.text[p] == ' ' || src.text[p] == '\t')) {
      ++p;
    }
    // Optional variable name (a construction like `ScopedSpan span(...)`).
    while (p < src.text.size() && ident_char(src.text[p])) ++p;
    while (p < src.text.size() && (src.text[p] == ' ' || src.text[p] == '\t')) {
      ++p;
    }
    if (p >= src.text.size() || src.text[p] != '(') continue;
    ++p;

    // Shallow arg split at depth 1; literals already stripped of
    // nothing (keep-strings text), so skip their contents.
    std::vector<std::string> args(1);
    int depth = 1;
    while (p < src.text.size() && depth > 0) {
      const char c = src.text[p];
      if (c == '"') {
        std::string lit = read_literal(src.text, &p);
        args.back() += '"' + lit + '"';
        continue;
      }
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (depth == 0) break;
      if (c == ',' && depth == 1) {
        args.emplace_back();
      } else {
        args.back() += c;
      }
      ++p;
    }

    // The span name is the first literal or span_name:: constant among
    // the first two args (root spans put the tracer first).
    for (std::size_t a = 0; a < args.size() && a < 2; ++a) {
      const std::string arg = trim(args[a]);
      if (!arg.empty() && arg[0] == '"') {
        const std::string name = arg.substr(1, arg.size() - 2);
        if (tables.span_names.count(name) == 0) {
          issues->push_back(Issue{
              file, src.line_of(at), "span-name",
              "span `" + name +
                  "` is not in obs::known_span_names() — add a span_name:: "
                  "constant (and the OBSERVABILITY.md row) first"});
        }
        break;
      }
      const std::size_t q = arg.find("span_name::");
      if (q != std::string::npos) {
        const std::string constant = arg.substr(q + std::string("span_name::").size());
        if (tables.span_constants.count(constant) == 0) {
          issues->push_back(Issue{
              file, src.line_of(at), "span-name",
              "span constant `span_name::" + constant +
                  "` is not declared in obs/span.hpp"});
        }
        break;
      }
    }
  }
}

}  // namespace

std::set<std::string> NameTables::expanded_metric_names() const {
  std::set<std::string> out;
  for (const std::string& family : metric_families) {
    out.insert(family);
    const std::size_t open = family.find('<');
    if (open == std::string::npos) continue;
    const std::string prefix = family.substr(0, open);
    const std::string placeholder = family.substr(open);
    const auto it = placeholder_labels.find(placeholder);
    if (it == placeholder_labels.end()) continue;
    for (const std::string& label : it->second) out.insert(prefix + label);
  }
  return out;
}

Allowlist Allowlist::parse(const std::vector<std::string>& lines,
                           std::vector<std::string>* errors) {
  Allowlist allow;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string line = trim(lines[n]);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    std::string rule;
    std::string path;
    std::string reason;
    in >> rule >> path;
    std::getline(in, reason);
    if (rule.empty() || path.empty() || trim(reason).empty()) {
      if (errors != nullptr) {
        errors->push_back("lint_allow.txt:" + std::to_string(n + 1) +
                          ": want `rule path reason...`, got: " + line);
      }
      continue;
    }
    allow.entries_[{rule, path}] = false;
  }
  return allow;
}

bool Allowlist::allows(const std::string& rule, const std::string& file) {
  const auto it = entries_.find({rule, file});
  if (it == entries_.end()) return false;
  it->second = true;
  return true;
}

std::vector<std::string> Allowlist::unused_entries() const {
  std::vector<std::string> stale;
  for (const auto& [key, used] : entries_) {
    if (!used) stale.push_back(key.first + " " + key.second);
  }
  return stale;
}

std::vector<Issue> lint_source(const std::string& file,
                               const std::vector<std::string>& lines,
                               const NameTables& tables) {
  std::vector<Issue> issues;
  const JoinedSource plain = join_stripped(lines, /*keep_strings=*/false);
  const JoinedSource literal = join_stripped(lines, /*keep_strings=*/true);

  static const std::vector<std::string> kRngTokens = {
      "rand(", "srand", "random_device", "mt19937",
      "default_random_engine", "minstd_rand",
  };
  find_banned_tokens(file, plain, kRngTokens, "rng",
                     "all randomness flows through common/rng (seeded, "
                     "platform-stable)",
                     &issues);

  static const std::vector<std::string> kClockTokens = {
      "system_clock::now", "steady_clock::now", "high_resolution_clock",
      "clock_gettime",     "gettimeofday",      "std::time(",
  };
  find_banned_tokens(file, plain, kClockTokens, "wall-clock",
                     "wall-clock reads live in the sanctioned timer helpers "
                     "(obs::ScopedTimer / SpanTracer) only",
                     &issues);

  check_naked_locks(file, plain, &issues);
  check_lock_rank_tags(file, lines, &issues);
  check_metric_names(file, literal, tables, tables.expanded_metric_names(),
                     &issues);
  check_span_names(file, literal, tables, &issues);

  std::stable_sort(issues.begin(), issues.end(),
                   [](const Issue& a, const Issue& b) { return a.line < b.line; });
  return issues;
}

}  // namespace cryptodrop::lint
